// Command benchjson converts `go test -bench` output into the JSON
// artifact CI publishes per commit (BENCH_<sha>.json), so the repository's
// performance trajectory — ns/op, allocs/op and the domain metrics the
// benchmarks report (frames/s, backend-evals/frame, variance reductions)
// — is machine-readable run over run.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
//
// Compare mode diffs two artifacts benchmark-by-benchmark, printing
// per-metric deltas and GitHub warning annotations for ns/op regressions
// beyond the threshold — how CI tracks the performance trajectory run
// over run:
//
//	benchjson -compare BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Report is the artifact's top level.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result line.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name. The bench
	// runner omits the suffix when GOMAXPROCS is 1, so a suffix-less line
	// normalises to Procs=1 — and artifacts written before that
	// normalisation (Procs 0) are fixed up on load — keeping -cpu sweeps
	// and single-core runs comparable like for like.
	Procs      int `json:"procs,omitempty"`
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op" plus any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	sha := flag.String("sha", "", "commit sha recorded in the artifact")
	goVersion := flag.String("go", "", "go version recorded in the artifact")
	compare := flag.Bool("compare", false, "compare two artifacts: benchjson -compare old.json new.json")
	warnThreshold := flag.Float64("warn-threshold", 0.20, "fractional ns/op regression that triggers a warning in -compare mode")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two artifact paths")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *warnThreshold); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	report.SHA = *sha
	report.GoVersion = *goVersion
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found")
	}
}

// parse reads `go test -bench` output: "pkg:" headers set the current
// package, "Benchmark..." result lines become entries, everything else
// (goos/goarch/cpu headers, PASS/ok trailers, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		report.Benchmarks = append(report.Benchmarks, b)
	}
	return report, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkRunStream-8   100  12345 ns/op  67 B/op  8 allocs/op  90.5 frames/s
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	// No -procs suffix means the run was at GOMAXPROCS=1.
	b.Procs = 1
	if name, procs, ok := splitProcs(fields[0]); ok {
		b.Name, b.Procs = name, procs
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// splitProcs strips the -GOMAXPROCS suffix the bench runner appends.
func splitProcs(name string) (string, int, bool) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return "", 0, false
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return "", 0, false
	}
	return name[:i], procs, true
}

// loadReport reads one BENCH_<sha>.json artifact.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Artifacts written before suffix-less names normalised to Procs=1
	// recorded them as 0; fix them up so -compare matches them against
	// fresh single-core runs instead of treating every one as changed.
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Procs == 0 {
			r.Benchmarks[i].Procs = 1
		}
	}
	return &r, nil
}

// benchKey identifies a benchmark across runs. Procs is included so -cpu
// sweeps compare like for like.
func benchKey(b Benchmark) string {
	return b.Pkg + " " + b.Name + "-" + strconv.Itoa(b.Procs)
}

// runCompare diffs old and new artifacts benchmark-by-benchmark: one line
// per shared benchmark with the ns/op (and allocs/op, when present)
// delta, a summary of added/removed benchmarks, and a GitHub ::warning::
// annotation for every ns/op regression beyond threshold. Regressions
// warn rather than fail — micro-benchmarks on shared CI runners are noisy
// — but the annotations surface on the commit so a real slide is visible
// the moment it lands.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	olds := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		olds[benchKey(b)] = b
	}
	type row struct {
		key    string
		nb     Benchmark
		ob     Benchmark
		hasOld bool
	}
	rows := make([]row, 0, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		ob, ok := olds[benchKey(b)]
		rows = append(rows, row{key: benchKey(b), nb: b, ob: ob, hasOld: ok})
		if ok {
			delete(olds, benchKey(b))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })

	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s)\n", oldPath, shortSHA(oldRep.SHA), newPath, shortSHA(newRep.SHA))
	warned := 0
	for _, r := range rows {
		if !r.hasOld {
			fmt.Fprintf(w, "  %s: new benchmark (%.4g ns/op)\n", r.key, r.nb.Metrics["ns/op"])
			continue
		}
		line := fmt.Sprintf("  %s:", r.key)
		for _, unit := range []string{"ns/op", "allocs/op", "B/op"} {
			nv, nok := r.nb.Metrics[unit]
			ov, ook := r.ob.Metrics[unit]
			if !nok || !ook {
				continue
			}
			line += fmt.Sprintf(" %s %.4g -> %.4g (%+.1f%%)", unit, ov, nv, pctDelta(ov, nv))
		}
		var dropWarnings []string
		for unit, nv := range r.nb.Metrics {
			if !strings.Contains(unit, "dropped") {
				continue
			}
			ov, ok := r.ob.Metrics[unit]
			if !ok {
				// The metric itself is new on this (shared) benchmark: there
				// is no previous value to regress from, so report it without
				// warning — only metrics both runs recorded can regress.
				line += fmt.Sprintf(" %s %.4g (new metric)", unit, nv)
				continue
			}
			line += fmt.Sprintf(" %s %.4g -> %.4g", unit, ov, nv)
			// Delivery benchmarks record per-query dropped events; more
			// drops than the previous run at the same workload means the
			// delivery path regressed (a slower consumer path sheds
			// earlier). Warn past the threshold — with an absolute floor
			// of one whole event so a 0 -> 0.3 scheduling wobble stays
			// quiet; the floor also makes drops appearing where there
			// were none (0 -> n≥1) a regression outright.
			if nv > ov*(1+threshold) && nv-ov >= 1 {
				dropWarnings = append(dropWarnings,
					fmt.Sprintf("::warning::%s %s regressed (%.4g -> %.4g)", r.key, unit, ov, nv))
			}
		}
		fmt.Fprintln(w, line)
		warned += len(dropWarnings)
		for _, dw := range dropWarnings {
			fmt.Fprintln(w, dw)
		}
		if ov, ok := r.ob.Metrics["ns/op"]; ok {
			if nv, ok2 := r.nb.Metrics["ns/op"]; ok2 && ov > 0 && nv > ov*(1+threshold) {
				warned++
				fmt.Fprintf(w, "::warning::%s ns/op regressed %+.1f%% (%.4g -> %.4g)\n",
					r.key, pctDelta(ov, nv), ov, nv)
			}
		}
	}
	removed := make([]string, 0, len(olds))
	for k := range olds {
		removed = append(removed, k)
	}
	sort.Strings(removed)
	for _, k := range removed {
		fmt.Fprintf(w, "  %s: removed\n", k)
	}
	fmt.Fprintf(w, "%d benchmarks compared, %d regression warning(s) at >%.0f%% ns/op\n",
		len(rows), warned, threshold*100)
	return nil
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func shortSHA(sha string) string {
	if len(sha) > 8 {
		return sha[:8]
	}
	if sha == "" {
		return "?"
	}
	return sha
}
