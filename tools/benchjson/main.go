// Command benchjson converts `go test -bench` output into the JSON
// artifact CI publishes per commit (BENCH_<sha>.json), so the repository's
// performance trajectory — ns/op, allocs/op and the domain metrics the
// benchmarks report (frames/s, backend-evals/frame, variance reductions)
// — is machine-readable run over run.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Report is the artifact's top level.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result line.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name (0 if absent).
	Procs      int `json:"procs,omitempty"`
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op" plus any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	sha := flag.String("sha", "", "commit sha recorded in the artifact")
	goVersion := flag.String("go", "", "go version recorded in the artifact")
	flag.Parse()
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	report.SHA = *sha
	report.GoVersion = *goVersion
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found")
	}
}

// parse reads `go test -bench` output: "pkg:" headers set the current
// package, "Benchmark..." result lines become entries, everything else
// (goos/goarch/cpu headers, PASS/ok trailers, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		report.Benchmarks = append(report.Benchmarks, b)
	}
	return report, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkRunStream-8   100  12345 ns/op  67 B/op  8 allocs/op  90.5 frames/s
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	if name, procs, ok := splitProcs(fields[0]); ok {
		b.Name, b.Procs = name, procs
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// splitProcs strips the -GOMAXPROCS suffix the bench runner appends.
func splitProcs(name string) (string, int, bool) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return "", 0, false
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return "", 0, false
	}
	return name[:i], procs, true
}
