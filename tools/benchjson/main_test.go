package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: vmq
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunSequential-8   	      22	  50123456 ns/op	 1234567 B/op	    4567 allocs/op	     39902 frames/s
BenchmarkRunStream-8       	      85	  13456789 ns/op	 2345678 B/op	    7890 allocs/op	    148623 frames/s
BenchmarkServerFanout-8    	       3	   5647476 ns/op	         1.000 backend-evals/frame	    725301 query-frames/s
PASS
ok  	vmq	12.345s
pkg: vmq/internal/grid
BenchmarkDilate	     100	    123456 ns/op
PASS
ok  	vmq/internal/grid	1.2s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(report.Benchmarks))
	}
	seq := report.Benchmarks[0]
	if seq.Name != "BenchmarkRunSequential" || seq.Procs != 8 || seq.Pkg != "vmq" || seq.Iterations != 22 {
		t.Fatalf("sequential = %+v", seq)
	}
	if seq.Metrics["ns/op"] != 50123456 || seq.Metrics["allocs/op"] != 4567 {
		t.Fatalf("sequential metrics = %+v", seq.Metrics)
	}
	fanout := report.Benchmarks[2]
	if fanout.Name != "BenchmarkServerFanout" || fanout.Metrics["backend-evals/frame"] != 1.0 {
		t.Fatalf("fanout = %+v", fanout)
	}
	// The perf trajectory's key comparison survives the round trip.
	if !(report.Benchmarks[1].Metrics["ns/op"] < seq.Metrics["ns/op"]) {
		t.Fatal("sample lost the stream-vs-sequential ordering")
	}
	// A name without a -procs suffix (a GOMAXPROCS=1 run) normalises to
	// Procs=1, and a line from a later pkg header picks up that pkg.
	dilate := report.Benchmarks[3]
	if dilate.Name != "BenchmarkDilate" || dilate.Procs != 1 || dilate.Pkg != "vmq/internal/grid" {
		t.Fatalf("dilate = %+v", dilate)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noisy := `random log line
Benchmark	garbage
BenchmarkNoMetrics-4	12
--- BENCH: BenchmarkX-4
    bench_test.go:10: some log
`
	report, err := parse(strings.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("parsed noise as benchmarks: %+v", report.Benchmarks)
	}
}

func writeArtifact(t *testing.T, dir, name string, r *Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", &Report{
		SHA: "aaaaaaaaaaaa",
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkStable", Procs: 8, Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 10}},
			{Pkg: "vmq", Name: "BenchmarkRegressed", Procs: 8, Metrics: map[string]float64{"ns/op": 1000}},
			{Pkg: "vmq", Name: "BenchmarkGone", Procs: 8, Metrics: map[string]float64{"ns/op": 5}},
		},
	})
	newPath := writeArtifact(t, dir, "new.json", &Report{
		SHA: "bbbbbbbbbbbb",
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkStable", Procs: 8, Metrics: map[string]float64{"ns/op": 1050, "allocs/op": 2}},
			{Pkg: "vmq", Name: "BenchmarkRegressed", Procs: 8, Metrics: map[string]float64{"ns/op": 1500}},
			{Pkg: "vmq", Name: "BenchmarkAdded", Procs: 8, Metrics: map[string]float64{"ns/op": 7}},
		},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkStable-8: ns/op 1000 -> 1050 (+5.0%) allocs/op 10 -> 2 (-80.0%)",
		"::warning::vmq BenchmarkRegressed-8 ns/op regressed +50.0% (1000 -> 1500)",
		"BenchmarkAdded-8: new benchmark",
		"BenchmarkGone-8: removed",
		"3 benchmarks compared, 1 regression warning(s) at >20% ns/op",
		"(aaaaaaaa) -> ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
	// A 5% drift must not warn at the 20% threshold.
	if strings.Contains(out, "::warning::vmq BenchmarkStable") {
		t.Fatalf("stable benchmark warned:\n%s", out)
	}
}

// Dropped-event counts recorded by the delivery benchmarks are compared
// like a regression metric: new drops where there were none (or beyond
// the threshold) warn; sub-event scheduling wobble stays quiet.
func TestCompareDroppedEvents(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", &Report{
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryDrained", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 0}},
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryStalledConsumer", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 1400}},
			{Pkg: "vmq", Name: "BenchmarkWobble", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 0}},
		},
	})
	newPath := writeArtifact(t, dir, "new.json", &Report{
		Benchmarks: []Benchmark{
			// 0 -> 40: the drained fleet started shedding — regression.
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryDrained", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 40}},
			// 1400 -> 1450: within the threshold for an intentionally
			// stalled consumer — no warning.
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryStalledConsumer", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 1450}},
			// 0 -> 0.4: sub-event wobble — no warning.
			{Pkg: "vmq", Name: "BenchmarkWobble", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 0.4}},
		},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "::warning::vmq BenchmarkServerDeliveryDrained-8 dropped-events regressed (0 -> 40)") {
		t.Fatalf("missing dropped-events warning:\n%s", out)
	}
	if strings.Contains(out, "::warning::vmq BenchmarkServerDeliveryStalledConsumer") {
		t.Fatalf("within-threshold stalled drops warned:\n%s", out)
	}
	if strings.Contains(out, "::warning::vmq BenchmarkWobble") {
		t.Fatalf("sub-event wobble warned:\n%s", out)
	}
	if !strings.Contains(out, "dropped-events 1400 -> 1450") {
		t.Fatalf("dropped-events delta not printed:\n%s", out)
	}
}

// Ingest-drop counts from the push-ingestion benchmark ride the same
// dropped-metric comparison: a block-policy ring that starts shedding
// frames is a regression CI must flag.
func TestCompareIngestDropped(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", &Report{
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkServerPushIngest", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "ingest-dropped": 0}},
		},
	})
	newPath := writeArtifact(t, dir, "new.json", &Report{
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkServerPushIngest", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "ingest-dropped": 25}},
		},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.20); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "::warning::vmq BenchmarkServerPushIngest-8 ingest-dropped regressed (0 -> 25)") {
		t.Fatalf("missing ingest-dropped warning:\n%s", out)
	}
}

// A dropped-style metric that only the new run records — a benchmark
// that just started reporting it — is announced, not warned: there is
// no previous value to regress from.
func TestCompareNewDroppedMetricDoesNotWarn(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", &Report{
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryDrained", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000}},
		},
	})
	newPath := writeArtifact(t, dir, "new.json", &Report{
		Benchmarks: []Benchmark{
			{Pkg: "vmq", Name: "BenchmarkServerDeliveryDrained", Procs: 8,
				Metrics: map[string]float64{"ns/op": 1000, "dropped-events": 40}},
		},
	})
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "::warning::") {
		t.Fatalf("newly-recorded metric warned:\n%s", out)
	}
	if !strings.Contains(out, "dropped-events 40 (new metric)") {
		t.Fatalf("new metric not announced:\n%s", out)
	}
	if !strings.Contains(out, "1 benchmarks compared, 0 regression warning(s)") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

// -compare diffs only matching cpu counts: a -cpu sweep's 1-proc leg
// matches a legacy suffix-less artifact entry (Procs 0, normalised to 1
// on load), while its 8-proc leg is a distinct benchmark — never diffed
// against the single-core timing.
func TestCompareMatchesCPUCounts(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", &Report{
		Benchmarks: []Benchmark{
			// Legacy artifact entry: suffix-less run recorded as Procs 0.
			{Pkg: "vmq", Name: "BenchmarkScan", Procs: 0, Metrics: map[string]float64{"ns/op": 1000}},
		},
	})
	// New run is a -cpu 1,8 sweep parsed from bench output.
	newRep, err := parse(strings.NewReader(`pkg: vmq
BenchmarkScan   	100	1010 ns/op
BenchmarkScan-8 	100	 200 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	newPath := writeArtifact(t, dir, "new.json", newRep)
	var buf bytes.Buffer
	if err := runCompare(&buf, oldPath, newPath, 0.20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkScan-1: ns/op 1000 -> 1010") {
		t.Fatalf("1-proc legs did not match across the normalisation:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkScan-8: new benchmark") {
		t.Fatalf("8-proc leg was diffed against a different cpu count:\n%s", out)
	}
	if strings.Contains(out, "removed") || strings.Contains(out, "::warning::") {
		t.Fatalf("cross-cpu mismatch produced phantom removals or warnings:\n%s", out)
	}
}

func TestCompareMissingFile(t *testing.T) {
	if err := runCompare(&bytes.Buffer{}, "/does/not/exist.json", "/nor/this.json", 0.2); err == nil {
		t.Fatal("want error for missing artifact")
	}
}
