// Trafficwatch: continuous spatial monitoring with object tracking.
//
// The example watches the Jackson stream for the paper's q5 event —
// exactly one car and one person with the car left of the person — and
// uses the IoU tracker to report each *episode* (a maximal run of
// qualifying frames for the same car) rather than every frame, the way a
// real surveillance deployment would raise alerts.
//
//	go run ./examples/trafficwatch
package main

import (
	"fmt"
	"log"
	"sort"

	"vmq"
	"vmq/internal/track"
)

// episode is a maximal run of qualifying frames for one tracked car.
type episode struct {
	carTrack   int
	start, end int
}

func main() {
	q, err := vmq.ParseQuery(`
		SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`)
	if err != nil {
		log.Fatal(err)
	}
	sess := vmq.NewSession(vmq.Jackson(), 7)
	sess.Tol = vmq.Tolerances{Location: 1} // the paper's OD-CCF/OD-CLF-1 combo

	plan, err := sess.Bind(q)
	if err != nil {
		log.Fatal(err)
	}

	const n = 6000 // ~3m20s of 30fps video
	const gap = 15 // frames of silence that close an episode (0.5 s)
	tracker := track.New()
	open := map[int]*episode{} // car track id -> open episode
	var episodes []episode
	matched, detectorCalls := 0, 0

	for i := 0; i < n; i++ {
		f := sess.Stream.Next()
		// Close episodes that have been silent too long.
		for id, ep := range open {
			if i-ep.end > gap {
				episodes = append(episodes, *ep)
				delete(open, id)
			}
		}
		// Filter stage: cheap, runs on every frame.
		out := sess.Backend.Evaluate(f)
		if plan.Where != nil && !plan.Where.EvalFilter(out, f.Bounds, sess.Tol) {
			continue
		}
		// Confirmation stage: detector, exact predicate, tracking.
		dets := sess.Detector.Detect(f)
		detectorCalls++
		ids := tracker.Update(dets)
		if plan.Where != nil && !plan.Where.EvalExact(dets, f.Bounds) {
			continue
		}
		matched++
		for j, d := range dets {
			if d.Class != vmq.Car {
				continue
			}
			if ep, ok := open[ids[j]]; ok {
				ep.end = i
			} else {
				open[ids[j]] = &episode{carTrack: ids[j], start: i, end: i}
			}
		}
	}
	for _, ep := range open {
		episodes = append(episodes, *ep)
	}
	sort.Slice(episodes, func(a, b int) bool { return episodes[a].start < episodes[b].start })

	fmt.Printf("watched %d frames, %d qualified (%d detector calls, %v virtual time)\n",
		n, matched, detectorCalls, sess.Clock.Elapsed())
	fmt.Printf("%d distinct car-left-of-person episodes:\n", len(episodes))
	for _, ep := range episodes {
		fmt.Printf("  car track %3d: frames %5d..%5d (%.1fs)\n",
			ep.carTrack, ep.start, ep.end, float64(ep.end-ep.start+1)/30)
	}
}
