// Bikelane: the paper's "average number of bicycles in a bike lane"
// estimation query with multiple control variates.
//
// The bike lane is a rectangle on the left edge of the screen. The query
// estimates the average number of bicycles inside it per frame; Section
// III uses exactly this example for control variates ("Yi is the result
// of the application of full object detection for objects falling inside
// the bike lane region on a frame and Xi is the application of a CLF
// filter on the frame"). A second predicate leaf adds a second control,
// demonstrating the multiple-control-variate generalisation.
//
//	go run ./examples/bikelane
package main

import (
	"fmt"
	"log"

	"vmq"
	"vmq/internal/video"
)

func main() {
	// A custom street profile with a real bicycle population: the library
	// accepts any Profile, not just the three benchmarks.
	street := video.Jackson()
	street.Name = "street"
	street.Classes = []video.ClassMix{
		{Class: video.Car, P: 0.55},
		{Class: video.Person, P: 0.15},
		{Class: video.Bicycle, P: 0.30},
	}
	street.MeanObjs, street.StdObjs = 4, 1.5

	q, err := vmq.ParseQuery(`
		SELECT AVG(COUNT(bicycle IN RECT(0, 0, 120, 448))) FROM street
		WHERE COUNT(*) >= 1`)
	if err != nil {
		log.Fatal(err)
	}

	sess := vmq.NewSession(street, 23)
	const window = 3000
	const samples = 250

	res, err := sess.RunAggregate(q, window, samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q)
	fmt.Printf("window: %d frames, detector sampled on %d\n\n", res.WindowSize, res.Samples)
	fmt.Printf("plain sampling estimate: %.4f bicycles/frame (stderr %.4f)\n",
		res.Plain.Mean, res.Plain.StdErr())
	fmt.Printf("control-variate estimate: %.4f bicycles/frame\n", res.CV.Estimate)
	fmt.Printf("  %d control variates (CLF bike-lane cells + total count), beta = %v\n",
		res.Controls, res.CV.Beta)
	fmt.Printf("  variance reduced %.1fx (R² = %.3f)\n", res.CV.Reduction, res.CV.RSquared())
	fmt.Printf("ground truth: %.4f bicycles/frame\n", res.TruePerFrameMean)
	fmt.Printf("per-sample cost: %v vs %v for detector-only\n",
		res.VirtualTimePerSample, res.VirtualTimePerSample-sess.Backend.Technique().Cost().PerCall)
}
