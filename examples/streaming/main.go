// Streaming: the pipelined executor over bounded and unbounded sources.
//
// The batch path materialises a clip and scans it; the deployment story
// of the paper is a monitor that keeps up with a live feed. This example
// runs the same query three ways:
//
//  1. over the live (unbounded) session stream, pulled frame by frame
//     through the pipelined executor — filter fan-out across GOMAXPROCS
//     workers, in-order confirmation, bounded channels for backpressure;
//
//  2. over a short recorded clip via SliceSource, showing graceful
//     end-of-stream instead of a panic when the clip runs out;
//
//  3. as a sequence of hopping windows with one aggregate estimate per
//     window, the WINDOW HOPPING clause end to end.
//
// Run it with:
//
//	go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"log"
	"runtime"

	"vmq"
)

func main() {
	q, err := vmq.ParseQuery(`
		SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Live stream: the executor pulls exactly n frames from the
	// session's unbounded simulator feed.
	const n = 4000
	sess := vmq.NewSession(vmq.Jackson(), 42)
	sess.Tol = vmq.Tolerances{}
	res, err := sess.RunQuery(q, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live stream:  %d frames -> %d matches (%d detector calls, %v virtual time, %d filter workers)\n",
		res.FramesTotal, len(res.Matched), res.DetectorCalls, res.VirtualTime, runtime.GOMAXPROCS(0))

	// 2. Recorded clip: a SliceSource ends gracefully, so asking for more
	// frames than the clip holds just processes the whole clip.
	clip := vmq.NewSession(vmq.Jackson(), 42).Stream.Take(1500)
	res2, err := vmq.NewSession(vmq.Jackson(), 42).RunQueryOn(q, vmq.SliceSource(clip), n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short clip:   asked for %d frames, clip held %d -> processed %d, %d matches\n",
		n, len(clip), res2.FramesTotal, len(res2.Matched))

	// 3. Hopping windows: one aggregate estimate per 1000-frame batch.
	wq, err := vmq.ParseQuery(`
		SELECT COUNT(FRAMES) FROM jackson
		WHERE COUNT(car) = 1
		WINDOW HOPPING (SIZE 1000, ADVANCE BY 1000)`)
	if err != nil {
		log.Fatal(err)
	}
	wins, err := vmq.NewSession(vmq.Jackson(), 42).RunWindows(wq, 3, 150)
	if err != nil && !errors.Is(err, vmq.ErrStreamExhausted) {
		log.Fatal(err)
	}
	for i, w := range wins {
		fmt.Printf("window %d:     ~%.0f qualifying frames (truth %.0f, variance reduced %.1fx)\n",
			i, w.CV.Estimate*float64(w.WindowSize), w.TruePerFrameMean*float64(w.WindowSize), w.CV.Reduction)
	}
}
