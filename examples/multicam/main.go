// Multicam: one query over several cameras at once.
//
// The paper's related-work discussion contrasts its single-camera focus
// with Optasia's multi-camera parallelism; this example shows the two
// compose naturally — the same bound query runs over four fixed cameras
// concurrently (one goroutine per feed), each with its own filter and
// detector state, sharing one virtual clock.
//
//	go run ./examples/multicam
package main

import (
	"fmt"
	"log"

	"vmq"
	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

func main() {
	profile := vmq.Detrac()
	q, err := vmq.ParseQuery(`
		SELECT FRAMES FROM detrac
		WHERE COUNT(bus) >= 1 AND bus IN QUADRANT(UPPER LEFT)`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := query.Bind(q, profile)
	if err != nil {
		log.Fatal(err)
	}

	const cameras = 4
	const framesPerCam = 2000
	clk := simclock.New()
	feeds := make([]query.CameraFeed, cameras)
	for i := range feeds {
		seed := uint64(300 + i)
		feeds[i] = query.CameraFeed{
			CameraID: fmt.Sprintf("intersection-%d", i+1),
			Frames:   video.NewStream(profile, seed).Take(framesPerCam),
			Backend:  filters.NewODFilter(profile, seed, clk),
			Detector: detect.NewOracle(clk),
		}
	}

	// Exact CCF: with a ±1 tolerance, "COUNT(bus) >= 1" could never prune
	// (an estimate of 0 plus the tolerance still reaches 1).
	results := query.RunMulti(plan, feeds, vmq.Tolerances{Location: 1})
	fmt.Println("query:", q)
	fmt.Printf("%d cameras x %d frames (%s of video each)\n\n",
		cameras, framesPerCam, profile.DurationOf(framesPerCam))
	for _, r := range results {
		fmt.Printf("%-16s matched %4d frames  (detector on %d/%d, %.1f%%)\n",
			r.CameraID, len(r.Result.Matched), r.Result.DetectorCalls,
			r.Result.FramesTotal, 100*r.Result.Selectivity())
	}
	total := query.MergeResults(results)
	fmt.Printf("\nfleet total: %d matches, %v virtual pipeline time (brute force: %v)\n",
		len(total.Matched), total.VirtualTime,
		cameras*framesPerCam*simclock.CostMaskRCNN.PerCall)

	// Merged matches keep their camera attribution — a bare frame index
	// would be ambiguous across feeds. Print the first few alerts the way
	// a monitoring console would.
	for i, ref := range total.Matched {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(total.Matched)-5)
			break
		}
		fmt.Printf("  alert: %s frame %d\n", ref.CameraID, ref.Index)
	}
}
