// Quickstart: run one declarative monitoring query over a synthetic
// traffic stream and compare the filter cascade against brute-force
// detection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vmq"
)

func main() {
	// The paper's q3: all frames with exactly one car and exactly one
	// person, on the Jackson town-square stream.
	q, err := vmq.ParseQuery(`
		SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1`)
	if err != nil {
		log.Fatal(err)
	}

	// A session bundles the synthetic stream, the OD filter backend
	// (branching off a detector backbone, 1.9 ms/frame of virtual time)
	// and the Mask R-CNN stand-in detector (200 ms/frame). RunQuery pulls
	// frames through the pipelined streaming executor: the filter stage
	// fans out across a worker pool while the detector confirms survivors
	// in frame order, so results are identical to a sequential scan.
	const frames = 3000
	sess := vmq.NewSession(vmq.Jackson(), 42)
	sess.Tol = vmq.Tolerances{} // exact CCF, the paper's q3 configuration

	res, err := sess.RunQuery(q, frames)
	if err != nil {
		log.Fatal(err)
	}

	// Measure accuracy against ground truth (the simulator knows it).
	ref := vmq.NewSession(vmq.Jackson(), 42)
	plan, err := ref.Bind(q)
	if err != nil {
		log.Fatal(err)
	}
	truth := vmq.GroundTruth(plan, ref.Stream.Take(frames))

	// And compare with annotating every frame.
	brute := vmq.NewSession(vmq.Jackson(), 42)
	bres, err := brute.RunQueryBrute(q, frames)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q)
	fmt.Printf("matched %d frames, accuracy %.3f\n", len(res.Matched), vmq.Score(res, truth))
	fmt.Printf("cascade:     %8v virtual time (%d detector calls on %d frames)\n",
		res.VirtualTime, res.DetectorCalls, res.FramesTotal)
	fmt.Printf("brute force: %8v virtual time\n", bres.VirtualTime)
	fmt.Printf("speedup:     %.1fx\n", bres.VirtualTime.Seconds()/res.VirtualTime.Seconds())
}
