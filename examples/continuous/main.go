// Continuous: the standing-query server over one shared live feed.
//
// The paper's deployment model is monitoring — queries registered once
// and evaluated forever over live camera streams. This example registers
// three different queries on a single Jackson feed and lets the
// shared-scan scheduler amortise the filter stage: the feed is decoded
// once, the OD filter backend runs once per frame, and every query's
// pipeline consumes the memoised outputs. The metrics snapshot at the end
// shows the economy — the shared filter's hit rate approaches
// (queries-1)/queries — and each query's selectivity and online recall
// proxy.
//
// Run it with:
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"sync"

	"vmq"
)

func main() {
	srv := vmq.NewServer(vmq.ServerConfig{})
	if err := srv.AddFeed(vmq.LiveFeed(vmq.Jackson(), 42)); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	queries := []string{
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`,
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`,
		`SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) >= 1 WINDOW HOPPING (SIZE 500, ADVANCE BY 500)`,
	}
	const frames = 2000
	regs := make([]*vmq.Registration, len(queries))
	for i, src := range queries {
		q, err := vmq.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		regs[i], err = srv.Register(q, vmq.RegistrationOptions{MaxFrames: frames, SampleSize: 100})
		if err != nil {
			log.Fatal(err)
		}
	}
	srv.Start()

	var wg sync.WaitGroup
	for i, reg := range regs {
		wg.Add(1)
		go func(i int, reg *vmq.Registration) {
			defer wg.Done()
			matches, windows := 0, 0
			for ev := range reg.Results() {
				switch ev.Kind {
				case vmq.EventMatch:
					if matches == 0 {
						fmt.Printf("[%s] first match at frame %d (%d objects)\n",
							reg.ID(), ev.FrameIndex, ev.Objects)
					}
					matches++
				case vmq.EventWindow:
					windows++
					fmt.Printf("[%s] window @%d: %.1f qualifying frames (var reduced %.1fx)\n",
						reg.ID(), ev.WindowStart,
						ev.Window.CV.Estimate*float64(ev.Window.WindowSize), ev.Window.CV.Reduction)
				case vmq.EventEnd:
					if ev.Final != nil {
						fmt.Printf("[%s] done: %d/%d frames matched, selectivity %.3f, %v virtual time\n",
							reg.ID(), len(ev.Final.Matched), ev.Final.FramesTotal,
							ev.Final.Selectivity(), ev.Final.VirtualTime)
					} else {
						fmt.Printf("[%s] done: %d windows estimated\n", reg.ID(), windows)
					}
				}
			}
		}(i, reg)
	}
	wg.Wait()

	m := srv.Metrics()
	for _, f := range m.Feeds {
		for _, sf := range f.SharedFilters {
			fmt.Printf("feed %s: %d frames decoded once; %s filter ran %d times, served %d memoised hits (%.0f%% hit rate)\n",
				f.Name, f.Frames, sf.Technique, sf.Misses, sf.Hits, 100*sf.HitRate)
		}
	}
	for _, q := range m.Queries {
		fmt.Printf("%s on %s: selectivity %.3f, recall proxy %.3f\n", q.ID, q.Feed, q.Selectivity, q.Recall)
	}
}
