// Trainfilter: train the paper's branch network for real.
//
// The other examples use the calibrated filter backend (a statistical
// surrogate). This one runs the actual pipeline of Section II at laptop
// scale: render synthetic frames, annotate them with the ground-truth
// oracle (the Mask R-CNN stand-in), train a CountLocNet — convolutional
// backbone, global average pooling, fully connected head with class
// activation maps (Eq. 1) — under the Eq. 2 multi-task loss with the
// staged count-then-localization schedule, and then evaluate counting and
// localisation accuracy on held-out frames.
//
// Training is pure Go and takes roughly a minute.
//
//	go run ./examples/trainfilter
package main

import (
	"fmt"
	"time"

	"vmq"
	"vmq/internal/filters"
	"vmq/internal/geom"
	"vmq/internal/grid"
	"vmq/internal/metrics"
	"vmq/internal/video"
)

func main() {
	profile := vmq.Jackson()
	cfg := vmq.TrainedConfig{
		Img:      32,  // 32x32 rasterised frames -> 8x8 activation grid
		Channels: 16,  // feature-map depth d
		Frames:   300, // training frames annotated by the oracle
		Epochs:   4,
		Seed:     1,
	}
	fmt.Printf("training IC branch network on %s (%d frames, %d epochs, %dx%d px)...\n",
		profile.Name, cfg.Frames, cfg.Epochs, cfg.Img, cfg.Img)
	start := time.Now()
	backend := vmq.TrainFilter(vmq.ICTechnique, profile, cfg)
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Evaluate on held-out frames: count accuracy per class and grid
	// localisation f1, the same measures as Figures 7-15.
	s := video.NewStream(profile, 4242)
	g := backend.Grid()
	var carCounts metrics.CountAccuracy
	var carLoc metrics.PRF
	const testFrames = 150
	for i := 0; i < testFrames; i++ {
		f := s.Next()
		out := backend.Evaluate(f)
		carCounts.Observe(f.CountClass(vmq.Car), out.Counts[vmq.Car])
		truth := grid.FromCenters(carBoxes(f), f.Bounds, g)
		tp, fp, fn := grid.Match(out.Map(vmq.Car, g), truth, 1)
		carLoc.Add(tp, fp, fn)
	}
	fmt.Printf("held-out evaluation over %d frames:\n", testFrames)
	fmt.Printf("  car counts:        %s\n", carCounts.String())
	fmt.Printf("  car localisation:  %s (Manhattan radius 1 on the %dx%d grid)\n",
		carLoc.String(), g, g)

	// Reference: the calibrated backend the experiments use.
	cal := filters.NewICFilter(profile, 1, nil)
	var calCounts metrics.CountAccuracy
	s2 := video.NewStream(profile, 4242)
	for i := 0; i < testFrames; i++ {
		f := s2.Next()
		calCounts.Observe(f.CountClass(vmq.Car), cal.Evaluate(f).Counts[vmq.Car])
	}
	fmt.Printf("\ncalibrated IC backend on the same frames:\n")
	fmt.Printf("  car counts:        %s\n", calCounts.String())
}

func carBoxes(f *vmq.Frame) (boxes []geom.Rect) {
	for _, o := range f.Objects {
		if o.Class == vmq.Car {
			boxes = append(boxes, o.Box)
		}
	}
	return boxes
}
