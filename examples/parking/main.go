// Parking: the paper's Figure 1(b) scenario as a windowed aggregate with
// control variates.
//
// A static stop sign sits in the Jackson scene. The query estimates, per
// hopping window, how many frames contain a car left of the stop sign; a
// window where that holds for most frames suggests a parked car and is
// flagged as a possible violation — "we would like to determine if this
// event is true for more than say 10 minutes".
//
// The detector is sampled (200 ms/frame is too slow for every frame) and
// the cheap OD filters act as control variates, shrinking the estimator's
// variance as in Section III.
//
//	go run ./examples/parking
package main

import (
	"fmt"
	"log"
	"math"

	"vmq"
)

func main() {
	q, err := vmq.ParseQuery(`
		SELECT COUNT(FRAMES) FROM jackson
		WHERE car LEFT OF stop-sign
		WINDOW HOPPING (SIZE 3000, ADVANCE BY 3000)`)
	if err != nil {
		log.Fatal(err)
	}

	const windows = 4
	const samplesPerWindow = 250
	// Flag a window when more than 60% of its frames show the event.
	const violationFraction = 0.6

	sess := vmq.NewSession(vmq.Jackson(), 11)
	fmt.Println("query:", q)
	fmt.Printf("sampling %d of %d frames per window; filters on every frame as control variates\n\n",
		samplesPerWindow, 3000)

	for w := 0; w < windows; w++ {
		res, err := sess.RunAggregate(q, 0, samplesPerWindow)
		if err != nil {
			log.Fatal(err)
		}
		est := res.CV.Estimate
		h := 1.96 * math.Sqrt(res.CV.Variance)
		lo, hi := est-h, est+h
		status := "ok"
		if est > violationFraction {
			status = "POSSIBLE PARKING VIOLATION"
		}
		fmt.Printf("window %d: event fraction %.3f (95%% CI [%.3f, %.3f], truth %.3f)  %s\n",
			w, est, lo, hi, res.TruePerFrameMean, status)
		fmt.Printf("          plain stderr %.4f -> CV variance reduced %.1fx with %d control(s)\n",
			res.Plain.StdErr(), res.CV.Reduction, res.Controls)
	}
	fmt.Printf("\ntotal virtual time: %v\n", sess.Clock.Elapsed())
}
