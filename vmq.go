// Package vmq is a from-scratch Go implementation of "Video Monitoring
// Queries" (Koudas, Li, Xarchakos — ICDE 2020): declarative queries over
// streaming video with count and spatial constraints, accelerated by
// approximate IC/OD filters, with control-variate estimation for windowed
// aggregates.
//
// The package is a facade over the internal implementation. A typical
// monitoring query runs in three lines:
//
//	q, _ := vmq.ParseQuery(`SELECT FRAMES FROM jackson
//	    WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`)
//	sess := vmq.NewSession(vmq.Jackson(), 42)
//	res, _ := sess.RunQuery(q, 3000)
//
// Aggregate queries with control variates (Section III of the paper) go
// through RunAggregate; the experiment harness that regenerates every
// table and figure of the paper's evaluation lives under Experiments.
package vmq

import (
	"fmt"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/fleet"
	"vmq/internal/query"
	"vmq/internal/rlog"
	"vmq/internal/server"
	"vmq/internal/simclock"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Profile describes a synthetic dataset (classes, density, motion).
	Profile = video.Profile
	// Frame is one video frame with ground-truth annotations.
	Frame = video.Frame
	// Object is one ground-truth object instance.
	Object = video.Object
	// Class identifies an object class (car, person, ...).
	Class = video.Class
	// Color is an object colour attribute.
	Color = video.Color
	// Query is a parsed VQL statement.
	Query = vql.Query
	// Plan is a query bound to a dataset profile.
	Plan = query.Plan
	// Tolerances selects filter variants (CCF-1/2, CLF-1/2).
	Tolerances = query.Tolerances
	// Result summarises a monitoring-query execution.
	Result = query.Result
	// AggregateResult is a windowed aggregate estimate with CV statistics.
	AggregateResult = query.AggregateResult
	// Backend produces filter estimates for frames.
	Backend = filters.Backend
	// Output is one filter forward pass (counts + location maps).
	Output = filters.Output
	// Detector is a full object detector (the confirmation stage).
	Detector = detect.Detector
	// Detection is one detected object.
	Detection = detect.Detection
	// Clock accounts virtual per-operator time.
	Clock = simclock.Clock
	// Source yields frames one at a time with graceful end-of-stream
	// (Next returns false once exhausted).
	Source = stream.Source
	// FrameRef identifies a matched frame by camera and frame index.
	FrameRef = query.FrameRef
	// MergedResult is a multi-camera roll-up with per-camera attribution.
	MergedResult = query.MergedResult
	// Server hosts continuous queries over named live feeds with
	// shared-scan scheduling (one filter evaluation per frame, however
	// many queries share the feed).
	Server = server.Server
	// ServerConfig tunes a Server.
	ServerConfig = server.Config
	// FeedConfig describes one named live feed.
	FeedConfig = server.FeedConfig
	// FeedSpec is a feed's serialisable description (the POST /v1/feeds
	// wire shape): feeds created from a spec on a journaling server are
	// recorded durably and re-created on restart.
	FeedSpec = server.FeedSpec
	// QueryFailure captures a panic recovered inside a query's execution
	// pipeline — the evidence behind a query_failed end event.
	QueryFailure = query.Failure
	// Registration is one continuous query registered on a Server.
	Registration = server.Registration
	// RegistrationOptions tunes one query registration.
	RegistrationOptions = server.Options
	// Event is one entry in a registration's result stream.
	Event = server.Event
	// ServerMetrics is the server telemetry snapshot.
	ServerMetrics = server.Metrics
	// IngestMetrics is a push feed's ingest-ring telemetry within
	// ServerMetrics (depth, capacity, admissions, drops).
	IngestMetrics = server.IngestMetrics
	// DeliveryPolicy selects how a query's bounded result log treats a
	// slow or absent consumer (block, drop-oldest, sample-under-pressure).
	DeliveryPolicy = rlog.Policy
	// SpillConfig tunes a registration's on-disk result spill: segment
	// rotation size/age and the total retention budget.
	SpillConfig = rlog.SpillConfig
	// QueryMetrics is one registration's telemetry row within
	// ServerMetrics (sequences, lag, acked position, spill footprint).
	QueryMetrics = server.QueryMetrics
	// Router fronts a fleet of shard servers with one query surface:
	// consistent-hash feed routing, supervised resumable result relays
	// merged into a shard-attributed stream, fleet-wide ack routing, and
	// aggregated health/metrics.
	Router = fleet.Router
	// RouterConfig tunes a Router (shards, probe cadence, breaker
	// thresholds, relay backoff).
	RouterConfig = fleet.Config
	// ShardInfo names one shard process behind a Router.
	ShardInfo = fleet.ShardInfo
	// StreamEvent is one line of a Router's merged stream: the shard's
	// event verbatim, or a typed shard_down/shard_up/relay_failed marker.
	StreamEvent = fleet.StreamEvent
)

// NewRouter builds a fleet router over the configured shards and starts
// their health probers.
func NewRouter(cfg RouterConfig) (*Router, error) { return fleet.New(cfg) }

// Continuous-query event kinds.
const (
	// EventMatch reports one confirmed frame of a monitoring query.
	EventMatch = server.EventMatch
	// EventWindow reports one completed window of an aggregate query.
	EventWindow = server.EventWindow
	// EventEnd closes a registration's stream with the run's totals.
	EventEnd = server.EventEnd
	// EventGap reports a range of result-log sequences evicted before a
	// consumer reached them (slow consumer under a shedding policy, or a
	// resume from below the retained window).
	EventGap = server.EventGap
)

// Delivery policies for a registration's result log.
const (
	// DeliverBlock is lossless: the query's writer waits for the slowest
	// consumer rather than overwrite an unread event (the default).
	DeliverBlock = rlog.Block
	// DeliverDropOldest bounds consumer lag: the writer never blocks and
	// the oldest unread event is overwritten, surfacing as a gap event.
	DeliverDropOldest = rlog.DropOldest
	// DeliverSample decimates droppable events under backlog pressure so
	// a struggling consumer sees a thinned but current stream.
	DeliverSample = rlog.Sample
)

// Typed server errors, matched with errors.Is.
var (
	// ErrQueryNotFound reports an Unregister or lookup of an id with no
	// registration behind it.
	ErrQueryNotFound = server.ErrQueryNotFound
	// ErrFeedBusy reports a Register on a feed at its query limit.
	ErrFeedBusy = server.ErrFeedBusy
	// ErrFeedNotFound reports a lifecycle call naming no live feed.
	ErrFeedNotFound = server.ErrFeedNotFound
	// ErrFeedDraining reports a Register on a feed being drained.
	ErrFeedDraining = server.ErrFeedDraining
	// ErrFeedExists reports an AddFeed under a name already in use.
	ErrFeedExists = server.ErrFeedExists
	// ErrBufferTooLarge reports a Register or ingest request asking for a
	// ring beyond the server's cap.
	ErrBufferTooLarge = server.ErrBufferTooLarge
)

// FeedState is a feed's lifecycle phase (Server.Metrics reports it per
// feed): creating → running → draining → closed.
type FeedState = server.FeedState

// Feed lifecycle states.
const (
	FeedCreating = server.FeedCreating
	FeedRunning  = server.FeedRunning
	FeedDraining = server.FeedDraining
	FeedClosed   = server.FeedClosed
)

// End-event reasons: Event.Reason on the final event of a query whose
// feed was torn down (empty when the source simply ran out).
const (
	EndReasonFeedDrained = server.EndReasonFeedDrained
	EndReasonFeedRemoved = server.EndReasonFeedRemoved
	// EndReasonQueryFailed marks a stream ended by a recovered panic in
	// the query's backend or detector; Event.Error carries the panic
	// value and the status row the full QueryFailure.
	EndReasonQueryFailed = server.EndReasonQueryFailed
)

// PushSource is a bounded ingest ring feeds frames are published into at
// runtime — the programmatic end of the HTTP/WebSocket publisher
// bridges. Use it as a FeedConfig.Source.
type PushSource = stream.PushSource

// PushPolicy is a push ring's admission policy.
type PushPolicy = stream.PushPolicy

// Push admission policies.
const (
	// PushBlock parks the publisher until the scan frees ring space
	// (lossless; backpressure reaches the publisher).
	PushBlock = stream.PushBlock
	// PushDropOldest evicts the oldest buffered frame to admit the new
	// one (freshness over completeness).
	PushDropOldest = stream.PushDropOldest
	// PushReject refuses the new frame, leaving the backlog intact.
	PushReject = stream.PushReject
)

// NewPushSource creates a push-ingestion ring with the given capacity
// (frames) and admission policy.
func NewPushSource(capacity int, policy PushPolicy) *PushSource {
	return stream.NewPushSource(capacity, policy)
}

// ParsePushPolicy parses "block", "drop-oldest" or "reject" (empty
// defaults to block).
func ParsePushPolicy(s string) (PushPolicy, error) { return stream.ParsePushPolicy(s) }

// EncodeFrames renders frames in the publisher wire format (NDJSON, one
// frame per line) — the body POST /feeds/{name}/frames expects and,
// line-wise, the WebSocket bridge's per-message format.
func EncodeFrames(frames []*Frame) ([]byte, error) { return server.EncodeFrames(frames) }

// NewServer creates a continuous-query server. Add feeds (LiveFeed, or a
// custom FeedConfig over any Source), Register parsed queries, then
// Start; each registration's Results channel streams matches or window
// estimates until the feed ends or the query is unregistered. Server
// .Handler() exposes the same lifecycle over HTTP (see cmd/vmq serve).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// RecoverServer builds a server from the durable manifest under
// ServerConfig.StateDir, re-creating journalled feeds and queries with
// their original ids and resuming their result logs from the on-disk
// spill segments — consumers reconnect with ?from= and continue
// gap-free across the restart. It is also how journaling is enabled:
// servers built with NewServer never journal, servers built with
// RecoverServer journal every wire-expressible feed and query from then
// on. A StateDir with no manifest yet recovers an empty server and
// starts the journal.
func RecoverServer(cfg ServerConfig) (*Server, error) { return server.Recover(cfg) }

// LiveFeed is the standard synthetic live feed over a profile: an
// unbounded simulator stream with OD filtering and oracle confirmation,
// deterministic for the seed.
func LiveFeed(p Profile, seed uint64) FeedConfig { return server.LiveFeed(p, seed) }

// ErrStreamExhausted is returned (wrapped) when a bounded source runs out
// of frames before a window or batch completes.
var ErrStreamExhausted = stream.ErrExhausted

// SliceSource adapts a pre-materialised frame slice to Source.
func SliceSource(frames []*Frame) Source { return &stream.SliceSource{Frames: frames} }

// Object classes.
const (
	Person   = video.Person
	Car      = video.Car
	Bus      = video.Bus
	Truck    = video.Truck
	Bicycle  = video.Bicycle
	StopSign = video.StopSign
)

// Dataset profiles matching Table II of the paper.
var (
	// Coral is the aquarium stream (8.7 persons/frame).
	Coral = video.Coral
	// Jackson is the traffic intersection (1.2 objects/frame).
	Jackson = video.Jackson
	// Detrac is the dense traffic benchmark (15.8 objects/frame).
	Detrac = video.Detrac
	// Datasets returns all three profiles in paper order.
	Datasets = video.Profiles
)

// ParseQuery compiles a VQL statement.
func ParseQuery(src string) (*Query, error) { return vql.Parse(src) }

// ParseDeliveryPolicy resolves a delivery-policy name ("block",
// "drop-oldest", "sample-under-pressure"; empty selects block).
func ParseDeliveryPolicy(s string) (DeliveryPolicy, bool) { return rlog.ParsePolicy(s) }

// Session bundles a dataset stream with the standard filter/detector
// stack: an OD filter backend (the paper's best-performing family), the
// Mask R-CNN-stand-in oracle detector, and a virtual clock.
type Session struct {
	Profile  Profile
	Stream   *video.Stream
	Backend  Backend
	Detector Detector
	Clock    *Clock
	// Tol selects the filter variants used by RunQuery (default: CCF-1
	// with CLF-1, a robust general-purpose combination).
	Tol Tolerances

	seed uint64
}

// NewSession creates a session over the profile with deterministic
// behaviour for the given seed.
func NewSession(p Profile, seed uint64) *Session {
	clk := simclock.New()
	return &Session{
		Profile:  p,
		Stream:   video.NewStream(p, seed),
		Backend:  filters.NewODFilter(p, seed, clk),
		Detector: detect.NewOracle(clk),
		Clock:    clk,
		Tol:      Tolerances{Count: 1, Location: 1},
		seed:     seed,
	}
}

// UseICFilters switches the session to the IC filter family.
func (s *Session) UseICFilters() {
	s.Backend = filters.NewICFilter(s.Profile, s.seed, s.Clock)
}

// Bind compiles and binds a query against the session's profile.
func (s *Session) Bind(q *Query) (*Plan, error) { return query.Bind(q, s.Profile) }

// detectorFor honours the query's USING clause: "maskrcnn"/"oracle" select
// the exact annotator, "yolo" the simulated full-YOLOv2 pass. An empty
// clause keeps the session default.
func (s *Session) detectorFor(q *Query) (Detector, error) {
	switch q.Detector {
	case "":
		return s.Detector, nil
	case "maskrcnn", "oracle":
		return detect.NewOracle(s.Clock), nil
	case "yolo", "yolov2":
		return detect.NewSimYOLO(s.Clock, s.seed), nil
	default:
		return nil, fmt.Errorf("vmq: unknown detector %q in USING clause", q.Detector)
	}
}

// Source wraps the session's frame stream as a pull-based Source for the
// pipelined executor and the window builders.
func (s *Session) Source() Source { return stream.FromStream(s.Stream) }

// RunQuery executes a monitoring query over the next n frames of the
// session's stream using the filter-then-detect cascade, on the pipelined
// streaming executor: frames are pulled from the stream, filtered by a
// worker pool, and confirmed in order — never materialising the clip.
func (s *Session) RunQuery(q *Query, n int) (*Result, error) {
	return s.RunQueryOn(q, s.Source(), n)
}

// RunQueryOn executes a monitoring query over up to n frames pulled from
// an arbitrary source (a recorded clip via SliceSource, a live feed, ...).
// A short source ends the query gracefully.
func (s *Session) RunQueryOn(q *Query, src Source, n int) (*Result, error) {
	plan, err := s.Bind(q)
	if err != nil {
		return nil, err
	}
	det, err := s.detectorFor(q)
	if err != nil {
		return nil, err
	}
	eng := &query.Engine{Backend: s.Backend, Detector: det, Tol: s.Tol}
	return eng.RunStream(plan, src, n), nil
}

// RunQueryBrute executes the brute-force baseline (detector on every
// frame) for comparison.
func (s *Session) RunQueryBrute(q *Query, n int) (*Result, error) {
	plan, err := s.Bind(q)
	if err != nil {
		return nil, err
	}
	eng := &query.Engine{Detector: s.Detector}
	return eng.RunStream(plan, s.Source(), n), nil
}

// RunAggregate executes a windowed aggregate with sampling and (multiple)
// control variates over the next window of frames. The window size is
// taken from the query's WINDOW clause, or windowSize when absent.
func (s *Session) RunAggregate(q *Query, windowSize, sampleSize int) (*AggregateResult, error) {
	plan, err := s.Bind(q)
	if err != nil {
		return nil, err
	}
	if q.Window != nil {
		windowSize = q.Window.Size
	}
	if windowSize <= 0 {
		return nil, fmt.Errorf("vmq: no window size (add a WINDOW clause or pass windowSize)")
	}
	frames := s.Stream.Take(windowSize)
	return query.RunAggregate(plan, frames, s.Backend, s.Detector, query.AggregateConfig{
		SampleSize:       sampleSize,
		Sampler:          stream.NewUniformSampler(s.seed + 101),
		MuFromFullWindow: true,
	})
}

// RunWindows executes a windowed aggregate query over n consecutive
// windows of the session's stream, honouring the query's WINDOW clause
// (HOPPING windows tile or skip; SLIDING windows overlap), and reports
// one estimate per window. If the query has no WINDOW clause an error is
// returned.
func (s *Session) RunWindows(q *Query, n, sampleSize int) ([]*AggregateResult, error) {
	plan, err := s.Bind(q)
	if err != nil {
		return nil, err
	}
	return query.RunWindows(plan, s.Source(), s.Backend, s.Detector, n, query.AggregateConfig{
		SampleSize:       sampleSize,
		Sampler:          stream.NewUniformSampler(s.seed + 101),
		MuFromFullWindow: true,
	})
}

// GroundTruth evaluates the plan's predicate on simulator ground truth for
// the given frames (no detector cost) — the reference for accuracy.
func GroundTruth(plan *Plan, frames []*Frame) []bool { return query.GroundTruth(plan, frames) }

// Score returns the paper's Table III accuracy measure (recall of true
// frames) for a result against ground truth.
func Score(res *Result, truth []bool) float64 { return query.Score(res, truth) }

// TrainFilter trains a real CNN filter backend (package nn) on rendered
// frames of the profile, following the paper's Eq. 2 multi-task training
// recipe. It is laptop-slow (seconds to minutes depending on cfg) and
// exists to validate the architecture; the calibrated backends are the
// fast path.
func TrainFilter(tech filters.Technique, p Profile, cfg filters.TrainedConfig) Backend {
	return filters.TrainFilter(tech, p, cfg, simclock.New())
}

// Filter techniques.
const (
	// ICTechnique selects image-classification-style filters.
	ICTechnique = filters.IC
	// ODTechnique selects object-detection-style filters.
	ODTechnique = filters.OD
)

// TrainedConfig configures TrainFilter.
type TrainedConfig = filters.TrainedConfig
