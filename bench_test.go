// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment harness at
// a benchmark-friendly scale and reports domain-specific metrics alongside
// ns/op; run the cmd/vmq binary ("vmq experiment -name all -frames 0") for
// the full paper-scale output recorded in EXPERIMENTS.md.
package vmq_test

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"vmq/internal/detect"
	"vmq/internal/experiments"
	"vmq/internal/filters"
	"vmq/internal/grid"
	"vmq/internal/query"
	"vmq/internal/rlog"
	"vmq/internal/server"
	"vmq/internal/stream"
	"vmq/internal/tensor"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// benchConfig keeps a single iteration around a second of CPU.
func benchConfig() experiments.Config {
	return experiments.Config{Frames: 1000, Seed: 20, Repetitions: 3}
}

// BenchmarkTableII regenerates Table II (dataset characteristics).
func BenchmarkTableII(b *testing.B) {
	var rows []experiments.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableII(benchConfig())
	}
	b.StopTimer()
	r := rows[2] // detrac, the densest stream
	b.ReportMetric(r.MeasuredMean, "obj/frame")
	b.ReportMetric(r.MeasuredStd, "std")
}

// BenchmarkFigure7 regenerates Figure 7 (count-filter accuracy).
func BenchmarkFigure7(b *testing.B) {
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure7(benchConfig())
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Dataset == "detrac" && r.Filter == "OD-CF" {
			b.ReportMetric(r.Exact, "detrac-ODCF-exact")
			b.ReportMetric(r.Within2, "detrac-ODCF-±2")
		}
	}
}

// BenchmarkFigure11 regenerates Figures 8–10 (per-class CCF accuracy).
func BenchmarkFigure11(b *testing.B) {
	var rows []experiments.Figure11Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure11(benchConfig())
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Dataset == "jackson" && r.Filter == "IC-CCF" && r.Class == "car" {
			b.ReportMetric(r.Exact, "jackson-ICCCF-car-exact")
		}
	}
}

// BenchmarkFigure15 regenerates Figures 12–14 (per-class CLF f1).
func BenchmarkFigure15(b *testing.B) {
	var rows []experiments.Figure15Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure15(benchConfig())
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Dataset == "detrac" && r.Class == "car" {
			b.ReportMetric(r.F1, r.Filter+"-f1")
		}
	}
}

// BenchmarkTableIII regenerates Table III (q1–q7 cascade execution).
func BenchmarkTableIII(b *testing.B) {
	var rows []experiments.TableIIIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableIII(benchConfig())
	}
	b.StopTimer()
	var minSpeedup, minAcc = 1e9, 1.0
	for _, r := range rows {
		if r.Speedup < minSpeedup {
			minSpeedup = r.Speedup
		}
		if r.Accuracy < minAcc {
			minAcc = r.Accuracy
		}
	}
	b.ReportMetric(minSpeedup, "min-speedup-x")
	b.ReportMetric(minAcc, "min-accuracy")
}

// BenchmarkTableIV regenerates Table IV (aggregate CV variance reduction).
func BenchmarkTableIV(b *testing.B) {
	var rows []experiments.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableIV(benchConfig())
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.MeanReduction, r.Query+"-varRed-x")
	}
}

// BenchmarkTableIVHighFidelity runs the control-variate ablation with the
// near-saturation filter calibration, showing paper-scale reductions.
func BenchmarkTableIVHighFidelity(b *testing.B) {
	var rows []experiments.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableIVHighFidelity(benchConfig())
	}
	b.StopTimer()
	var maxRed float64
	for _, r := range rows {
		if r.MeanReduction > maxRed {
			maxRed = r.MeanReduction
		}
	}
	b.ReportMetric(maxRed, "max-varRed-x")
}

// BenchmarkPlanner runs the automatic filter-selection optimizer across
// q1–q7 (the paper's future-work direction).
func BenchmarkPlanner(b *testing.B) {
	var rows []experiments.PlannerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Planner(benchConfig())
	}
	b.StopTimer()
	var minAcc = 1.0
	for _, r := range rows {
		if r.Accuracy < minAcc {
			minAcc = r.Accuracy
		}
	}
	b.ReportMetric(minAcc, "min-accuracy")
}

// BenchmarkConstraintAccuracy regenerates the Section IV-A constraint
// comparison (paper: 99 % agreement).
func BenchmarkConstraintAccuracy(b *testing.B) {
	var r experiments.ConstraintAccuracyResult
	for i := 0; i < b.N; i++ {
		r = experiments.ConstraintAccuracy(benchConfig())
	}
	b.StopTimer()
	b.ReportMetric(r.Agreement, "agreement")
}

// BenchmarkBranchTradeoff runs the branch-placement ablation (grid
// 56/28/14) the paper discusses in Section IV.
func BenchmarkBranchTradeoff(b *testing.B) {
	var rows []experiments.BranchTradeoffRow
	for i := 0; i < b.N; i++ {
		rows = experiments.BranchTradeoff(benchConfig())
	}
	b.StopTimer()
	for _, r := range rows {
		switch r.GridSize {
		case 56:
			b.ReportMetric(r.SpatialF1, "g56-f1")
		case 14:
			b.ReportMetric(r.SpatialF1, "g14-f1")
		}
	}
}

// BenchmarkUnexpectedObjects runs the anomaly-flagging experiment from the
// evaluation introduction.
func BenchmarkUnexpectedObjects(b *testing.B) {
	var r experiments.UnexpectedObjectsResult
	for i := 0; i < b.N; i++ {
		r = experiments.UnexpectedObjects(benchConfig())
	}
	b.StopTimer()
	b.ReportMetric(r.Recall, "recall")
}

// --- Engine benchmarks: sequential loop vs pipelined streaming executor ---

// benchEngineSetup prepares the workload both engine benchmarks share: a
// dense Detrac clip under a spatial query, so the per-frame filter
// evaluation (count heads plus 56x56 location maps) dominates and the
// pipelined executor's worker-pool fan-out has real work to parallelise.
func benchEngineSetup(b *testing.B) (*query.Plan, []*video.Frame, func() *query.Engine) {
	b.Helper()
	p := video.Detrac()
	q, err := vql.Parse(`SELECT FRAMES FROM detrac
		WHERE COUNT(bus) >= 1 AND bus IN QUADRANT(UPPER LEFT)`)
	if err != nil {
		b.Fatal(err)
	}
	plan := query.MustBind(q, p)
	frames := video.NewStream(p, 9).Take(2000)
	mk := func() *query.Engine {
		return &query.Engine{
			Backend:  filters.NewODFilter(p, 9, nil),
			Detector: detect.NewOracle(nil),
			Tol:      query.Tolerances{Count: 1, Location: 1},
		}
	}
	return plan, frames, mk
}

// BenchmarkRunSequential is the single-threaded reference loop.
func BenchmarkRunSequential(b *testing.B) {
	plan, frames, mk := benchEngineSetup(b)
	eng := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunSequential(plan, frames)
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRunStream is the pipelined executor over the same workload;
// run with -cpu 1,2,4 to see the filter fan-out scale. Results are
// identical to the sequential loop (TestRunStreamMatchesSequential); on
// >= 2 cores the wall clock should be measurably lower.
func BenchmarkRunStream(b *testing.B) {
	plan, frames, mk := benchEngineSetup(b)
	eng := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// --- Trained-backend benchmarks: batched vs per-frame inference path ---

// benchTrainedSetup builds the real-CNN workload: an untrained OD branch
// network (random weights exercise the same kernels as trained ones) over
// a Jackson clip under a count query.
func benchTrainedSetup(b *testing.B) (*query.Plan, []*video.Frame, *filters.Trained) {
	b.Helper()
	p := video.Jackson()
	q, err := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`)
	if err != nil {
		b.Fatal(err)
	}
	plan := query.MustBind(q, p)
	frames := video.NewStream(p, 17).Take(256)
	backend := filters.NewUntrained(filters.OD, p, filters.TrainedConfig{Img: 48, Channels: 16, Seed: 17}, nil)
	return plan, frames, backend
}

// perFrameTrained reproduces the pre-batching inference path — rasterise
// one frame, run the naive per-frame Forward, build the Output — hiding
// the backend's BatchBackend implementation from the engine. It is the
// baseline BenchmarkRunStreamBatched is measured against.
type perFrameTrained struct {
	inner   *filters.Trained
	classes []video.Class
}

func newPerFrameTrained(inner *filters.Trained, p video.Profile) *perFrameTrained {
	t := &perFrameTrained{inner: inner}
	for _, cm := range p.Classes {
		t.classes = append(t.classes, cm.Class)
	}
	return t
}

func (t *perFrameTrained) Technique() filters.Technique { return t.inner.Technique() }
func (t *perFrameTrained) Grid() int                    { return t.inner.Grid() }

func (t *perFrameTrained) Evaluate(f *video.Frame) *filters.Output {
	img := video.Render(f, t.inner.Img, t.inner.Img, t.inner.NoiseSeed)
	counts, maps := t.inner.Net.Forward(img)
	out := &filters.Output{}
	g := t.inner.Net.Grid()
	plane := g * g
	for ci, cls := range t.classes {
		v := float64(counts.Data[ci])
		out.Counts[cls] = v
		out.Total += v
		gm := grid.NewMap(g)
		copy(gm.Cells, maps.Data[ci*plane:(ci+1)*plane])
		out.Maps[cls] = gm.Threshold(t.inner.Threshold)
	}
	return out
}

// BenchmarkRunStreamBatched runs the pipelined executor with the trained
// backend's native batch path: each 32-frame chunk is rasterised into one
// NCHW batch and pushed through one GEMM per layer on the reusable arena.
func BenchmarkRunStreamBatched(b *testing.B) {
	plan, frames, backend := benchTrainedSetup(b)
	eng := &query.Engine{Backend: backend, Detector: detect.NewOracle(nil), Tol: query.Tolerances{Count: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRunStreamTrainedPerFrame is the pre-batching baseline: the
// same executor and workload, but every frame takes the naive per-frame
// forward with fresh allocations at each layer.
func BenchmarkRunStreamTrainedPerFrame(b *testing.B) {
	plan, frames, backend := benchTrainedSetup(b)
	p := video.Jackson()
	eng := &query.Engine{
		Backend:  newPerFrameTrained(backend, p),
		Detector: detect.NewOracle(nil),
		Tol:      query.Tolerances{Count: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// --- Server benchmarks: shared-scan fan-out vs independent queries ---

// benchServerQueries is the standing-query fleet both fan-out benchmarks
// run: the same predicate registered nQueries times over one 512-frame
// Jackson clip.
const benchServerQueries = 8

func benchServerClip(b *testing.B) (video.Profile, []*video.Frame, *query.Plan) {
	b.Helper()
	p := video.Jackson()
	q, err := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`)
	if err != nil {
		b.Fatal(err)
	}
	return p, video.NewStream(p, 15).Take(512), query.MustBind(q, p)
}

// benchCountingBackend counts true filter evaluations.
type benchCountingBackend struct {
	filters.Backend
	mu    sync.Mutex
	calls int
}

func (c *benchCountingBackend) Evaluate(f *video.Frame) *filters.Output {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Backend.Evaluate(f)
}

func (c *benchCountingBackend) ConcurrentSafe() bool { return filters.ConcurrentSafe(c.Backend) }

// BenchmarkServerFanout runs benchServerQueries identical queries through
// the continuous-query server's shared-scan schedule: the feed is decoded
// once and the filter backend evaluated once per frame for the whole
// fleet. The backend-evals/frame metric should sit at ~1.0 — 1/N the
// invocations of the independent baseline below — while every query's
// results stay identical to a standalone run (enforced by test).
func BenchmarkServerFanout(b *testing.B) {
	p, frames, _ := benchServerClip(b)
	totalEvals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counting := &benchCountingBackend{Backend: filters.NewODFilter(p, 15, nil)}
		srv := server.New(server.Config{})
		if err := srv.AddFeed(server.FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: frames},
			Backend: counting,
		}); err != nil {
			b.Fatal(err)
		}
		regs := make([]*server.Registration, benchServerQueries)
		for j := range regs {
			q, _ := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`)
			reg, err := srv.Register(q, server.Options{})
			if err != nil {
				b.Fatal(err)
			}
			regs[j] = reg
		}
		srv.Start()
		var wg sync.WaitGroup
		for _, reg := range regs {
			wg.Add(1)
			go func(reg *server.Registration) {
				defer wg.Done()
				for range reg.Results() {
				}
			}(reg)
		}
		wg.Wait()
		srv.Close()
		totalEvals += counting.calls
	}
	b.ReportMetric(float64(totalEvals)/float64(b.N*len(frames)), "backend-evals/frame")
	b.ReportMetric(float64(len(frames)*benchServerQueries)*float64(b.N)/b.Elapsed().Seconds(), "query-frames/s")
}

// BenchmarkServerFanoutIndependent is the baseline the shared scan is
// measured against: the same fleet of queries each running a standalone
// RunStream over the clip, so the filter backend is evaluated N times per
// frame.
func BenchmarkServerFanoutIndependent(b *testing.B) {
	p, frames, plan := benchServerClip(b)
	totalEvals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counting := &benchCountingBackend{Backend: filters.NewODFilter(p, 15, nil)}
		var wg sync.WaitGroup
		for j := 0; j < benchServerQueries; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := &query.Engine{
					Backend:  counting,
					Detector: detect.NewOracle(nil),
					Tol:      query.Tolerances{Count: 1, Location: 1},
				}
				eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
			}()
		}
		wg.Wait()
		totalEvals += counting.calls
	}
	b.ReportMetric(float64(totalEvals)/float64(b.N*len(frames)), "backend-evals/frame")
	b.ReportMetric(float64(len(frames)*benchServerQueries)*float64(b.N)/b.Elapsed().Seconds(), "query-frames/s")
}

// --- Server benchmarks: cross-feed inference coalescing ---

// benchGEMMCounter counts true batch evaluations (one GEMM sequence per
// call for a trained backend) while forwarding the coalescing identity,
// so wrapped backends still merge across feeds.
type benchGEMMCounter struct {
	filters.Coalescable
	calls *atomic.Int64 // shared across the fleet
}

func (c *benchGEMMCounter) EvaluateBatch(frames []*video.Frame, dst []*filters.Output) []*filters.Output {
	c.calls.Add(1)
	return c.Coalescable.EvaluateBatch(frames, dst)
}

func (c *benchGEMMCounter) Evaluate(f *video.Frame) *filters.Output {
	var out [1]*filters.Output
	return c.EvaluateBatch([]*video.Frame{f}, out[:0])[0]
}

// benchCoalesceFleet is the many-sparse-feeds workload of the cross-feed
// broker benchmarks: benchCoalesceFeeds bounded feeds, each serving the
// same trained OD architecture (separate instances, identical weights —
// the fingerprint coalescing matches on) with one standing query, and
// ScanBatch 2 so every feed flushes 2-frame micro-batches — the sparse
// regime where per-feed batching degenerates to tiny GEMMs. Clips are
// longer than the fan-out buffer so feeds genuinely overlap (broker
// membership is taken at first submission; a clip that fits one buffer
// can drain solo before the next feed starts).
const (
	benchCoalesceFeeds  = 16
	benchCoalesceFrames = 192
)

func benchCoalesceFleet(b *testing.B, cfg server.Config) (framesPerSec, gemmCalls float64) {
	b.Helper()
	base := video.Jackson()
	clips := make([][]*video.Frame, benchCoalesceFeeds)
	for i := range clips {
		clips[i] = video.NewStream(base, uint64(300+i)).Take(benchCoalesceFrames)
	}
	tcfg := filters.TrainedConfig{Img: 32, Channels: 16, Seed: 13}
	var calls atomic.Int64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		srv := server.New(cfg)
		for i := range clips {
			p := base
			p.Name = base.Name + strconv.Itoa(i)
			if err := srv.AddFeed(server.FeedConfig{
				Name: p.Name, Profile: p,
				Source:  &stream.SliceSource{Frames: clips[i]},
				Backend: &benchGEMMCounter{Coalescable: filters.NewUntrained(filters.OD, base, tcfg, nil), calls: &calls},
			}); err != nil {
				b.Fatal(err)
			}
		}
		regs := make([]*server.Registration, benchCoalesceFeeds)
		for i := range regs {
			q, err := vql.Parse(`SELECT FRAMES FROM jackson` + strconv.Itoa(i) + ` WHERE COUNT(car) = 1`)
			if err != nil {
				b.Fatal(err)
			}
			if regs[i], err = srv.Register(q, server.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		srv.Start()
		var wg sync.WaitGroup
		for _, reg := range regs {
			wg.Add(1)
			go func(reg *server.Registration) {
				defer wg.Done()
				for range reg.Results() {
				}
			}(reg)
		}
		wg.Wait()
		srv.Close()
	}
	total := float64(benchCoalesceFeeds * benchCoalesceFrames * b.N)
	return total / b.Elapsed().Seconds(), float64(calls.Load()) / total
}

// BenchmarkServerCoalescedScan is the full PR-4 path: the cross-feed
// broker merges the fleet's 2-frame flushes into one large GEMM per
// size-or-deadline window, on the auto-dispatched (AVX2 where available)
// kernels. Compare gemm-calls/frame against the per-feed baselines: 16
// sparse feeds drop from a batch-of-2 GEMM dispatch each to a shared
// ~1/32-per-frame dispatch, and frames/s rises accordingly.
func BenchmarkServerCoalescedScan(b *testing.B) {
	fps, calls := benchCoalesceFleet(b, server.Config{ScanBatch: 2})
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(calls, "gemm-calls/frame")
}

// BenchmarkServerPerFeedScan disables only the broker (CoalesceBatch 1):
// every feed dispatches its own micro-batches, as in PR 3, but still on
// the auto-dispatched kernels. The delta against BenchmarkServerCoalescedScan
// isolates what cross-feed coalescing itself buys.
func BenchmarkServerPerFeedScan(b *testing.B) {
	fps, calls := benchCoalesceFleet(b, server.Config{ScanBatch: 2, CoalesceBatch: 1})
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(calls, "gemm-calls/frame")
}

// BenchmarkServerPerFeedScanSSE pins the pre-PR system end to end:
// per-feed micro-batches on the SSE-baseline kernel (the amd64 default
// before runtime AVX2 dispatch landed). This is the configuration the
// coalesced scan's headline speedup is measured against.
func BenchmarkServerPerFeedScanSSE(b *testing.B) {
	prev := tensor.Kernel()
	if err := tensor.SetKernel("sse"); err != nil {
		b.Skipf("SSE kernel unavailable: %v", err)
	}
	defer tensor.SetKernel(prev)
	fps, calls := benchCoalesceFleet(b, server.Config{ScanBatch: 2, CoalesceBatch: 1})
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(calls, "gemm-calls/frame")
}

// --- Server benchmarks: result delivery under consumer pressure ---

// benchDeliveryFleet serves one feed to benchDeliveryQueries match-heavy
// queries (COUNT >= 0: every frame is a match event, the worst delivery
// load). With stall set, one registration is never consumed — the
// scenario that wedged the whole feed under the old lossless channels
// once its buffers filled; under drop-oldest its result log sheds
// instead, and the feed's scan rate must be indistinguishable from the
// all-drained baseline. Returns the feed's frames/s and the events
// dropped per iteration across the fleet (≈0 when everyone drains).
const (
	benchDeliveryQueries = 4
	benchDeliveryFrames  = 1500
)

func benchDeliveryFleet(b *testing.B, stall bool) (framesPerSec, droppedPerOp float64) {
	b.Helper()
	p := video.Jackson()
	frames := video.NewStream(p, 55).Take(benchDeliveryFrames)
	var dropped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{})
		if err := srv.AddFeed(server.FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: frames},
			Backend: filters.NewODFilter(p, 55, nil),
		}); err != nil {
			b.Fatal(err)
		}
		regs := make([]*server.Registration, benchDeliveryQueries)
		for j := range regs {
			q, _ := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`)
			var err error
			regs[j], err = srv.Register(q, server.Options{Policy: rlog.DropOldest, ResultBuffer: 32})
			if err != nil {
				b.Fatal(err)
			}
		}
		srv.Start()
		var wg sync.WaitGroup
		for j, reg := range regs {
			if stall && j == 0 {
				continue // deliberately abandoned: no consumer ever attaches
			}
			wg.Add(1)
			go func(reg *server.Registration) {
				defer wg.Done()
				for range reg.Results() {
				}
			}(reg)
		}
		wg.Wait()
		for _, reg := range regs {
			<-reg.Done()
			dropped += reg.Log().Dropped()
		}
		srv.Close()
	}
	return float64(benchDeliveryFrames) * float64(b.N) / b.Elapsed().Seconds(),
		float64(dropped) / float64(b.N)
}

// BenchmarkServerDeliveryDrained is the healthy baseline: every
// consumer keeps up, nothing drops.
func BenchmarkServerDeliveryDrained(b *testing.B) {
	fps, dropped := benchDeliveryFleet(b, false)
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(dropped, "dropped-events")
}

// BenchmarkServerDeliveryStalledConsumer abandons one of the four
// consumers. The headline check (recorded in README, warned on by
// benchjson -compare): frames/s stays at the drained baseline — the
// stalled query sheds into its own ring instead of back-pressuring the
// shared scan — and dropped-events accounts exactly for what it shed.
func BenchmarkServerDeliveryStalledConsumer(b *testing.B) {
	fps, dropped := benchDeliveryFleet(b, true)
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(dropped, "dropped-events")
}

// BenchmarkServerAckedConsumer runs the delivery fleet with every
// consumer in exactly-once mode: block-policy logs, and each event is
// acknowledged as it is read, so the retention floor tracks the acked
// position the whole run. This prices the ack path (a lock, a floor
// recompute, a possible writer wake) against the fire-and-forget
// drained baseline; nothing may drop.
func BenchmarkServerAckedConsumer(b *testing.B) {
	p := video.Jackson()
	frames := video.NewStream(p, 55).Take(benchDeliveryFrames)
	var dropped, acked int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{})
		if err := srv.AddFeed(server.FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: frames},
			Backend: filters.NewODFilter(p, 55, nil),
		}); err != nil {
			b.Fatal(err)
		}
		regs := make([]*server.Registration, benchDeliveryQueries)
		for j := range regs {
			q, _ := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`)
			var err error
			regs[j], err = srv.Register(q, server.Options{Policy: rlog.Block, ResultBuffer: 32})
			if err != nil {
				b.Fatal(err)
			}
		}
		srv.Start()
		var wg sync.WaitGroup
		for _, reg := range regs {
			wg.Add(1)
			go func(reg *server.Registration) {
				defer wg.Done()
				r := reg.ResultsFrom(0)
				defer r.Detach()
				for {
					it, ok := r.Next(nil)
					if !ok {
						return
					}
					r.Ack(it.Seq)
				}
			}(reg)
		}
		wg.Wait()
		for _, reg := range regs {
			<-reg.Done()
			dropped += reg.Log().Dropped()
			acked += reg.Log().AckedSeq() + 1
		}
		srv.Close()
	}
	b.ReportMetric(float64(benchDeliveryFrames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(dropped)/float64(b.N), "dropped-events")
	b.ReportMetric(float64(acked)/float64(b.N), "acked-events")
}

// benchIngestFleet serves one feed to benchDeliveryQueries queries,
// either file-decoded (the SliceSource path every recorded-clip feed
// uses) or fed the same frames through the push-ingestion bridge's ring.
// The pair bounds the bridge's overhead: PushIngest must stay within 20%
// of FileIngest, or admission control is taxing the scan it feeds.
func benchIngestFleet(b *testing.B, pushFed bool) (framesPerSec, ingestDroppedPerOp float64) {
	b.Helper()
	p := video.Jackson()
	frames := video.NewStream(p, 55).Take(benchDeliveryFrames)
	var dropped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{})
		cfg := server.FeedConfig{
			Name: p.Name, Profile: p,
			Backend: filters.NewODFilter(p, 55, nil),
		}
		var push *stream.PushSource
		if pushFed {
			push = stream.NewPushSource(256, stream.PushBlock)
			cfg.Source = push
		} else {
			cfg.Source = &stream.SliceSource{Frames: frames}
		}
		if err := srv.AddFeed(cfg); err != nil {
			b.Fatal(err)
		}
		regs := make([]*server.Registration, benchDeliveryQueries)
		for j := range regs {
			q, _ := vql.Parse(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`)
			var err error
			regs[j], err = srv.Register(q, server.Options{Policy: rlog.DropOldest, ResultBuffer: 32})
			if err != nil {
				b.Fatal(err)
			}
		}
		srv.Start()
		if pushFed {
			go func() {
				for _, f := range frames {
					if err := push.Publish(f, nil); err != nil {
						return
					}
				}
				push.Close()
			}()
		}
		var wg sync.WaitGroup
		for _, reg := range regs {
			wg.Add(1)
			go func(reg *server.Registration) {
				defer wg.Done()
				for range reg.Results() {
				}
			}(reg)
		}
		wg.Wait()
		if pushFed {
			dropped += push.Dropped()
		}
		srv.Close()
	}
	return float64(benchDeliveryFrames) * float64(b.N) / b.Elapsed().Seconds(),
		float64(dropped) / float64(b.N)
}

// BenchmarkServerFileIngest is the file-decoded baseline for the push
// bridge comparison.
func BenchmarkServerFileIngest(b *testing.B) {
	fps, dropped := benchIngestFleet(b, false)
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(dropped, "ingest-dropped")
}

// BenchmarkServerPushIngest drives the same clip through a block-policy
// ingest ring. The headline check (benchjson -compare warns on it):
// frames/s within 20% of BenchmarkServerFileIngest and ingest-dropped
// stays 0 — the block policy is lossless.
func BenchmarkServerPushIngest(b *testing.B) {
	fps, dropped := benchIngestFleet(b, true)
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(dropped, "ingest-dropped")
}

// --- Micro-benchmarks: per-operation costs of the building blocks ---

// BenchmarkFilterEvaluateOD measures one OD filter forward pass
// (calibrated backend) on a dense Detrac frame.
func BenchmarkFilterEvaluateOD(b *testing.B) {
	p := video.Detrac()
	backend := filters.NewODFilter(p, 1, nil)
	f := video.NewStream(p, 2).Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.Evaluate(f)
	}
}

// BenchmarkFilterEvaluateIC measures one IC filter forward pass.
func BenchmarkFilterEvaluateIC(b *testing.B) {
	p := video.Detrac()
	backend := filters.NewICFilter(p, 1, nil)
	f := video.NewStream(p, 2).Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.Evaluate(f)
	}
}

// BenchmarkCascadeFrame measures the full per-frame cascade decision
// (filter evaluate + predicate check) for a q5-style spatial query.
func BenchmarkCascadeFrame(b *testing.B) {
	p := video.Jackson()
	q, err := vql.Parse(`SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`)
	if err != nil {
		b.Fatal(err)
	}
	plan := query.MustBind(q, p)
	backend := filters.NewODFilter(p, 1, nil)
	frames := video.NewStream(p, 3).Take(256)
	tol := query.Tolerances{Location: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := frames[i%len(frames)]
		out := backend.Evaluate(f)
		_ = plan.Where.EvalFilter(out, f.Bounds, tol)
	}
}

// BenchmarkOracleDetect measures the Mask R-CNN stand-in (ground-truth
// copy; its 200 ms cost is virtual).
func BenchmarkOracleDetect(b *testing.B) {
	p := video.Detrac()
	o := detect.NewOracle(nil)
	f := video.NewStream(p, 4).Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Detect(f)
	}
}

// BenchmarkParse measures VQL parsing throughput.
func BenchmarkParse(b *testing.B) {
	src := `SELECT COUNT(FRAMES) FROM detrac
		WHERE COUNT(*) = 3 AND car IN QUADRANT(LOWER LEFT) AND bus IN QUADRANT(UPPER LEFT)
		WINDOW HOPPING (SIZE 5000, ADVANCE BY 5000)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamNext measures synthetic frame generation.
func BenchmarkStreamNext(b *testing.B) {
	s := video.NewStream(video.Detrac(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

// BenchmarkRender measures frame rasterisation at the trained-backend
// resolution.
func BenchmarkRender(b *testing.B) {
	s := video.NewStream(video.Jackson(), 6)
	f := s.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		video.Render(f, 48, 48, 1)
	}
}

// BenchmarkRenderBatch rasterises a 32-frame window into one batch
// tensor through the rasteriser's bounded worker pool, sized to
// GOMAXPROCS — so a -cpu 2,4,8 sweep shows the kernel-dispatched
// rasteriser scaling across cores. Output is bitwise identical at every
// worker count (each frame owns a disjoint slab and its own PCG noise
// stream), so the sweep measures pure wall-clock.
func BenchmarkRenderBatch(b *testing.B) {
	frames := video.NewStream(video.Jackson(), 6).Take(32)
	batch := tensor.New(len(frames), 3, 48, 48)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		video.RenderBatchInto(batch, frames, 1, workers)
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
