package vmq_test

import (
	"strings"
	"testing"

	"vmq"
)

func TestSessionRunQuery(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 42)
	// Exact CCF: on the sparse Jackson stream the ±1 default is
	// recall-safe but unselective, exactly the trade-off the paper's
	// per-query filter choices navigate.
	sess.Tol = vmq.Tolerances{}
	q, err := vmq.ParseQuery(`SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunQuery(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesTotal != 1000 {
		t.Fatalf("FramesTotal = %d", res.FramesTotal)
	}
	if res.DetectorCalls >= res.FramesTotal {
		t.Fatal("cascade did not prune anything")
	}
	if sess.Clock.Elapsed() == 0 {
		t.Fatal("virtual clock not charged")
	}
}

func TestSessionBruteMatchesTruth(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 7)
	q, err := vmq.ParseQuery(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunQueryBrute(q, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectorCalls != 200 {
		t.Fatalf("brute force detector calls = %d", res.DetectorCalls)
	}
}

func TestSessionAggregate(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 9)
	q, err := vmq.ParseQuery(`SELECT COUNT(FRAMES) FROM jackson
		WHERE car IN QUADRANT(LOWER RIGHT)
		WINDOW HOPPING (SIZE 1500, ADVANCE BY 1500)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunAggregate(q, 0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowSize != 1500 {
		t.Fatalf("window = %d, want 1500 from the query", res.WindowSize)
	}
	if res.CV.Reduction < 1 {
		t.Fatalf("reduction = %v", res.CV.Reduction)
	}
}

func TestSessionAggregateNeedsWindow(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 9)
	q, _ := vmq.ParseQuery(`SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1`)
	if _, err := sess.RunAggregate(q, 0, 50); err == nil {
		t.Fatal("missing window accepted")
	}
	if _, err := sess.RunAggregate(q, 800, 50); err != nil {
		t.Fatalf("explicit window rejected: %v", err)
	}
}

func TestUseICFilters(t *testing.T) {
	sess := vmq.NewSession(vmq.Coral(), 3)
	sess.UseICFilters()
	if sess.Backend.Technique() != vmq.ICTechnique {
		t.Fatal("UseICFilters did not switch backend")
	}
}

func TestScoreAgainstGroundTruth(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 11)
	q, _ := vmq.ParseQuery(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`)
	plan, err := sess.Bind(q)
	if err != nil {
		t.Fatal(err)
	}
	frames := sess.Stream.Take(800)
	truth := vmq.GroundTruth(plan, frames)
	// Execute on the same frames through a fresh engine-less path: reuse
	// the session pieces by constructing a new session over the same seed.
	sess2 := vmq.NewSession(vmq.Jackson(), 11)
	res, err := sess2.RunQuery(q, 800)
	if err != nil {
		t.Fatal(err)
	}
	if acc := vmq.Score(res, truth); acc < 0.95 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestDatasets(t *testing.T) {
	ds := vmq.Datasets()
	if len(ds) != 3 {
		t.Fatalf("got %d datasets", len(ds))
	}
	names := []string{ds[0].Name, ds[1].Name, ds[2].Name}
	if strings.Join(names, ",") != "coral,jackson,detrac" {
		t.Fatalf("dataset order = %v", names)
	}
}

func TestBindErrorSurfaceted(t *testing.T) {
	sess := vmq.NewSession(vmq.Jackson(), 1)
	q, _ := vmq.ParseQuery(`SELECT FRAMES FROM coral WHERE COUNT(person) = 1`)
	if _, err := sess.RunQuery(q, 10); err == nil {
		t.Fatal("mismatched source accepted")
	}
}

func TestServerFacade(t *testing.T) {
	srv := vmq.NewServer(vmq.ServerConfig{})
	if err := srv.AddFeed(vmq.LiveFeed(vmq.Jackson(), 42)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q, err := vmq.ParseQuery(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(q, vmq.RegistrationOptions{MaxFrames: 200})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	matches := 0
	var final *vmq.Event
	for ev := range reg.Results() {
		switch ev.Kind {
		case vmq.EventMatch:
			matches++
		case vmq.EventEnd:
			e := ev
			final = &e
		}
	}
	if final == nil || final.Final == nil || final.Final.FramesTotal != 200 {
		t.Fatalf("final = %+v", final)
	}
	if matches != len(final.Final.Matched) || matches == 0 {
		t.Fatalf("streamed %d matches, final reports %d", matches, len(final.Final.Matched))
	}
	m := srv.Metrics()
	if len(m.Feeds) != 1 || len(m.Queries) != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}
