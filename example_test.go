package vmq_test

import (
	"fmt"

	"vmq"
)

// ExampleParseQuery shows the VQL dialect round-tripping through the
// parser.
func ExampleParseQuery() {
	q, err := vmq.ParseQuery(`
		select frames from jackson
		where count(car) = 1 and car left of person`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output: SELECT FRAMES FROM jackson WHERE (COUNT(car) = 1 AND car LEFT OF person)
}

// ExampleSession_RunQuery runs a monitoring query through the filter
// cascade and reports how much detector work the filters saved.
func ExampleSession_RunQuery() {
	q, _ := vmq.ParseQuery(`SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1`)
	sess := vmq.NewSession(vmq.Jackson(), 42)
	sess.Tol = vmq.Tolerances{} // exact CCF
	res, err := sess.RunQuery(q, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frames=%d detector-calls=%d matches=%d\n",
		res.FramesTotal, res.DetectorCalls, len(res.Matched))
	// Output: frames=2000 detector-calls=233 matches=233
}

// ExampleSession_RunAggregate estimates a windowed aggregate with control
// variates.
func ExampleSession_RunAggregate() {
	q, _ := vmq.ParseQuery(`SELECT COUNT(FRAMES) FROM jackson
		WHERE car IN QUADRANT(LOWER RIGHT)
		WINDOW HOPPING (SIZE 2000, ADVANCE BY 2000)`)
	sess := vmq.NewSession(vmq.Jackson(), 42)
	res, err := sess.RunAggregate(q, 0, 200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("window=%d samples=%d controls=%d reduction>1=%v\n",
		res.WindowSize, res.Samples, res.Controls, res.CV.Reduction > 1)
	// Output: window=2000 samples=200 controls=1 reduction>1=true
}
