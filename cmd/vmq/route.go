package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmq/internal/fleet"
)

// cmdRoute fronts a fleet of vmq serve shards with one query surface:
// feed names consistent-hash onto shards, POST /v1/queries routes to
// the FROM clause's owner, GET /v1/stream fans per-shard result relays
// into one merged shard-attributed NDJSON stream, and acks route back
// to the owning shard so exactly-once consumption holds fleet-wide.
// Each shard link is supervised: health probes feed a circuit breaker,
// dead shards back off with jitter, and relays resume streams from
// their last relayed event_seq when a shard restarts.
func cmdRoute(args []string, out, errw io.Writer) error {
	fs := newFlagSet("route", errw)
	addr := fs.String("addr", ":8473", "listen address")
	var shardFlags []string
	fs.Func("shard", "shard base URL, repeatable: [name=]http://host:port (unnamed shards get s0, s1, ...)", func(v string) error {
		shardFlags = append(shardFlags, v)
		return nil
	})
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default 64)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "per-shard health probe cadence")
	breakerFailures := fs.Int("breaker-failures", 3, "consecutive failures that open a shard's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "shard connection timeout")
	requestTimeout := fs.Duration("request-timeout", 5*time.Second, "bounded shard call timeout (streams are never bounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shards, err := parseShardFlags(shardFlags)
	if err != nil {
		return err
	}
	rt, err := fleet.New(fleet.Config{
		Shards:          shards,
		VNodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		DialTimeout:     *dialTimeout,
		RequestTimeout:  *requestTimeout,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name + "=" + s.URL
	}
	fmt.Fprintf(out, "vmq route: %d shard(s) [%s] on http://%s\n", len(shards), strings.Join(names, " "), ln.Addr())
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "vmq route: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// parseShardFlags turns repeated -shard values into named shards:
// "name=url" keeps the name, a bare URL gets s<index>.
func parseShardFlags(flags []string) ([]fleet.ShardInfo, error) {
	if len(flags) == 0 {
		return nil, fmt.Errorf("route: at least one -shard is required")
	}
	shards := make([]fleet.ShardInfo, 0, len(flags))
	for i, v := range flags {
		name, rawURL := fmt.Sprintf("s%d", i), v
		if eq := strings.Index(v, "="); eq > 0 && !strings.Contains(v[:eq], "/") {
			name, rawURL = v[:eq], v[eq+1:]
		}
		u, err := url.Parse(rawURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("route: -shard %q: want [name=]http://host:port", v)
		}
		shards = append(shards, fleet.ShardInfo{Name: name, URL: rawURL})
	}
	return shards, nil
}
