package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRouteShardFlagParsing(t *testing.T) {
	shards, err := parseShardFlags([]string{
		"alpha=http://10.0.0.1:8372",
		"http://10.0.0.2:8372",
		"beta=https://shard-b.example:443",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, url string }{
		{"alpha", "http://10.0.0.1:8372"},
		{"s1", "http://10.0.0.2:8372"}, // bare URLs are named by position
		{"beta", "https://shard-b.example:443"},
	}
	if len(shards) != len(want) {
		t.Fatalf("parsed %d shards, want %d", len(shards), len(want))
	}
	for i, w := range want {
		if shards[i].Name != w.name || shards[i].URL != w.url {
			t.Fatalf("shard %d = %s=%s, want %s=%s", i, shards[i].Name, shards[i].URL, w.name, w.url)
		}
	}
}

func TestRouteShardFlagErrors(t *testing.T) {
	cases := []struct {
		name  string
		flags []string
	}{
		{"no shards", nil},
		{"bad scheme", []string{"ftp://host:1"}},
		{"no host", []string{"http://"}},
		{"garbage", []string{"alpha=not a url"}},
	}
	for _, tc := range cases {
		if _, err := parseShardFlags(tc.flags); err == nil {
			t.Errorf("%s: parseShardFlags(%v) accepted, want error", tc.name, tc.flags)
		}
	}
}

// cmdRoute refuses duplicate shard names before binding a port: the
// router's constructor validates the fleet.
func TestRouteRejectsDuplicateShards(t *testing.T) {
	err := cmdRoute([]string{
		"-shard", "a=http://127.0.0.1:1",
		"-shard", "a=http://127.0.0.1:2",
	}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("cmdRoute with duplicate names: err = %v, want duplicate-shard error", err)
	}
}

// The holding handler cmd serve installs before recovery: 503 with the
// recovering status on healthz paths and the error envelope elsewhere.
func TestServeHoldingHandler(t *testing.T) {
	sw := newSwapHandler()
	for path, wantBody := range map[string]string{
		"/v1/healthz": `"status":"recovering"`,
		"/v1/queries": `"code":"recovering"`,
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		sw.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s while holding: HTTP %d, want 503", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), wantBody) {
			t.Fatalf("%s while holding: body %q, want %q", path, rec.Body.String(), wantBody)
		}
	}
}
