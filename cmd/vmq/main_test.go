package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmq/internal/server"
)

// runCmd drives the dispatcher exactly as main does, capturing output.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// An unknown subcommand prints the usage to stderr and exits non-zero.
func TestUnknownCommand(t *testing.T) {
	code, stdout, stderr := runCmd("frobnicate")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Fatalf("unexpected stdout %q", stdout)
	}
	if !strings.Contains(stderr, `unknown command "frobnicate"`) || !strings.Contains(stderr, "usage: vmq") {
		t.Fatalf("stderr = %q, want the error and the usage", stderr)
	}
}

// No arguments at all is a usage error too.
func TestNoCommand(t *testing.T) {
	code, _, stderr := runCmd()
	if code != 2 || !strings.Contains(stderr, "usage: vmq") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

// Bad flags surface as a non-zero exit without killing the process (the
// flag sets must not use ExitOnError).
func TestBadFlag(t *testing.T) {
	code, _, stderr := runCmd("query", "-definitely-not-a-flag")
	if code == 0 {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr, "flag provided but not defined") {
		t.Fatalf("stderr = %q", stderr)
	}
}

// Asking a subcommand for help prints its flags and exits 0, as the
// pre-refactor flag.ExitOnError behaviour did.
func TestSubcommandHelp(t *testing.T) {
	code, _, stderr := runCmd("query", "-h")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr, "-q string") {
		t.Fatalf("stderr = %q, want the flag listing", stderr)
	}
}

// A missing -q is a command error with exit code 1.
func TestQueryMissingFlag(t *testing.T) {
	code, _, stderr := runCmd("query")
	if code != 1 || !strings.Contains(stderr, "-q is required") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

// The query happy path on a small synthetic stream reports the cascade
// counters.
func TestQueryHappyPath(t *testing.T) {
	code, stdout, stderr := runCmd("query",
		"-q", "SELECT FRAMES FROM jackson WHERE COUNT(car) = 1",
		"-frames", "200")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"query: SELECT FRAMES FROM jackson", "frames: 200", "filter passed:", "virtual pipeline time:"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// The windows happy path estimates consecutive hopping windows.
func TestWindowsHappyPath(t *testing.T) {
	code, stdout, stderr := runCmd("windows",
		"-q", "SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1 WINDOW HOPPING (SIZE 150, ADVANCE BY 150)",
		"-n", "2", "-samples", "30")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "window  0:") || !strings.Contains(stdout, "window  1:") {
		t.Fatalf("stdout missing window estimates:\n%s", stdout)
	}
}

// serve's feed parsing rejects unknown datasets and assembles real
// servers for known ones; the assembled server speaks the HTTP API end
// to end.
func TestServeBuildServer(t *testing.T) {
	if _, err := buildServer(serveConfig{feeds: "jackson,nosuch", seed: 1, frames: 100}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := buildServer(serveConfig{feeds: "", seed: 1}); err == nil {
		t.Fatal("empty feed list accepted")
	}
	if _, err := buildServer(serveConfig{feeds: "jackson", seed: 1, policy: "nonsense"}); err == nil {
		t.Fatal("unknown delivery policy accepted")
	}
	srv, err := buildServer(serveConfig{
		feeds: "jackson, detrac", seed: 1, frames: 120,
		policy: "drop-oldest", resultLog: 256, maxQueries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/queries", "text/plain",
		strings.NewReader("SELECT FRAMES FROM detrac WHERE COUNT(car) >= 3"))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID   string `json:"id"`
		Feed string `json:"feed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Feed != "detrac" {
		t.Fatalf("created = %+v", created)
	}
	resp, err = ts.Client().Get(ts.URL + "/queries/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawEnd := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		if ev.Kind == server.EventEnd {
			sawEnd = true
			if ev.Final == nil || ev.Final.FramesTotal != 120 {
				t.Fatalf("final = %+v, want a 120-frame run", ev.Final)
			}
		}
	}
	if !sawEnd {
		t.Fatal("result stream ended without an end event")
	}
}

// A cancelled context (the SIGINT/SIGTERM path) shuts serve down
// gracefully: the in-flight result stream sees its query end with the
// feed_drained reason — not a severed connection — and runServe returns
// cleanly once everything is drained and closed.
func TestServeGracefulShutdown(t *testing.T) {
	srv, err := buildServer(serveConfig{feeds: "jackson", seed: 1, policy: "block"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out strings.Builder
	done := make(chan error, 1)
	hs, errc := serveHolding(ln)
	go func() { done <- runServe(ctx, srv, hs, errc, ln.Addr().String(), "jackson", 10*time.Second, &out) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to serve.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/queries", "text/plain",
		strings.NewReader("SELECT FRAMES FROM jackson WHERE COUNT(car) = 1"))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	finals := make(chan server.Event, 1)
	go func() {
		resp, err := http.Get(base + "/queries/" + created.ID + "/results")
		if err != nil {
			t.Error(err)
			finals <- server.Event{}
			return
		}
		defer resp.Body.Close()
		var final server.Event
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var ev server.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Error(err)
				break
			}
			if ev.Kind == server.EventEnd {
				final = ev
			}
		}
		finals <- final
	}()

	// Let the unbounded feed produce before the "signal" lands.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("runServe: %v", err)
	}
	final := <-finals
	if final.Kind != server.EventEnd {
		t.Fatal("result stream severed without an end event during shutdown")
	}
	if final.Reason != server.EndReasonFeedDrained {
		t.Fatalf("end reason %q, want %q", final.Reason, server.EndReasonFeedDrained)
	}
	if !strings.Contains(out.String(), "drained and closed") {
		t.Fatalf("shutdown log missing: %q", out.String())
	}
}
