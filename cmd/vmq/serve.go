package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"vmq"
	"vmq/internal/video"
)

// cmdServe hosts the continuous-query server over one or more synthetic
// live feeds and blocks serving its HTTP API (canonical under /v1; the
// unversioned paths remain as deprecated aliases for one release):
//
//	POST   /v1/queries              register a VQL query (text or JSON body)
//	GET    /v1/queries              list registered queries with delivery telemetry
//	GET    /v1/queries/{id}         one query's status row
//	GET    /v1/queries/{id}/results stream results as NDJSON (or WebSocket with in-band acks)
//	POST   /v1/queries/{id}/ack     acknowledge consumption through a sequence
//	GET    /v1/queries/{id}/history page spilled/ring history without attaching
//	DELETE /v1/queries/{id}         unregister
//	POST   /v1/feeds                create a feed at runtime (push or sim)
//	GET    /v1/feeds                list feeds with lifecycle state
//	POST   /v1/feeds/{name}/drain   drain a feed gracefully
//	DELETE /v1/feeds/{name}         drain, wait for end events, remove
//	POST   /v1/feeds/{name}/frames  publish NDJSON frames into a push feed
//	GET    /v1/feeds/{name}/publish WebSocket publisher bridge
//	GET    /v1/metrics              frames/sec, selectivity, recall, queues
//
// SIGINT or SIGTERM shuts down gracefully: the listener stops accepting,
// every feed drains so in-flight queries end with typed end events and
// their consumers finish, result-log spills are flushed, and the process
// exits — all bounded by -drain-timeout.
func cmdServe(args []string, out, errw io.Writer) error {
	fs := newFlagSet("serve", errw)
	addr := fs.String("addr", ":8372", "listen address")
	feeds := fs.String("feeds", "jackson", "comma-separated dataset feeds (coral, jackson, detrac)")
	seed := fs.Uint64("seed", 42, "stream seed")
	fps := fs.Float64("fps", 30, "per-feed frame rate (0 = as fast as consumers allow)")
	frames := fs.Int("frames", 0, "stop each feed after this many frames (0 = unbounded)")
	policy := fs.String("policy", "block", "default delivery policy: block, drop-oldest, sample-under-pressure")
	resultLog := fs.Int("result-log", 0, "result-log ring capacity per query, in events (0 = default 64)")
	maxQueries := fs.Int("max-queries", 0, "registration limit per feed (0 = unlimited)")
	spillDir := fs.String("spill-dir", "", "directory for server-managed result spills requested per query (default: under the OS temp dir)")
	spillRetain := fs.Int64("spill-retain", 0, "per-query on-disk spill retention budget in bytes (0 = default 64MiB, -1 = unbounded)")
	stateDir := fs.String("state-dir", "", "durable state directory: feeds and queries are journalled and recovered across restarts (empty = in-memory only)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for draining feeds and flushing results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Bind and serve the holding handler before recovery: on a durable
	// restart the port answers 503 {"status":"recovering"} while the
	// manifest replays, so probers (and a fleet router) see readiness
	// honestly instead of connection refused.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs, errc := serveHolding(ln)
	srv, err := buildServer(serveConfig{
		feeds: *feeds, seed: *seed, fps: *fps, frames: *frames,
		policy: *policy, resultLog: *resultLog, maxQueries: *maxQueries,
		spillDir: *spillDir, spillRetain: *spillRetain, stateDir: *stateDir,
	})
	if err != nil {
		hs.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, srv, hs, errc, ln.Addr().String(), *feeds, *drainTimeout, out)
}

// swapHandler serves 503 {"status":"recovering"} until Set swaps in the
// real API — the readiness gate between binding the port and finishing
// manifest recovery.
type swapHandler struct {
	h atomic.Value // holds hbox (atomic.Value wants one concrete type)
}

// hbox boxes handlers of differing concrete types for atomic.Value.
type hbox struct{ h http.Handler }

func newSwapHandler() *swapHandler {
	sw := &swapHandler{}
	sw.h.Store(hbox{h: http.HandlerFunc(serveRecovering)})
	return sw
}

func (sw *swapHandler) Set(h http.Handler) { sw.h.Store(hbox{h: h}) }
func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.h.Load().(hbox).h.ServeHTTP(w, r)
}

// serveRecovering is the holding response: healthz paths get the status
// body a readiness probe expects, everything else the error envelope.
func serveRecovering(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	if strings.HasSuffix(r.URL.Path, "/healthz") {
		io.WriteString(w, "{\"status\":\"recovering\"}\n")
		return
	}
	io.WriteString(w, "{\"error\":{\"code\":\"recovering\",\"message\":\"server is recovering; retry shortly\"}}\n")
}

// serveHolding starts the HTTP server on ln behind a swapHandler.
// ReadHeaderTimeout bounds how long an idle connection may sit in a
// half-sent request (slowloris); IdleTimeout reclaims keep-alive
// connections. No WriteTimeout: result streams are long-lived by
// design and must not be severed by a wall clock.
func serveHolding(ln net.Listener) (*http.Server, <-chan error) {
	hs := &http.Server{
		Handler:           newSwapHandler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	return hs, errc
}

// runServe swaps the real API into the already-serving hs, starts the
// feeds, and blocks until ctx is cancelled (the signal path), then
// shuts down gracefully: listener first, feeds drained with their end
// events delivered, server closed. Split from cmdServe so tests can
// drive the shutdown with a context instead of a signal.
func runServe(ctx context.Context, srv *vmq.Server, hs *http.Server, errc <-chan error, addr, feeds string, drainTimeout time.Duration, out io.Writer) error {
	if sw, ok := hs.Handler.(*swapHandler); ok {
		sw.Set(srv.Handler())
	}
	srv.Start()
	fmt.Fprintf(out, "vmq serve: feeds [%s] on http://%s (try: curl -N -d 'SELECT FRAMES FROM jackson WHERE COUNT(car) = 1' http://%s/queries)\n",
		feeds, addr, addr)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "vmq serve: shutting down — draining feeds (budget %s)\n", drainTimeout)
	// Stop accepting and let in-flight requests (result streams included)
	// finish within the budget; feeds drain concurrently so those streams
	// see their end events rather than a severed connection.
	httpCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Shutdown(drainTimeout)
	}()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(out, "vmq serve: http shutdown: %v\n", err)
	}
	<-done
	fmt.Fprintln(out, "vmq serve: drained and closed")
	return nil
}

// serveConfig carries cmdServe's flags into buildServer.
type serveConfig struct {
	feeds       string
	seed        uint64
	fps         float64
	frames      int
	policy      string
	resultLog   int
	maxQueries  int
	spillDir    string
	spillRetain int64
	stateDir    string
}

// buildServer assembles a server over the named synthetic feeds — split
// from cmdServe so tests can exercise feed parsing and construction
// without binding a socket.
func buildServer(sc serveConfig) (*vmq.Server, error) {
	pol, ok := vmq.ParseDeliveryPolicy(sc.policy)
	if !ok {
		return nil, fmt.Errorf("serve: unknown -policy %q (try: block, drop-oldest, sample-under-pressure)", sc.policy)
	}
	cfg := vmq.ServerConfig{
		DefaultPolicy:     pol,
		ResultBuffer:      sc.resultLog,
		MaxQueriesPerFeed: sc.maxQueries,
		SpillDir:          sc.spillDir,
		Spill:             vmq.SpillConfig{RetainBytes: sc.spillRetain},
		StateDir:          sc.stateDir,
	}
	names := strings.Split(sc.feeds, ",")
	if len(names) == 0 || sc.feeds == "" {
		return nil, fmt.Errorf("serve: -feeds must name at least one dataset")
	}
	if sc.stateDir != "" {
		// Durable mode: recover whatever the manifest holds, then ensure
		// the flag-named feeds exist (journalled as specs, so the next
		// restart re-creates them too). A feed already recovered from the
		// manifest keeps its journalled definition.
		srv, err := vmq.RecoverServer(cfg)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if _, ok := video.ProfileByName(name); !ok {
				srv.Close()
				return nil, fmt.Errorf("serve: unknown dataset %q (try: coral, jackson, detrac)", name)
			}
			spec := vmq.FeedSpec{
				Name: name, Profile: name, Source: "sim",
				Seed: sc.seed, FPS: sc.fps, MaxFrames: sc.frames,
			}
			if err := srv.CreateFeedSpec(spec); err != nil && !errors.Is(err, vmq.ErrFeedExists) {
				srv.Close()
				return nil, err
			}
		}
		return srv, nil
	}
	srv := vmq.NewServer(cfg)
	for _, name := range names {
		name = strings.TrimSpace(name)
		p, ok := video.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown dataset %q (try: coral, jackson, detrac)", name)
		}
		cfg := vmq.LiveFeed(p, sc.seed)
		if sc.fps > 0 {
			cfg.FrameInterval = time.Duration(float64(time.Second) / sc.fps)
		}
		cfg.MaxFrames = sc.frames
		if err := srv.AddFeed(cfg); err != nil {
			return nil, err
		}
	}
	return srv, nil
}
