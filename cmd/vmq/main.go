// Command vmq runs video monitoring queries and the paper's experiment
// suite from the command line.
//
// Usage:
//
//	vmq datasets
//	vmq query   -q 'SELECT FRAMES FROM jackson WHERE COUNT(car) = 1' [-frames N] [-ctol K] [-ltol K] [-brute]
//	vmq aggregate -q 'SELECT COUNT(FRAMES) FROM jackson WHERE car LEFT OF person' [-window N] [-samples K]
//	vmq windows -q 'SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1 WINDOW HOPPING (SIZE 1000, ADVANCE BY 1000)' [-n N] [-samples K]
//	vmq experiment -name tableII|fig7|fig11|fig15|tableIII|tableIV|constraint|branch|anomaly|all [-frames N] [-reps N]
//	vmq train   [-dataset jackson] [-frames N] [-epochs N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"vmq/internal/experiments"
	"vmq/internal/filters"
	"vmq/internal/metrics"
	"vmq/internal/simclock"
	"vmq/internal/video"
	"vmq/internal/vql"

	"vmq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datasets":
		err = cmdDatasets()
	case "query":
		err = cmdQuery(os.Args[2:])
	case "aggregate":
		err = cmdAggregate(os.Args[2:])
	case "windows":
		err = cmdWindows(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "vmq: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmq: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vmq <command> [flags]

commands:
  datasets     list the benchmark dataset profiles (Table II)
  query        run a monitoring query through the filter cascade
  aggregate    run a windowed aggregate with control variates
  windows      run a windowed aggregate over n consecutive windows
  experiment   regenerate a paper table/figure (tableII, fig7, fig11,
               fig15, tableIII, tableIV, constraint, branch, anomaly, all)
  train        train a real CNN filter and report its accuracy`)
}

func cmdDatasets() error {
	rows := experiments.TableII(experiments.Config{Frames: 3000})
	fmt.Print(experiments.FormatTableII(rows))
	return nil
}

func profileOf(q *vql.Query) (video.Profile, error) {
	p, ok := video.ProfileByName(q.Source)
	if !ok {
		return video.Profile{}, fmt.Errorf("unknown dataset %q (try: coral, jackson, detrac)", q.Source)
	}
	return p, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	src := fs.String("q", "", "VQL query text")
	frames := fs.Int("frames", 3000, "number of stream frames to process")
	ctol := fs.Int("ctol", 1, "count tolerance (0=exact CCF, 1=CCF-1, 2=CCF-2)")
	ltol := fs.Int("ltol", 1, "location tolerance (0=exact CLF, 1=CLF-1, 2=CLF-2)")
	seed := fs.Uint64("seed", 42, "stream seed")
	brute := fs.Bool("brute", false, "also run the brute-force baseline for comparison")
	explain := fs.Bool("explain", false, "print the execution plan and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("query: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	sess.Tol = vmq.Tolerances{Count: *ctol, Location: *ltol}

	plan, err := sess.Bind(q)
	if err != nil {
		return err
	}
	if *explain {
		fmt.Print(plan.Describe(sess.Backend, sess.Tol))
		return nil
	}
	framesSlice := sess.Stream.Take(*frames)
	truth := vmq.GroundTruth(plan, framesSlice)
	trueCount := 0
	for _, t := range truth {
		if t {
			trueCount++
		}
	}

	// Re-run over a fresh identical stream so the engine sees the frames.
	sess2 := vmq.NewSession(p, *seed)
	sess2.Tol = sess.Tol
	res, err := sess2.RunQuery(q, *frames)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("frames: %d  true frames: %d  matched: %d  accuracy: %.3f\n",
		res.FramesTotal, trueCount, len(res.Matched), vmq.Score(res, truth))
	fmt.Printf("filter passed: %d (selectivity %.3f)  detector calls: %d\n",
		res.FilterPassed, res.Selectivity(), res.DetectorCalls)
	fmt.Printf("virtual pipeline time: %v\n", res.VirtualTime)
	if *brute {
		sess3 := vmq.NewSession(p, *seed)
		bres, err := sess3.RunQueryBrute(q, *frames)
		if err != nil {
			return err
		}
		fmt.Printf("brute force: %v (%0.1fx speedup)\n",
			bres.VirtualTime, bres.VirtualTime.Seconds()/res.VirtualTime.Seconds())
	}
	return nil
}

func cmdAggregate(args []string) error {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	src := fs.String("q", "", "VQL aggregate query text")
	window := fs.Int("window", 5000, "window size when the query has no WINDOW clause")
	samples := fs.Int("samples", 300, "detector samples per window")
	seed := fs.Uint64("seed", 42, "stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("aggregate: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	res, err := sess.RunAggregate(q, *window, *samples)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("window: %d frames, %d detector samples, %d control variate(s)\n",
		res.WindowSize, res.Samples, res.Controls)
	fmt.Printf("plain estimate:   %.4f/frame (stderr %.4f)\n", res.Plain.Mean, res.Plain.StdErr())
	fmt.Printf("CV estimate:      %.4f/frame (variance reduced %.1fx, beta %v)\n",
		res.CV.Estimate, res.CV.Reduction, res.CV.Beta)
	fmt.Printf("ground truth:     %.4f/frame\n", res.TruePerFrameMean)
	fmt.Printf("per-sample cost:  %v (filter + detector)\n", res.VirtualTimePerSample)
	if q.Select.Kind == vql.SelectFrameCount {
		fmt.Printf("window total:     %.1f frames estimated, %.1f true\n",
			res.CV.Estimate*float64(res.WindowSize), res.TruePerFrameMean*float64(res.WindowSize))
	}
	return nil
}

func cmdWindows(args []string) error {
	fs := flag.NewFlagSet("windows", flag.ExitOnError)
	src := fs.String("q", "", "VQL aggregate query text (must carry a WINDOW clause)")
	n := fs.Int("n", 5, "number of consecutive windows to estimate")
	samples := fs.Int("samples", 200, "detector samples per window")
	seed := fs.Uint64("seed", 42, "stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("windows: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	results, err := sess.RunWindows(q, *n, *samples)
	if err != nil && !errors.Is(err, vmq.ErrStreamExhausted) {
		return err
	}
	fmt.Printf("query: %s\n", q)
	for i, r := range results {
		fmt.Printf("window %2d: CV estimate %8.4f/frame (plain %8.4f, truth %8.4f, var reduced %.1fx)\n",
			i, r.CV.Estimate, r.Plain.Mean, r.TruePerFrameMean, r.CV.Reduction)
	}
	if err != nil {
		fmt.Printf("source exhausted after %d of %d windows\n", len(results), *n)
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "all", "experiment name")
	frames := fs.Int("frames", 0, "frames per dataset (0 = paper test-split size)")
	reps := fs.Int("reps", 0, "aggregate repetitions (0 = 20)")
	seed := fs.Uint64("seed", 20, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Frames: *frames, Seed: *seed, Repetitions: *reps}
	run := func(n string) error {
		switch n {
		case "tableII":
			fmt.Print(experiments.FormatTableII(experiments.TableII(cfg)))
		case "fig7":
			fmt.Print(experiments.FormatFigure7(experiments.Figure7(cfg)))
		case "fig11":
			fmt.Print(experiments.FormatFigure11(experiments.Figure11(cfg)))
		case "fig15":
			fmt.Print(experiments.FormatFigure15(experiments.Figure15(cfg)))
		case "tableIII":
			fmt.Print(experiments.FormatTableIII(experiments.TableIII(cfg)))
		case "tableIV":
			fmt.Print(experiments.FormatTableIV(experiments.TableIV(cfg)))
		case "tableIVhf":
			fmt.Print(experiments.FormatTableIV(experiments.TableIVHighFidelity(cfg)))
		case "constraint":
			fmt.Print(experiments.FormatConstraintAccuracy(experiments.ConstraintAccuracy(cfg)))
		case "branch":
			fmt.Print(experiments.FormatBranchTradeoff(experiments.BranchTradeoff(cfg)))
		case "anomaly":
			fmt.Print(experiments.FormatUnexpectedObjects(experiments.UnexpectedObjects(cfg)))
		case "planner":
			fmt.Print(experiments.FormatPlanner(experiments.Planner(cfg)))
		case "trained":
			rows, sweep := experiments.TrainedComparison(cfg)
			fmt.Print(experiments.FormatTrainedComparison(rows, sweep))
		case "samplers":
			fmt.Print(experiments.FormatSamplerAblation(experiments.SamplerAblation(cfg)))
		default:
			return fmt.Errorf("unknown experiment %q", n)
		}
		return nil
	}
	if *name == "all" {
		for _, n := range []string{"tableII", "fig7", "fig11", "fig15", "tableIII", "tableIV", "tableIVhf", "constraint", "branch", "anomaly", "planner", "samplers", "trained"} {
			if err := run(n); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return run(*name)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataset := fs.String("dataset", "jackson", "dataset profile")
	frames := fs.Int("frames", 300, "training frames")
	epochs := fs.Int("epochs", 3, "training epochs")
	img := fs.Int("img", 32, "rasterisation size (pixels)")
	test := fs.Int("test", 150, "evaluation frames")
	tech := fs.String("tech", "ic", "filter family: ic or od")
	save := fs.String("save", "", "write trained weights to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, ok := video.ProfileByName(*dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	family := filters.IC
	if *tech == "od" {
		family = filters.OD
	}
	fmt.Printf("training %s filter on %s (%d frames, %d epochs, %dx%d px)...\n",
		family, p.Name, *frames, *epochs, *img, *img)
	backend := filters.TrainFilter(family, p, filters.TrainedConfig{
		Frames: *frames, Epochs: *epochs, Img: *img, Channels: 16, Seed: 1,
	}, simclock.New())

	s := video.NewStream(p, 999)
	var total metrics.CountAccuracy
	perClass := map[video.Class]*metrics.CountAccuracy{}
	for _, cm := range p.Classes {
		perClass[cm.Class] = &metrics.CountAccuracy{}
	}
	for i := 0; i < *test; i++ {
		f := s.Next()
		out := backend.Evaluate(f)
		total.Observe(f.Count()-len(p.Static), out.Total)
		for _, cm := range p.Classes {
			perClass[cm.Class].Observe(f.CountClass(cm.Class), out.Counts[cm.Class])
		}
	}
	fmt.Printf("total count:  %s\n", total.String())
	for _, cm := range p.Classes {
		fmt.Printf("%-12s %s\n", cm.Class.String()+":", perClass[cm.Class].String())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backend.SaveWeights(f); err != nil {
			return err
		}
		fmt.Printf("weights saved to %s\n", *save)
	}
	return nil
}
