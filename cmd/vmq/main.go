// Command vmq runs video monitoring queries and the paper's experiment
// suite from the command line.
//
// Usage:
//
//	vmq datasets
//	vmq query   -q 'SELECT FRAMES FROM jackson WHERE COUNT(car) = 1' [-frames N] [-ctol K] [-ltol K] [-brute]
//	vmq aggregate -q 'SELECT COUNT(FRAMES) FROM jackson WHERE car LEFT OF person' [-window N] [-samples K]
//	vmq windows -q 'SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1 WINDOW HOPPING (SIZE 1000, ADVANCE BY 1000)' [-n N] [-samples K]
//	vmq serve   [-addr :8372] [-feeds jackson,detrac] [-fps 30] [-seed 42] [-policy block|drop-oldest|sample-under-pressure] [-result-log N] [-max-queries N]
//	vmq route   [-addr :8473] -shard http://a:8372 -shard http://b:8372 [-vnodes N] [-probe-interval D] [-breaker-failures N] [-breaker-cooldown D]
//	vmq experiment -name tableII|fig7|fig11|fig15|tableIII|tableIV|constraint|branch|anomaly|all [-frames N] [-reps N]
//	vmq train   [-dataset jackson] [-frames N] [-epochs N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"vmq/internal/experiments"
	"vmq/internal/filters"
	"vmq/internal/metrics"
	"vmq/internal/simclock"
	"vmq/internal/video"
	"vmq/internal/vql"

	"vmq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a command line and returns the process exit code. It is
// the testable core of main: commands print to out, diagnostics to errw.
func run(argv []string, out, errw io.Writer) int {
	if len(argv) < 1 {
		usage(errw)
		return 2
	}
	var err error
	switch argv[0] {
	case "datasets":
		err = cmdDatasets(out)
	case "query":
		err = cmdQuery(argv[1:], out, errw)
	case "aggregate":
		err = cmdAggregate(argv[1:], out, errw)
	case "windows":
		err = cmdWindows(argv[1:], out, errw)
	case "serve":
		err = cmdServe(argv[1:], out, errw)
	case "route":
		err = cmdRoute(argv[1:], out, errw)
	case "experiment":
		err = cmdExperiment(argv[1:], out, errw)
	case "train":
		err = cmdTrain(argv[1:], out, errw)
	case "-h", "--help", "help":
		usage(errw)
	default:
		fmt.Fprintf(errw, "vmq: unknown command %q\n", argv[0])
		usage(errw)
		return 2
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // the user asked for help; match flag.ExitOnError's success exit
		}
		fmt.Fprintf(errw, "vmq: %v\n", err)
		return 1
	}
	return 0
}

func usage(errw io.Writer) {
	fmt.Fprintln(errw, `usage: vmq <command> [flags]

commands:
  datasets     list the benchmark dataset profiles (Table II)
  query        run a monitoring query through the filter cascade
  aggregate    run a windowed aggregate with control variates
  windows      run a windowed aggregate over n consecutive windows
  serve        host continuous queries over live feeds (HTTP API)
  route        front a fleet of serve shards with one query surface
               (consistent-hash feed routing, merged result streams)
  experiment   regenerate a paper table/figure (tableII, fig7, fig11,
               fig15, tableIII, tableIV, constraint, branch, anomaly, all)
  train        train a real CNN filter and report its accuracy`)
}

// newFlagSet builds a flag set that reports parse errors instead of
// exiting the process, so run stays testable.
func newFlagSet(name string, errw io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(errw)
	return fs
}

func cmdDatasets(out io.Writer) error {
	rows := experiments.TableII(experiments.Config{Frames: 3000})
	fmt.Fprint(out, experiments.FormatTableII(rows))
	return nil
}

func profileOf(q *vql.Query) (video.Profile, error) {
	p, ok := video.ProfileByName(q.Source)
	if !ok {
		return video.Profile{}, fmt.Errorf("unknown dataset %q (try: coral, jackson, detrac)", q.Source)
	}
	return p, nil
}

func cmdQuery(args []string, out, errw io.Writer) error {
	fs := newFlagSet("query", errw)
	src := fs.String("q", "", "VQL query text")
	frames := fs.Int("frames", 3000, "number of stream frames to process")
	ctol := fs.Int("ctol", 1, "count tolerance (0=exact CCF, 1=CCF-1, 2=CCF-2)")
	ltol := fs.Int("ltol", 1, "location tolerance (0=exact CLF, 1=CLF-1, 2=CLF-2)")
	seed := fs.Uint64("seed", 42, "stream seed")
	brute := fs.Bool("brute", false, "also run the brute-force baseline for comparison")
	explain := fs.Bool("explain", false, "print the execution plan and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("query: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	sess.Tol = vmq.Tolerances{Count: *ctol, Location: *ltol}

	plan, err := sess.Bind(q)
	if err != nil {
		return err
	}
	if *explain {
		fmt.Fprint(out, plan.Describe(sess.Backend, sess.Tol))
		return nil
	}
	framesSlice := sess.Stream.Take(*frames)
	truth := vmq.GroundTruth(plan, framesSlice)
	trueCount := 0
	for _, t := range truth {
		if t {
			trueCount++
		}
	}

	// Re-run over a fresh identical stream so the engine sees the frames.
	sess2 := vmq.NewSession(p, *seed)
	sess2.Tol = sess.Tol
	res, err := sess2.RunQuery(q, *frames)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "query: %s\n", q)
	fmt.Fprintf(out, "frames: %d  true frames: %d  matched: %d  accuracy: %.3f\n",
		res.FramesTotal, trueCount, len(res.Matched), vmq.Score(res, truth))
	fmt.Fprintf(out, "filter passed: %d (selectivity %.3f)  detector calls: %d\n",
		res.FilterPassed, res.Selectivity(), res.DetectorCalls)
	fmt.Fprintf(out, "virtual pipeline time: %v\n", res.VirtualTime)
	if *brute {
		sess3 := vmq.NewSession(p, *seed)
		bres, err := sess3.RunQueryBrute(q, *frames)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "brute force: %v (%0.1fx speedup)\n",
			bres.VirtualTime, bres.VirtualTime.Seconds()/res.VirtualTime.Seconds())
	}
	return nil
}

func cmdAggregate(args []string, out, errw io.Writer) error {
	fs := newFlagSet("aggregate", errw)
	src := fs.String("q", "", "VQL aggregate query text")
	window := fs.Int("window", 5000, "window size when the query has no WINDOW clause")
	samples := fs.Int("samples", 300, "detector samples per window")
	seed := fs.Uint64("seed", 42, "stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("aggregate: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	res, err := sess.RunAggregate(q, *window, *samples)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "query: %s\n", q)
	fmt.Fprintf(out, "window: %d frames, %d detector samples, %d control variate(s)\n",
		res.WindowSize, res.Samples, res.Controls)
	fmt.Fprintf(out, "plain estimate:   %.4f/frame (stderr %.4f)\n", res.Plain.Mean, res.Plain.StdErr())
	fmt.Fprintf(out, "CV estimate:      %.4f/frame (variance reduced %.1fx, beta %v)\n",
		res.CV.Estimate, res.CV.Reduction, res.CV.Beta)
	fmt.Fprintf(out, "ground truth:     %.4f/frame\n", res.TruePerFrameMean)
	fmt.Fprintf(out, "per-sample cost:  %v (filter + detector)\n", res.VirtualTimePerSample)
	if q.Select.Kind == vql.SelectFrameCount {
		fmt.Fprintf(out, "window total:     %.1f frames estimated, %.1f true\n",
			res.CV.Estimate*float64(res.WindowSize), res.TruePerFrameMean*float64(res.WindowSize))
	}
	return nil
}

func cmdWindows(args []string, out, errw io.Writer) error {
	fs := newFlagSet("windows", errw)
	src := fs.String("q", "", "VQL aggregate query text (must carry a WINDOW clause)")
	n := fs.Int("n", 5, "number of consecutive windows to estimate")
	samples := fs.Int("samples", 200, "detector samples per window")
	seed := fs.Uint64("seed", 42, "stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("windows: -q is required")
	}
	q, err := vmq.ParseQuery(*src)
	if err != nil {
		return err
	}
	p, err := profileOf(q)
	if err != nil {
		return err
	}
	sess := vmq.NewSession(p, *seed)
	results, err := sess.RunWindows(q, *n, *samples)
	if err != nil && !errors.Is(err, vmq.ErrStreamExhausted) {
		return err
	}
	fmt.Fprintf(out, "query: %s\n", q)
	for i, r := range results {
		fmt.Fprintf(out, "window %2d: CV estimate %8.4f/frame (plain %8.4f, truth %8.4f, var reduced %.1fx)\n",
			i, r.CV.Estimate, r.Plain.Mean, r.TruePerFrameMean, r.CV.Reduction)
	}
	if err != nil {
		fmt.Fprintf(out, "source exhausted after %d of %d windows\n", len(results), *n)
	}
	return nil
}

func cmdExperiment(args []string, out, errw io.Writer) error {
	fs := newFlagSet("experiment", errw)
	name := fs.String("name", "all", "experiment name")
	frames := fs.Int("frames", 0, "frames per dataset (0 = paper test-split size)")
	reps := fs.Int("reps", 0, "aggregate repetitions (0 = 20)")
	seed := fs.Uint64("seed", 20, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Frames: *frames, Seed: *seed, Repetitions: *reps}
	run := func(n string) error {
		switch n {
		case "tableII":
			fmt.Fprint(out, experiments.FormatTableII(experiments.TableII(cfg)))
		case "fig7":
			fmt.Fprint(out, experiments.FormatFigure7(experiments.Figure7(cfg)))
		case "fig11":
			fmt.Fprint(out, experiments.FormatFigure11(experiments.Figure11(cfg)))
		case "fig15":
			fmt.Fprint(out, experiments.FormatFigure15(experiments.Figure15(cfg)))
		case "tableIII":
			fmt.Fprint(out, experiments.FormatTableIII(experiments.TableIII(cfg)))
		case "tableIV":
			fmt.Fprint(out, experiments.FormatTableIV(experiments.TableIV(cfg)))
		case "tableIVhf":
			fmt.Fprint(out, experiments.FormatTableIV(experiments.TableIVHighFidelity(cfg)))
		case "constraint":
			fmt.Fprint(out, experiments.FormatConstraintAccuracy(experiments.ConstraintAccuracy(cfg)))
		case "branch":
			fmt.Fprint(out, experiments.FormatBranchTradeoff(experiments.BranchTradeoff(cfg)))
		case "anomaly":
			fmt.Fprint(out, experiments.FormatUnexpectedObjects(experiments.UnexpectedObjects(cfg)))
		case "planner":
			fmt.Fprint(out, experiments.FormatPlanner(experiments.Planner(cfg)))
		case "trained":
			rows, sweep := experiments.TrainedComparison(cfg)
			fmt.Fprint(out, experiments.FormatTrainedComparison(rows, sweep))
		case "samplers":
			fmt.Fprint(out, experiments.FormatSamplerAblation(experiments.SamplerAblation(cfg)))
		default:
			return fmt.Errorf("unknown experiment %q", n)
		}
		return nil
	}
	if *name == "all" {
		for _, n := range []string{"tableII", "fig7", "fig11", "fig15", "tableIII", "tableIV", "tableIVhf", "constraint", "branch", "anomaly", "planner", "samplers", "trained"} {
			if err := run(n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return run(*name)
}

func cmdTrain(args []string, out, errw io.Writer) error {
	fs := newFlagSet("train", errw)
	dataset := fs.String("dataset", "jackson", "dataset profile")
	frames := fs.Int("frames", 300, "training frames")
	epochs := fs.Int("epochs", 3, "training epochs")
	img := fs.Int("img", 32, "rasterisation size (pixels)")
	test := fs.Int("test", 150, "evaluation frames")
	tech := fs.String("tech", "ic", "filter family: ic or od")
	save := fs.String("save", "", "write trained weights to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, ok := video.ProfileByName(*dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	family := filters.IC
	if *tech == "od" {
		family = filters.OD
	}
	fmt.Fprintf(out, "training %s filter on %s (%d frames, %d epochs, %dx%d px)...\n",
		family, p.Name, *frames, *epochs, *img, *img)
	backend := filters.TrainFilter(family, p, filters.TrainedConfig{
		Frames: *frames, Epochs: *epochs, Img: *img, Channels: 16, Seed: 1,
	}, simclock.New())

	s := video.NewStream(p, 999)
	var total metrics.CountAccuracy
	perClass := map[video.Class]*metrics.CountAccuracy{}
	for _, cm := range p.Classes {
		perClass[cm.Class] = &metrics.CountAccuracy{}
	}
	for i := 0; i < *test; i++ {
		f := s.Next()
		est := backend.Evaluate(f)
		total.Observe(f.Count()-len(p.Static), est.Total)
		for _, cm := range p.Classes {
			perClass[cm.Class].Observe(f.CountClass(cm.Class), est.Counts[cm.Class])
		}
	}
	fmt.Fprintf(out, "total count:  %s\n", total.String())
	for _, cm := range p.Classes {
		fmt.Fprintf(out, "%-12s %s\n", cm.Class.String()+":", perClass[cm.Class].String())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backend.SaveWeights(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "weights saved to %s\n", *save)
	}
	return nil
}
