package track

import (
	"testing"

	"vmq/internal/detect"
	"vmq/internal/geom"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

func det(class video.Class, x float64) detect.Detection {
	return detect.Detection{Class: class, Box: geom.Rect{X0: x, Y0: 100, X1: x + 60, Y1: 140}}
}

func TestTrackerStableIDs(t *testing.T) {
	tr := New()
	// A car moving right 5px/frame keeps its id.
	prev := tr.Update([]detect.Detection{det(video.Car, 10)})
	if len(prev) != 1 || prev[0] != 0 {
		t.Fatalf("first assignment = %v", prev)
	}
	for i := 1; i <= 20; i++ {
		ids := tr.Update([]detect.Detection{det(video.Car, 10+float64(i)*5)})
		if ids[0] != 0 {
			t.Fatalf("frame %d: id changed to %d", i, ids[0])
		}
	}
}

func TestTrackerSeparateObjects(t *testing.T) {
	tr := New()
	ids := tr.Update([]detect.Detection{det(video.Car, 10), det(video.Car, 300)})
	if ids[0] == ids[1] {
		t.Fatal("distinct objects share an id")
	}
	ids2 := tr.Update([]detect.Detection{det(video.Car, 12), det(video.Car, 302)})
	if ids2[0] != ids[0] || ids2[1] != ids[1] {
		t.Fatalf("ids not stable: %v vs %v", ids2, ids)
	}
}

func TestTrackerClassSeparation(t *testing.T) {
	tr := New()
	ids := tr.Update([]detect.Detection{det(video.Car, 10)})
	// Same place, different class: must not inherit the car's track.
	ids2 := tr.Update([]detect.Detection{det(video.Truck, 10)})
	if ids2[0] == ids[0] {
		t.Fatal("track crossed classes")
	}
}

func TestTrackerRetirement(t *testing.T) {
	tr := New()
	tr.MaxAge = 2
	tr.Update([]detect.Detection{det(video.Car, 10)})
	for i := 0; i < 3; i++ {
		tr.Update(nil)
	}
	if len(tr.Active()) != 0 {
		t.Fatalf("stale track survived: %d active", len(tr.Active()))
	}
	// A reappearing object gets a fresh id.
	ids := tr.Update([]detect.Detection{det(video.Car, 10)})
	if ids[0] == 0 {
		t.Fatal("retired id reused")
	}
}

func TestTrackerGreedyPrefersBestIoU(t *testing.T) {
	tr := New()
	tr.Update([]detect.Detection{det(video.Car, 100)})
	// Two candidates: one at 102 (high IoU), one at 140 (low IoU).
	ids := tr.Update([]detect.Detection{det(video.Car, 140), det(video.Car, 102)})
	if ids[1] != 0 {
		t.Fatalf("best-IoU candidate not matched: %v", ids)
	}
	if ids[0] != 1 {
		t.Fatalf("other candidate should open a new track: %v", ids)
	}
}

func TestTrackerOnStream(t *testing.T) {
	// Against the simulator the tracker should keep simulator track counts
	// and tracker counts in the same ballpark over a short clip.
	s := video.NewStream(video.Jackson(), 11)
	o := detect.NewOracle(simclock.New())
	tr := New()
	trueIDs := map[int]bool{}
	trackIDs := map[int]bool{}
	for i := 0; i < 200; i++ {
		f := s.Next()
		dets := o.Detect(f)
		ids := tr.Update(dets)
		for j, d := range dets {
			if d.TrackID >= 0 {
				trueIDs[d.TrackID] = true
			}
			if ids[j] >= 0 {
				trackIDs[ids[j]] = true
			}
		}
	}
	if len(trackIDs) == 0 {
		t.Fatal("tracker produced no tracks")
	}
	ratio := float64(len(trackIDs)) / float64(len(trueIDs)+1)
	if ratio > 3 {
		t.Fatalf("tracker fragmented: %d tracks vs %d true objects", len(trackIDs), len(trueIDs))
	}
	// Hits accumulate.
	for _, trk := range tr.Active() {
		if trk.Hits < 1 || trk.LastSeen < trk.FirstSeen {
			t.Fatalf("inconsistent track %+v", trk)
		}
	}
}
