// Package track implements the greedy IoU tracker the paper relies on for
// aggregate queries over time ("one has also to account for the trackid
// assigned via object tracking to each blue car identified as it enters
// and leaves the screen"). Detections in consecutive frames are matched to
// existing tracks by highest IoU within the same class; unmatched
// detections open new tracks and tracks unseen for MaxAge frames are
// retired.
package track

import (
	"sort"

	"vmq/internal/detect"
	"vmq/internal/geom"
)

// Track is one tracked object.
type Track struct {
	ID        int
	Class     int // video.Class, kept as int to avoid import cycles in callers
	Box       geom.Rect
	FirstSeen int
	LastSeen  int
	Hits      int
}

// Tracker assigns stable ids to detections across frames.
type Tracker struct {
	// MinIoU is the association threshold (default 0.3).
	MinIoU float64
	// MaxAge is how many frames a track survives without a match
	// (default 5).
	MaxAge int

	nextID int
	tracks []*Track
	frame  int
}

// New returns a Tracker with default thresholds.
func New() *Tracker {
	return &Tracker{MinIoU: 0.3, MaxAge: 5}
}

// Active returns the currently live tracks, ordered by id.
func (t *Tracker) Active() []*Track {
	out := append([]*Track(nil), t.tracks...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Update matches dets against live tracks and returns the track id
// assigned to each detection (parallel to dets).
func (t *Tracker) Update(dets []detect.Detection) []int {
	t.frame++
	ids := make([]int, len(dets))
	for i := range ids {
		ids[i] = -1
	}

	// Build all candidate (track, det) pairs above threshold and greedily
	// take them by descending IoU.
	type pair struct {
		trk, det int
		iou      float64
	}
	var pairs []pair
	for ti, trk := range t.tracks {
		for di, d := range dets {
			if trk.Class != int(d.Class) {
				continue
			}
			if iou := geom.IoU(trk.Box, d.Box); iou >= t.MinIoU {
				pairs = append(pairs, pair{ti, di, iou})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].iou > pairs[j].iou })

	usedTrk := make(map[int]bool)
	usedDet := make(map[int]bool)
	for _, p := range pairs {
		if usedTrk[p.trk] || usedDet[p.det] {
			continue
		}
		usedTrk[p.trk] = true
		usedDet[p.det] = true
		trk := t.tracks[p.trk]
		trk.Box = dets[p.det].Box
		trk.LastSeen = t.frame
		trk.Hits++
		ids[p.det] = trk.ID
	}

	// Open tracks for unmatched detections.
	for di, d := range dets {
		if usedDet[di] {
			continue
		}
		trk := &Track{
			ID:        t.nextID,
			Class:     int(d.Class),
			Box:       d.Box,
			FirstSeen: t.frame,
			LastSeen:  t.frame,
			Hits:      1,
		}
		t.nextID++
		t.tracks = append(t.tracks, trk)
		ids[di] = trk.ID
	}

	// Retire stale tracks.
	alive := t.tracks[:0]
	for _, trk := range t.tracks {
		if t.frame-trk.LastSeen <= t.MaxAge {
			alive = append(alive, trk)
		}
	}
	t.tracks = alive
	return ids
}
