package grid

import (
	"math/rand/v2"
	"testing"

	"vmq/internal/geom"
)

func bounds448() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448} }

func TestMapThreshold(t *testing.T) {
	m := NewMap(4)
	m.Set(0.5, 1, 2)
	m.Set(0.1, 3, 3)
	b := m.Threshold(0.2)
	if !b.At(1, 2) || b.At(3, 3) || b.At(0, 0) {
		t.Fatalf("Threshold wrong: %v", b.Cells)
	}
	if b.CountOn() != 1 {
		t.Fatalf("CountOn = %d", b.CountOn())
	}
}

func TestCellGeometry(t *testing.T) {
	bounds := bounds448()
	r := CellRect(bounds, 56, 0, 0)
	if r.W() != 8 || r.H() != 8 {
		t.Fatalf("cell size = %vx%v, want 8x8", r.W(), r.H())
	}
	// CellOf and CellCenter are inverse.
	for _, cell := range [][2]int{{0, 0}, {10, 20}, {55, 55}} {
		c := CellCenter(bounds, 56, cell[0], cell[1])
		i, j := CellOf(bounds, 56, c)
		if i != cell[0] || j != cell[1] {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", cell[0], cell[1], i, j)
		}
	}
	// Clamping.
	i, j := CellOf(bounds, 56, geom.Point{X: -5, Y: 9999})
	if i != 55 || j != 0 {
		t.Errorf("CellOf clamp = (%d,%d)", i, j)
	}
}

func TestFromBoxes(t *testing.T) {
	bounds := bounds448()
	// A box covering exactly cells (0..1, 0..1) at g=56 (cells are 8px).
	boxes := []geom.Rect{{X0: 0, Y0: 0, X1: 16, Y1: 16}}
	b := FromBoxes(boxes, bounds, 56, 0)
	if b.CountOn() != 4 {
		t.Fatalf("CountOn = %d, want 4", b.CountOn())
	}
	if !b.At(0, 0) || !b.At(1, 1) {
		t.Fatal("expected cells not set")
	}
	// minCover = 0.9 excludes cells the box barely touches.
	boxes = []geom.Rect{{X0: 0, Y0: 0, X1: 9, Y1: 8}} // covers cell(0,0) fully, cell(0,1) 1/8
	b = FromBoxes(boxes, bounds, 56, 0.5)
	if !b.At(0, 0) || b.At(0, 1) {
		t.Fatalf("minCover filtering wrong: %v %v", b.At(0, 0), b.At(0, 1))
	}
	// Out-of-bounds boxes are clipped, empty boxes skipped.
	b = FromBoxes([]geom.Rect{{X0: -100, Y0: -100, X1: -50, Y1: -50}}, bounds, 56, 0)
	if b.CountOn() != 0 {
		t.Fatal("fully outside box marked cells")
	}
}

func TestFromCenters(t *testing.T) {
	bounds := bounds448()
	boxes := []geom.Rect{
		{X0: 0, Y0: 0, X1: 16, Y1: 16},       // centre (8,8) -> cell (1,1)
		{X0: 440, Y0: 440, X1: 456, Y1: 456}, // centre outside
	}
	b := FromCenters(boxes, bounds, 56)
	if b.CountOn() != 1 || !b.At(1, 1) {
		t.Fatalf("FromCenters = %v on, At(1,1)=%v", b.CountOn(), b.At(1, 1))
	}
}

func TestDilate(t *testing.T) {
	b := NewBinary(7)
	b.Set(true, 3, 3)
	d1 := b.Dilate(1)
	if d1.CountOn() != 5 {
		t.Fatalf("Dilate(1) = %d cells, want 5 (diamond)", d1.CountOn())
	}
	d2 := b.Dilate(2)
	if d2.CountOn() != 13 {
		t.Fatalf("Dilate(2) = %d cells, want 13", d2.CountOn())
	}
	// Dilating by 0 is identity.
	d0 := b.Dilate(0)
	for i := range b.Cells {
		if d0.Cells[i] != b.Cells[i] {
			t.Fatal("Dilate(0) not identity")
		}
	}
	// Border clipping.
	e := NewBinary(3)
	e.Set(true, 0, 0)
	if e.Dilate(1).CountOn() != 3 {
		t.Fatalf("border Dilate = %d, want 3", e.Dilate(1).CountOn())
	}
}

func TestMatchExact(t *testing.T) {
	pred := NewBinary(8)
	truth := NewBinary(8)
	pred.Set(true, 2, 2)
	pred.Set(true, 5, 5)
	truth.Set(true, 2, 2)
	truth.Set(true, 7, 7)
	tp, fp, fn := Match(pred, truth, 0)
	if tp != 1 || fp != 1 || fn != 1 {
		t.Fatalf("Match = %d/%d/%d, want 1/1/1", tp, fp, fn)
	}
}

func TestMatchWithTolerance(t *testing.T) {
	pred := NewBinary(8)
	truth := NewBinary(8)
	pred.Set(true, 3, 3)
	truth.Set(true, 3, 4) // Manhattan distance 1
	if tp, _, _ := Match(pred, truth, 0); tp != 0 {
		t.Fatal("r=0 matched displaced cell")
	}
	tp, fp, fn := Match(pred, truth, 1)
	if tp != 1 || fp != 0 || fn != 0 {
		t.Fatalf("r=1 Match = %d/%d/%d, want 1/0/0", tp, fp, fn)
	}
	truth2 := NewBinary(8)
	truth2.Set(true, 3, 6) // distance 3
	tp, fp, fn = Match(pred, truth2, 2)
	if tp != 0 || fp != 1 || fn != 1 {
		t.Fatalf("r=2 Match = %d/%d/%d, want 0/1/1", tp, fp, fn)
	}
}

// Property: increasing tolerance never decreases tp nor increases fp/fn.
func TestMatchMonotoneInRadius(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 100; trial++ {
		g := 6 + rng.IntN(8)
		pred, truth := NewBinary(g), NewBinary(g)
		for i := range pred.Cells {
			pred.Cells[i] = rng.Float64() < 0.1
			truth.Cells[i] = rng.Float64() < 0.1
		}
		prevTP, prevFP, prevFN := Match(pred, truth, 0)
		for r := 1; r <= 3; r++ {
			tp, fp, fn := Match(pred, truth, r)
			if tp < prevTP || fp > prevFP || fn > prevFN {
				t.Fatalf("radius %d not monotone: (%d,%d,%d) -> (%d,%d,%d)",
					r, prevTP, prevFP, prevFN, tp, fp, fn)
			}
			prevTP, prevFP, prevFN = tp, fp, fn
		}
	}
}

// Property: tp+fp == number of predicted cells; fn <= truth cells.
func TestMatchConservation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 100; trial++ {
		g := 5 + rng.IntN(10)
		pred, truth := NewBinary(g), NewBinary(g)
		for i := range pred.Cells {
			pred.Cells[i] = rng.Float64() < 0.15
			truth.Cells[i] = rng.Float64() < 0.15
		}
		r := rng.IntN(3)
		tp, fp, fn := Match(pred, truth, r)
		if tp+fp != pred.CountOn() {
			t.Fatalf("tp+fp=%d != pred on=%d", tp+fp, pred.CountOn())
		}
		if fn > truth.CountOn() {
			t.Fatalf("fn=%d > truth on=%d", fn, truth.CountOn())
		}
	}
}

func TestOnCellsOrder(t *testing.T) {
	b := NewBinary(4)
	b.Set(true, 2, 1)
	b.Set(true, 0, 3)
	cells := b.OnCells()
	if len(cells) != 2 || cells[0] != [2]int{0, 3} || cells[1] != [2]int{2, 1} {
		t.Fatalf("OnCells = %v", cells)
	}
}

func TestPanicOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMap(0)
}

func TestMatchSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Match(NewBinary(3), NewBinary(4), 0)
}
