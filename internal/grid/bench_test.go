package grid

import (
	"math/rand/v2"
	"testing"

	"vmq/internal/geom"
)

func randBinary(seed uint64, g int, density float64) *Binary {
	rng := rand.New(rand.NewPCG(seed, 1))
	b := NewBinary(g)
	for i := range b.Cells {
		b.Cells[i] = rng.Float64() < density
	}
	return b
}

// BenchmarkMatch measures CLF scoring at the paper's grid size with a
// Detrac-like cell density and CLF-1 tolerance.
func BenchmarkMatch(b *testing.B) {
	pred := randBinary(1, 56, 0.006)
	truth := randBinary(2, 56, 0.006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(pred, truth, 1)
	}
}

func BenchmarkDilate(b *testing.B) {
	m := randBinary(3, 56, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Dilate(2)
	}
}

func BenchmarkFromBoxes(b *testing.B) {
	bounds := geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448}
	rng := rand.New(rand.NewPCG(4, 4))
	boxes := make([]geom.Rect, 16)
	for i := range boxes {
		c := geom.Point{X: rng.Float64() * 448, Y: rng.Float64() * 448}
		boxes[i] = geom.RectFromCenter(c, 60, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromBoxes(boxes, bounds, 56, 0)
	}
}
