// Package grid implements the g×g activation-map machinery at the heart of
// the paper's CLF filters: real-valued class activation maps, thresholding
// into binary occupancy maps, the downscaling of detector bounding boxes
// onto the grid that produces training labels ("the location map is
// produced by down-scaling the locations of the Mask R-CNN bounding boxes
// in the image to size 56×56"), and the Manhattan-distance-tolerant
// matching used to score CLF-1 and CLF-2 variants.
package grid

import (
	"fmt"

	"vmq/internal/geom"
)

// Map is a real-valued g×g activation map (row-major).
type Map struct {
	G     int
	Cells []float32
}

// NewMap allocates a zero g×g map.
func NewMap(g int) *Map {
	if g <= 0 {
		panic(fmt.Sprintf("grid: non-positive size %d", g))
	}
	return &Map{G: g, Cells: make([]float32, g*g)}
}

// At returns the activation at row i, column j.
func (m *Map) At(i, j int) float32 { return m.Cells[i*m.G+j] }

// Set stores v at row i, column j.
func (m *Map) Set(v float32, i, j int) { m.Cells[i*m.G+j] = v }

// Threshold converts m into a binary occupancy map: cell (i,j) is occupied
// iff m(i,j) >= t. The paper uses t = 0.2 for OD filters.
func (m *Map) Threshold(t float32) *Binary {
	b := NewBinary(m.G)
	for i, v := range m.Cells {
		if v >= t {
			b.Cells[i] = true
		}
	}
	return b
}

// Binary is a boolean g×g occupancy map.
type Binary struct {
	G     int
	Cells []bool
}

// NewBinary allocates an empty g×g binary map.
func NewBinary(g int) *Binary {
	if g <= 0 {
		panic(fmt.Sprintf("grid: non-positive size %d", g))
	}
	return &Binary{G: g, Cells: make([]bool, g*g)}
}

// At reports occupancy at row i, column j.
func (b *Binary) At(i, j int) bool { return b.Cells[i*b.G+j] }

// Set stores occupancy at row i, column j.
func (b *Binary) Set(v bool, i, j int) { b.Cells[i*b.G+j] = v }

// CountOn returns the number of occupied cells.
func (b *Binary) CountOn() int {
	n := 0
	for _, v := range b.Cells {
		if v {
			n++
		}
	}
	return n
}

// OnCells returns the (row, col) coordinates of occupied cells in
// row-major order.
func (b *Binary) OnCells() [][2]int {
	var out [][2]int
	for i := 0; i < b.G; i++ {
		for j := 0; j < b.G; j++ {
			if b.At(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (b *Binary) Clone() *Binary {
	c := NewBinary(b.G)
	copy(c.Cells, b.Cells)
	return c
}

// Dilate returns b grown by Manhattan radius r: a cell is occupied in the
// result iff some occupied cell of b lies within L1 distance r.
func (b *Binary) Dilate(r int) *Binary {
	if r <= 0 {
		return b.Clone()
	}
	out := NewBinary(b.G)
	for i := 0; i < b.G; i++ {
		for j := 0; j < b.G; j++ {
			if !b.At(i, j) {
				continue
			}
			for di := -r; di <= r; di++ {
				rem := r - abs(di)
				for dj := -rem; dj <= rem; dj++ {
					ni, nj := i+di, j+dj
					if ni >= 0 && ni < b.G && nj >= 0 && nj < b.G {
						out.Set(true, ni, nj)
					}
				}
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CellRect returns the frame-coordinate rectangle covered by grid cell
// (row i, col j) for a frame with the given bounds.
func CellRect(bounds geom.Rect, g, i, j int) geom.Rect {
	cw := bounds.W() / float64(g)
	ch := bounds.H() / float64(g)
	return geom.Rect{
		X0: bounds.X0 + float64(j)*cw,
		Y0: bounds.Y0 + float64(i)*ch,
		X1: bounds.X0 + float64(j+1)*cw,
		Y1: bounds.Y0 + float64(i+1)*ch,
	}
}

// CellCenter returns the frame-coordinate centre of grid cell (i, j).
func CellCenter(bounds geom.Rect, g, i, j int) geom.Point {
	return CellRect(bounds, g, i, j).Center()
}

// CellOf returns the grid cell (row, col) containing point p, clamped to
// the grid.
func CellOf(bounds geom.Rect, g int, p geom.Point) (i, j int) {
	j = int((p.X - bounds.X0) / bounds.W() * float64(g))
	i = int((p.Y - bounds.Y0) / bounds.H() * float64(g))
	if i < 0 {
		i = 0
	}
	if i >= g {
		i = g - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g {
		j = g - 1
	}
	return i, j
}

// FromBoxes downscales bounding boxes onto a g×g binary map: every cell
// whose area intersects a box by at least minCover of the cell is marked
// occupied. With minCover = 0 any positive overlap marks the cell, which
// is the labelling the paper uses for ground-truth location maps.
func FromBoxes(boxes []geom.Rect, bounds geom.Rect, g int, minCover float64) *Binary {
	b := NewBinary(g)
	cellArea := (bounds.W() / float64(g)) * (bounds.H() / float64(g))
	for _, box := range boxes {
		box = box.Clip(bounds)
		if box.Empty() {
			continue
		}
		i0, j0 := CellOf(bounds, g, geom.Point{X: box.X0, Y: box.Y0})
		i1, j1 := CellOf(bounds, g, geom.Point{X: box.X1 - 1e-9, Y: box.Y1 - 1e-9})
		for i := i0; i <= i1; i++ {
			for j := j0; j <= j1; j++ {
				if minCover <= 0 {
					b.Set(true, i, j)
					continue
				}
				cover := CellRect(bounds, g, i, j).Intersect(box).Area() / cellArea
				if cover >= minCover {
					b.Set(true, i, j)
				}
			}
		}
	}
	return b
}

// FromCenters marks only the cell containing each box centre. CLF
// predictions conceptually localise object centres; centre maps give a
// sparser representation used when evaluating spatial constraints.
func FromCenters(boxes []geom.Rect, bounds geom.Rect, g int) *Binary {
	b := NewBinary(g)
	for _, box := range boxes {
		c := box.Center()
		if !bounds.Contains(c) {
			continue
		}
		i, j := CellOf(bounds, g, c)
		b.Set(true, i, j)
	}
	return b
}

// Match scores a predicted occupancy map against ground truth with
// Manhattan tolerance radius r, returning true positives (predicted cells
// with a truth cell within distance r), false positives (predicted cells
// with none) and false negatives (truth cells with no predicted cell
// within distance r). Radius 0 is exact-cell matching; radii 1 and 2
// correspond to the paper's CLF-1 and CLF-2 scoring.
func Match(pred, truth *Binary, r int) (tp, fp, fn int) {
	if pred.G != truth.G {
		panic("grid: Match size mismatch")
	}
	truthD := truth.Dilate(r)
	predD := pred.Dilate(r)
	for i := range pred.Cells {
		if pred.Cells[i] {
			if truthD.Cells[i] {
				tp++
			} else {
				fp++
			}
		}
	}
	for i := range truth.Cells {
		if truth.Cells[i] && !predD.Cells[i] {
			fn++
		}
	}
	return tp, fp, fn
}
