//go:build vmq_nofault

// No-op fault registry: building with -tags vmq_nofault compiles every
// fault site down to a trivial call returning nil, for deployments that
// want the failpoint surface provably inert.
package fault

import "errors"

// Enabled reports whether this build carries the live fault registry.
const Enabled = false

// ErrInjected mirrors the live registry's sentinel; nothing returns it
// in this build.
var ErrInjected = errors.New("fault: injected error")

// ErrShort mirrors the live registry's sentinel; nothing returns it in
// this build.
var ErrShort = errors.New("fault: injected short write")

// EnvVar names the environment variable the live registry parses; this
// build ignores it.
const EnvVar = "VMQ_FAULT"

// Arm is a no-op in this build.
func Arm(string) error { return nil }

// Disarm is a no-op in this build.
func Disarm(string) {}

// Reset is a no-op in this build.
func Reset() {}

// Fired always reports zero in this build.
func Fired(string) int64 { return 0 }

// Hit never fires in this build.
func Hit(string) error { return nil }
