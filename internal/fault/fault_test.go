//go:build !vmq_nofault

package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
}

func TestArmErrorMode(t *testing.T) {
	defer Reset()
	if err := Arm("p.err=error"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p.err"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if err := Hit("p.other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if got := Fired("p.err"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestShortMode(t *testing.T) {
	defer Reset()
	if err := Arm("p.short=short"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p.short"); !errors.Is(err, ErrShort) {
		t.Fatalf("Hit = %v, want ErrShort", err)
	}
}

func TestAfterEveryTimes(t *testing.T) {
	defer Reset()
	if err := Arm("p.trig=error:after=2:every=3:times=2"); err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 12; i++ {
		if Hit("p.trig") != nil {
			fires = append(fires, i)
		}
	}
	// Skip calls 1-2; then every 3rd eligible call (3, 6, 9, ...) capped
	// at 2 fires.
	want := []int{3, 6}
	if len(fires) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fires, want)
		}
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	if err := Arm("p.boom=panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("Hit did not panic")
		}
	}()
	_ = Hit("p.boom")
}

func TestStallMode(t *testing.T) {
	defer Reset()
	if err := Arm("p.slow=stall:delay=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("p.slow"); err != nil {
		t.Fatalf("stall Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall slept %v, want >= 30ms", d)
	}
}

func TestMalformedSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"nomode",
		"p=badmode",
		"p=error:after=x",
		"p=error:junk",
		"p=stall:delay=zzz",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted a malformed spec", spec)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("malformed Arm left a point armed: %v", err)
	}
}

func TestDisarm(t *testing.T) {
	defer Reset()
	if err := Arm("p.gone=error"); err != nil {
		t.Fatal(err)
	}
	Disarm("p.gone")
	if err := Hit("p.gone"); err != nil {
		t.Fatalf("Hit after Disarm = %v, want nil", err)
	}
}
