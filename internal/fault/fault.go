//go:build !vmq_nofault

// Package fault provides env/config-armed failpoints for crash and
// chaos testing. Production code paths that matter for durability —
// spill writes, manifest appends, backend evaluation — call
// Hit("point.name") at their fault site; with nothing armed the call is
// a single atomic load and returns nil. Tests (or an operator running a
// chaos drill) arm failpoints either programmatically with Arm or
// through the VMQ_FAULT environment variable, and the armed mode turns
// the Hit into an injected error, a short write, a panic, a stall, or a
// hard process exit.
//
// Spec grammar (VMQ_FAULT and Arm share it):
//
//	point=mode[:key=value]...[,point=mode...]
//
// Modes:
//
//	error   Hit returns ErrInjected
//	short   Hit returns ErrShort — callers that support it write a
//	        deliberately truncated record (exercising torn-line
//	        recovery); callers that don't treat it as an error
//	panic   Hit panics with "fault: injected panic at <point>"
//	stall   Hit sleeps (key delay=<duration>, default 50ms) and returns nil
//	crash   Hit calls os.Exit(3) — the faithful kill -9 image, for
//	        subprocess chaos harnesses only
//
// Trigger keys:
//
//	after=N  skip the first N calls to the point
//	every=N  then fire on every Nth eligible call (default: every call)
//	times=N  disarm after N fires (default: unlimited)
//	delay=D  stall duration (stall mode only)
//
// Example: VMQ_FAULT='rlog.spill.append=error:after=100:every=13,query.filter=panic:times=1'
//
// Building with -tags vmq_nofault swaps in no-op stubs so the fault
// sites compile to a trivial call returning nil.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether this build carries the live fault registry
// (false under -tags vmq_nofault).
const Enabled = true

// ErrInjected is the error returned by a point armed in "error" mode.
var ErrInjected = errors.New("fault: injected error")

// ErrShort is returned by a point armed in "short" mode. Callers that
// can simulate a torn write (partial record on disk) should do so and
// surface io.ErrShortWrite; callers without that ability treat it like
// ErrInjected.
var ErrShort = errors.New("fault: injected short write")

// EnvVar names the environment variable parsed at init (and by Reset).
const EnvVar = "VMQ_FAULT"

type failpoint struct {
	mode  string
	delay time.Duration
	after int64
	every int64
	times int64

	calls atomic.Int64
	fired atomic.Int64
}

var (
	armed  atomic.Int32 // number of armed points; 0 short-circuits Hit
	mu     sync.Mutex
	points = map[string]*failpoint{}
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "vmq: ignoring malformed %s: %v\n", EnvVar, err)
		}
	}
}

// Arm installs the failpoints described by spec (see the package grammar)
// on top of whatever is already armed. It returns an error without
// arming anything if the spec does not parse.
func Arm(spec string) error {
	parsed := map[string]*failpoint{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok || name == "" {
			return fmt.Errorf("fault: clause %q is not point=mode", clause)
		}
		parts := strings.Split(rest, ":")
		fp := &failpoint{mode: parts[0], every: 1, delay: 50 * time.Millisecond}
		switch fp.mode {
		case "error", "short", "panic", "stall", "crash":
		default:
			return fmt.Errorf("fault: point %q: unknown mode %q", name, fp.mode)
		}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("fault: point %q: option %q is not key=value", name, kv)
			}
			switch k {
			case "after", "every", "times":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("fault: point %q: bad %s=%q", name, k, v)
				}
				switch k {
				case "after":
					fp.after = n
				case "every":
					if n == 0 {
						n = 1
					}
					fp.every = n
				case "times":
					fp.times = n
				}
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return fmt.Errorf("fault: point %q: bad delay=%q", name, v)
				}
				fp.delay = d
			default:
				return fmt.Errorf("fault: point %q: unknown option %q", name, k)
			}
		}
		parsed[name] = fp
	}
	mu.Lock()
	for name, fp := range parsed {
		if _, exists := points[name]; !exists {
			armed.Add(1)
		}
		points[name] = fp
	}
	mu.Unlock()
	return nil
}

// Disarm removes one failpoint.
func Disarm(point string) {
	mu.Lock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every programmatically armed failpoint and restores the
// VMQ_FAULT environment baseline, so tests that Arm points do not
// disturb an env-armed chaos run sharing the binary.
func Reset() {
	mu.Lock()
	armed.Add(int32(-len(points)))
	points = map[string]*failpoint{}
	mu.Unlock()
	if spec := os.Getenv(EnvVar); spec != "" {
		_ = Arm(spec)
	}
}

// Fired reports how many times the named point has injected its fault.
func Fired(point string) int64 {
	mu.Lock()
	fp := points[point]
	mu.Unlock()
	if fp == nil {
		return 0
	}
	return fp.fired.Load()
}

// Hit evaluates the named fault site. With nothing armed it is one
// atomic load. An armed point fires per its trigger keys: error and
// short modes return their sentinel, panic panics, stall sleeps, crash
// exits the process.
func Hit(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fp := points[point]
	mu.Unlock()
	if fp == nil {
		return nil
	}
	n := fp.calls.Add(1)
	if n <= fp.after {
		return nil
	}
	if fp.every > 1 && (n-fp.after-1)%fp.every != 0 {
		return nil
	}
	if fp.times > 0 && fp.fired.Load() >= fp.times {
		return nil
	}
	fp.fired.Add(1)
	switch fp.mode {
	case "error":
		return fmt.Errorf("%w at %s", ErrInjected, point)
	case "short":
		return fmt.Errorf("%w at %s", ErrShort, point)
	case "panic":
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	case "stall":
		time.Sleep(fp.delay)
	case "crash":
		os.Exit(3)
	}
	return nil
}
