// Package spatial implements the spatial predicate algebra the paper's
// queries use: directional relations between objects (left, right, above,
// below — the ORDER(a,b)=RIGHT constraints of the example queries), region
// containment (objects inside screen areas such as quadrants or a bike
// lane) and the MBR topological relations of Papadias et al., which the
// paper cites as the applicable categorisation from spatial databases.
//
// Every relation is evaluated both over exact bounding boxes (the final
// Mask R-CNN confirmation path) and over thresholded activation-map grids
// (the CLF filter path).
package spatial

import (
	"fmt"

	"vmq/internal/geom"
	"vmq/internal/grid"
)

// Relation is a directional constraint between two objects. The convention
// follows the paper's example: "car left of truck" holds when the car's
// centre lies strictly left of the truck's centre.
type Relation int

// Directional relations.
const (
	LeftOf Relation = iota
	RightOf
	Above
	Below
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case LeftOf:
		return "left-of"
	case RightOf:
		return "right-of"
	case Above:
		return "above"
	case Below:
		return "below"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// ParseRelation maps a relation name (or the paper's ORDER keyword values
// LEFT/RIGHT/ABOVE/BELOW) to its Relation.
func ParseRelation(s string) (Relation, bool) {
	switch s {
	case "left-of", "LEFT", "left":
		return LeftOf, true
	case "right-of", "RIGHT", "right":
		return RightOf, true
	case "above", "ABOVE":
		return Above, true
	case "below", "BELOW":
		return Below, true
	}
	return 0, false
}

// Inverse returns the relation with operands swapped: a R b iff b R⁻¹ a.
func (r Relation) Inverse() Relation {
	switch r {
	case LeftOf:
		return RightOf
	case RightOf:
		return LeftOf
	case Above:
		return Below
	default:
		return Above
	}
}

// Holds reports whether a r b using box centres.
func Holds(r Relation, a, b geom.Rect) bool {
	ca, cb := a.Center(), b.Center()
	switch r {
	case LeftOf:
		return ca.X < cb.X
	case RightOf:
		return ca.X > cb.X
	case Above:
		return ca.Y < cb.Y
	case Below:
		return ca.Y > cb.Y
	default:
		return false
	}
}

// AnyPairHolds reports whether some box in as stands in relation r to some
// box in bs. When as and bs may contain the same physical object the caller
// is responsible for excluding identity pairs.
func AnyPairHolds(r Relation, as, bs []geom.Rect) bool {
	for _, a := range as {
		for _, b := range bs {
			if Holds(r, a, b) {
				return true
			}
		}
	}
	return false
}

// InRegion reports whether the object's centre lies inside the region —
// the containment semantics used for quadrant and bike-lane constraints.
func InRegion(obj, region geom.Rect) bool {
	return region.Contains(obj.Center())
}

// CountInRegion returns how many boxes have centres inside region.
func CountInRegion(boxes []geom.Rect, region geom.Rect) int {
	n := 0
	for _, b := range boxes {
		if InRegion(b, region) {
			n++
		}
	}
	return n
}

// HoldsOnGrid reports whether some occupied cell of a stands in relation r
// to some occupied cell of b, using cell centres — the CLF-filter
// evaluation of spatial constraints ("spatial constraints between objects
// can be evaluated in a straightforward manner manipulating the
// thresholded activation maps").
func HoldsOnGrid(r Relation, a, b *grid.Binary) bool {
	if a.G != b.G {
		panic("spatial: grid size mismatch")
	}
	// Reduce to extreme coordinates: LeftOf holds iff min col of a < max
	// col of b, etc. This is O(g²) instead of O(cells² ) pairs.
	aMinC, aMaxC, aMinR, aMaxR, aAny := extremes(a)
	bMinC, bMaxC, bMinR, bMaxR, bAny := extremes(b)
	if !aAny || !bAny {
		return false
	}
	switch r {
	case LeftOf:
		return aMinC < bMaxC
	case RightOf:
		return aMaxC > bMinC
	case Above:
		return aMinR < bMaxR
	case Below:
		return aMaxR > bMinR
	default:
		return false
	}
}

func extremes(b *grid.Binary) (minC, maxC, minR, maxR int, any bool) {
	minC, minR = b.G, b.G
	maxC, maxR = -1, -1
	for i := 0; i < b.G; i++ {
		for j := 0; j < b.G; j++ {
			if !b.At(i, j) {
				continue
			}
			any = true
			if j < minC {
				minC = j
			}
			if j > maxC {
				maxC = j
			}
			if i < minR {
				minR = i
			}
			if i > maxR {
				maxR = i
			}
		}
	}
	return minC, maxC, minR, maxR, any
}

// CountInRegionGrid returns the number of occupied cells whose centres lie
// inside region, for a grid over the given frame bounds.
func CountInRegionGrid(b *grid.Binary, bounds, region geom.Rect) int {
	n := 0
	for i := 0; i < b.G; i++ {
		for j := 0; j < b.G; j++ {
			if b.At(i, j) && region.Contains(grid.CellCenter(bounds, b.G, i, j)) {
				n++
			}
		}
	}
	return n
}

// AnyInRegionGrid reports whether any occupied cell centre falls in region.
func AnyInRegionGrid(b *grid.Binary, bounds, region geom.Rect) bool {
	return CountInRegionGrid(b, bounds, region) > 0
}

// Topology is an MBR topological relation in the categorisation of
// Papadias, Sellis, Theodoridis and Egenhofer (SIGMOD '95), which the
// paper cites as readily applicable to constraints between objects and
// screen areas.
type Topology int

// Topological relations between two MBRs.
const (
	Disjoint Topology = iota
	Meet              // boundaries touch, interiors disjoint
	Overlap           // interiors intersect, neither contains the other
	Equal
	Contains // a strictly contains b
	Inside   // a strictly inside b
	Covers   // a contains b with shared boundary
	CoveredBy
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Disjoint:
		return "disjoint"
	case Meet:
		return "meet"
	case Overlap:
		return "overlap"
	case Equal:
		return "equal"
	case Contains:
		return "contains"
	case Inside:
		return "inside"
	case Covers:
		return "covers"
	case CoveredBy:
		return "covered-by"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Topological classifies the relation of a to b.
func Topological(a, b geom.Rect) Topology {
	if a == b {
		return Equal
	}
	inter := a.Intersect(b)
	if inter.Empty() {
		// Distinguish meet (touching edges) from disjoint.
		if touching(a, b) {
			return Meet
		}
		return Disjoint
	}
	aInB := b.ContainsRect(a)
	bInA := a.ContainsRect(b)
	switch {
	case bInA && strictlyInside(b, a):
		return Contains
	case bInA:
		return Covers
	case aInB && strictlyInside(a, b):
		return Inside
	case aInB:
		return CoveredBy
	default:
		return Overlap
	}
}

func strictlyInside(inner, outer geom.Rect) bool {
	return inner.X0 > outer.X0 && inner.Y0 > outer.Y0 &&
		inner.X1 < outer.X1 && inner.Y1 < outer.Y1
}

func touching(a, b geom.Rect) bool {
	xTouch := a.X1 == b.X0 || b.X1 == a.X0
	yTouch := a.Y1 == b.Y0 || b.Y1 == a.Y0
	xOverlap := a.X0 <= b.X1 && b.X0 <= a.X1
	yOverlap := a.Y0 <= b.Y1 && b.Y0 <= a.Y1
	return (xTouch && yOverlap) || (yTouch && xOverlap)
}
