package spatial

import (
	"math/rand/v2"
	"testing"

	"vmq/internal/geom"
	"vmq/internal/grid"
)

func TestHoldsDirections(t *testing.T) {
	a := geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}   // centre (5,5)
	b := geom.Rect{X0: 20, Y0: 20, X1: 30, Y1: 30} // centre (25,25)
	if !Holds(LeftOf, a, b) || Holds(RightOf, a, b) {
		t.Error("horizontal relation wrong")
	}
	if !Holds(Above, a, b) || Holds(Below, a, b) {
		t.Error("vertical relation wrong")
	}
	if !Holds(RightOf, b, a) || !Holds(Below, b, a) {
		t.Error("swapped operands wrong")
	}
	// Same centre: no strict relation holds.
	if Holds(LeftOf, a, a) || Holds(RightOf, a, a) || Holds(Above, a, a) || Holds(Below, a, a) {
		t.Error("reflexive relation held")
	}
}

// Property: Holds(r,a,b) == Holds(r.Inverse(),b,a) and antisymmetry.
func TestRelationDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	rels := []Relation{LeftOf, RightOf, Above, Below}
	for i := 0; i < 500; i++ {
		a := geom.RectFromCenter(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, 5, 5)
		b := geom.RectFromCenter(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, 5, 5)
		for _, r := range rels {
			if Holds(r, a, b) != Holds(r.Inverse(), b, a) {
				t.Fatalf("duality violated for %v", r)
			}
			if Holds(r, a, b) && Holds(r, b, a) {
				t.Fatalf("antisymmetry violated for %v", r)
			}
		}
	}
}

func TestParseRelation(t *testing.T) {
	cases := map[string]Relation{
		"LEFT": LeftOf, "RIGHT": RightOf, "ABOVE": Above, "BELOW": Below,
		"left-of": LeftOf, "right-of": RightOf,
	}
	for s, want := range cases {
		got, ok := ParseRelation(s)
		if !ok || got != want {
			t.Errorf("ParseRelation(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseRelation("diagonal"); ok {
		t.Error("accepted unknown relation")
	}
	for _, r := range []Relation{LeftOf, RightOf, Above, Below, Relation(9)} {
		if r.String() == "" {
			t.Error("empty String")
		}
	}
}

func TestAnyPairHolds(t *testing.T) {
	as := []geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	bs := []geom.Rect{{X0: 50, Y0: 0, X1: 60, Y1: 10}, {X0: -50, Y0: 0, X1: -40, Y1: 10}}
	if !AnyPairHolds(LeftOf, as, bs) {
		t.Error("LeftOf pair exists but not found")
	}
	if !AnyPairHolds(RightOf, as, bs) {
		t.Error("RightOf pair exists but not found")
	}
	if AnyPairHolds(LeftOf, nil, bs) {
		t.Error("empty as matched")
	}
}

func TestRegions(t *testing.T) {
	region := geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	inside := geom.RectFromCenter(geom.Point{X: 50, Y: 50}, 10, 10)
	outside := geom.RectFromCenter(geom.Point{X: 150, Y: 50}, 10, 10)
	straddle := geom.RectFromCenter(geom.Point{X: 99, Y: 50}, 30, 10)
	if !InRegion(inside, region) || InRegion(outside, region) {
		t.Error("InRegion wrong")
	}
	if !InRegion(straddle, region) {
		t.Error("centre-containment semantics: straddling box with centre inside must match")
	}
	if CountInRegion([]geom.Rect{inside, outside, straddle}, region) != 2 {
		t.Error("CountInRegion wrong")
	}
}

func gridWith(g int, cells ...[2]int) *grid.Binary {
	b := grid.NewBinary(g)
	for _, c := range cells {
		b.Set(true, c[0], c[1])
	}
	return b
}

func TestHoldsOnGrid(t *testing.T) {
	a := gridWith(8, [2]int{4, 1}) // col 1
	b := gridWith(8, [2]int{4, 6}) // col 6
	if !HoldsOnGrid(LeftOf, a, b) {
		t.Error("grid LeftOf failed")
	}
	if HoldsOnGrid(RightOf, a, b) {
		t.Error("grid RightOf false positive")
	}
	up := gridWith(8, [2]int{1, 4})
	down := gridWith(8, [2]int{6, 4})
	if !HoldsOnGrid(Above, up, down) || HoldsOnGrid(Below, up, down) {
		t.Error("grid vertical relations wrong")
	}
	// Empty maps never satisfy.
	if HoldsOnGrid(LeftOf, gridWith(8), b) {
		t.Error("empty grid satisfied relation")
	}
}

// The grid evaluation is existential: with multiple cells the relation
// holds if any pair qualifies.
func TestHoldsOnGridExistential(t *testing.T) {
	a := gridWith(8, [2]int{0, 7}, [2]int{0, 0})
	b := gridWith(8, [2]int{0, 3})
	if !HoldsOnGrid(LeftOf, a, b) {
		t.Error("existential LeftOf failed (cell at col 0)")
	}
	if !HoldsOnGrid(RightOf, a, b) {
		t.Error("existential RightOf failed (cell at col 7)")
	}
}

// Grid and box evaluations agree for well-separated singleton objects.
func TestGridBoxAgreement(t *testing.T) {
	bounds := geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 200; i++ {
		a := geom.RectFromCenter(geom.Point{X: 30 + rng.Float64()*150, Y: 30 + rng.Float64()*388}, 20, 20)
		b := geom.RectFromCenter(geom.Point{X: 260 + rng.Float64()*150, Y: 30 + rng.Float64()*388}, 20, 20)
		ga := grid.FromCenters([]geom.Rect{a}, bounds, 56)
		gb := grid.FromCenters([]geom.Rect{b}, bounds, 56)
		if !HoldsOnGrid(LeftOf, ga, gb) {
			t.Fatal("grid disagrees with boxes for separated objects (LeftOf)")
		}
		if Holds(Above, a, b) != HoldsOnGrid(Above, ga, gb) {
			// Vertical positions are random; allow disagreement only when
			// centres fall in the same grid row.
			ai, _ := grid.CellOf(bounds, 56, a.Center())
			bi, _ := grid.CellOf(bounds, 56, b.Center())
			if ai != bi {
				t.Fatalf("grid/box Above disagree with distinct rows: %v vs %v", ai, bi)
			}
		}
	}
}

func TestCountInRegionGrid(t *testing.T) {
	bounds := geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448}
	lowerLeft := geom.QuadrantRect(bounds, geom.LowerLeft)
	b := grid.NewBinary(56)
	b.Set(true, 40, 10) // lower-left area
	b.Set(true, 10, 10) // upper-left
	if n := CountInRegionGrid(b, bounds, lowerLeft); n != 1 {
		t.Fatalf("CountInRegionGrid = %d, want 1", n)
	}
	if !AnyInRegionGrid(b, bounds, lowerLeft) {
		t.Error("AnyInRegionGrid false negative")
	}
	if AnyInRegionGrid(grid.NewBinary(56), bounds, lowerLeft) {
		t.Error("AnyInRegionGrid false positive on empty map")
	}
}

func TestTopological(t *testing.T) {
	a := geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	cases := []struct {
		b    geom.Rect
		want Topology
	}{
		{geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, Equal},
		{geom.Rect{X0: 20, Y0: 20, X1: 30, Y1: 30}, Disjoint},
		{geom.Rect{X0: 10, Y0: 0, X1: 20, Y1: 10}, Meet},
		{geom.Rect{X0: 5, Y0: 5, X1: 15, Y1: 15}, Overlap},
		{geom.Rect{X0: 2, Y0: 2, X1: 8, Y1: 8}, Contains},
		{geom.Rect{X0: 0, Y0: 2, X1: 8, Y1: 8}, Covers},
		{geom.Rect{X0: -5, Y0: -5, X1: 15, Y1: 15}, Inside},
		{geom.Rect{X0: 0, Y0: -5, X1: 15, Y1: 15}, CoveredBy},
	}
	for _, c := range cases {
		if got := Topological(a, c.b); got != c.want {
			t.Errorf("Topological(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
	for tp := Topology(0); tp <= CoveredBy; tp++ {
		if tp.String() == "" {
			t.Error("empty Topology name")
		}
	}
	if Topology(42).String() != "Topology(42)" {
		t.Error("unknown Topology String")
	}
}

// Property: Topological converse pairs — Contains/Inside, Covers/CoveredBy
// swap under operand exchange; Disjoint/Meet/Overlap/Equal are symmetric.
func TestTopologicalConverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	conv := map[Topology]Topology{
		Disjoint: Disjoint, Meet: Meet, Overlap: Overlap, Equal: Equal,
		Contains: Inside, Inside: Contains, Covers: CoveredBy, CoveredBy: Covers,
	}
	for i := 0; i < 500; i++ {
		a := geom.Rect{
			X0: float64(rng.IntN(10)), Y0: float64(rng.IntN(10)),
			X1: float64(10 + rng.IntN(10)), Y1: float64(10 + rng.IntN(10)),
		}
		b := geom.Rect{
			X0: float64(rng.IntN(10)), Y0: float64(rng.IntN(10)),
			X1: float64(10 + rng.IntN(10)), Y1: float64(10 + rng.IntN(10)),
		}
		ab := Topological(a, b)
		ba := Topological(b, a)
		if ba != conv[ab] {
			t.Fatalf("converse violated: %v vs %v for %v,%v", ab, ba, a, b)
		}
	}
}

func TestGridSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HoldsOnGrid(LeftOf, grid.NewBinary(3), grid.NewBinary(4))
}
