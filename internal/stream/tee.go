package stream

import (
	"sync"
	"sync/atomic"

	"vmq/internal/video"
)

// Fanout pumps frames from one source to every current subscriber — the
// shared-scan tee of the continuous-query server: a camera feed is decoded
// once and the same *Frame pointers flow into every registered query's
// pipeline. Delivery is lossless and ordered: the pump blocks until every
// subscriber has accepted the frame into its bounded buffer, so the
// slowest query back-pressures the feed instead of dropping frames or
// buffering without bound. Subscribers may join and leave while the pump
// runs; a new subscriber sees frames from its subscription point onward.
type Fanout struct {
	src    Source
	buffer int
	frames atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	subs    map[*Subscription]struct{}
	stopped bool
	done    bool // pump finished; late subscriptions are born closed
}

// NewFanout wraps src. Each subscription gets a bounded frame buffer of
// the given size (minimum 1): larger buffers absorb more skew between
// queries before the slowest one throttles the rest.
func NewFanout(src Source, buffer int) *Fanout {
	if buffer < 1 {
		buffer = 1
	}
	f := &Fanout{src: src, buffer: buffer, subs: make(map[*Subscription]struct{})}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Subscription is one subscriber's view of the fanout: a Source that
// yields the feed's frames from the subscription point until the feed
// ends or Cancel is called.
type Subscription struct {
	ch     chan *video.Frame
	cancel chan struct{}
	once   sync.Once
}

// Next implements Source. After Cancel it returns false immediately, even
// if frames remain buffered; after the feed ends it drains the buffer
// first.
func (s *Subscription) Next() (*video.Frame, bool) {
	select {
	case <-s.cancel:
		return nil, false
	default:
	}
	select {
	case f, ok := <-s.ch:
		if !ok {
			return nil, false
		}
		return f, true
	case <-s.cancel:
		return nil, false
	}
}

// Cancel detaches the subscription: the pump stops delivering to it and
// Next returns false from now on. Safe to call more than once, and safe
// concurrently with Next.
func (s *Subscription) Cancel() { s.once.Do(func() { close(s.cancel) }) }

// Cancelled closes when Cancel is called — for selects that must abandon
// work the moment the subscriber detaches.
func (s *Subscription) Cancelled() <-chan struct{} { return s.cancel }

// Depth reports how many frames are buffered and not yet consumed — the
// per-query queue depth the metrics endpoint exposes.
func (s *Subscription) Depth() int { return len(s.ch) }

// Subscribe attaches a new subscriber. If the pump has already finished,
// the subscription is born exhausted (Next returns false).
func (f *Fanout) Subscribe() *Subscription {
	sub := &Subscription{ch: make(chan *video.Frame, f.buffer), cancel: make(chan struct{})}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		close(sub.ch)
		return sub
	}
	f.subs[sub] = struct{}{}
	f.cond.Broadcast() // wake a pump idling on an empty subscriber set
	return sub
}

// Frames reports how many frames the pump has dispatched so far.
func (f *Fanout) Frames() int64 { return f.frames.Load() }

// Subscribers reports the current subscriber count.
func (f *Fanout) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Stop ends the pump after the in-flight frame. Idempotent.
func (f *Fanout) Stop() {
	f.mu.Lock()
	f.stopped = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Run pumps the source until it is exhausted or Stop is called, then
// closes every remaining subscription so each query drains its buffer and
// ends gracefully. While no subscriber is attached the pump idles without
// consuming the source — a bounded recording must not drain before the
// first query registers. Run returns the number of frames dispatched; it
// must be called at most once.
func (f *Fanout) Run() int64 {
	for {
		subs := f.waitSubscribers()
		if subs == nil {
			break // stopped
		}
		frame, ok := f.src.Next()
		if !ok {
			break
		}
		f.frames.Add(1)
		for _, sub := range subs {
			select {
			case sub.ch <- frame:
			case <-sub.cancel:
				f.drop(sub)
			}
		}
	}
	f.mu.Lock()
	f.done = true
	for sub := range f.subs {
		close(sub.ch)
		delete(f.subs, sub)
	}
	f.mu.Unlock()
	return f.frames.Load()
}

// waitSubscribers blocks until at least one subscriber is attached (or
// the fanout is stopped, returning nil) and snapshots the subscriber set.
func (f *Fanout) waitSubscribers() []*Subscription {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.subs) == 0 && !f.stopped {
		f.cond.Wait()
	}
	if f.stopped {
		return nil
	}
	out := make([]*Subscription, 0, len(f.subs))
	for sub := range f.subs {
		out = append(out, sub)
	}
	return out
}

// drop removes a cancelled subscription from the delivery set.
func (f *Fanout) drop(sub *Subscription) {
	f.mu.Lock()
	delete(f.subs, sub)
	f.mu.Unlock()
}
