package stream

import (
	"sync"
	"testing"

	"vmq/internal/video"
)

func takeFrames(t *testing.T, p video.Profile, seed uint64, n int) []*video.Frame {
	t.Helper()
	return video.NewStream(p, seed).Take(n)
}

// Every subscriber of a fanout sees every frame, in order, as the same
// pointers the source produced — the invariant the shared-scan memo cache
// keys on.
func TestFanoutDeliversAllFramesToAllSubscribers(t *testing.T) {
	frames := takeFrames(t, video.Jackson(), 7, 300)
	fo := NewFanout(&SliceSource{Frames: frames}, 8)
	const subscribers = 5
	subs := make([]*Subscription, subscribers)
	for i := range subs {
		subs[i] = fo.Subscribe()
	}
	var wg sync.WaitGroup
	got := make([][]*video.Frame, subscribers)
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			for {
				f, ok := sub.Next()
				if !ok {
					return
				}
				got[i] = append(got[i], f)
			}
		}(i, sub)
	}
	if n := fo.Run(); n != int64(len(frames)) {
		t.Fatalf("pump dispatched %d frames, want %d", n, len(frames))
	}
	wg.Wait()
	for i, g := range got {
		if len(g) != len(frames) {
			t.Fatalf("subscriber %d saw %d frames, want %d", i, len(g), len(frames))
		}
		for j, f := range g {
			if f != frames[j] {
				t.Fatalf("subscriber %d frame %d is not the source pointer", i, j)
			}
		}
	}
}

// The pump idles while nobody is subscribed: a bounded recording must not
// drain before the first query registers.
func TestFanoutIdlesWithoutSubscribers(t *testing.T) {
	frames := takeFrames(t, video.Jackson(), 8, 50)
	fo := NewFanout(&SliceSource{Frames: frames}, 4)
	done := make(chan int64, 1)
	go func() { done <- fo.Run() }()
	// Nothing consumed yet: the source still holds every frame.
	if fo.Frames() != 0 {
		t.Fatalf("pump consumed %d frames with no subscribers", fo.Frames())
	}
	sub := fo.Subscribe()
	seen := 0
	for {
		_, ok := sub.Next()
		if !ok {
			break
		}
		seen++
	}
	if n := <-done; n != 50 || seen != 50 {
		t.Fatalf("dispatched %d, subscriber saw %d, want 50/50", n, seen)
	}
}

// Cancelling one subscription ends that query immediately without
// disturbing the others, and Stop ends the pump even mid-stream.
func TestFanoutCancelAndStop(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 9)) // unbounded
	fo := NewFanout(src, 4)
	keeper, quitter := fo.Subscribe(), fo.Subscribe()
	var wg sync.WaitGroup
	wg.Add(2)
	kept := 0
	go func() { // quitter drains until its cancellation takes effect
		defer wg.Done()
		for {
			if _, ok := quitter.Next(); !ok {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			_, ok := keeper.Next()
			if !ok {
				return
			}
			kept++
			if kept == 20 {
				quitter.Cancel()
			}
			if kept == 60 {
				fo.Stop()
			}
		}
	}()
	fo.Run()
	wg.Wait()
	if kept < 60 {
		t.Fatalf("keeper saw only %d frames", kept)
	}
	if _, ok := quitter.Next(); ok {
		t.Fatal("cancelled subscription still yields frames")
	}
	// Subscribing after the pump finished yields an exhausted source.
	late := fo.Subscribe()
	if _, ok := late.Next(); ok {
		t.Fatal("late subscription yielded a frame")
	}
}

// A subscriber joining mid-stream sees only frames from its subscription
// point onward, still in order.
func TestFanoutLateSubscriberJoinsMidStream(t *testing.T) {
	frames := takeFrames(t, video.Jackson(), 10, 200)
	fo := NewFanout(&SliceSource{Frames: frames}, 4)
	early := fo.Subscribe()
	handoff := make(chan *Subscription, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			_, ok := early.Next()
			if !ok {
				return
			}
			n++
			if n == 50 {
				handoff <- fo.Subscribe()
			}
		}
	}()
	go fo.Run()
	late := <-handoff
	var lateFirst *video.Frame
	lateSeen := 0
	for {
		f, ok := late.Next()
		if !ok {
			break
		}
		if lateFirst == nil {
			lateFirst = f
		}
		lateSeen++
	}
	wg.Wait()
	if lateFirst == nil || lateFirst.Index < 49 {
		t.Fatalf("late subscriber started at %v, want a mid-stream frame", lateFirst)
	}
	if lateSeen == 0 || lateSeen > 151 {
		t.Fatalf("late subscriber saw %d frames", lateSeen)
	}
}
