package stream

import (
	"errors"
	"fmt"
	"sync"

	"vmq/internal/video"
)

// PushPolicy selects what a PushSource does with a publisher's frame when
// the ingest ring is full. It mirrors the delivery-side rlog policies: the
// same three answers to overload, applied at the opposite edge of the
// server (publisher admission instead of consumer delivery).
type PushPolicy string

// Publisher admission policies.
const (
	// PushBlock parks the publisher until the scan loop frees a slot (or
	// the publisher's abort channel fires). Lossless; the publisher's own
	// transport (HTTP request body, WebSocket TCP window) carries the
	// backpressure upstream.
	PushBlock PushPolicy = "block"
	// PushDropOldest evicts the oldest buffered frame to admit the new
	// one. The feed always sees the freshest frames — the right default
	// for live cameras where a stale frame is worthless.
	PushDropOldest PushPolicy = "drop-oldest"
	// PushReject refuses the new frame with ErrPushRejected, leaving the
	// ring untouched. Retry is the publisher's decision.
	PushReject PushPolicy = "reject"
)

// ParsePushPolicy validates a policy name, defaulting empty to PushBlock.
func ParsePushPolicy(s string) (PushPolicy, error) {
	switch PushPolicy(s) {
	case "":
		return PushBlock, nil
	case PushBlock, PushDropOldest, PushReject:
		return PushPolicy(s), nil
	}
	return "", fmt.Errorf("unknown push policy %q (want block, drop-oldest or reject)", s)
}

// Typed PushSource errors.
var (
	// ErrPushClosed reports a publish against a closed (drained) source.
	ErrPushClosed = errors.New("push source closed")
	// ErrPushRejected reports a publish refused by the PushReject policy.
	ErrPushRejected = errors.New("push source full")
	// ErrPushAborted reports a blocked publish cancelled by its abort
	// channel before a slot freed.
	ErrPushAborted = errors.New("publish aborted")
)

// PushSource is a Source whose frames arrive from publishers instead of a
// decoder: a bounded FIFO ingest ring with admission control on the
// publish side. Any number of goroutines may Publish concurrently; the
// consuming side is the usual single-reader Source contract (the feed's
// scan loop calls Next).
//
// Close ends ingestion: publishers get ErrPushClosed, while Next continues
// to drain frames already admitted and then reports end-of-stream — which
// is exactly the graceful-drain contract feeds need (buffered frames are
// scanned, nothing admitted after the drain decision).
type PushSource struct {
	mu     sync.Mutex
	buf    []*video.Frame // FIFO ring
	head   int            // index of the oldest buffered frame
	count  int
	closed bool

	policy    PushPolicy
	published int64 // frames admitted into the ring
	dropped   int64 // frames evicted (drop-oldest) or refused (reject)

	// data is closed-and-replaced when a frame arrives or the source
	// closes; space likewise when a slot frees. Waiters grab the current
	// channel under mu and select on it, so every state change wakes all
	// parked publishers and the reader without missed signals.
	data  chan struct{}
	space chan struct{}
}

// NewPushSource builds a push source with the given ring capacity
// (minimum 1) and admission policy.
func NewPushSource(capacity int, policy PushPolicy) *PushSource {
	if capacity < 1 {
		capacity = 1
	}
	return &PushSource{
		buf:    make([]*video.Frame, capacity),
		policy: policy,
		data:   make(chan struct{}),
		space:  make(chan struct{}),
	}
}

// Publish offers a frame to the ring. Under PushBlock it waits for a free
// slot until abort fires (abort may be nil to wait indefinitely); under
// PushDropOldest it always succeeds, evicting the oldest buffered frame
// when full; under PushReject a full ring returns ErrPushRejected.
func (p *PushSource) Publish(f *video.Frame, abort <-chan struct{}) error {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return ErrPushClosed
		}
		if p.count < len(p.buf) {
			p.buf[(p.head+p.count)%len(p.buf)] = f
			p.count++
			p.published++
			p.signalLocked(&p.data)
			p.mu.Unlock()
			return nil
		}
		switch p.policy {
		case PushDropOldest:
			p.buf[p.head] = nil
			p.head = (p.head + 1) % len(p.buf)
			p.count--
			p.dropped++
			continue // the freed slot admits f on the next pass
		case PushReject:
			p.dropped++
			p.mu.Unlock()
			return ErrPushRejected
		}
		space := p.space
		p.mu.Unlock()
		select {
		case <-space:
		case <-abort:
			return ErrPushAborted
		}
		p.mu.Lock()
	}
}

// Next implements Source: it blocks until a frame is available or the
// source is closed and fully drained.
func (p *PushSource) Next() (*video.Frame, bool) {
	p.mu.Lock()
	for {
		if p.count > 0 {
			f := p.buf[p.head]
			p.buf[p.head] = nil
			p.head = (p.head + 1) % len(p.buf)
			p.count--
			p.signalLocked(&p.space)
			p.mu.Unlock()
			return f, true
		}
		if p.closed {
			p.mu.Unlock()
			return nil, false
		}
		data := p.data
		p.mu.Unlock()
		<-data
		p.mu.Lock()
	}
}

// Close ends ingestion. Blocked publishers and the reader wake; frames
// already admitted still flow to the reader before Next reports
// end-of-stream. Close is idempotent.
func (p *PushSource) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.signalLocked(&p.data)
		p.signalLocked(&p.space)
	}
	p.mu.Unlock()
}

// Drain is Close under the name feeds look for: stopping ingestion while
// letting buffered frames drain is precisely a feed's graceful drain.
func (p *PushSource) Drain() { p.Close() }

// Closed reports whether ingestion has ended.
func (p *PushSource) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Depth returns the number of frames currently buffered.
func (p *PushSource) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Capacity returns the ring size.
func (p *PushSource) Capacity() int { return len(p.buf) }

// Policy returns the admission policy.
func (p *PushSource) Policy() PushPolicy { return p.policy }

// Published returns the total number of frames admitted into the ring.
func (p *PushSource) Published() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.published
}

// Dropped returns the total number of frames lost to admission control
// (evicted under drop-oldest, refused under reject).
func (p *PushSource) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// signalLocked wakes everyone waiting on *ch and installs a fresh channel
// for future waiters. Callers hold p.mu.
func (p *PushSource) signalLocked(ch *chan struct{}) {
	close(*ch)
	*ch = make(chan struct{})
}
