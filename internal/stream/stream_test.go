package stream

import (
	"errors"
	"math"
	"testing"

	"vmq/internal/video"
)

func TestHoppingWindowsTile(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 1))
	wins, err := HoppingWindows(src, 100, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 5 {
		t.Fatalf("got %d windows", len(wins))
	}
	for i, w := range wins {
		if len(w.Frames) != 100 {
			t.Fatalf("window %d has %d frames", i, len(w.Frames))
		}
		if w.Start != i*100 {
			t.Fatalf("window %d start = %d", i, w.Start)
		}
		if w.Frames[0].Index != i*100 {
			t.Fatalf("window %d first frame index = %d", i, w.Frames[0].Index)
		}
	}
}

func TestHoppingWindowsWithGap(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 2))
	wins, err := HoppingWindows(src, 10, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wins[1].Frames[0].Index != 25 || wins[2].Frames[0].Index != 50 {
		t.Fatalf("gap handling wrong: %d, %d", wins[1].Frames[0].Index, wins[2].Frames[0].Index)
	}
}

func TestHoppingWindowsErrors(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 3))
	if _, err := HoppingWindows(src, 0, 1, 1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := HoppingWindows(src, 10, 5, 1); err == nil {
		t.Error("overlapping windows accepted")
	}
	if _, err := HoppingWindows(src, 10, 10, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSlidingWindowsOverlap(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 4))
	wins, err := SlidingWindows(src, 10, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 4 {
		t.Fatalf("got %d windows", len(wins))
	}
	for i, w := range wins {
		if len(w.Frames) != 10 {
			t.Fatalf("window %d size %d", i, len(w.Frames))
		}
		if w.Start != i*3 || w.Frames[0].Index != i*3 {
			t.Fatalf("window %d starts at %d (frame %d)", i, w.Start, w.Frames[0].Index)
		}
	}
	// Overlapping region is shared: frames 3..9 of window 0 equal frames
	// 0..6 of window 1.
	for j := 0; j < 7; j++ {
		if wins[0].Frames[j+3] != wins[1].Frames[j] {
			t.Fatalf("overlap frame %d not shared", j)
		}
	}
}

func TestSlidingWindowsDelegatesWhenNonOverlapping(t *testing.T) {
	src := FromStream(video.NewStream(video.Jackson(), 5))
	wins, err := SlidingWindows(src, 5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wins[2].Start != 10 {
		t.Fatalf("delegation wrong: start %d", wins[2].Start)
	}
	if _, err := SlidingWindows(src, 0, 1, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestUniformSamplerDistinctAndInRange(t *testing.T) {
	s := NewUniformSampler(1)
	for trial := 0; trial < 50; trial++ {
		idx := s.Sample(100, 20)
		if len(idx) != 20 {
			t.Fatalf("got %d indices", len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= 100 {
				t.Fatalf("index out of range: %d", i)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
	if got := s.Sample(5, 10); len(got) != 5 {
		t.Fatalf("k>n should clamp: %d", len(got))
	}
	if got := s.Sample(5, 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestUniformSamplerUniformity(t *testing.T) {
	// Each index should be selected with probability k/n.
	s := NewUniformSampler(7)
	const n, k, reps = 20, 5, 8000
	counts := make([]int, n)
	for r := 0; r < reps; r++ {
		for _, i := range s.Sample(n, k) {
			counts[i]++
		}
	}
	want := float64(reps) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("index %d selected %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSystematicSamplerSpread(t *testing.T) {
	s := NewSystematicSampler(3)
	idx := s.Sample(100, 10)
	if len(idx) != 10 {
		t.Fatalf("got %d indices", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		gap := idx[i] - idx[i-1]
		if gap < 8 || gap > 12 {
			t.Fatalf("systematic gap %d not ~10", gap)
		}
	}
	if got := s.Sample(3, 5); len(got) != 3 {
		t.Fatal("clamp failed")
	}
	if got := s.Sample(10, 0); got != nil {
		t.Fatal("k=0 not nil")
	}
}

func TestStratifiedSamplerOnePerStratum(t *testing.T) {
	s := NewStratifiedSampler(1)
	for trial := 0; trial < 50; trial++ {
		idx := s.Sample(100, 10)
		if len(idx) != 10 {
			t.Fatalf("got %d indices", len(idx))
		}
		for i, v := range idx {
			if v < i*10 || v >= (i+1)*10 {
				t.Fatalf("index %d = %d outside stratum [%d,%d)", i, v, i*10, (i+1)*10)
			}
		}
	}
	if got := s.Sample(5, 8); len(got) != 5 {
		t.Fatal("k>n clamp failed")
	}
	if got := s.Sample(10, 0); got != nil {
		t.Fatal("k=0 not nil")
	}
	// Uneven strata still produce k distinct-stratum draws.
	idx := s.Sample(7, 3)
	if len(idx) != 3 || idx[0] >= idx[1]+3 {
		t.Fatalf("uneven strata sample = %v", idx)
	}
}

// For a smooth (autocorrelated) signal the stratified mean estimator has
// lower variance than the uniform one — the reason to prefer it on video.
func TestStratifiedBeatsUniformOnSmoothSignal(t *testing.T) {
	const n, k, reps = 1000, 20, 400
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = float64(i) / n * 10 // strong trend = worst case for uniform
	}
	variance := func(s Sampler) float64 {
		var sum, sq float64
		for r := 0; r < reps; r++ {
			var m float64
			for _, idx := range s.Sample(n, k) {
				m += signal[idx]
			}
			m /= k
			sum += m
			sq += m * m
		}
		mean := sum / reps
		return sq/reps - mean*mean
	}
	vu := variance(NewUniformSampler(5))
	vs := variance(NewStratifiedSampler(5))
	if vs >= vu/2 {
		t.Fatalf("stratified variance %v not well below uniform %v", vs, vu)
	}
}

func TestReservoirUniform(t *testing.T) {
	// Offer 0..99 into a k=10 reservoir many times; each item should be
	// retained with probability 10/100.
	const n, k, reps = 100, 10, 5000
	counts := make([]int, n)
	for r := 0; r < reps; r++ {
		res := NewReservoir[int](k, uint64(r))
		for i := 0; i < n; i++ {
			res.Offer(i)
		}
		if res.Seen() != n || len(res.Items) != k {
			t.Fatalf("reservoir state wrong: seen=%d len=%d", res.Seen(), len(res.Items))
		}
		for _, it := range res.Items {
			counts[it]++
		}
	}
	want := float64(reps) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("item %d retained %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestReservoirUnderfill(t *testing.T) {
	res := NewReservoir[string](5, 1)
	res.Offer("a")
	res.Offer("b")
	if len(res.Items) != 2 {
		t.Fatalf("underfilled reservoir has %d items", len(res.Items))
	}
}

func TestSliceSource(t *testing.T) {
	frames := video.NewStream(video.Jackson(), 9).Take(5)
	src := &SliceSource{Frames: frames}
	if src.Remaining() != 5 {
		t.Fatal("Remaining wrong")
	}
	f, ok := src.Next()
	if !ok || f != frames[0] || src.Remaining() != 4 {
		t.Fatal("Next wrong")
	}
	wins, err := HoppingWindows(src, 2, 2, 2)
	if err != nil || len(wins) != 2 {
		t.Fatalf("windows over slice source failed: %v", err)
	}
	// Exhausted: every further Next reports EOF, never panics.
	for i := 0; i < 3; i++ {
		if f, ok := src.Next(); ok || f != nil {
			t.Fatalf("exhausted Next returned (%v, %v)", f, ok)
		}
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining after exhaustion = %d", src.Remaining())
	}
}

func TestTakeStopsAtExhaustion(t *testing.T) {
	frames := video.NewStream(video.Jackson(), 10).Take(3)
	got := Take(&SliceSource{Frames: frames}, 10)
	if len(got) != 3 || got[0] != frames[0] || got[2] != frames[2] {
		t.Fatalf("Take over short source = %d frames", len(got))
	}
	if got := Take(FromStream(video.NewStream(video.Jackson(), 10)), 7); len(got) != 7 {
		t.Fatalf("Take over unbounded source = %d frames", len(got))
	}
}

func TestHoppingWindowsExhaustion(t *testing.T) {
	frames := video.NewStream(video.Jackson(), 11).Take(25)
	src := &SliceSource{Frames: frames}
	wins, err := HoppingWindows(src, 10, 10, 4)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("short source error = %v, want ErrExhausted", err)
	}
	if len(wins) != 2 {
		t.Fatalf("complete windows = %d, want 2", len(wins))
	}
	for i, w := range wins {
		if len(w.Frames) != 10 || w.Start != i*10 {
			t.Fatalf("window %d malformed: %d frames at %d", i, len(w.Frames), w.Start)
		}
	}
	// A source holding exactly n full windows succeeds: running dry in the
	// trailing gap is not an error once every window is complete.
	src2 := &SliceSource{Frames: frames[:20]}
	wins2, err := HoppingWindows(src2, 5, 15, 2)
	if err != nil || len(wins2) != 2 {
		t.Fatalf("exact-fit gapped windows: %v (%d wins)", err, len(wins2))
	}
	// On a longer source the trailing gap is consumed, so repeated calls
	// stay on the ADVANCE grid.
	src4 := FromStream(video.NewStream(video.Jackson(), 13))
	if _, err := HoppingWindows(src4, 5, 15, 2); err != nil {
		t.Fatal(err)
	}
	more, err := HoppingWindows(src4, 5, 15, 1)
	if err != nil || more[0].Frames[0].Index != 30 {
		t.Fatalf("second call off the hop grid: %v, first index %d", err, more[0].Frames[0].Index)
	}
	// Exhaustion inside the gap still reports the typed error.
	src3 := &SliceSource{Frames: frames[:12]}
	if _, err := HoppingWindows(src3, 5, 15, 2); !errors.Is(err, ErrExhausted) {
		t.Fatalf("gap exhaustion error = %v", err)
	}
}

func TestSlidingWindowsExhaustion(t *testing.T) {
	frames := video.NewStream(video.Jackson(), 12).Take(14)
	src := &SliceSource{Frames: frames}
	wins, err := SlidingWindows(src, 10, 2, 5)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("short source error = %v, want ErrExhausted", err)
	}
	if len(wins) != 3 {
		t.Fatalf("complete windows = %d, want 3 (starts 0,2,4)", len(wins))
	}
	for i, w := range wins {
		if w.Start != i*2 || len(w.Frames) != 10 {
			t.Fatalf("window %d malformed", i)
		}
	}
}
