// Package stream provides the streaming plumbing of Section III: hopping
// and sliding windows over frame sequences (the paper's WINDOW HOPPING
// clause) and the frame samplers that back the Monte Carlo aggregate
// estimators — uniform random sampling without replacement, systematic
// sampling, and reservoir sampling for unbounded streams.
package stream

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"vmq/internal/video"
)

// ErrExhausted reports that a pull-based source ran out of frames before
// the caller got everything it asked for. Window builders wrap it with
// positional detail; callers test with errors.Is.
var ErrExhausted = errors.New("stream: source exhausted")

// Source yields frames one at a time. Next returns the next frame and
// true, or (nil, false) once the source is exhausted; after the first
// false return every subsequent call must also return false. Unbounded
// generators (such as the frame simulator) never return false — wrap them
// with FromStream.
type Source interface {
	Next() (*video.Frame, bool)
}

// streamSource adapts the unbounded frame simulator to Source.
type streamSource struct{ s *video.Stream }

func (ss streamSource) Next() (*video.Frame, bool) { return ss.s.Next(), true }

// FromStream adapts a *video.Stream (an unbounded generator) to Source.
func FromStream(s *video.Stream) Source { return streamSource{s} }

// Take pulls up to n frames from src, stopping early on exhaustion.
func Take(src Source, n int) []*video.Frame {
	out := make([]*video.Frame, 0, n)
	for i := 0; i < n; i++ {
		f, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}

// Window is a contiguous batch of frames.
type Window struct {
	Start  int // index of the first frame in the stream
	Frames []*video.Frame
}

// HoppingWindows partitions the next n·size frames of src into n windows
// of the given size advancing by advance frames (the paper's
// WINDOW HOPPING (SIZE s, ADVANCE BY a)). When advance == size the windows
// tile the stream (a batch window). advance > size skips frames; advance
// < size is rejected because a pull-based source cannot rewind. If src
// runs out before n full windows are built, the complete windows are
// returned alongside an error wrapping ErrExhausted. The gap after the
// final window is consumed too (so repeated calls on a shared source stay
// on the ADVANCE grid), but running dry inside that trailing gap is not
// an error — every requested window is already complete.
func HoppingWindows(src Source, size, advance, n int) ([]Window, error) {
	if size <= 0 || advance <= 0 || n <= 0 {
		return nil, fmt.Errorf("stream: invalid window spec size=%d advance=%d n=%d", size, advance, n)
	}
	if advance < size {
		return nil, fmt.Errorf("stream: overlapping hopping windows (advance %d < size %d) need a buffered source", advance, size)
	}
	out := make([]Window, 0, n)
	pos := 0
	for w := 0; w < n; w++ {
		win := Window{Start: pos, Frames: make([]*video.Frame, 0, size)}
		for i := 0; i < size; i++ {
			f, ok := src.Next()
			if !ok {
				return out, fmt.Errorf("%w: window %d of %d needs %d frames, got %d", ErrExhausted, w+1, n, size, i)
			}
			win.Frames = append(win.Frames, f)
		}
		pos += size
		out = append(out, win)
		for i := size; i < advance; i++ {
			if _, ok := src.Next(); !ok {
				if w == n-1 {
					return out, nil // all windows complete; only the trailing gap ran dry
				}
				return out, fmt.Errorf("%w: in the gap before window %d of %d", ErrExhausted, w+2, n)
			}
			pos++
		}
	}
	return out, nil
}

// SlidingWindows materialises n overlapping windows of the given size
// advancing by advance frames (advance < size allowed), buffering the
// overlap so the pull-based source is read exactly once. It complements
// HoppingWindows, which streams non-overlapping batches without buffering.
// If src runs out early, the complete windows are returned alongside an
// error wrapping ErrExhausted.
func SlidingWindows(src Source, size, advance, n int) ([]Window, error) {
	if size <= 0 || advance <= 0 || n <= 0 {
		return nil, fmt.Errorf("stream: invalid window spec size=%d advance=%d n=%d", size, advance, n)
	}
	if advance >= size {
		return HoppingWindows(src, size, advance, n)
	}
	out := make([]Window, 0, n)
	buf := make([]*video.Frame, 0, size)
	pos := 0 // stream index of buf[0]
	for w := 0; w < n; w++ {
		for len(buf) < size {
			f, ok := src.Next()
			if !ok {
				return out, fmt.Errorf("%w: window %d of %d needs %d frames, got %d", ErrExhausted, w+1, n, size, len(buf))
			}
			buf = append(buf, f)
		}
		frames := make([]*video.Frame, size)
		copy(frames, buf)
		out = append(out, Window{Start: pos, Frames: frames})
		buf = buf[:copy(buf, buf[advance:])]
		pos += advance
	}
	return out, nil
}

// Sampler selects a subset of frame indices from a window of length n.
type Sampler interface {
	// Sample returns k distinct indices in [0, n).
	Sample(n, k int) []int
}

// UniformSampler draws k indices uniformly without replacement.
type UniformSampler struct {
	rng *rand.Rand
}

// NewUniformSampler returns a deterministic uniform sampler.
func NewUniformSampler(seed uint64) *UniformSampler {
	return &UniformSampler{rng: rand.New(rand.NewPCG(seed, 0xa5a5a5a5a5a5a5a5))}
}

// Sample implements Sampler via a partial Fisher–Yates shuffle.
func (u *UniformSampler) Sample(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + u.rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SystematicSampler picks every n/k-th frame starting from a random
// offset — the usual choice for temporally correlated video where spread
// beats pure randomness.
type SystematicSampler struct {
	rng *rand.Rand
}

// NewSystematicSampler returns a deterministic systematic sampler.
func NewSystematicSampler(seed uint64) *SystematicSampler {
	return &SystematicSampler{rng: rand.New(rand.NewPCG(seed, 0x5bd1e9955bd1e995))}
}

// Sample implements Sampler.
func (s *SystematicSampler) Sample(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	step := float64(n) / float64(k)
	off := s.rng.Float64() * step
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		idx := int(off + float64(i)*step)
		if idx >= n {
			idx = n - 1
		}
		out = append(out, idx)
	}
	return out
}

// StratifiedSampler divides the window into k contiguous temporal strata
// and draws one uniform index from each. For temporally correlated video
// (where neighbouring frames are nearly identical) stratification removes
// the between-strata component of the sampling variance, the classic
// variance-reduction result from the approximate-query-processing
// literature the paper builds on.
type StratifiedSampler struct {
	rng *rand.Rand
}

// NewStratifiedSampler returns a deterministic stratified sampler.
func NewStratifiedSampler(seed uint64) *StratifiedSampler {
	return &StratifiedSampler{rng: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Sample implements Sampler: one uniform draw per stratum.
func (s *StratifiedSampler) Sample(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if hi <= lo {
			hi = lo + 1
		}
		out = append(out, lo+s.rng.IntN(hi-lo))
	}
	return out
}

// Reservoir maintains a uniform sample of size k over an unbounded stream
// of items (classic Algorithm R).
type Reservoir[T any] struct {
	K     int
	Items []T
	seen  int
	rng   *rand.Rand
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir[T any](k int, seed uint64) *Reservoir[T] {
	return &Reservoir[T]{K: k, rng: rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))}
}

// Offer presents one item to the reservoir.
func (r *Reservoir[T]) Offer(item T) {
	r.seen++
	if len(r.Items) < r.K {
		r.Items = append(r.Items, item)
		return
	}
	j := r.rng.IntN(r.seen)
	if j < r.K {
		r.Items[j] = item
	}
}

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int { return r.seen }

// SliceSource adapts a pre-materialised frame slice to Source. Next
// returns (nil, false) once the slice is exhausted.
type SliceSource struct {
	Frames []*video.Frame
	pos    int
}

// Next implements Source.
func (s *SliceSource) Next() (*video.Frame, bool) {
	if s.pos >= len(s.Frames) {
		return nil, false
	}
	f := s.Frames[s.pos]
	s.pos++
	return f, true
}

// Remaining returns how many frames are left.
func (s *SliceSource) Remaining() int { return len(s.Frames) - s.pos }
