package stream

import (
	"errors"
	"sync"
	"testing"
	"time"

	"vmq/internal/video"
)

func pushFrames(n int) []*video.Frame {
	out := make([]*video.Frame, n)
	for i := range out {
		out[i] = &video.Frame{CameraID: "push", Index: i}
	}
	return out
}

// A block-policy source delivers every published frame in order, and a
// publisher parked on a full ring resumes when the reader frees a slot.
func TestPushSourceBlockDeliversInOrder(t *testing.T) {
	src := NewPushSource(4, PushBlock)
	frames := pushFrames(64)
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := src.Publish(f, nil); err != nil {
				done <- err
				return
			}
		}
		src.Close()
		done <- nil
	}()
	for i := 0; ; i++ {
		f, ok := src.Next()
		if !ok {
			if i != len(frames) {
				t.Fatalf("stream ended after %d frames, want %d", i, len(frames))
			}
			break
		}
		if f.Index != i {
			t.Fatalf("frame %d has index %d, want in-order delivery", i, f.Index)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("publisher: %v", err)
	}
	if got := src.Published(); got != int64(len(frames)) {
		t.Fatalf("published = %d, want %d", got, len(frames))
	}
	if got := src.Dropped(); got != 0 {
		t.Fatalf("dropped = %d, want 0 under block", got)
	}
}

// A blocked publisher aborts with ErrPushAborted when its abort channel
// fires before a slot frees.
func TestPushSourceBlockAborts(t *testing.T) {
	src := NewPushSource(1, PushBlock)
	if err := src.Publish(&video.Frame{}, nil); err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- src.Publish(&video.Frame{}, abort) }()
	select {
	case err := <-errc:
		t.Fatalf("publish on a full ring returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(abort)
	if err := <-errc; !errors.Is(err, ErrPushAborted) {
		t.Fatalf("aborted publish error = %v, want ErrPushAborted", err)
	}
}

// Drop-oldest keeps the freshest frames: publishing 10 into a capacity-3
// ring with no reader leaves exactly the last 3, counting the evictions.
func TestPushSourceDropOldestKeepsFreshest(t *testing.T) {
	src := NewPushSource(3, PushDropOldest)
	for _, f := range pushFrames(10) {
		if err := src.Publish(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	var got []int
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, f.Index)
	}
	if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("surviving frames = %v, want [7 8 9]", got)
	}
	if d := src.Dropped(); d != 7 {
		t.Fatalf("dropped = %d, want 7", d)
	}
}

// Reject refuses frames beyond capacity without disturbing the ring.
func TestPushSourceReject(t *testing.T) {
	src := NewPushSource(2, PushReject)
	if err := src.Publish(&video.Frame{Index: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(&video.Frame{Index: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(&video.Frame{Index: 2}, nil); !errors.Is(err, ErrPushRejected) {
		t.Fatalf("overflow publish error = %v, want ErrPushRejected", err)
	}
	if d := src.Depth(); d != 2 {
		t.Fatalf("depth after reject = %d, want 2", d)
	}
	if d := src.Dropped(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
}

// Close wakes blocked publishers with ErrPushClosed and lets the reader
// drain what was admitted before reporting end-of-stream.
func TestPushSourceCloseDrains(t *testing.T) {
	src := NewPushSource(2, PushBlock)
	for i := 0; i < 2; i++ {
		if err := src.Publish(&video.Frame{Index: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- src.Publish(&video.Frame{Index: 99}, nil) }()
	time.Sleep(10 * time.Millisecond)
	src.Close()
	if err := <-errc; !errors.Is(err, ErrPushClosed) {
		t.Fatalf("publish across close error = %v, want ErrPushClosed", err)
	}
	if err := src.Publish(&video.Frame{}, nil); !errors.Is(err, ErrPushClosed) {
		t.Fatalf("publish after close error = %v, want ErrPushClosed", err)
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d frames after close, want the 2 admitted", n)
	}
}

// Concurrent publishers under block: every admitted frame is delivered
// exactly once (run with -race).
func TestPushSourceConcurrentPublishers(t *testing.T) {
	const pubs, perPub = 8, 50
	src := NewPushSource(4, PushBlock)
	var wg sync.WaitGroup
	for i := 0; i < pubs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perPub; j++ {
				if err := src.Publish(&video.Frame{Index: id*perPub + j}, nil); err != nil {
					t.Errorf("publisher %d: %v", id, err)
					return
				}
			}
		}(i)
	}
	go func() {
		wg.Wait()
		src.Close()
	}()
	seen := make(map[int]bool, pubs*perPub)
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if seen[f.Index] {
			t.Fatalf("frame %d delivered twice", f.Index)
		}
		seen[f.Index] = true
	}
	if len(seen) != pubs*perPub {
		t.Fatalf("delivered %d distinct frames, want %d", len(seen), pubs*perPub)
	}
}

// ParsePushPolicy accepts the three policies (empty defaults to block)
// and rejects junk.
func TestParsePushPolicy(t *testing.T) {
	for in, want := range map[string]PushPolicy{
		"": PushBlock, "block": PushBlock,
		"drop-oldest": PushDropOldest, "reject": PushReject,
	} {
		got, err := ParsePushPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePushPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePushPolicy("nonsense"); err == nil {
		t.Fatal("junk policy accepted")
	}
}
