// Package simclock provides virtual-time cost accounting for the query
// engine and the experiment harness.
//
// The paper's headline results are ratios of per-frame inference latencies
// (IC filter 1.5 ms, OD filter 1.9 ms, full YOLOv2 15 ms, Mask R-CNN
// 200 ms) multiplied by the number of frames each operator touches. We do
// not have the authors' GPU, so operators charge their published per-frame
// cost to a Clock; the resulting virtual durations reproduce the paper's
// arithmetic exactly while Go benchmarks separately report the real CPU
// cost of our own code.
package simclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Cost is a named per-invocation virtual cost.
type Cost struct {
	Name    string
	PerCall time.Duration
}

// Published per-frame costs from the paper (Section IV).
var (
	// CostICFilter is the latency of the first five VGG19 layers plus the
	// IC branch (Section IV: ~1.5 ms/frame).
	CostICFilter = Cost{"ic-filter", 1500 * time.Microsecond}
	// CostODFilter is the latency of the first eight Darknet layers plus
	// the OD branch (Section IV: ~1.9 ms/frame).
	CostODFilter = Cost{"od-filter", 1900 * time.Microsecond}
	// CostYOLOFull is a full YOLOv2 pass (Section IV: 15 ms/frame).
	CostYOLOFull = Cost{"yolo-full", 15 * time.Millisecond}
	// CostMaskRCNN is a full Mask R-CNN pass (Section IV: 200 ms/frame).
	CostMaskRCNN = Cost{"mask-rcnn", 200 * time.Millisecond}
)

// Clock accumulates virtual time per named operator. The zero value is
// ready to use. Clock is safe for concurrent use.
type Clock struct {
	mu    sync.Mutex
	total time.Duration
	byOp  map[string]time.Duration
	calls map[string]int64
}

// New returns a fresh Clock.
func New() *Clock { return &Clock{} }

// Charge adds n invocations of c to the clock.
func (k *Clock) Charge(c Cost, n int64) {
	if k == nil || n == 0 {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.byOp == nil {
		k.byOp = make(map[string]time.Duration)
		k.calls = make(map[string]int64)
	}
	d := time.Duration(n) * c.PerCall
	k.total += d
	k.byOp[c.Name] += d
	k.calls[c.Name] += n
}

// Elapsed returns total virtual time charged so far.
func (k *Clock) Elapsed() time.Duration {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.total
}

// Op returns the virtual time charged to the named operator.
func (k *Clock) Op(name string) time.Duration {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.byOp[name]
}

// Calls returns the number of invocations charged to the named operator.
func (k *Clock) Calls(name string) int64 {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.calls[name]
}

// Reset zeroes the clock.
func (k *Clock) Reset() {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.total = 0
	k.byOp = nil
	k.calls = nil
}

// String summarises the clock as "total (op: dur xN, ...)" with operators
// sorted by name for deterministic output.
func (k *Clock) String() string {
	if k == nil {
		return "0s"
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	names := make([]string, 0, len(k.byOp))
	for n := range k.byOp {
		names = append(names, n)
	}
	sort.Strings(names)
	s := k.total.String()
	if len(names) > 0 {
		s += " ("
		for i, n := range names {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s: %v x%d", n, k.byOp[n], k.calls[n])
		}
		s += ")"
	}
	return s
}
