package simclock

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChargeAccumulates(t *testing.T) {
	k := New()
	k.Charge(CostMaskRCNN, 3)
	k.Charge(CostICFilter, 10)
	want := 3*200*time.Millisecond + 10*1500*time.Microsecond
	if got := k.Elapsed(); got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
	if got := k.Op("mask-rcnn"); got != 600*time.Millisecond {
		t.Fatalf("Op(mask-rcnn) = %v", got)
	}
	if got := k.Calls("ic-filter"); got != 10 {
		t.Fatalf("Calls(ic-filter) = %v", got)
	}
}

func TestZeroAndNil(t *testing.T) {
	var k *Clock
	k.Charge(CostMaskRCNN, 1) // must not panic
	if k.Elapsed() != 0 || k.Op("x") != 0 || k.Calls("x") != 0 {
		t.Fatal("nil clock not zero")
	}
	if k.String() != "0s" {
		t.Fatalf("nil String = %q", k.String())
	}
	var z Clock
	z.Charge(CostICFilter, 0)
	if z.Elapsed() != 0 {
		t.Fatal("zero charge changed clock")
	}
}

func TestReset(t *testing.T) {
	k := New()
	k.Charge(CostYOLOFull, 5)
	k.Reset()
	if k.Elapsed() != 0 || k.Calls("yolo-full") != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestStringDeterministic(t *testing.T) {
	k := New()
	k.Charge(CostODFilter, 2)
	k.Charge(CostMaskRCNN, 1)
	s := k.String()
	if !strings.Contains(s, "mask-rcnn") || !strings.Contains(s, "od-filter") {
		t.Fatalf("String missing ops: %q", s)
	}
	// mask-rcnn sorts before od-filter.
	if strings.Index(s, "mask-rcnn") > strings.Index(s, "od-filter") {
		t.Fatalf("String not sorted: %q", s)
	}
}

func TestConcurrentCharge(t *testing.T) {
	k := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				k.Charge(CostICFilter, 1)
			}
		}()
	}
	wg.Wait()
	if got := k.Calls("ic-filter"); got != 8000 {
		t.Fatalf("Calls = %d, want 8000", got)
	}
}

func TestPublishedCosts(t *testing.T) {
	// Guard against accidental edits to the paper's constants.
	if CostICFilter.PerCall != 1500*time.Microsecond {
		t.Error("IC filter cost drifted from paper (1.5ms)")
	}
	if CostODFilter.PerCall != 1900*time.Microsecond {
		t.Error("OD filter cost drifted from paper (1.9ms)")
	}
	if CostYOLOFull.PerCall != 15*time.Millisecond {
		t.Error("YOLO cost drifted from paper (15ms)")
	}
	if CostMaskRCNN.PerCall != 200*time.Millisecond {
		t.Error("Mask R-CNN cost drifted from paper (200ms)")
	}
}
