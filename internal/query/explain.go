package query

import (
	"fmt"
	"strings"
	"time"

	"vmq/internal/filters"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

// Describe renders a human-readable execution plan for the bound query:
// the predicate tree annotated with which filter serves each leaf, the
// tolerance configuration and the cascade cost model. It is what
// `vmq query -explain` prints.
func (p *Plan) Describe(backend filters.Backend, tol Tolerances) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for: %s\n", p.Query)
	fmt.Fprintf(&b, "dataset:  %s (%.1f obj/frame)\n", p.Profile.Name, p.Profile.MeanObjs)
	tech := "none (brute force)"
	filterCost := time.Duration(0)
	if backend != nil {
		tech = backend.Technique().String()
		filterCost = backend.Technique().Cost().PerCall
	}
	fmt.Fprintf(&b, "filters:  %s, tolerances %s\n", tech, tol)
	b.WriteString("cascade:\n")
	if p.Where == nil {
		b.WriteString("  (no predicate: every frame confirmed by detector)\n")
	} else {
		describeExpr(&b, p.Where, 1)
	}
	if p.Agg != nil {
		target := video.Class(p.Agg.Class).String()
		if p.Agg.Color != video.AnyColor {
			target += "[" + p.Agg.Color.String() + "]"
		}
		where := "whole frame"
		if p.Agg.Region != nil {
			where = "region"
		}
		fmt.Fprintf(&b, "aggregate: AVG count of %s over %s (detector on samples, CLF cells as control)\n", target, where)
	}
	fmt.Fprintf(&b, "cost model: %v/frame filter + %v/frame detector on passed frames\n",
		filterCost, simclock.CostMaskRCNN.PerCall)
	return b.String()
}

func describeExpr(b *strings.Builder, e BoundExpr, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n := e.(type) {
	case *boundAnd:
		fmt.Fprintf(b, "%sAND\n", indent)
		describeExpr(b, n.l, depth+1)
		describeExpr(b, n.r, depth+1)
	case *boundOr:
		fmt.Fprintf(b, "%sOR\n", indent)
		describeExpr(b, n.l, depth+1)
		describeExpr(b, n.r, depth+1)
	case *boundNot:
		fmt.Fprintf(b, "%sNOT (deferred to detector; filters never prune negations)\n", indent)
		describeExpr(b, n.e, depth+1)
	case *boundCount:
		target := "*"
		filter := "CF"
		if !n.all {
			target = n.class.String()
			if n.color != video.AnyColor {
				target += "[" + n.color.String() + "]"
				filter = "CCF upper-bound (colour invisible to filters)"
			} else {
				filter = "CCF"
			}
		}
		fmt.Fprintf(b, "%sCOUNT(%s) %s %d   <- %s\n", indent, target, n.op, n.value, filter)
	case *boundSpatial:
		a, bb := n.aClass.String(), n.bClass.String()
		if n.aColor != video.AnyColor {
			a += "[" + n.aColor.String() + "]"
		}
		if n.bColor != video.AnyColor {
			bb += "[" + n.bColor.String() + "]"
		}
		fmt.Fprintf(b, "%s%s %s %s   <- CLF activation maps + CCF cross-check\n", indent, a, n.rel, bb)
	case *boundRegionPred:
		target := n.class.String()
		if n.color != video.AnyColor {
			target += "[" + n.color.String() + "]"
		}
		neg := ""
		if n.negate {
			neg = "NOT "
		}
		fmt.Fprintf(b, "%s%sCOUNT(%s IN region) %s %d   <- CLF cells in region\n",
			indent, neg, target, n.op, n.value)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, e)
	}
}
