package query

import (
	"fmt"
	"runtime"
	"testing"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

func TestRunMultiMatchesSequential(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	tol := Tolerances{Count: 1}

	const cameras = 4
	feeds := make([]CameraFeed, cameras)
	sequential := make([]*Result, cameras)
	for i := 0; i < cameras; i++ {
		seed := uint64(100 + i)
		frames := video.NewStream(p, seed).Take(400)
		feeds[i] = CameraFeed{
			CameraID: fmt.Sprintf("cam%d", i),
			Frames:   frames,
			Backend:  filters.NewODFilter(p, seed, nil),
			Detector: detect.NewOracle(nil),
		}
		// Sequential reference with identical stacks.
		eng := &Engine{
			Backend:  filters.NewODFilter(p, seed, nil),
			Detector: detect.NewOracle(nil),
			Tol:      tol,
		}
		sequential[i] = eng.Run(plan, frames)
	}

	results := RunMulti(plan, feeds, tol)
	if len(results) != cameras {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.CameraID != fmt.Sprintf("cam%d", i) {
			t.Fatalf("results not sorted: %v", r.CameraID)
		}
		seq := sequential[i]
		if len(r.Result.Matched) != len(seq.Matched) ||
			r.Result.FilterPassed != seq.FilterPassed {
			t.Fatalf("cam%d: concurrent run diverged from sequential: %d/%d vs %d/%d",
				i, len(r.Result.Matched), r.Result.FilterPassed,
				len(seq.Matched), seq.FilterPassed)
		}
	}

	merged := MergeResults(results)
	if merged.FramesTotal != cameras*400 {
		t.Fatalf("merged frames = %d", merged.FramesTotal)
	}
	wantMatched := 0
	for _, s := range sequential {
		wantMatched += len(s.Matched)
	}
	if len(merged.Matched) != wantMatched {
		t.Fatalf("merged matches = %d, want %d", len(merged.Matched), wantMatched)
	}
	// Merged matches carry per-camera attribution: the same (camera,
	// index) pairs the per-camera results report, in camera order.
	pos := 0
	for i, s := range sequential {
		for _, idx := range s.Matched {
			want := FrameRef{CameraID: fmt.Sprintf("cam%d", i), Index: idx}
			if merged.Matched[pos] != want {
				t.Fatalf("merged.Matched[%d] = %+v, want %+v", pos, merged.Matched[pos], want)
			}
			pos++
		}
	}
	if merged.Selectivity() <= 0 || merged.Selectivity() > 1 {
		t.Fatalf("merged selectivity = %v", merged.Selectivity())
	}
}

// RunMulti surfaces the per-feed filter worker budget it grants each
// engine: an equal share of GOMAXPROCS, floored at one worker per feed.
func TestRunMultiSurfacesWorkerBudget(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), p)
	for _, cameras := range []int{1, 2, 64} {
		feeds := make([]CameraFeed, cameras)
		for i := range feeds {
			seed := uint64(300 + i)
			feeds[i] = CameraFeed{
				CameraID: fmt.Sprintf("cam%02d", i),
				Frames:   video.NewStream(p, seed).Take(20),
				Backend:  filters.NewODFilter(p, seed, nil),
				Detector: detect.NewOracle(nil),
			}
		}
		want := runtime.GOMAXPROCS(0) / cameras
		if want < 1 {
			want = 1 // the silent floor, now visible to callers
		}
		for _, r := range RunMulti(plan, feeds, Tolerances{}) {
			if r.Workers != want {
				t.Fatalf("%d cameras: %s granted %d workers, want %d",
					cameras, r.CameraID, r.Workers, want)
			}
		}
	}
}

// The virtual clock is safe under concurrent charging from all cameras.
func TestRunMultiSharedClock(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), p)
	clk := simclock.New()
	const cameras = 3
	feeds := make([]CameraFeed, cameras)
	for i := 0; i < cameras; i++ {
		seed := uint64(200 + i)
		feeds[i] = CameraFeed{
			CameraID: fmt.Sprintf("cam%d", i),
			Frames:   video.NewStream(p, seed).Take(200),
			Backend:  filters.NewODFilter(p, seed, clk),
			Detector: detect.NewOracle(clk),
		}
	}
	results := RunMulti(plan, feeds, Tolerances{})
	if got := clk.Calls("od-filter"); got != cameras*200 {
		t.Fatalf("shared clock filter calls = %d, want %d", got, cameras*200)
	}
	var detCalls int64
	for _, r := range results {
		detCalls += int64(r.Result.DetectorCalls)
	}
	if clk.Calls("mask-rcnn") != detCalls {
		t.Fatalf("shared clock detector calls = %d, want %d", clk.Calls("mask-rcnn"), detCalls)
	}
}
