package query

import (
	"fmt"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/stats"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// AggregateConfig controls Monte Carlo aggregate execution (Section III).
type AggregateConfig struct {
	// SampleSize is the number of frames the detector evaluates per
	// window.
	SampleSize int
	// Sampler picks the sampled frame indices (default uniform).
	Sampler stream.Sampler
	// MuFromFullWindow controls where the control means µ_Z come from.
	// When true (default and recommended) the cheap filters are evaluated
	// on every frame of the window so µ_Z is exact — the classic
	// cheap-proxy CV setup that yields genuine variance reduction on the
	// final estimate. When false, µ_Z is the sample mean of the controls
	// as the paper describes, which leaves the point estimate equal to the
	// plain sample mean and tightens only the variance accounting.
	MuFromFullWindow bool
}

// ControlValues extracts the control-variate vector for one frame from the
// filter output: one entry per predicate leaf (counts as estimates,
// spatial/region predicates as 0/1 indicators) plus the aggregation target
// estimate for AVG queries. This realises the paper's Figure 6: "for each
// frame suitable all suitable filters are applied and control variates is
// deployed to estimate the aggregate."
func ControlValues(plan *Plan, out *filters.Output, f *video.Frame) []float64 {
	var vals []float64
	var walk func(e BoundExpr)
	walk = func(e BoundExpr) {
		switch n := e.(type) {
		case *boundAnd:
			walk(n.l)
			walk(n.r)
		case *boundOr:
			walk(n.l)
			walk(n.r)
		case *boundNot:
			walk(n.e)
		case *boundCount:
			if n.all {
				vals = append(vals, out.Total)
			} else {
				vals = append(vals, out.Counts[n.class])
			}
		case *boundSpatial, *boundRegionPred:
			// Controls need correlation, not conservatism: Manhattan-1
			// tolerance maximises agreement with the detector-evaluated
			// truth by absorbing one-cell displacements.
			v := 0.0
			if e.EvalFilter(out, f.Bounds, Tolerances{Location: 1}) {
				v = 1
			}
			vals = append(vals, v)
		}
	}
	if plan.Where != nil {
		walk(plan.Where)
	}
	if plan.Agg != nil {
		vals = append(vals, plan.Agg.FilterRegionCount(out, f.Bounds))
	}
	if len(vals) == 0 {
		vals = []float64{out.Total}
	}
	return vals
}

// AggregateResult reports one window's estimate with and without control
// variates — the per-query rows of Table IV.
type AggregateResult struct {
	// WindowSize is the number of frames in the window.
	WindowSize int
	// Samples is the number of detector-evaluated frames.
	Samples int
	// Plain is the naive sampling estimate of the per-frame mean.
	Plain stats.Summary
	// CV is the control-variate estimate.
	CV stats.CVResult
	// Controls is the number of control variates used (1 = single CV).
	Controls int
	// TruePerFrameMean is the ground-truth per-frame mean over the window
	// (available because the substrate is a simulator), for error
	// reporting.
	TruePerFrameMean float64
	// VirtualTimePerSample is the simulated cost per detector sample
	// including its filter pass — Table IV's "Filter + Mask RCNN" column.
	VirtualTimePerSample time.Duration
}

// Estimate returns the CV point estimate of the windowed aggregate: the
// qualifying-frame count for COUNT(FRAMES) queries, or the per-frame mean
// for AVG queries.
func (r *AggregateResult) Estimate(kind vql.SelectKind) float64 {
	if kind == vql.SelectFrameCount {
		return r.CV.Estimate * float64(r.WindowSize)
	}
	return r.CV.Estimate
}

// RunAggregate executes a windowed aggregate over one window of frames.
// The per-frame quantity Y is the 0/1 predicate outcome for COUNT(FRAMES)
// queries or the aggregation-target count for AVG queries, measured by the
// detector on sampled frames; the filter outputs provide the (possibly
// multiple) control variates.
func RunAggregate(plan *Plan, frames []*video.Frame, backend filters.Backend, det detect.Detector, cfg AggregateConfig) (*AggregateResult, error) {
	if plan.Query.Select.Kind == vql.SelectFrames {
		return nil, fmt.Errorf("query: RunAggregate needs an aggregate SELECT, got FRAMES")
	}
	if cfg.SampleSize <= 0 {
		return nil, fmt.Errorf("query: non-positive sample size %d", cfg.SampleSize)
	}
	if cfg.Sampler == nil {
		cfg.Sampler = stream.NewUniformSampler(1)
	}
	n := len(frames)
	if n == 0 {
		return nil, fmt.Errorf("query: empty window")
	}
	if cfg.SampleSize > n {
		cfg.SampleSize = n
	}

	yOf := func(f *video.Frame, dets []detect.Detection) float64 {
		switch plan.Query.Select.Kind {
		case vql.SelectFrameCount:
			if plan.Where == nil || plan.Where.EvalExact(dets, f.Bounds) {
				return 1
			}
			return 0
		default: // SelectAvg
			if plan.Where != nil && !plan.Where.EvalExact(dets, f.Bounds) {
				return 0
			}
			return float64(plan.Agg.RegionCount(dets, f.Bounds))
		}
	}

	// Control vectors. With MuFromFullWindow the filters run over the whole
	// window (cheap) so µ_Z is exact; otherwise only sampled frames are
	// filtered and µ_Z falls back to the sample mean.
	d := len(ControlValues(plan, backend.Evaluate(frames[0]), frames[0]))
	muZ := make([]float64, d)
	controlAt := make(map[int][]float64, cfg.SampleSize)
	if cfg.MuFromFullWindow {
		// The full-window control scan goes through the backend's batch
		// path (batched GEMMs for trained backends; under the server's
		// shared scan, a memo fill all co-registered queries reuse) in
		// bounded chunks, so peak memory stays O(chunk) however large the
		// window is.
		const scanChunk = 64
		var outs []*filters.Output
		for start := 0; start < n; start += scanChunk {
			end := min(start+scanChunk, n)
			outs = filters.EvaluateBatchInto(backend, frames[start:end], outs[:0])
			for k, f := range frames[start:end] {
				z := ControlValues(plan, outs[k], f)
				controlAt[start+k] = z
				for j, v := range z {
					muZ[j] += v
				}
			}
		}
		for j := range muZ {
			muZ[j] /= float64(n)
		}
	}

	idx := cfg.Sampler.Sample(n, cfg.SampleSize)
	ys := make([]float64, len(idx))
	zs := make([][]float64, len(idx))
	for k, i := range idx {
		f := frames[i]
		z, ok := controlAt[i]
		if !ok {
			z = ControlValues(plan, backend.Evaluate(f), f)
		}
		zs[k] = z
		ys[k] = yOf(f, det.Detect(f))
	}
	if !cfg.MuFromFullWindow {
		for _, z := range zs {
			for j, v := range z {
				muZ[j] += v
			}
		}
		for j := range muZ {
			muZ[j] /= float64(len(zs))
		}
	}

	// Drop constant controls (they carry no information and would make the
	// covariance matrix singular).
	keep := make([]int, 0, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(zs))
		for k := range zs {
			col[k] = zs[k][j]
		}
		if stats.Summarize(col).Variance > 0 {
			keep = append(keep, j)
		}
	}

	res := &AggregateResult{
		WindowSize:           n,
		Samples:              len(idx),
		Plain:                stats.Summarize(ys),
		Controls:             len(keep),
		VirtualTimePerSample: det.Cost().PerCall + backend.Technique().Cost().PerCall,
	}
	truth := GroundTruth(plan, frames)
	switch plan.Query.Select.Kind {
	case vql.SelectFrameCount:
		for _, t := range truth {
			if t {
				res.TruePerFrameMean++
			}
		}
		res.TruePerFrameMean /= float64(n)
	default:
		for i, f := range frames {
			if truth[i] {
				res.TruePerFrameMean += float64(plan.Agg.RegionCount(truthDetections(f), f.Bounds))
			}
		}
		res.TruePerFrameMean /= float64(n)
	}

	if len(keep) == 0 {
		// No usable controls: fall back to the plain estimate.
		res.CV = stats.CVResult{
			Plain:     res.Plain,
			Estimate:  res.Plain.Mean,
			Variance:  res.Plain.Variance / float64(max(res.Plain.N, 1)),
			Reduction: 1,
		}
		return res, nil
	}

	if len(keep) == 1 {
		xs := make([]float64, len(zs))
		for k := range zs {
			xs[k] = zs[k][keep[0]]
		}
		cv, err := stats.ControlVariate(ys, xs, muZ[keep[0]])
		if err != nil {
			return nil, err
		}
		res.CV = cv
		return res, nil
	}

	zk := make([][]float64, len(zs))
	for k := range zs {
		row := make([]float64, len(keep))
		for jj, j := range keep {
			row[jj] = zs[k][j]
		}
		zk[k] = row
	}
	mu := make([]float64, len(keep))
	for jj, j := range keep {
		mu[jj] = muZ[j]
	}
	cv, err := stats.MultipleControlVariates(ys, zk, mu)
	if err != nil {
		// Near-singular sample covariance (e.g. duplicated controls):
		// retry with the first control alone.
		xs := make([]float64, len(zk))
		for k := range zk {
			xs[k] = zk[k][0]
		}
		single, serr := stats.ControlVariate(ys, xs, mu[0])
		if serr != nil {
			return nil, err
		}
		res.CV = single
		res.Controls = 1
		return res, nil
	}
	res.CV = cv
	return res, nil
}
