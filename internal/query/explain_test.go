package query

import (
	"strings"
	"testing"

	"vmq/internal/filters"
	"vmq/internal/video"
)

func TestDescribe(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson
		WHERE COUNT(car[red]) = 1 AND car LEFT OF person
		AND NOT person IN QUADRANT(UPPER LEFT) OR COUNT(*) >= 3`), p)
	backend := filters.NewODFilter(p, 1, nil)
	out := plan.Describe(backend, Tolerances{Count: 1, Location: 2})
	for _, want := range []string{
		"jackson",
		"OD",
		"CCF-1/CLF-2",
		"COUNT(car[red]) = 1",
		"colour invisible",
		"left-of",
		"CLF activation maps",
		"NOT (deferred to detector",
		"COUNT(*) >= 3",
		"cost model",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeAggregateAndBrute(t *testing.T) {
	p := video.Coral()
	plan := MustBind(parse(t, `SELECT AVG(COUNT(person IN QUADRANT(LOWER LEFT))) FROM coral`), p)
	out := plan.Describe(nil, Tolerances{})
	if !strings.Contains(out, "brute force") {
		t.Errorf("nil backend not described as brute force:\n%s", out)
	}
	if !strings.Contains(out, "no predicate") {
		t.Errorf("missing empty-predicate note:\n%s", out)
	}
	if !strings.Contains(out, "AVG count of person") {
		t.Errorf("missing aggregate description:\n%s", out)
	}
}
