package query

import (
	"math"
	"testing"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/geom"
	"vmq/internal/simclock"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

func parse(t *testing.T, src string) *vql.Query {
	t.Helper()
	q, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBindErrors(t *testing.T) {
	p := video.Jackson()
	cases := []string{
		`SELECT FRAMES FROM coral WHERE COUNT(car) = 1`,             // wrong source
		`SELECT FRAMES FROM jackson WHERE COUNT(unicorn) = 1`,       // unknown class
		`SELECT FRAMES FROM jackson WHERE COUNT(car[octarine]) = 1`, // unknown colour
		`SELECT FRAMES FROM jackson WHERE unicorn LEFT OF car`,      // unknown class in spatial
		`SELECT AVG(COUNT(unicorn)) FROM jackson`,                   // unknown agg class
	}
	for _, src := range cases {
		if _, err := Bind(parse(t, src), p); err == nil {
			t.Errorf("Bind(%q) unexpectedly succeeded", src)
		}
	}
}

func TestBindOK(t *testing.T) {
	p := video.Jackson()
	plan, err := Bind(parse(t, `SELECT FRAMES FROM jackson
		WHERE COUNT(car[red]) = 1 AND car RIGHT OF stop-sign AND person IN QUADRANT(LOWER LEFT)`), p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Where == nil {
		t.Fatal("Where not bound")
	}
}

func frameWith(objs ...video.Object) *video.Frame {
	return &video.Frame{
		CameraID: "t",
		Bounds:   geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448},
		Objects:  objs,
	}
}

func obj(cls video.Class, col video.Color, x, y float64) video.Object {
	return video.Object{Class: cls, Color: col, Box: geom.RectFromCenter(geom.Point{X: x, Y: y}, 40, 30)}
}

func TestEvalExactPredicates(t *testing.T) {
	p := video.Jackson()
	f := frameWith(
		obj(video.Car, video.Red, 100, 300),
		obj(video.Person, video.Green, 300, 300),
	)
	dets := truthDetections(f)
	cases := []struct {
		src  string
		want bool
	}{
		{`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car) = 2`, false},
		{`SELECT FRAMES FROM jackson WHERE COUNT(*) >= 2`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(*) > 2`, false},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car[red]) = 1`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car[blue]) = 1`, false},
		{`SELECT FRAMES FROM jackson WHERE car LEFT OF person`, true},
		{`SELECT FRAMES FROM jackson WHERE car RIGHT OF person`, false},
		{`SELECT FRAMES FROM jackson WHERE person RIGHT OF car`, true},
		{`SELECT FRAMES FROM jackson WHERE car[red] LEFT OF person`, true},
		{`SELECT FRAMES FROM jackson WHERE car[blue] LEFT OF person`, false},
		{`SELECT FRAMES FROM jackson WHERE car IN QUADRANT(LOWER LEFT)`, true},
		{`SELECT FRAMES FROM jackson WHERE car IN QUADRANT(UPPER RIGHT)`, false},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car IN QUADRANT(LOWER LEFT)) = 1`, true},
		{`SELECT FRAMES FROM jackson WHERE car NOT IN QUADRANT(UPPER RIGHT)`, true},
		{`SELECT FRAMES FROM jackson WHERE NOT COUNT(bus) > 0`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car) = 2 OR COUNT(person) = 1`, true},
		{`SELECT FRAMES FROM jackson WHERE COUNT(car) = 2 OR COUNT(person) = 2`, false},
		{`SELECT FRAMES FROM jackson WHERE car IN RECT(0, 200, 200, 448)`, true},
	}
	for _, c := range cases {
		plan := MustBind(parse(t, c.src), p)
		if got := plan.Where.EvalExact(dets, f.Bounds); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSpatialExcludesIdentity(t *testing.T) {
	// A single car is never left of itself.
	p := video.Jackson()
	f := frameWith(obj(video.Car, video.Red, 100, 100))
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE car LEFT OF car`), p)
	if plan.Where.EvalExact(truthDetections(f), f.Bounds) {
		t.Fatal("identity pair satisfied spatial predicate")
	}
	// Two cars do qualify.
	f2 := frameWith(obj(video.Car, video.Red, 100, 100), obj(video.Car, video.Blue, 300, 100))
	if !plan.Where.EvalExact(truthDetections(f2), f2.Bounds) {
		t.Fatal("two distinct cars did not satisfy car LEFT OF car")
	}
}

func TestFilterEvalTolerance(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 2`), p)
	out := &filters.Output{}
	out.Counts[video.Car] = 3.1 // rounds to 3
	if plan.Where.EvalFilter(out, p.Bounds(), Tolerances{}) {
		t.Fatal("exact tolerance passed off-by-one estimate")
	}
	if !plan.Where.EvalFilter(out, p.Bounds(), Tolerances{Count: 1}) {
		t.Fatal("CCF-1 rejected off-by-one estimate")
	}
	// Colour-constrained counts only prune from above.
	plan2 := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car[red]) = 2`), p)
	out2 := &filters.Output{}
	out2.Counts[video.Car] = 1 // class estimate below target: prune
	if plan2.Where.EvalFilter(out2, p.Bounds(), Tolerances{}) {
		t.Fatal("colour count should prune when class estimate below target")
	}
	out2.Counts[video.Car] = 5 // enough cars that 2 could be red
	if !plan2.Where.EvalFilter(out2, p.Bounds(), Tolerances{}) {
		t.Fatal("colour count pruned despite sufficient class estimate")
	}
}

func TestNotNeverPrunesAtFilter(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE NOT COUNT(car) = 1`), p)
	out := &filters.Output{}
	out.Counts[video.Car] = 1
	if !plan.Where.EvalFilter(out, p.Bounds(), Tolerances{}) {
		t.Fatal("NOT pruned at the filter stage")
	}
}

// The cascade with a permissive-enough tolerance must recover every true
// frame (recall 1.0) while calling the detector on far fewer frames.
func TestCascadeAccuracyAndSpeedup(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 21).Take(2000)
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1`), p)
	truth := GroundTruth(plan, frames)
	trueCount := 0
	for _, b := range truth {
		if b {
			trueCount++
		}
	}
	if trueCount == 0 {
		t.Skip("predicate never true in clip (unexpected)")
	}

	clk := simclock.New()
	eng := &Engine{
		Backend:  filters.NewODFilter(p, 1, clk),
		Detector: detect.NewOracle(clk),
		Tol:      Tolerances{}, // exact CCF, the paper's q3 configuration
	}
	res := eng.Run(plan, frames)
	if acc := Score(res, truth); acc < 0.97 {
		t.Fatalf("cascade recall = %v, want >= 0.97 (true frames: %d)", acc, trueCount)
	}
	if res.FilterPassed >= res.FramesTotal/2 {
		t.Fatalf("filter barely selective: %d/%d passed", res.FilterPassed, res.FramesTotal)
	}
	// All matched frames are genuinely true (oracle confirmation).
	for _, i := range res.Matched {
		if !truth[i] {
			t.Fatalf("false positive frame %d in results", i)
		}
	}
}

// Brute-force baseline agrees exactly with ground truth and costs ~200ms
// per frame of virtual time.
func TestBruteForceBaseline(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 22).Take(300)
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), p)
	clk := simclock.New()
	eng := &Engine{Detector: detect.NewOracle(clk)} // no backend
	res := eng.Run(plan, frames)
	truth := GroundTruth(plan, frames)
	if Score(res, truth) != 1 {
		t.Fatal("brute force missed true frames")
	}
	if res.DetectorCalls != 300 {
		t.Fatalf("brute force detector calls = %d", res.DetectorCalls)
	}
	if res.VirtualTime != 300*simclock.CostMaskRCNN.PerCall {
		t.Fatalf("virtual time = %v", res.VirtualTime)
	}
	if res.Selectivity() != 1 {
		t.Fatalf("selectivity = %v", res.Selectivity())
	}
}

func TestCascadeVirtualTimeFarBelowBruteForce(t *testing.T) {
	p := video.Detrac()
	frames := video.NewStream(p, 23).Take(1000)
	plan := MustBind(parse(t, `SELECT FRAMES FROM detrac
		WHERE COUNT(car) = 1 AND COUNT(bus) = 1`), p)
	eng := &Engine{
		Backend:  filters.NewODFilter(p, 1, nil),
		Detector: detect.NewOracle(nil),
		Tol:      Tolerances{Count: 1},
	}
	res := eng.Run(plan, frames)
	brute := time.Duration(len(frames)) * simclock.CostMaskRCNN.PerCall
	if res.VirtualTime*3 > brute {
		t.Fatalf("cascade time %v not well below brute force %v", res.VirtualTime, brute)
	}
}

func TestSpatialCascade(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 24).Take(1500)
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`), p)
	truth := GroundTruth(plan, frames)
	trueCount := 0
	for _, b := range truth {
		if b {
			trueCount++
		}
	}
	if trueCount == 0 {
		t.Skip("spatial predicate never true in clip")
	}
	eng := &Engine{
		Backend:  filters.NewODFilter(p, 1, nil),
		Detector: detect.NewOracle(nil),
		Tol:      Tolerances{Count: 1, Location: 2},
	}
	res := eng.Run(plan, frames)
	if acc := Score(res, truth); acc < 0.9 {
		t.Fatalf("spatial cascade recall = %v over %d true frames", acc, trueCount)
	}
}

// Failure injection: with an imperfect confirmation detector the cascade
// degrades gracefully — precision and recall fall in proportion to the
// detector's error rate rather than collapsing.
func TestCascadeWithNoisyConfirmation(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 31).Take(1500)
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	truth := GroundTruth(plan, frames)
	trueCount := 0
	for _, b := range truth {
		if b {
			trueCount++
		}
	}
	eng := &Engine{
		Backend:  filters.NewODFilter(p, 1, nil),
		Detector: detect.NewNoisy(detect.NewOracle(nil), 0.05, 2, 0, 7),
		Tol:      Tolerances{Count: 1},
	}
	res := eng.Run(plan, frames)
	// A 5% per-object miss rate flips COUNT(car)=1 on roughly 5% of true
	// frames (the single car goes missing); recall should track that.
	acc := Score(res, truth)
	if acc < 0.85 || acc > 1.0 {
		t.Fatalf("noisy-confirmation recall = %v over %d true frames", acc, trueCount)
	}
	// With miss-driven noise the detector can also fabricate matches
	// (2 cars -> 1 visible); precision stays high but need not be perfect.
	fp := 0
	for _, i := range res.Matched {
		if !truth[i] {
			fp++
		}
	}
	if len(res.Matched) > 0 && float64(fp)/float64(len(res.Matched)) > 0.2 {
		t.Fatalf("noisy confirmation produced %d/%d false positives", fp, len(res.Matched))
	}
}

func TestAggregateFrameCountCV(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 25).Take(3000)
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE car IN QUADRANT(LOWER RIGHT)
		WINDOW HOPPING (SIZE 3000, ADVANCE BY 3000)`), p)
	backend := filters.NewODFilter(p, 1, nil)
	res, err := RunAggregate(plan, frames, backend, detect.NewOracle(nil), AggregateConfig{
		SampleSize:       300,
		Sampler:          stream.NewUniformSampler(5),
		MuFromFullWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 300 || res.WindowSize != 3000 {
		t.Fatalf("sizes: %d/%d", res.Samples, res.WindowSize)
	}
	if res.CV.Reduction <= 1 {
		t.Fatalf("CV reduction = %v, want > 1", res.CV.Reduction)
	}
	// Estimate close to the true qualifying-frame count.
	est := res.Estimate(vql.SelectFrameCount)
	trueTotal := res.TruePerFrameMean * float64(res.WindowSize)
	if trueTotal > 0 && math.Abs(est-trueTotal) > trueTotal*0.25+30 {
		t.Fatalf("CV estimate %v far from truth %v", est, trueTotal)
	}
	if res.VirtualTimePerSample <= simclock.CostMaskRCNN.PerCall {
		t.Fatal("virtual time per sample should include the filter")
	}
}

func TestAggregateAvgWithRegion(t *testing.T) {
	p := video.Coral()
	frames := video.NewStream(p, 26).Take(1200)
	plan := MustBind(parse(t, `SELECT AVG(COUNT(person IN QUADRANT(LOWER LEFT))) FROM coral`), p)
	backend := filters.NewODFilter(p, 2, nil)
	res, err := RunAggregate(plan, frames, backend, detect.NewOracle(nil), AggregateConfig{
		SampleSize:       200,
		Sampler:          stream.NewUniformSampler(9),
		MuFromFullWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CV.Estimate-res.TruePerFrameMean) > 0.5 {
		t.Fatalf("avg estimate %v vs truth %v", res.CV.Estimate, res.TruePerFrameMean)
	}
	if res.CV.Reduction < 1 {
		t.Fatalf("reduction %v < 1", res.CV.Reduction)
	}
}

func TestMultipleControlsUsed(t *testing.T) {
	p := video.Detrac()
	frames := video.NewStream(p, 27).Take(1500)
	// Two predicate leaves -> two controls (the paper's multiple-CV case).
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM detrac
		WHERE COUNT(car) >= 3 AND car LEFT OF bus
		WINDOW HOPPING (SIZE 1500, ADVANCE BY 1500)`), p)
	backend := filters.NewODFilter(p, 3, nil)
	res, err := RunAggregate(plan, frames, backend, detect.NewOracle(nil), AggregateConfig{
		SampleSize:       250,
		Sampler:          stream.NewUniformSampler(11),
		MuFromFullWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Controls < 2 {
		t.Fatalf("controls = %d, want >= 2", res.Controls)
	}
	if len(res.CV.Beta) != res.Controls {
		t.Fatalf("beta dims = %d, controls = %d", len(res.CV.Beta), res.Controls)
	}
}

func TestRunWindowsHopping(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE car IN QUADRANT(LOWER RIGHT)
		WINDOW HOPPING (SIZE 800, ADVANCE BY 800)`), p)
	src := stream.FromStream(video.NewStream(p, 33))
	results, err := RunWindows(plan, src, filters.NewODFilter(p, 1, nil), detect.NewOracle(nil), 3,
		AggregateConfig{SampleSize: 100, Sampler: stream.NewUniformSampler(3), MuFromFullWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d window results", len(results))
	}
	for i, r := range results {
		if r.WindowSize != 800 {
			t.Fatalf("window %d size %d", i, r.WindowSize)
		}
		if math.Abs(r.CV.Estimate-r.TruePerFrameMean) > 0.15 {
			t.Fatalf("window %d estimate %v vs truth %v", i, r.CV.Estimate, r.TruePerFrameMean)
		}
	}
}

func TestRunWindowsSliding(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE COUNT(car) >= 1
		WINDOW SLIDING (SIZE 600, ADVANCE BY 200)`), p)
	src := stream.FromStream(video.NewStream(p, 34))
	results, err := RunWindows(plan, src, filters.NewODFilter(p, 1, nil), detect.NewOracle(nil), 4,
		AggregateConfig{SampleSize: 80, Sampler: stream.NewUniformSampler(4), MuFromFullWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d window results", len(results))
	}
	// Overlapping windows of a smooth process should have similar truth.
	for i := 1; i < len(results); i++ {
		if math.Abs(results[i].TruePerFrameMean-results[i-1].TruePerFrameMean) > 0.5 {
			t.Fatalf("adjacent sliding windows diverged: %v vs %v",
				results[i].TruePerFrameMean, results[i-1].TruePerFrameMean)
		}
	}
}

func TestRunWindowsNeedsWindowClause(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1`), p)
	src := stream.FromStream(video.NewStream(p, 35))
	if _, err := RunWindows(plan, src, filters.NewODFilter(p, 1, nil), detect.NewOracle(nil), 2,
		AggregateConfig{SampleSize: 10}); err == nil {
		t.Fatal("missing WINDOW clause accepted")
	}
}

func TestAggregateErrors(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 28).Take(50)
	backend := filters.NewODFilter(p, 1, nil)
	det := detect.NewOracle(nil)
	framesPlan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	if _, err := RunAggregate(framesPlan, frames, backend, det, AggregateConfig{SampleSize: 5}); err == nil {
		t.Error("FRAMES select accepted by RunAggregate")
	}
	agg := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1`), p)
	if _, err := RunAggregate(agg, frames, backend, det, AggregateConfig{SampleSize: 0}); err == nil {
		t.Error("zero sample size accepted")
	}
	if _, err := RunAggregate(agg, nil, backend, det, AggregateConfig{SampleSize: 5}); err == nil {
		t.Error("empty window accepted")
	}
}

func TestTolerancesString(t *testing.T) {
	if s := (Tolerances{}).String(); s != "CCF/CLF" {
		t.Errorf("zero tolerances = %q", s)
	}
	if s := (Tolerances{Count: 1, Location: 2}).String(); s != "CCF-1/CLF-2" {
		t.Errorf("tolerances = %q", s)
	}
}
