// Package query is the execution engine for VQL statements: it binds
// parsed queries against a dataset profile, evaluates predicates both
// exactly (over detector output, for final confirmation and ground truth)
// and approximately (over filter outputs, for the cascade), runs the
// paper's filter-then-detect execution strategy, and processes windowed
// aggregates with single and multiple control variates (Section III).
package query

import (
	"fmt"

	"vmq/internal/geom"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// Plan is a query bound to a dataset profile, ready to execute.
type Plan struct {
	Query   *vql.Query
	Profile video.Profile
	// Where is the bound predicate tree (nil means every frame matches).
	Where BoundExpr
	// Agg is the bound aggregation target for AVG queries.
	Agg *BoundAgg
}

// BoundAgg is a bound COUNT(class [IN region]) aggregation target.
type BoundAgg struct {
	Class  video.Class
	Color  video.Color
	Region *BoundRegion // nil means whole frame
}

// BoundRegion resolves a region to frame coordinates at evaluation time
// (quadrants depend on the frame bounds).
type BoundRegion struct {
	Quadrant geom.Quadrant
	IsQuad   bool
	Rect     geom.Rect
}

// Resolve returns the concrete rectangle for the given frame bounds.
func (r *BoundRegion) Resolve(bounds geom.Rect) geom.Rect {
	if r.IsQuad {
		return geom.QuadrantRect(bounds, r.Quadrant)
	}
	return r.Rect
}

// Bind resolves the names in q against the profile's class universe and
// returns an executable plan. Unknown classes, colours or relations are
// reported as errors rather than silently matching nothing.
func Bind(q *vql.Query, profile video.Profile) (*Plan, error) {
	if q.Source != profile.Name {
		return nil, fmt.Errorf("query: source %q does not match profile %q", q.Source, profile.Name)
	}
	p := &Plan{Query: q, Profile: profile}
	if q.Where != nil {
		where, err := bindExpr(q.Where)
		if err != nil {
			return nil, err
		}
		p.Where = where
	}
	if q.Select.Kind == vql.SelectAvg {
		if q.Select.Agg == nil {
			return nil, fmt.Errorf("query: AVG select without aggregation target")
		}
		cls, col, err := bindClassRef(q.Select.Agg.Target)
		if err != nil {
			return nil, err
		}
		agg := &BoundAgg{Class: cls, Color: col}
		if q.Select.Agg.Region != nil {
			r, err := bindRegion(*q.Select.Agg.Region)
			if err != nil {
				return nil, err
			}
			agg.Region = r
		}
		p.Agg = agg
	}
	return p, nil
}

// MustBind is Bind for tests and examples with known-good queries.
func MustBind(q *vql.Query, profile video.Profile) *Plan {
	p, err := Bind(q, profile)
	if err != nil {
		panic(err)
	}
	return p
}

func bindClassRef(ref vql.ClassRef) (video.Class, video.Color, error) {
	cls, ok := video.ParseClass(ref.Class)
	if !ok {
		return 0, 0, fmt.Errorf("query: unknown class %q", ref.Class)
	}
	col := video.AnyColor
	if ref.Color != "" {
		c, ok := video.ParseColor(ref.Color)
		if !ok {
			return 0, 0, fmt.Errorf("query: unknown colour %q", ref.Color)
		}
		col = c
	}
	return cls, col, nil
}

func bindRegion(r vql.Region) (*BoundRegion, error) {
	if r.Quadrant != "" {
		var q geom.Quadrant
		switch r.Quadrant {
		case "upper-left":
			q = geom.UpperLeft
		case "upper-right":
			q = geom.UpperRight
		case "lower-left":
			q = geom.LowerLeft
		case "lower-right":
			q = geom.LowerRight
		default:
			return nil, fmt.Errorf("query: unknown quadrant %q", r.Quadrant)
		}
		return &BoundRegion{IsQuad: true, Quadrant: q}, nil
	}
	rect := geom.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
	if rect.Empty() {
		return nil, fmt.Errorf("query: empty region %v", rect)
	}
	return &BoundRegion{Rect: rect}, nil
}

func bindExpr(e vql.Expr) (BoundExpr, error) {
	switch n := e.(type) {
	case *vql.AndExpr:
		l, err := bindExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R)
		if err != nil {
			return nil, err
		}
		return &boundAnd{l, r}, nil
	case *vql.OrExpr:
		l, err := bindExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R)
		if err != nil {
			return nil, err
		}
		return &boundOr{l, r}, nil
	case *vql.NotExpr:
		inner, err := bindExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &boundNot{inner}, nil
	case *vql.CountPred:
		if n.All {
			return &boundCount{all: true, op: n.Op, value: n.Value}, nil
		}
		cls, col, err := bindClassRef(n.Target)
		if err != nil {
			return nil, err
		}
		return &boundCount{class: cls, color: col, op: n.Op, value: n.Value}, nil
	case *vql.SpatialPred:
		aCls, aCol, err := bindClassRef(n.A)
		if err != nil {
			return nil, err
		}
		bCls, bCol, err := bindClassRef(n.B)
		if err != nil {
			return nil, err
		}
		rel, ok := parseRel(n.Rel)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", n.Rel)
		}
		return &boundSpatial{aCls, aCol, bCls, bCol, rel}, nil
	case *vql.RegionPred:
		cls, col, err := bindClassRef(n.Target)
		if err != nil {
			return nil, err
		}
		region, err := bindRegion(n.Region)
		if err != nil {
			return nil, err
		}
		return &boundRegionPred{
			class: cls, color: col, region: region,
			op: n.Op, value: n.Value, negate: n.Negate,
		}, nil
	default:
		return nil, fmt.Errorf("query: unsupported expression %T", e)
	}
}
