package query

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/fault"
	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// streamChunk is the unit of work flowing through the pipeline: a run of
// consecutive frames starting at stream index start. Chunking amortises
// channel operations and lets backends batch via filters.EvaluateBatch.
type streamChunk struct {
	seq    int // chunk sequence number, for ordered reassembly
	start  int // stream index of frames[0]
	frames []*video.Frame
	pass   []bool // filter verdicts, set by the filter stage
}

// defaultChunkSize balances channel overhead against pipeline latency:
// large enough that per-chunk costs vanish next to filter evaluation,
// small enough that the worker pool stays busy on short queries.
// Engine.ChunkSize overrides it for latency-sensitive callers.
const defaultChunkSize = 32

// RunStream executes a bound monitoring query over up to n frames pulled
// from src, overlapping the pipeline stages the sequential loop
// interleaves:
//
//	source -> filter workers (fan-out) -> reorder -> detector (in order)
//
// The source stage pulls frames and groups them into chunks; a pool of
// filter workers (GOMAXPROCS-wide when the backend declares itself
// concurrency-safe, one otherwise) evaluates the filter stage; chunks are
// reassembled in stream order; and the detector stage confirms surviving
// frames sequentially on the caller's goroutine. All channels are
// bounded, so a slow detector back-pressures the source instead of
// buffering the whole stream.
//
// The result is identical — field for field, including Matched order and
// VirtualTime — to RunSequential over the same frames: the filter output
// of the deterministic backends depends only on the frame, the detector
// (whose RNG, if any, is call-order sensitive) always runs in frame
// order on a single goroutine, and virtual-time accounting is the same
// arithmetic over the same per-frame decisions. A short source ends the
// query gracefully: FramesTotal reports the frames actually seen.
func (e *Engine) RunStream(plan *Plan, src stream.Source, n int) *Result {
	res := &Result{}
	if n <= 0 {
		return res
	}
	filtering := e.Backend != nil && plan.Where != nil
	workers := 1
	if filtering && filters.ConcurrentSafe(e.Backend) {
		workers = runtime.GOMAXPROCS(0)
		if e.Workers > 0 && e.Workers < workers {
			workers = e.Workers
		}
	}
	// With a gate the pool is spawned wide and the gate bounds how many
	// workers evaluate at once: capacity changes (the server rebalancing
	// its budget across feeds) take effect mid-run, which a fixed pool
	// size cannot.
	gate := e.Gate
	if workers == 1 {
		gate = nil // a serial stage needs no admission control
	}
	chunkSize := e.ChunkSize
	if chunkSize <= 0 {
		chunkSize = defaultChunkSize
	}

	// tokens bounds the chunks in flight between the source and the
	// reorder stage. Without it a single stalled worker lets the others
	// keep cycling: the reorder buffer would absorb every finished chunk
	// while waiting for the stalled one, growing without bound. A token
	// is taken per chunk read and returned when the chunk leaves the
	// reorder stage, so total buffered memory stays O(workers·chunkSize)
	// no matter how unevenly the workers run.
	maxInflight := 3*workers + 2
	tokens := make(chan struct{}, maxInflight)

	// failure latches the first panic recovered in any stage. Once set,
	// the source stops pulling, filter workers pass chunks through
	// unevaluated, and the confirmation stage drains without confirming —
	// the pipeline unwinds cleanly and the caller gets a Result carrying
	// the Failure instead of a crashed process. One poisoned backend must
	// cost one query, never the server hosting it.
	var failure atomic.Pointer[Failure]
	fail := func(stage string, p any) {
		failure.CompareAndSwap(nil, &Failure{
			Stage: stage,
			Panic: fmt.Sprint(p),
			Stack: string(debug.Stack()),
		})
	}

	// Stage 1: pull frames from the source and chunk them.
	jobs := make(chan *streamChunk, workers)
	go func() {
		defer close(jobs)
		for start := 0; start < n; start += chunkSize {
			if failure.Load() != nil {
				return // a stage faulted: stop feeding the pipeline
			}
			want := chunkSize
			if rem := n - start; rem < want {
				want = rem
			}
			tokens <- struct{}{}
			frames := stream.Take(src, want)
			if len(frames) > 0 {
				jobs <- &streamChunk{seq: start / chunkSize, start: start, frames: frames}
			}
			if len(frames) < want {
				return // source exhausted
			}
		}
	}()

	// Stage 2: filter fan-out. Each worker evaluates whole chunks through
	// the backend's batch path — one clock transaction and, for the
	// trained backends, one GEMM per layer per chunk — into a per-worker
	// scratch slice reused across chunks (the EvaluateBatchInto aliasing
	// rule), so the steady-state filter stage allocates only the verdict
	// slices that travel with the chunk.
	filtered := make(chan *streamChunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var outs []*filters.Output // per-worker scratch, reused every chunk
			for c := range jobs {
				c.pass = make([]bool, len(c.frames))
				if !filtering {
					for i := range c.pass {
						c.pass[i] = true
					}
					filtered <- c
					continue
				}
				if gate != nil {
					gate.Acquire()
				}
				func() {
					defer func() {
						if gate != nil {
							gate.Release()
						}
						if p := recover(); p != nil {
							// A panicking backend poisons this query, not the
							// process: latch the failure, void the verdicts,
							// and keep the chunk moving so reassembly never
							// stalls on a missing sequence number.
							fail("filter", p)
							outs = nil
							for i := range c.pass {
								c.pass[i] = false
							}
						}
					}()
					if failure.Load() != nil {
						return // already failed: forward unevaluated
					}
					if err := fault.Hit("query.filter"); err != nil {
						panic(err)
					}
					outs = filters.EvaluateBatchInto(e.Backend, c.frames, outs[:0])
					for i, f := range c.frames {
						c.pass[i] = plan.Where.EvalFilter(outs[i], f.Bounds, e.Tol)
					}
				}()
				filtered <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(filtered)
	}()

	// Stage 3: reassemble chunks in stream order. The token bound caps
	// how many chunks can be waiting here for a straggler, so memory
	// stays bounded even when one worker runs far behind its peers.
	ordered := make(chan *streamChunk, workers)
	go func() {
		defer close(ordered)
		pending := make(map[int]*streamChunk, maxInflight)
		next := 0
		for c := range filtered {
			pending[c.seq] = c
			for {
				head, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				ordered <- head
				<-tokens
			}
		}
	}()

	// Stage 4: confirm survivors with the detector, in frame order, on
	// this goroutine — the only stage that may carry order-sensitive
	// state (e.g. SimYOLO's RNG).
	var filterCost time.Duration
	if filtering {
		filterCost = e.Backend.Technique().Cost().PerCall
	}
	detectCost := e.Detector.Cost().PerCall
	for c := range ordered {
		if failure.Load() != nil {
			continue // drain so the pipeline unwinds; nothing more confirms
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					fail("detect", p)
				}
			}()
			for i, f := range c.frames {
				res.FramesTotal++
				if filtering {
					res.VirtualTime += filterCost
				}
				matched := false
				if c.pass[i] {
					res.FilterPassed++
					if err := fault.Hit("query.detect"); err != nil {
						panic(err)
					}
					dets := e.Detector.Detect(f)
					res.DetectorCalls++
					res.VirtualTime += detectCost
					if plan.Where == nil || plan.Where.EvalExact(dets, f.Bounds) {
						res.Matched = append(res.Matched, c.start+i)
						matched = true
					}
				}
				if e.Observe != nil {
					e.Observe(FrameObservation{Index: c.start + i, Frame: f, Passed: c.pass[i], Matched: matched})
				}
			}
		}()
	}
	res.Failure = failure.Load()
	return res
}
