package query

import (
	"errors"
	"fmt"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/vql"
)

// RunWindows executes a windowed aggregate query over n consecutive
// windows drawn from src, honouring the query's WINDOW clause (HOPPING
// windows tile or skip; SLIDING windows overlap). Each window is estimated
// independently with RunAggregate, which is how the paper's monitoring
// deployment reports one value per batch window. If src runs out before n
// windows complete, the finished windows' estimates are returned together
// with an error wrapping stream.ErrExhausted.
func RunWindows(plan *Plan, src stream.Source, backend filters.Backend, det detect.Detector, n int, cfg AggregateConfig) ([]*AggregateResult, error) {
	w := plan.Query.Window
	if w == nil {
		return nil, fmt.Errorf("query: RunWindows needs a WINDOW clause")
	}
	var (
		wins []stream.Window
		err  error
	)
	if w.Kind == vql.Sliding {
		wins, err = stream.SlidingWindows(src, w.Size, w.Advance, n)
	} else {
		wins, err = stream.HoppingWindows(src, w.Size, w.Advance, n)
	}
	if err != nil && !errors.Is(err, stream.ErrExhausted) {
		return nil, err
	}
	// On a short source the builders hand back the windows that did
	// complete; estimate those and propagate the exhaustion error so the
	// caller knows the batch ended early.
	exhausted := err
	out := make([]*AggregateResult, 0, len(wins))
	for _, win := range wins {
		res, err := RunAggregate(plan, win.Frames, backend, det, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, exhausted
}
