package query

import (
	"math"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/geom"
	"vmq/internal/spatial"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// Tolerances selects the filter variants of a cascade: Count 0/1/2 maps to
// the paper's exact, CCF-1 and CCF-2 filters; Location 0/1/2 to CLF,
// CLF-1 and CLF-2.
type Tolerances struct {
	Count    int
	Location int
}

// String renders the tolerance pair in the paper's naming convention.
func (t Tolerances) String() string {
	name := "CCF"
	if t.Count > 0 {
		name += "-" + string(rune('0'+t.Count))
	}
	loc := "CLF"
	if t.Location > 0 {
		loc += "-" + string(rune('0'+t.Location))
	}
	return name + "/" + loc
}

// BoundExpr is a predicate bound to concrete classes and regions. It
// evaluates exactly over detections (the final confirmation path) and
// approximately over filter output (the cascade path). Filter evaluation
// is deliberately permissive under tolerance: it may pass frames that will
// fail confirmation (false positives cost detector time) but aims not to
// drop true frames (false negatives cost accuracy).
type BoundExpr interface {
	EvalExact(dets []detect.Detection, bounds geom.Rect) bool
	EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool
}

func parseRel(name string) (spatial.Relation, bool) {
	return spatial.ParseRelation(name)
}

type boundAnd struct{ l, r BoundExpr }

func (b *boundAnd) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	return b.l.EvalExact(dets, bounds) && b.r.EvalExact(dets, bounds)
}

func (b *boundAnd) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	return b.l.EvalFilter(out, bounds, tol) && b.r.EvalFilter(out, bounds, tol)
}

type boundOr struct{ l, r BoundExpr }

func (b *boundOr) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	return b.l.EvalExact(dets, bounds) || b.r.EvalExact(dets, bounds)
}

func (b *boundOr) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	return b.l.EvalFilter(out, bounds, tol) || b.r.EvalFilter(out, bounds, tol)
}

type boundNot struct{ e BoundExpr }

func (b *boundNot) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	return !b.e.EvalExact(dets, bounds)
}

// EvalFilter for NOT never prunes: the inner filter's "maybe true" cannot
// be soundly negated without risking false negatives, so negated subtrees
// are deferred entirely to the confirmation detector.
func (b *boundNot) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	return true
}

type boundCount struct {
	all   bool
	class video.Class
	color video.Color
	op    vql.CmpOp
	value int
}

func (b *boundCount) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	var n int
	if b.all {
		n = len(dets)
	} else {
		n = detect.CountClassColor(dets, b.class, b.color)
	}
	return b.op.Eval(n, b.value)
}

func (b *boundCount) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	var est float64
	if b.all {
		est = out.Total
	} else {
		// Filters do not see colour, so a colour-constrained count is
		// upper-bounded by the class count estimate.
		est = out.Counts[b.class]
	}
	return cmpWithTolerance(b.op, int(math.Round(est)), b.value, tol.Count, !b.all && b.color != video.AnyColor)
}

// cmpWithTolerance relaxes the comparison by the count tolerance so the
// filter does not drop frames over a ±tol estimation error. When the
// predicate constrains colour (which filters cannot see) the estimate only
// upper-bounds the truth, so lower-side comparisons must not prune.
func cmpWithTolerance(op vql.CmpOp, est, value, tol int, colorBounded bool) bool {
	switch op {
	case vql.CmpEQ:
		if colorBounded {
			// The colour-specific truth lies anywhere in [0, est+tol].
			return est+tol >= value
		}
		return abs(est-value) <= tol
	case vql.CmpNEQ:
		if tol > 0 || colorBounded {
			return true
		}
		return est != value
	case vql.CmpLT:
		if colorBounded {
			return true // the colour subset can always be smaller
		}
		return est-tol < value
	case vql.CmpLE:
		if colorBounded {
			return true
		}
		return est-tol <= value
	case vql.CmpGT:
		return est+tol > value
	case vql.CmpGE:
		return est+tol >= value
	default:
		return true
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

type boundSpatial struct {
	aClass video.Class
	aColor video.Color
	bClass video.Class
	bColor video.Color
	rel    spatial.Relation
}

func (b *boundSpatial) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	for i, da := range dets {
		if da.Class != b.aClass || (b.aColor != video.AnyColor && da.Color != b.aColor) {
			continue
		}
		for j, db := range dets {
			if i == j {
				continue
			}
			if db.Class != b.bClass || (b.bColor != video.AnyColor && db.Color != b.bColor) {
				continue
			}
			if spatial.Holds(b.rel, da.Box, db.Box) {
				return true
			}
		}
	}
	return false
}

func (b *boundSpatial) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	g := gridSize(out)
	ma := out.Map(b.aClass, g)
	mb := out.Map(b.bClass, g)
	// Cross-check against the count head: when the CCF estimate says a
	// class is present but its CLF map localised nothing, the filter has
	// contradictory evidence and must not prune (Section II applies
	// "multiple filters ... on a single frame"; combining their outputs is
	// what keeps false negatives rare).
	if ma.CountOn() == 0 && math.Round(out.Counts[b.aClass]) >= 1 {
		return true
	}
	if mb.CountOn() == 0 && math.Round(out.Counts[b.bClass]) >= 1 {
		return true
	}
	if tol.Location > 0 {
		ma = ma.Dilate(tol.Location)
		mb = mb.Dilate(tol.Location)
	}
	return spatial.HoldsOnGrid(b.rel, ma, mb)
}

type boundRegionPred struct {
	class  video.Class
	color  video.Color
	region *BoundRegion
	op     vql.CmpOp
	value  int
	negate bool
}

func (b *boundRegionPred) EvalExact(dets []detect.Detection, bounds geom.Rect) bool {
	region := b.region.Resolve(bounds)
	n := 0
	for _, d := range dets {
		if d.Class != b.class || (b.color != video.AnyColor && d.Color != b.color) {
			continue
		}
		if spatial.InRegion(d.Box, region) {
			n++
		}
	}
	ok := b.op.Eval(n, b.value)
	if b.negate {
		return !ok
	}
	return ok
}

func (b *boundRegionPred) EvalFilter(out *filters.Output, bounds geom.Rect, tol Tolerances) bool {
	if b.negate {
		// As with NOT, negated region constraints defer to confirmation.
		return true
	}
	g := gridSize(out)
	m := out.Map(b.class, g)
	// As in the spatial case, an empty map contradicted by a positive
	// count estimate means the objects went unlocalised: defer to the
	// confirmation detector.
	if m.CountOn() == 0 && math.Round(out.Counts[b.class]) >= 1 {
		return true
	}
	if tol.Location > 0 {
		m = m.Dilate(tol.Location)
	}
	region := b.region.Resolve(bounds)
	n := spatial.CountInRegionGrid(m, bounds, region)
	if tol.Location > 0 {
		// Dilation inflates per-object cell counts, so only existence-style
		// lower bounds remain meaningful; everything else defers.
		switch b.op {
		case vql.CmpGT, vql.CmpGE:
			return n > 0 || b.value <= tol.Count
		default:
			return true
		}
	}
	// Cell counts are CLF output, not CCF output: the count tolerance
	// (the paper's CCF-1/CCF-2 variants) does not apply to them.
	return cmpWithTolerance(b.op, n, b.value, 0, b.color != video.AnyColor)
}

func gridSize(out *filters.Output) int {
	for _, m := range out.Maps {
		if m != nil {
			return m.G
		}
	}
	return 56
}

// RegionCount returns the exact number of detections of (class, colour)
// inside the region — the AVG aggregation target.
func (a *BoundAgg) RegionCount(dets []detect.Detection, bounds geom.Rect) int {
	n := 0
	var region geom.Rect
	hasRegion := a.Region != nil
	if hasRegion {
		region = a.Region.Resolve(bounds)
	}
	for _, d := range dets {
		if d.Class != a.Class || (a.Color != video.AnyColor && d.Color != a.Color) {
			continue
		}
		if !hasRegion || spatial.InRegion(d.Box, region) {
			n++
		}
	}
	return n
}

// FilterRegionCount returns the filter-side estimate of the aggregation
// target: the class-count estimate for whole-frame targets, or the number
// of active map cells inside the region otherwise.
func (a *BoundAgg) FilterRegionCount(out *filters.Output, bounds geom.Rect) float64 {
	if a.Region == nil {
		return out.Counts[a.Class]
	}
	g := gridSize(out)
	m := out.Map(a.Class, g)
	return float64(spatial.CountInRegionGrid(m, bounds, a.Region.Resolve(bounds)))
}
