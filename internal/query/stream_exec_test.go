package query

import (
	"errors"
	"reflect"
	"testing"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/simclock"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// requireSameResult compares every Result field, including Matched order.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Matched, want.Matched) {
		t.Fatalf("%s: Matched = %v, want %v", label, got.Matched, want.Matched)
	}
	if got.FramesTotal != want.FramesTotal {
		t.Fatalf("%s: FramesTotal = %d, want %d", label, got.FramesTotal, want.FramesTotal)
	}
	if got.FilterPassed != want.FilterPassed {
		t.Fatalf("%s: FilterPassed = %d, want %d", label, got.FilterPassed, want.FilterPassed)
	}
	if got.DetectorCalls != want.DetectorCalls {
		t.Fatalf("%s: DetectorCalls = %d, want %d", label, got.DetectorCalls, want.DetectorCalls)
	}
	if got.VirtualTime != want.VirtualTime {
		t.Fatalf("%s: VirtualTime = %v, want %v", label, got.VirtualTime, want.VirtualTime)
	}
}

// The pipelined executor must be indistinguishable from the sequential
// reference loop for a fixed seed: same matches in the same order, same
// counter and virtual-time accounting — across sparse and dense streams,
// count-only and spatial predicates, both filter families, and the
// brute-force (nil backend) configuration.
func TestRunStreamMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		profile  video.Profile
		querySrc string
		ic       bool
		brute    bool
		tol      Tolerances
	}{
		{name: "jackson-count", profile: video.Jackson(),
			querySrc: `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1`},
		{name: "jackson-spatial", profile: video.Jackson(), tol: Tolerances{Count: 1, Location: 2},
			querySrc: `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`},
		{name: "detrac-dense", profile: video.Detrac(), tol: Tolerances{Count: 1},
			querySrc: `SELECT FRAMES FROM detrac WHERE COUNT(bus) >= 1 AND bus IN QUADRANT(UPPER LEFT)`},
		{name: "coral-ic", profile: video.Coral(), ic: true, tol: Tolerances{Count: 2, Location: 1},
			querySrc: `SELECT FRAMES FROM coral WHERE COUNT(person) >= 8`},
		{name: "jackson-brute", profile: video.Jackson(), brute: true,
			querySrc: `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`},
	}
	const n = 700
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := MustBind(parse(t, tc.querySrc), tc.profile)
			frames := video.NewStream(tc.profile, 77).Take(n)
			mkEngine := func() *Engine {
				e := &Engine{Detector: detect.NewOracle(nil), Tol: tc.tol}
				if tc.brute {
					return e
				}
				if tc.ic {
					e.Backend = filters.NewICFilter(tc.profile, 77, nil)
				} else {
					e.Backend = filters.NewODFilter(tc.profile, 77, nil)
				}
				return e
			}
			want := mkEngine().RunSequential(plan, frames)
			got := mkEngine().RunStream(plan, &stream.SliceSource{Frames: frames}, n)
			requireSameResult(t, "RunStream", got, want)
			adapter := mkEngine().Run(plan, frames)
			requireSameResult(t, "Run adapter", adapter, want)
			// And again, to prove the pipeline is deterministic run-to-run.
			again := mkEngine().RunStream(plan, &stream.SliceSource{Frames: frames}, n)
			requireSameResult(t, "RunStream repeat", again, want)
			// A capped worker pool (as RunMulti uses) changes nothing.
			capped := mkEngine()
			capped.Workers = 1
			requireSameResult(t, "Workers=1",
				capped.RunStream(plan, &stream.SliceSource{Frames: frames}, n), want)
			// Nor does frame-at-a-time chunking (as the server uses for
			// low-latency match streaming).
			unchunked := mkEngine()
			unchunked.ChunkSize = 1
			requireSameResult(t, "ChunkSize=1",
				unchunked.RunStream(plan, &stream.SliceSource{Frames: frames}, n), want)
		})
	}
}

// A trained (real-CNN) backend goes down the native batched path in
// RunStream — whole chunks per ForwardBatch — and must still be
// field-identical to the sequential per-frame reference: the batched
// kernels are bit-identical per frame regardless of how frames are
// chunked. Untrained weights keep the test fast; the kernels are the same.
func TestRunStreamBatchedTrainedMatchesSequential(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), p)
	frames := video.NewStream(p, 31).Take(150)
	cfg := filters.TrainedConfig{Img: 32, Channels: 8, Seed: 31}
	mk := func() *Engine {
		return &Engine{
			Backend:  filters.NewUntrained(filters.OD, p, cfg, nil),
			Detector: detect.NewOracle(nil),
			Tol:      Tolerances{Count: 1},
		}
	}
	want := mk().RunSequential(plan, frames)
	for _, chunk := range []int{0, 1, 7, 64} {
		eng := mk()
		eng.ChunkSize = chunk
		got := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
		requireSameResult(t, "trained chunked", got, want)
	}
	if want.FramesTotal != 150 {
		t.Fatalf("FramesTotal = %d", want.FramesTotal)
	}
}

// A detector whose randomness is call-order sensitive (SimYOLO) still
// produces sequential-identical results: the confirmation stage always
// runs in frame order on one goroutine.
func TestRunStreamOrderSensitiveDetector(t *testing.T) {
	p := video.Detrac()
	plan := MustBind(parse(t, `SELECT FRAMES FROM detrac WHERE COUNT(car) >= 2`), p)
	frames := video.NewStream(p, 13).Take(600)
	tol := Tolerances{Count: 1}
	seq := (&Engine{Backend: filters.NewODFilter(p, 13, nil), Detector: detect.NewSimYOLO(nil, 99), Tol: tol}).
		RunSequential(plan, frames)
	str := (&Engine{Backend: filters.NewODFilter(p, 13, nil), Detector: detect.NewSimYOLO(nil, 99), Tol: tol}).
		RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	requireSameResult(t, "SimYOLO", str, seq)
	if seq.DetectorCalls == 0 {
		t.Fatal("degenerate case: detector never ran")
	}
}

// A source shorter than the requested frame budget ends the query
// gracefully: no panic, and FramesTotal reports the frames actually seen.
func TestRunStreamShortSource(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), p)
	frames := video.NewStream(p, 5).Take(100)
	eng := &Engine{Backend: filters.NewODFilter(p, 5, nil), Detector: detect.NewOracle(nil)}
	res := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, 100000)
	want := (&Engine{Backend: filters.NewODFilter(p, 5, nil), Detector: detect.NewOracle(nil)}).
		RunSequential(plan, frames)
	requireSameResult(t, "short source", res, want)
	if res.FramesTotal != 100 {
		t.Fatalf("FramesTotal = %d, want 100", res.FramesTotal)
	}
	// n <= 0 is an empty query, not a hang.
	empty := eng.RunStream(plan, &stream.SliceSource{}, 0)
	if empty.FramesTotal != 0 || len(empty.Matched) != 0 {
		t.Fatalf("n=0 result = %+v", empty)
	}
}

// The streaming path charges the shared virtual clock exactly like the
// sequential path: one filter charge per frame, one detector charge per
// confirmation, regardless of worker fan-out and batching.
func TestRunStreamClockAccounting(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	const n = 500
	clk := simclock.New()
	eng := &Engine{Backend: filters.NewODFilter(p, 3, clk), Detector: detect.NewOracle(clk), Tol: Tolerances{Count: 1}}
	res := eng.RunStream(plan, stream.FromStream(video.NewStream(p, 3)), n)
	if got := clk.Calls("od-filter"); got != n {
		t.Fatalf("filter charges = %d, want %d", got, n)
	}
	if got := clk.Calls("mask-rcnn"); got != int64(res.DetectorCalls) {
		t.Fatalf("detector charges = %d, want %d", got, res.DetectorCalls)
	}
	if clk.Elapsed() != res.VirtualTime {
		t.Fatalf("clock %v != result virtual time %v", clk.Elapsed(), res.VirtualTime)
	}
}

// A trained-style backend that is not concurrency-safe must be driven by
// a single filter worker, in frame order.
type orderRecordingBackend struct {
	filters.Backend
	order []int
}

func (o *orderRecordingBackend) Evaluate(f *video.Frame) *filters.Output {
	o.order = append(o.order, f.Index) // would race if fanned out
	return o.Backend.Evaluate(f)
}

func TestRunStreamSingleWorkerForUnsafeBackend(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	frames := video.NewStream(p, 8).Take(200)
	rec := &orderRecordingBackend{Backend: filters.NewODFilter(p, 8, nil)}
	if filters.ConcurrentSafe(rec) {
		t.Fatal("wrapper must not inherit concurrency safety")
	}
	eng := &Engine{Backend: rec, Detector: detect.NewOracle(nil), Tol: Tolerances{Count: 1}}
	res := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	if len(rec.order) != len(frames) {
		t.Fatalf("backend saw %d frames, want %d", len(rec.order), len(frames))
	}
	for i, idx := range rec.order {
		if idx != frames[i].Index {
			t.Fatalf("out-of-order evaluation at position %d: frame %d", i, idx)
		}
	}
	want := (&Engine{Backend: filters.NewODFilter(p, 8, nil), Detector: detect.NewOracle(nil), Tol: Tolerances{Count: 1}}).
		RunSequential(plan, frames)
	requireSameResult(t, "unsafe backend", res, want)
}

// The Observe hook fires once per frame, in frame order, on both
// executors, and its Passed/Matched flags reconcile exactly with the
// returned Result — the contract the continuous-query server's event
// stream depends on.
func TestEngineObserveHook(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	frames := video.NewStream(p, 21).Take(300)
	run := func(label string, exec func(e *Engine) *Result) {
		var obs []FrameObservation
		eng := &Engine{
			Backend:  filters.NewODFilter(p, 21, nil),
			Detector: detect.NewOracle(nil),
			Tol:      Tolerances{Count: 1},
			Observe:  func(o FrameObservation) { obs = append(obs, o) },
		}
		res := exec(eng)
		if len(obs) != res.FramesTotal {
			t.Fatalf("%s: %d observations for %d frames", label, len(obs), res.FramesTotal)
		}
		var matched []int
		passed := 0
		for i, o := range obs {
			if o.Index != i {
				t.Fatalf("%s: observation %d carries index %d", label, i, o.Index)
			}
			if o.Frame != frames[i] {
				t.Fatalf("%s: observation %d carries the wrong frame", label, i)
			}
			if o.Matched && !o.Passed {
				t.Fatalf("%s: frame %d matched without passing the filter", label, i)
			}
			if o.Passed {
				passed++
			}
			if o.Matched {
				matched = append(matched, i)
			}
		}
		if passed != res.FilterPassed {
			t.Fatalf("%s: observed %d passes, result says %d", label, passed, res.FilterPassed)
		}
		if !reflect.DeepEqual(matched, res.Matched) {
			t.Fatalf("%s: observed matches %v, result says %v", label, matched, res.Matched)
		}
		if len(matched) == 0 {
			t.Fatalf("%s: degenerate case, nothing matched", label)
		}
	}
	run("sequential", func(e *Engine) *Result { return e.RunSequential(plan, frames) })
	run("stream", func(e *Engine) *Result {
		return e.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
	})
}

// RunWindows on an exhausted source returns the completed windows'
// estimates plus a typed error, instead of panicking mid-window.
func TestRunWindowsExhaustedSource(t *testing.T) {
	p := video.Jackson()
	plan := MustBind(parse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE COUNT(car) >= 1
		WINDOW HOPPING (SIZE 200, ADVANCE BY 200)`), p)
	frames := video.NewStream(p, 41).Take(500) // 2.5 windows
	src := &stream.SliceSource{Frames: frames}
	results, err := RunWindows(plan, src, filters.NewODFilter(p, 41, nil), detect.NewOracle(nil), 5,
		AggregateConfig{SampleSize: 40, Sampler: stream.NewUniformSampler(2), MuFromFullWindow: true})
	if !errors.Is(err, stream.ErrExhausted) {
		t.Fatalf("error = %v, want ErrExhausted", err)
	}
	if len(results) != 2 {
		t.Fatalf("completed window estimates = %d, want 2", len(results))
	}
	for i, r := range results {
		if r.WindowSize != 200 {
			t.Fatalf("window %d size = %d", i, r.WindowSize)
		}
	}
}
