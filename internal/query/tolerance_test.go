package query

import (
	"testing"

	"vmq/internal/vql"
)

// The filter-stage comparison must never prune a frame whose true value
// could satisfy the predicate given the estimate's tolerance band — the
// soundness property behind Table III's accuracy column.
func TestCmpWithToleranceSoundness(t *testing.T) {
	ops := []vql.CmpOp{vql.CmpEQ, vql.CmpNEQ, vql.CmpLT, vql.CmpLE, vql.CmpGT, vql.CmpGE}
	for _, op := range ops {
		for tol := 0; tol <= 2; tol++ {
			for truth := 0; truth <= 6; truth++ {
				for value := 0; value <= 6; value++ {
					if !op.Eval(truth, value) {
						continue // predicate false: pruning is always fine
					}
					// Any estimate within ±tol of the truth must pass.
					for est := truth - tol; est <= truth+tol; est++ {
						e := est
						if e < 0 {
							e = 0
						}
						if !cmpWithTolerance(op, e, value, tol, false) {
							t.Fatalf("op %s tol %d: truth %d satisfies %s %d but estimate %d pruned",
								op, tol, truth, op, value, e)
						}
					}
				}
			}
		}
	}
}

// Colour-bounded counts: the class estimate only upper-bounds the
// colour-specific truth, so any truth in [0, est+tol] must pass.
func TestCmpWithToleranceColorBounded(t *testing.T) {
	ops := []vql.CmpOp{vql.CmpEQ, vql.CmpNEQ, vql.CmpLT, vql.CmpLE, vql.CmpGT, vql.CmpGE}
	for _, op := range ops {
		for tol := 0; tol <= 1; tol++ {
			for est := 0; est <= 6; est++ {
				for truth := 0; truth <= est+tol; truth++ {
					for value := 0; value <= 6; value++ {
						if !op.Eval(truth, value) {
							continue
						}
						if !cmpWithTolerance(op, est, value, tol, true) {
							t.Fatalf("colour op %s tol %d: class est %d, colour truth %d satisfies %s %d but pruned",
								op, tol, est, truth, op, value)
						}
					}
				}
			}
		}
	}
}

// Exact equality at zero tolerance still prunes: the filter is not
// vacuous.
func TestCmpWithToleranceStillPrunes(t *testing.T) {
	if cmpWithTolerance(vql.CmpEQ, 5, 1, 0, false) {
		t.Error("EQ did not prune a far-off estimate")
	}
	if cmpWithTolerance(vql.CmpGE, 0, 3, 1, false) {
		t.Error("GE did not prune estimate 0 vs value 3 at tol 1")
	}
	if cmpWithTolerance(vql.CmpLE, 9, 3, 1, false) {
		t.Error("LE did not prune estimate 9 vs value 3 at tol 1")
	}
	if cmpWithTolerance(vql.CmpEQ, 1, 5, 1, true) {
		t.Error("colour EQ did not prune when class estimate far below target")
	}
}
