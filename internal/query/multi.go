package query

import (
	"sort"
	"sync"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/video"
)

// CameraFeed is one camera's frames plus the per-camera operator stack.
// Filter backends and detectors hold per-stream state (deterministic
// per-frame RNG, clocks), so each feed brings its own.
type CameraFeed struct {
	CameraID string
	Frames   []*video.Frame
	Backend  filters.Backend
	Detector detect.Detector
}

// CameraResult pairs a camera with its query result.
type CameraResult struct {
	CameraID string
	Result   *Result
}

// RunMulti executes the same bound query over several camera feeds
// concurrently, one goroutine per camera — the multi-camera deployment
// the paper contrasts with Optasia ("a system that accepts input from
// multiple cameras"). Results are returned sorted by camera id.
func RunMulti(plan *Plan, feeds []CameraFeed, tol Tolerances) []CameraResult {
	out := make([]CameraResult, len(feeds))
	var wg sync.WaitGroup
	for i, feed := range feeds {
		wg.Add(1)
		go func(i int, feed CameraFeed) {
			defer wg.Done()
			eng := &Engine{Backend: feed.Backend, Detector: feed.Detector, Tol: tol}
			out[i] = CameraResult{CameraID: feed.CameraID, Result: eng.Run(plan, feed.Frames)}
		}(i, feed)
	}
	wg.Wait()
	sort.Slice(out, func(a, b int) bool { return out[a].CameraID < out[b].CameraID })
	return out
}

// MergeResults combines per-camera results into totals.
func MergeResults(results []CameraResult) Result {
	var total Result
	for _, r := range results {
		total.FramesTotal += r.Result.FramesTotal
		total.FilterPassed += r.Result.FilterPassed
		total.DetectorCalls += r.Result.DetectorCalls
		total.VirtualTime += r.Result.VirtualTime
		total.Matched = append(total.Matched, r.Result.Matched...)
	}
	return total
}
