package query

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// CameraFeed is one camera's frames plus the per-camera operator stack.
// Filter backends and detectors hold per-stream state (deterministic
// per-frame RNG, clocks), so each feed brings its own.
type CameraFeed struct {
	CameraID string
	Frames   []*video.Frame
	Backend  filters.Backend
	Detector detect.Detector
}

// CameraResult pairs a camera with its query result.
type CameraResult struct {
	CameraID string
	Result   *Result
	// Workers is the filter worker budget RunMulti granted this feed's
	// engine: GOMAXPROCS divided across the fleet, floored at 1. With many
	// feeds on few cores the budget silently degrades to one worker per
	// feed, so the scheduling decision is surfaced here for the server's
	// metrics endpoint and for tests to assert on. The engine may use
	// fewer workers (a single-threaded backend always runs with one).
	Workers int
}

// RunMulti executes the same bound query over several camera feeds
// concurrently, one goroutine per camera — the multi-camera deployment
// the paper contrasts with Optasia ("a system that accepts input from
// multiple cameras"). Results are returned sorted by camera id.
func RunMulti(plan *Plan, feeds []CameraFeed, tol Tolerances) []CameraResult {
	out := make([]CameraResult, len(feeds))
	// Camera-level fan-out already covers the cores, so each engine's
	// filter pool gets an equal share of GOMAXPROCS rather than a full
	// pool of its own (which would oversubscribe by the fleet size).
	perFeed := 1
	if len(feeds) > 0 {
		if perFeed = runtime.GOMAXPROCS(0) / len(feeds); perFeed < 1 {
			perFeed = 1
		}
	}
	var wg sync.WaitGroup
	for i, feed := range feeds {
		wg.Add(1)
		go func(i int, feed CameraFeed) {
			defer wg.Done()
			eng := &Engine{Backend: feed.Backend, Detector: feed.Detector, Tol: tol, Workers: perFeed}
			src := &stream.SliceSource{Frames: feed.Frames}
			out[i] = CameraResult{
				CameraID: feed.CameraID,
				Result:   eng.RunStream(plan, src, len(feed.Frames)),
				Workers:  perFeed,
			}
		}(i, feed)
	}
	wg.Wait()
	sort.Slice(out, func(a, b int) bool { return out[a].CameraID < out[b].CameraID })
	return out
}

// FrameRef identifies one matched frame across a camera fleet: the frame
// index alone is ambiguous once results from several cameras are
// combined, so merged matches carry their camera id.
type FrameRef struct {
	CameraID string
	// Index is the frame's position within its camera's executed sequence
	// (the same index the per-camera Result.Matched reports).
	Index int
}

// MergedResult is the fleet-wide roll-up of per-camera results.
type MergedResult struct {
	// Matched lists every confirmed frame with per-camera attribution, in
	// camera order (as sorted by RunMulti) and frame order within each
	// camera.
	Matched       []FrameRef
	FramesTotal   int
	FilterPassed  int
	DetectorCalls int
	VirtualTime   time.Duration
}

// Selectivity returns the fleet-wide fraction of frames that reached the
// detector.
func (m *MergedResult) Selectivity() float64 {
	if m.FramesTotal == 0 {
		return 0
	}
	return float64(m.FilterPassed) / float64(m.FramesTotal)
}

// MergeResults combines per-camera results into fleet totals. Matched
// frames keep their camera attribution — frame indices from different
// cameras are not comparable, so a flat index slice would be meaningless.
func MergeResults(results []CameraResult) MergedResult {
	var total MergedResult
	for _, r := range results {
		total.FramesTotal += r.Result.FramesTotal
		total.FilterPassed += r.Result.FilterPassed
		total.DetectorCalls += r.Result.DetectorCalls
		total.VirtualTime += r.Result.VirtualTime
		for _, idx := range r.Result.Matched {
			total.Matched = append(total.Matched, FrameRef{CameraID: r.CameraID, Index: idx})
		}
	}
	return total
}
