package query

import (
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// Engine executes monitoring queries with the paper's filter-then-detect
// strategy: every frame is evaluated by the (cheap) filter backend, and
// only frames the filter cannot rule out are confirmed by the (expensive)
// detector. A nil Backend disables filtering, yielding the brute-force
// baseline that annotates every frame.
type Engine struct {
	Backend  filters.Backend
	Detector detect.Detector
	Tol      Tolerances
	// Workers caps RunStream's filter worker pool. 0 (the default) sizes
	// the pool to GOMAXPROCS; callers that already parallelise above the
	// engine (one engine per camera, say) set it lower so the fleet's
	// total worker count still matches the machine.
	Workers int
	// ChunkSize sets RunStream's pipeline granularity in frames. 0 (the
	// default) selects a batch-friendly 32; latency-sensitive callers
	// (the continuous-query server streaming matches off a paced live
	// feed) set 1 so a match is confirmed as soon as its frame arrives
	// instead of after a full chunk accumulates. Results are identical
	// for every chunk size.
	ChunkSize int
	// Observe, when non-nil, receives one FrameObservation per executed
	// frame, in frame order, from the confirmation stage. It is how
	// long-running callers (the continuous-query server) stream matches
	// out of an execution that has not finished yet. The callback runs on
	// the confirmation goroutine: if it blocks, the pipeline back-pressures
	// exactly as a slow detector would. It must not mutate the frame.
	Observe func(FrameObservation)
	// Gate, when non-nil, bounds the filter stage's effective parallelism
	// dynamically: each chunk evaluation holds one slot for its duration.
	// Unlike Workers — a cap fixed at RunStream start — a gate's capacity
	// may change while the query runs, which is how the continuous-query
	// server rebalances its GOMAXPROCS budget across feeds as queries
	// register and retire. A gate never changes results, only how many
	// chunks evaluate at once.
	Gate WorkerGate
}

// WorkerGate is a resizable admission gate for the filter stage: Acquire
// blocks until a slot is free, Release returns it. Implementations must
// never admit fewer than one holder, so a gated pipeline always makes
// progress.
type WorkerGate interface {
	Acquire()
	Release()
}

// FrameObservation reports one frame's outcome as it leaves the engine's
// confirmation stage.
type FrameObservation struct {
	// Index is the frame's position within the executed sequence (the same
	// index Result.Matched records).
	Index int
	Frame *video.Frame
	// Passed reports the filter verdict (always true when filtering is
	// disabled).
	Passed bool
	// Matched reports whether the detector confirmed the predicate.
	Matched bool
}

// Result summarises one monitoring-query execution.
type Result struct {
	// Matched holds indices (into the executed frame slice) of frames the
	// detector confirmed.
	Matched []int
	// FramesTotal is the number of frames examined.
	FramesTotal int
	// FilterPassed is the number of frames the filter let through.
	FilterPassed int
	// DetectorCalls counts full detector invocations.
	DetectorCalls int
	// VirtualTime is the simulated pipeline latency: filter cost on every
	// frame plus detector cost on passed frames (Table III's columns).
	VirtualTime time.Duration
	// Failure is set when the execution ended because a backend or
	// detector panicked instead of running the stream to completion.
	// The counters above cover the frames processed before the fault;
	// nothing after it is evaluated.
	Failure *Failure `json:"failure,omitempty"`
}

// Failure captures a panic recovered inside the execution pipeline —
// the typed form a crashing backend degrades to instead of taking the
// process down. Stage names the pipeline stage that faulted ("filter",
// "detect", or "runner" for faults outside the engine), Panic is the
// panic value's string form, and Stack the goroutine stack at the
// recovery point.
type Failure struct {
	Stage string `json:"stage"`
	Panic string `json:"panic"`
	Stack string `json:"stack,omitempty"`
}

// Selectivity returns the fraction of frames that reached the detector.
func (r *Result) Selectivity() float64 {
	if r.FramesTotal == 0 {
		return 0
	}
	return float64(r.FilterPassed) / float64(r.FramesTotal)
}

// Run executes a bound monitoring query over frames. It is a thin
// adapter over the pipelined streaming path (RunStream); the results are
// identical to the single-threaded reference loop (RunSequential) by
// construction, which TestRunStreamMatchesSequential enforces.
func (e *Engine) Run(plan *Plan, frames []*video.Frame) *Result {
	return e.RunStream(plan, &stream.SliceSource{Frames: frames}, len(frames))
}

// RunSequential executes a bound monitoring query over frames with the
// single-threaded reference loop: filter every frame, confirm survivors
// with the detector, in strict frame order on one goroutine. RunStream is
// the production path; this loop is kept as the semantic specification
// the pipelined executor is tested against, and as the baseline
// BenchmarkRunStream measures speedup over.
func (e *Engine) RunSequential(plan *Plan, frames []*video.Frame) *Result {
	res := &Result{FramesTotal: len(frames)}
	var filterCost, detectCost time.Duration
	if e.Backend != nil {
		filterCost = e.Backend.Technique().Cost().PerCall
	}
	detectCost = e.Detector.Cost().PerCall
	for i, f := range frames {
		pass := true
		if e.Backend != nil && plan.Where != nil {
			out := e.Backend.Evaluate(f)
			res.VirtualTime += filterCost
			pass = plan.Where.EvalFilter(out, f.Bounds, e.Tol)
		}
		matched := false
		if pass {
			res.FilterPassed++
			dets := e.Detector.Detect(f)
			res.DetectorCalls++
			res.VirtualTime += detectCost
			if plan.Where == nil || plan.Where.EvalExact(dets, f.Bounds) {
				res.Matched = append(res.Matched, i)
				matched = true
			}
		}
		if e.Observe != nil {
			e.Observe(FrameObservation{Index: i, Frame: f, Passed: pass, Matched: matched})
		}
	}
	return res
}

// GroundTruth evaluates the plan's predicate directly on simulator ground
// truth (no detector, no cost), returning one boolean per frame.
func GroundTruth(plan *Plan, frames []*video.Frame) []bool {
	out := make([]bool, len(frames))
	for i, f := range frames {
		out[i] = GroundTruthFrame(plan, f)
	}
	return out
}

// GroundTruthFrame evaluates the plan's predicate on one frame's simulator
// ground truth. The server uses it to maintain online recall/precision
// proxies for registered queries without charging any virtual cost.
func GroundTruthFrame(plan *Plan, f *video.Frame) bool {
	if plan.Where == nil {
		return true
	}
	return plan.Where.EvalExact(truthDetections(f), f.Bounds)
}

// truthDetections converts a frame's ground truth into detections without
// charging any clock.
func truthDetections(f *video.Frame) []detect.Detection {
	dets := make([]detect.Detection, len(f.Objects))
	for i, o := range f.Objects {
		dets[i] = detect.Detection{
			Class: o.Class, Color: o.Color, Box: o.Box, Score: 1, TrackID: o.TrackID,
		}
	}
	return dets
}

// Score compares a Result against ground truth, returning the paper's
// accuracy measure for Table III: the fraction of true frames that the
// cascaded execution reported ("the fraction of frames that are correctly
// identified by our filters over the number of frames in which the query
// predicates are true"). With an exact confirmation detector the reported
// set is a subset of the true set, so this is recall.
func Score(res *Result, truth []bool) float64 {
	trueFrames := 0
	for _, t := range truth {
		if t {
			trueFrames++
		}
	}
	if trueFrames == 0 {
		return 1
	}
	found := 0
	for _, i := range res.Matched {
		if truth[i] {
			found++
		}
	}
	return float64(found) / float64(trueFrames)
}
