// Package geom provides the small planar-geometry vocabulary shared by the
// video substrate, the detectors and the spatial predicate algebra: points,
// axis-aligned rectangles (bounding boxes), intersection-over-union and the
// screen-region helpers (quadrants) used by the paper's example queries.
//
// Coordinates follow raster convention: x grows rightward, y grows downward,
// and a Rect spans the half-open ranges [X0,X1) x [Y0,Y1).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in frame coordinates.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle spanning [X0,X1) x [Y0,Y1).
// The zero Rect is empty.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectFromCenter builds a Rect centred at c with width w and height h.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f;%.1f,%.1f]", r.X0, r.Y0, r.X1, r.Y1)
}

// W returns the width of r (never negative for a canonical rect).
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the area of r, or 0 if r is empty or inverted.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Canon returns r with coordinates reordered so X0<=X1 and Y0<=Y1.
func (r Rect) Canon() Rect {
	if r.X0 > r.X1 {
		r.X0, r.X1 = r.X1, r.X0
	}
	if r.Y0 > r.Y1 {
		r.Y0, r.Y1 = r.Y1, r.Y0
	}
	return r
}

// Center returns the centroid of r.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.X0 + d.X, r.Y0 + d.Y, r.X1 + d.X, r.Y1 + d.Y}
}

// Scale returns r with both axes scaled by sx, sy about the origin.
func (r Rect) Scale(sx, sy float64) Rect {
	return Rect{r.X0 * sx, r.Y0 * sy, r.X1 * sx, r.Y1 * sy}
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		math.Max(r.X0, s.X0), math.Max(r.Y0, s.Y0),
		math.Min(r.X1, s.X1), math.Min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rect containing both r and s. If either is
// empty the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		math.Min(r.X0, s.X0), math.Min(r.Y0, s.Y0),
		math.Max(r.X1, s.X1), math.Max(r.Y1, s.Y1),
	}
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return false
	}
	return s.X0 >= r.X0 && s.Y0 >= r.Y0 && s.X1 <= r.X1 && s.Y1 <= r.Y1
}

// Clip returns r clipped to bounds.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union of r and s in [0,1].
func IoU(r, s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Quadrant identifies one quarter of the visible screen. The paper's
// example queries constrain objects to screen quadrants ("two people in the
// lower left quadrant").
type Quadrant int

// Screen quadrants in raster orientation (y grows downward).
const (
	UpperLeft Quadrant = iota
	UpperRight
	LowerLeft
	LowerRight
)

// String implements fmt.Stringer.
func (q Quadrant) String() string {
	switch q {
	case UpperLeft:
		return "upper-left"
	case UpperRight:
		return "upper-right"
	case LowerLeft:
		return "lower-left"
	case LowerRight:
		return "lower-right"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}

// QuadrantRect returns the sub-rectangle of frame covered by q.
func QuadrantRect(frame Rect, q Quadrant) Rect {
	cx, cy := frame.Center().X, frame.Center().Y
	switch q {
	case UpperLeft:
		return Rect{frame.X0, frame.Y0, cx, cy}
	case UpperRight:
		return Rect{cx, frame.Y0, frame.X1, cy}
	case LowerLeft:
		return Rect{frame.X0, cy, cx, frame.Y1}
	default: // LowerRight
		return Rect{cx, cy, frame.X1, frame.Y1}
	}
}
