package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); !almostEq(d, 5) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := (Point{0, 0}).Manhattan(Point{3, 4}); !almostEq(d, 7) {
		t.Errorf("Manhattan = %v, want 7", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.W() != 4 || r.H() != 2 {
		t.Fatalf("W/H = %v/%v", r.W(), r.H())
	}
	if r.Area() != 8 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported Empty")
	}
	if !(Rect{}).Empty() {
		t.Fatal("zero rect not Empty")
	}
	if (Rect{1, 1, 1, 5}).Area() != 0 {
		t.Fatal("degenerate rect has nonzero area")
	}
	if c := r.Center(); c != (Point{2, 1}) {
		t.Fatalf("Center = %v", c)
	}
}

func TestRectCanon(t *testing.T) {
	r := Rect{5, 7, 1, 2}.Canon()
	if r != (Rect{1, 2, 5, 7}) {
		t.Fatalf("Canon = %v", r)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{10, 10}, 4, 6)
	if r != (Rect{8, 7, 12, 13}) {
		t.Fatalf("RectFromCenter = %v", r)
	}
	if c := r.Center(); c != (Point{10, 10}) {
		t.Fatalf("center roundtrip = %v", c)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect = %v", got)
	}
	if u := a.Union(b); u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("Union = %v", u)
	}
	c := Rect{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint rects intersect")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects Overlaps")
	}
	if !a.Overlaps(b) {
		t.Fatal("overlapping rects not Overlaps")
	}
	// Union with empty.
	if u := a.Union(Rect{}); u != a {
		t.Fatalf("Union with empty = %v", u)
	}
	if u := (Rect{}).Union(a); u != a {
		t.Fatalf("empty Union = %v", u)
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) {
		t.Error("corner not contained (half-open should include min corner)")
	}
	if r.Contains(Point{10, 10}) {
		t.Error("max corner contained (half-open should exclude)")
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("inner rect not contained")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("escaping rect contained")
	}
	if r.ContainsRect(Rect{}) {
		t.Error("empty rect contained")
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if v := IoU(a, a); !almostEq(v, 1) {
		t.Errorf("self IoU = %v", v)
	}
	b := Rect{5, 0, 15, 10}
	// inter = 50, union = 150.
	if v := IoU(a, b); !almostEq(v, 50.0/150.0) {
		t.Errorf("IoU = %v", v)
	}
	if v := IoU(a, Rect{20, 20, 30, 30}); v != 0 {
		t.Errorf("disjoint IoU = %v", v)
	}
}

func TestQuadrants(t *testing.T) {
	frame := Rect{0, 0, 100, 100}
	cases := []struct {
		q    Quadrant
		want Rect
	}{
		{UpperLeft, Rect{0, 0, 50, 50}},
		{UpperRight, Rect{50, 0, 100, 50}},
		{LowerLeft, Rect{0, 50, 50, 100}},
		{LowerRight, Rect{50, 50, 100, 100}},
	}
	total := 0.0
	for _, c := range cases {
		got := QuadrantRect(frame, c.q)
		if got != c.want {
			t.Errorf("QuadrantRect(%v) = %v, want %v", c.q, got, c.want)
		}
		total += got.Area()
	}
	if !almostEq(total, frame.Area()) {
		t.Errorf("quadrants do not tile frame: %v vs %v", total, frame.Area())
	}
	for _, c := range cases {
		if c.q.String() == "" {
			t.Error("empty quadrant name")
		}
	}
	if Quadrant(42).String() != "Quadrant(42)" {
		t.Error("unknown quadrant String")
	}
}

func randRect(rng *rand.Rand) Rect {
	return Rect{
		rng.Float64() * 100, rng.Float64() * 100,
		rng.Float64() * 100, rng.Float64() * 100,
	}.Canon()
}

// Property: IoU is symmetric and bounded in [0,1].
func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		v1, v2 := IoU(a, b), IoU(b, a)
		if !almostEq(v1, v2) {
			t.Fatalf("IoU not symmetric: %v vs %v", v1, v2)
		}
		if v1 < 0 || v1 > 1+1e-12 {
			t.Fatalf("IoU out of range: %v", v1)
		}
	}
}

// Property: intersection area <= min area; union rect contains both.
func TestIntersectUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		inter := a.Intersect(b)
		if inter.Area() > math.Min(a.Area(), b.Area())+1e-9 {
			t.Fatalf("intersection larger than operand: %v %v %v", a, b, inter)
		}
		u := a.Union(b)
		if !a.Empty() && !u.ContainsRect(a) {
			t.Fatalf("union does not contain a: %v %v", u, a)
		}
		if !b.Empty() && !u.ContainsRect(b) {
			t.Fatalf("union does not contain b: %v %v", u, b)
		}
	}
}

// Property via testing/quick: Canon is idempotent and never inverted.
func TestCanonQuick(t *testing.T) {
	f := func(x0, y0, x1, y1 float64) bool {
		r := Rect{x0, y0, x1, y1}.Canon()
		return r.X0 <= r.X1 && r.Y0 <= r.Y1 && r == r.Canon()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: translation preserves area.
func TestTranslateQuick(t *testing.T) {
	f := func(x0, y0, w, h, dx, dy float64) bool {
		w, h = math.Abs(w), math.Abs(h)
		if math.IsNaN(x0+y0+w+h+dx+dy) || math.IsInf(x0+y0+w+h+dx+dy, 0) {
			return true
		}
		if w > 1e100 || h > 1e100 || math.Abs(x0) > 1e100 || math.Abs(y0) > 1e100 {
			return true // avoid float overflow artifacts
		}
		r := Rect{x0, y0, x0 + w, y0 + h}
		tr := r.Translate(Point{dx, dy})
		return math.Abs(tr.Area()-r.Area()) <= 1e-6*math.Max(1, r.Area())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
