package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/vql"
)

// Config tunes a Router.
type Config struct {
	// Shards names the fleet: each entry is one shard process's base
	// URL. Names must be unique and free of ':' (fleet query ids are
	// <shard>:<local id>).
	Shards []ShardInfo
	// VNodes is the ring's virtual nodes per shard (default 64).
	VNodes int
	// DialTimeout bounds each shard connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds bounded shard calls — register, ack, status,
	// probes — but never result streams (default 5s).
	RequestTimeout time.Duration
	// ProbeInterval paces the per-shard /v1/healthz prober feeding the
	// circuit breaker (default 2s).
	ProbeInterval time.Duration
	// BreakerFailures opens a shard's breaker after this many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before a half-open probe (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// BackoffBase and BackoffMax bound a relay's reconnect backoff
	// (defaults 100ms and 5s; exponential with full jitter between them).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StreamBuffer is the merged stream's channel depth (default 64).
	StreamBuffer int
	// Transport overrides the shard-facing transport — a test seam for
	// redirecting stable shard addresses at ephemeral listeners. The
	// fleet.shard.dial failpoint applies either way.
	Transport http.RoundTripper
}

// ShardInfo names one shard process.
type ShardInfo struct {
	Name string
	URL  string
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 64
	}
	return c
}

// Router fronts a fleet of shard processes with one query surface:
// registration routes to the feed's owner on the consistent-hash ring,
// results fan in through supervised relays, acks fan out to the owning
// shard, and /v1/healthz + /v1/metrics aggregate per-shard state.
type Router struct {
	cfg    Config
	ring   *Ring
	shards map[string]*shard
	order  []string // sorted shard names

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	queriesRouted atomic.Int64
	acksRouted    atomic.Int64
	streams       atomic.Int64
}

// New builds a router over the configured shards and starts their
// health probers. Close stops them.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fleet: at least one shard is required")
	}
	rt := &Router{
		cfg:    cfg,
		shards: make(map[string]*shard, len(cfg.Shards)),
		stop:   make(chan struct{}),
	}
	names := make([]string, 0, len(cfg.Shards))
	for _, si := range cfg.Shards {
		if si.Name == "" || strings.Contains(si.Name, ":") {
			return nil, fmt.Errorf("fleet: bad shard name %q (must be non-empty, no ':')", si.Name)
		}
		if _, dup := rt.shards[si.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", si.Name)
		}
		u, err := url.Parse(si.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fleet: shard %q: bad URL %q", si.Name, si.URL)
		}
		rt.shards[si.Name] = newShard(si.Name, si.URL, cfg)
		names = append(names, si.Name)
	}
	sort.Strings(names)
	rt.order = names
	rt.ring = NewRing(names, cfg.VNodes)
	for _, name := range names {
		sh := rt.shards[name]
		rt.wg.Add(1)
		go rt.probeLoop(sh)
	}
	return rt, nil
}

// Close stops the probers. In-flight relay streams end with their
// consumers' requests.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Owner returns the shard name owning a feed on the ring.
func (rt *Router) Owner(feed string) string { return rt.ring.Owner(feed) }

// probeLoop feeds one shard's breaker from /v1/healthz: reachable
// answers (ok, degraded, recovering) are link successes, transport
// failures feed the failure streak. The first probe fires immediately
// so a fresh router converges fast.
func (rt *Router) probeLoop(sh *shard) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		if sh.breaker.Allow() {
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.RequestTimeout)
			status, err := sh.probe(ctx)
			cancel()
			sh.probes.Add(1)
			if err != nil {
				sh.probeFails.Add(1)
				sh.breaker.Failure()
				sh.setHealth("unreachable")
			} else {
				sh.breaker.Success()
				sh.setHealth(status)
			}
		}
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
	}
}

// Handler returns the router's HTTP API, a fleet-wide subset of the
// shard surface under /v1:
//
//	POST   /v1/queries              register on the feed's owning shard
//	                                (id comes back as <shard>:<local id>)
//	GET    /v1/queries              list every shard's queries, attributed
//	GET    /v1/queries/{id}         owning shard's status row
//	GET    /v1/queries/{id}/results relay one query's stream (?from=<seq>)
//	POST   /v1/queries/{id}/ack     forward the ack to the owning shard
//	DELETE /v1/queries/{id}         unregister on the owning shard
//	GET    /v1/stream?id=a:q1[@<from>]&id=b:q2...
//	                                merged multi-query stream, one
//	                                shard-attributed StreamEvent per line
//	POST   /v1/feeds                create the feed on its owning shard
//	GET    /v1/feeds                list every shard's feeds, attributed
//	GET    /v1/healthz              aggregate shard state
//	GET    /v1/metrics              per-shard breaker/relay/load telemetry
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", rt.handleRegister)
	mux.HandleFunc("GET /v1/queries", rt.handleList)
	mux.HandleFunc("GET /v1/queries/{id}", rt.handleQueryStatus)
	mux.HandleFunc("GET /v1/queries/{id}/results", rt.handleResults)
	mux.HandleFunc("POST /v1/queries/{id}/ack", rt.handleAck)
	mux.HandleFunc("DELETE /v1/queries/{id}", rt.handleUnregister)
	mux.HandleFunc("GET /v1/stream", rt.handleStream)
	mux.HandleFunc("POST /v1/feeds", rt.handleCreateFeed)
	mux.HandleFunc("GET /v1/feeds", rt.handleListFeeds)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	return mux
}

// httpError mirrors the shard API's error envelope so fleet clients
// parse one shape everywhere.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
		"code":    code,
		"message": fmt.Sprintf(format, args...),
	}})
}

// fleetID joins a shard name and local query id; splitFleetID resolves
// one back to its shard.
func fleetID(shard, local string) string { return shard + ":" + local }

func (rt *Router) splitFleetID(id string) (*shard, string, error) {
	name, local, ok := strings.Cut(id, ":")
	if !ok || local == "" {
		return nil, "", fmt.Errorf("query id %q is not <shard>:<id>", id)
	}
	sh, ok := rt.shards[name]
	if !ok {
		return nil, "", fmt.Errorf("unknown shard %q in query id %q", name, id)
	}
	return sh, local, nil
}

// handleRegister routes POST /v1/queries by FROM clause: the body (raw
// VQL or the JSON register form) is parsed just enough to find the
// feed, the ring names the owner, and the original body is forwarded
// verbatim so shard-side semantics (tolerances, policies, spill) stay
// identical to direct registration.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	src := string(body)
	contentType := r.Header.Get("Content-Type")
	if strings.Contains(contentType, "json") {
		var jr struct {
			Query string `json:"query"`
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "decode request: %v", err)
			return
		}
		src = jr.Query
	}
	q, err := vql.Parse(src)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_query", "%v", err)
		return
	}
	owner := rt.ring.Owner(q.Source)
	sh := rt.shards[owner]
	if !sh.routable() {
		httpError(w, http.StatusServiceUnavailable, "shard_unavailable",
			"feed %q lives on shard %q, which is %s", q.Source, owner, sh.state())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	resp, err := sh.do(ctx, http.MethodPost, "/v1/queries", bytes.NewReader(body), contentType)
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard_unreachable", "shard %q: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		copyResponse(w, resp)
		return
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		httpError(w, http.StatusBadGateway, "shard_unreachable", "shard %q: decode response: %v", owner, err)
		return
	}
	if id, ok := created["id"].(string); ok {
		created["id"] = fleetID(owner, id)
	}
	created["shard"] = owner
	rt.queriesRouted.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(created)
}

// copyResponse relays a shard's answer verbatim (status, content type,
// body) — shard error envelopes pass through unchanged.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxyQuery forwards a bounded per-query call to the owning shard and
// rewrites the id fields in a JSON object answer to fleet form.
func (rt *Router) proxyQuery(w http.ResponseWriter, r *http.Request, method, suffix string) {
	sh, local, err := rt.splitFleetID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "bad_query_id", "%v", err)
		return
	}
	var body io.Reader
	if r.Body != nil {
		raw, rerr := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if rerr != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "read body: %v", rerr)
			return
		}
		body = bytes.NewReader(raw)
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	resp, err := sh.do(ctx, method, "/v1/queries/"+url.PathEscape(local)+suffix, body, r.Header.Get("Content-Type"))
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard_unreachable", "shard %q: %v", sh.name, err)
		return
	}
	defer resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "json") {
		copyResponse(w, resp)
		return
	}
	var obj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		copyResponse(w, resp)
		return
	}
	for _, key := range []string{"id", "query_id", "unregistered"} {
		if v, ok := obj[key].(string); ok && v == local {
			obj[key] = fleetID(sh.name, local)
		}
	}
	obj["shard"] = sh.name
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_ = json.NewEncoder(w).Encode(obj)
}

func (rt *Router) handleQueryStatus(w http.ResponseWriter, r *http.Request) {
	rt.proxyQuery(w, r, http.MethodGet, "")
}

func (rt *Router) handleUnregister(w http.ResponseWriter, r *http.Request) {
	rt.proxyQuery(w, r, http.MethodDelete, "")
}

// handleAck is the fleet-wide exactly-once hook: the ack routes to the
// owning shard, whose rlog moves the query's acked cursor and retention
// floor exactly as a direct ack would.
func (rt *Router) handleAck(w http.ResponseWriter, r *http.Request) {
	rt.acksRouted.Add(1)
	rt.proxyQuery(w, r, http.MethodPost, "/ack")
}

// relaySpec is one query's slot in a merged stream.
type relaySpec struct {
	sh    *shard
	fleet string
	local string
	from  int64
}

// handleResults relays one query's stream through the supervision
// machinery: same resume/backoff/degradation semantics as the merged
// stream, for a single fleet id on the shard-compatible path shape.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request) {
	sh, local, err := rt.splitFleetID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "bad_query_id", "%v", err)
		return
	}
	from := int64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		from, err = strconv.ParseInt(v, 10, 64)
		if err != nil || from < 0 {
			httpError(w, http.StatusBadRequest, "bad_request", "bad from %q", v)
			return
		}
	}
	rt.serveStream(w, r, []relaySpec{{sh: sh, fleet: fleetID(sh.name, local), local: local, from: from}})
}

// handleStream serves the merged fan-in: every id parameter names one
// fleet query (<shard>:<id>, optionally @<from> to resume), and the
// response interleaves their shard-attributed events as they arrive.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	ids := r.URL.Query()["id"]
	if len(ids) == 0 {
		httpError(w, http.StatusBadRequest, "bad_request", "at least one id parameter is required")
		return
	}
	specs := make([]relaySpec, 0, len(ids))
	for _, raw := range ids {
		id, fromStr, hasFrom := strings.Cut(raw, "@")
		from := int64(0)
		if hasFrom {
			v, err := strconv.ParseInt(fromStr, 10, 64)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, "bad_request", "bad resume position in %q", raw)
				return
			}
			from = v
		}
		sh, local, err := rt.splitFleetID(id)
		if err != nil {
			httpError(w, http.StatusNotFound, "bad_query_id", "%v", err)
			return
		}
		specs = append(specs, relaySpec{sh: sh, fleet: id, local: local, from: from})
	}
	rt.serveStream(w, r, specs)
}

// serveStream runs the relays and writes the merged NDJSON until every
// relay finishes or the consumer disconnects. A dead shard never
// stalls the stream: its relay backs off in its own goroutine while
// survivors keep writing.
func (rt *Router) serveStream(w http.ResponseWriter, r *http.Request, specs []relaySpec) {
	rt.streams.Add(1)
	defer rt.streams.Add(-1)
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	rcfg := relayConfig{backoffBase: rt.cfg.BackoffBase, backoffMax: rt.cfg.BackoffMax}
	relays := make([]*relay, len(specs))
	for i, sp := range specs {
		relays[i] = newRelay(sp.sh, sp.fleet, sp.local, sp.from, rcfg)
	}
	// The request context ends when the client disconnects or the
	// handler returns — either way every relay unwinds.
	out := runRelays(r.Context(), relays, rt.cfg.StreamBuffer)
	enc := json.NewEncoder(w)
	for ev := range out {
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleCreateFeed routes feed creation to the name's owner on the
// ring, so the fleet's placement and the router's query routing agree.
func (rt *Router) handleCreateFeed(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		httpError(w, http.StatusBadRequest, "bad_request", "feed name is required")
		return
	}
	owner := rt.ring.Owner(req.Name)
	sh := rt.shards[owner]
	if !sh.routable() {
		httpError(w, http.StatusServiceUnavailable, "shard_unavailable",
			"feed %q lives on shard %q, which is %s", req.Name, owner, sh.state())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	resp, err := sh.do(ctx, http.MethodPost, "/v1/feeds", bytes.NewReader(body), "application/json")
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard_unreachable", "shard %q: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	var obj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		copyResponse(w, resp)
		return
	}
	obj["shard"] = owner
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_ = json.NewEncoder(w).Encode(obj)
}

// fanout runs fn against every shard concurrently with the request
// timeout and collects per-shard results; shards that fail land in
// down.
func (rt *Router) fanout(parent context.Context, fn func(ctx context.Context, sh *shard) (any, error)) (results map[string]any, down []string) {
	type res struct {
		name string
		v    any
		err  error
	}
	ch := make(chan res, len(rt.order))
	for _, name := range rt.order {
		sh := rt.shards[name]
		go func(sh *shard) {
			ctx, cancel := context.WithTimeout(parent, rt.cfg.RequestTimeout)
			defer cancel()
			v, err := fn(ctx, sh)
			ch <- res{name: sh.name, v: v, err: err}
		}(sh)
	}
	results = make(map[string]any, len(rt.order))
	for range rt.order {
		r := <-ch
		if r.err != nil {
			down = append(down, r.name)
			continue
		}
		results[r.name] = r.v
	}
	sort.Strings(down)
	return results, down
}

// handleList merges every shard's query listing, each row attributed
// and its id rewritten to fleet form.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	results, down := rt.fanout(r.Context(), func(ctx context.Context, sh *shard) (any, error) {
		resp, err := sh.do(ctx, http.MethodGet, "/v1/queries", nil, "")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		var rows []map[string]any
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&rows); err != nil {
			return nil, err
		}
		return rows, nil
	})
	merged := make([]map[string]any, 0)
	for _, name := range rt.order {
		rows, ok := results[name].([]map[string]any)
		if !ok {
			continue
		}
		for _, row := range rows {
			if id, ok := row["id"].(string); ok {
				row["id"] = fleetID(name, id)
			}
			row["shard"] = name
			merged = append(merged, row)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"queries": merged, "shards_down": down})
}

// handleListFeeds merges every shard's feed listing, attributed.
func (rt *Router) handleListFeeds(w http.ResponseWriter, r *http.Request) {
	results, down := rt.fanout(r.Context(), func(ctx context.Context, sh *shard) (any, error) {
		resp, err := sh.do(ctx, http.MethodGet, "/v1/feeds", nil, "")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		var rows []map[string]any
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&rows); err != nil {
			return nil, err
		}
		return rows, nil
	})
	merged := make([]map[string]any, 0)
	for _, name := range rt.order {
		rows, ok := results[name].([]map[string]any)
		if !ok {
			continue
		}
		for _, row := range rows {
			row["shard"] = name
			merged = append(merged, row)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"feeds": merged, "shards_down": down})
}

// shardHealth is one shard's row in the router's healthz answer.
type shardHealth struct {
	Name  string `json:"name"`
	State string `json:"state"` // up, degraded, recovering, half-open, down, unknown
}

// handleHealthz aggregates shard state: 200 {"status":"ok"} only when
// every shard is up; anything less is 503 {"status":"degraded"} with
// the per-shard states attached. The router itself is alive either way
// — degraded means reduced capacity, not a dead router.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status string        `json:"status"`
		Shards []shardHealth `json:"shards"`
	}{Status: "ok"}
	for _, name := range rt.order {
		st := rt.shards[name].state()
		resp.Shards = append(resp.Shards, shardHealth{Name: name, State: st})
		if st != "up" {
			resp.Status = "degraded"
		}
	}
	status := http.StatusOK
	if resp.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// ShardMetrics is one shard's row in the router's metrics answer.
type ShardMetrics struct {
	Name    string       `json:"name"`
	State   string       `json:"state"`
	Breaker BreakerState `json:"breaker"`
	// ConsecutiveFailures and Trips expose the breaker's streak and
	// lifetime open count.
	ConsecutiveFailures int   `json:"consecutive_failures,omitempty"`
	Trips               int64 `json:"trips,omitempty"`
	Probes              int64 `json:"probes"`
	ProbeFailures       int64 `json:"probe_failures,omitempty"`
	// Relays is the shard's live relay count, RelaySeq the highest
	// event_seq relayed from it, Resumes how many reconnects picked a
	// stream back up mid-flight.
	Relays   int64 `json:"relays"`
	RelaySeq int64 `json:"relay_seq"`
	Resumes  int64 `json:"resumes"`
	// Load is the rate_fps-weighted share signal from the shard's own
	// /metrics worker_shares (absent when the shard was unreachable);
	// LoadShare normalises RateFPS across reachable shards.
	Load      *ShardLoad `json:"load,omitempty"`
	LoadShare float64    `json:"load_share,omitempty"`
}

// RouterMetrics answers GET /v1/metrics.
type RouterMetrics struct {
	Shards        []ShardMetrics `json:"shards"`
	QueriesRouted int64          `json:"queries_routed"`
	AcksRouted    int64          `json:"acks_routed"`
	Streams       int64          `json:"streams"`
}

// handleMetrics reports per-shard breaker/relay telemetry plus each
// reachable shard's rate_fps-weighted load (fetched live, best-effort:
// a shard with an open breaker is skipped rather than dialled).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	loads, _ := rt.fanout(r.Context(), func(ctx context.Context, sh *shard) (any, error) {
		if sh.breaker.State() == BreakerOpen {
			return nil, errors.New("breaker open")
		}
		load, err := sh.metricsLoad(ctx)
		if err != nil {
			return nil, err
		}
		return load, nil
	})
	var totalRate float64
	for _, v := range loads {
		if load, ok := v.(ShardLoad); ok {
			totalRate += load.RateFPS
		}
	}
	m := RouterMetrics{
		QueriesRouted: rt.queriesRouted.Load(),
		AcksRouted:    rt.acksRouted.Load(),
		Streams:       rt.streams.Load(),
	}
	for _, name := range rt.order {
		sh := rt.shards[name]
		row := ShardMetrics{
			Name:                name,
			State:               sh.state(),
			Breaker:             sh.breaker.State(),
			ConsecutiveFailures: sh.breaker.ConsecutiveFailures(),
			Trips:               sh.breaker.Trips(),
			Probes:              sh.probes.Load(),
			ProbeFailures:       sh.probeFails.Load(),
			Relays:              sh.relays.Load(),
			RelaySeq:            sh.relaySeq.Load(),
			Resumes:             sh.resumes.Load(),
		}
		if v, ok := loads[name].(ShardLoad); ok {
			load := v
			row.Load = &load
			if totalRate > 0 {
				row.LoadShare = load.RateFPS / totalRate
			}
		}
		m.Shards = append(m.Shards, row)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}
