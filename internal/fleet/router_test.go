package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmq/internal/server"
)

// routerMetricsOf fetches and decodes the router's /v1/metrics.
func routerMetricsOf(t *testing.T, routerURL string) RouterMetrics {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m RouterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitShardState polls router metrics until the named shard reaches the
// wanted state.
func waitShardState(t *testing.T, routerURL, shard, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		for _, sm := range routerMetricsOf(t, routerURL).Shards {
			if sm.Name == shard {
				last = sm.State
			}
		}
		if last == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("shard %q never reached state %q (last %q)", shard, want, last)
}

// TestRouterRoutesByOwner: feeds and queries land on the shard the ring
// assigns, and the created query id comes back in fleet <shard>:<id>
// form with the shard attributed.
func TestRouterRoutesByOwner(t *testing.T) {
	d := newShardDirectory()
	sa := startShard(t, d, "alpha", "", server.Config{})
	sb := startShard(t, d, "beta", "", server.Config{})
	defer sa.srv.Close()
	defer sb.srv.Close()
	defer sa.ts.Close()
	defer sb.ts.Close()

	rt, rts := startRouter(t, testRouterConfig(d, sa, sb))

	taken := map[string]bool{}
	feedA := feedOwnedBy(t, rt.ring, "alpha", taken)
	feedB := feedOwnedBy(t, rt.ring, "beta", taken)
	for _, feed := range []string{feedA, feedB} {
		createFeedVia(t, rts.URL, map[string]any{
			"name": feed, "profile": "jackson", "source": "sim", "max_frames": 10,
		})
	}

	idA := registerVia(t, rts.URL, "SELECT FRAMES FROM "+feedA+" WHERE COUNT(car) >= 0", nil)
	idB := registerVia(t, rts.URL, "SELECT FRAMES FROM "+feedB+" WHERE COUNT(car) >= 0", nil)
	if !strings.HasPrefix(idA, "alpha:") {
		t.Fatalf("feed %q query id = %q, want alpha:* (owner alpha)", feedA, idA)
	}
	if !strings.HasPrefix(idB, "beta:") {
		t.Fatalf("feed %q query id = %q, want beta:* (owner beta)", feedB, idB)
	}

	// The registration must live on the owning shard, watching the
	// routed feed. (Local ids collide across shards by design — each
	// shard numbers independently — so check the feed, not the id.)
	localA := strings.TrimPrefix(idA, "alpha:")
	regA, ok := sa.srv.Get(localA)
	if !ok {
		t.Fatalf("query %s not on shard alpha", idA)
	}
	if regA.Feed() != feedA {
		t.Fatalf("query %s watches feed %q on alpha, want %q", idA, regA.Feed(), feedA)
	}
	localB := strings.TrimPrefix(idB, "beta:")
	regB, ok := sb.srv.Get(localB)
	if !ok {
		t.Fatalf("query %s not on shard beta", idB)
	}
	if regB.Feed() != feedB {
		t.Fatalf("query %s watches feed %q on beta, want %q", idB, regB.Feed(), feedB)
	}

	m := routerMetricsOf(t, rts.URL)
	if m.QueriesRouted != 2 {
		t.Fatalf("queries_routed = %d, want 2", m.QueriesRouted)
	}
}

// TestRouterRelayPassthroughAndAck: a stream relayed through the router
// carries the shard's event lines byte-for-byte, and an ack through the
// router moves the shard's acked cursor (exactly-once fleet-wide).
func TestRouterRelayPassthroughAndAck(t *testing.T) {
	d := newShardDirectory()
	sh := startShard(t, d, "solo", "", server.Config{})
	defer sh.srv.Close()
	defer sh.ts.Close()
	_, rts := startRouter(t, testRouterConfig(d, sh))

	createFeedVia(t, rts.URL, map[string]any{
		"name": "cam1", "profile": "jackson", "source": "sim", "max_frames": 40,
	})
	fid := registerVia(t, rts.URL, "SELECT FRAMES FROM cam1 WHERE COUNT(car) >= 0", nil)
	local := strings.TrimPrefix(fid, "solo:")

	// Relay through the router until the end event.
	sc := openStream(t, rts.URL+"/v1/queries/"+fid+"/results?from=0")
	var relayed []StreamEvent
	for {
		ev, ok := sc.next(t, 10*time.Second)
		if !ok {
			t.Fatal("stream closed before end event")
		}
		if ev.Shard != "solo" {
			t.Fatalf("event attributed to shard %q, want solo", ev.Shard)
		}
		if ev.QueryID != fid {
			t.Fatalf("event attributed to query %q, want %q", ev.QueryID, fid)
		}
		// Armed failpoints (VMQ_FAULT=fleet.relay.read=...) intersperse
		// typed outage events; the shard's own payload events must still
		// come through byte-identical around them.
		if ev.Kind == "shard_down" || ev.Kind == "shard_up" {
			continue
		}
		if ev.Kind == "relay_failed" {
			t.Fatalf("relay failed permanently: %s", ev.Error)
		}
		relayed = append(relayed, ev)
		if ev.Kind == "end" {
			break
		}
	}

	// Read the same stream directly off the shard and demand
	// byte-identical event payloads in the same order.
	resp, err := http.Get(sh.ts.URL + "/v1/queries/" + local + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var direct []string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		direct = append(direct, line)
		if strings.Contains(line, `"kind":"end"`) {
			break
		}
	}
	if len(direct) != len(relayed) {
		t.Fatalf("direct read has %d events, relay %d", len(direct), len(relayed))
	}
	for i := range direct {
		if got := strings.TrimSpace(string(relayed[i].Event)); got != direct[i] {
			t.Fatalf("event %d differs through the relay:\n relay: %s\ndirect: %s", i, got, direct[i])
		}
	}

	// Ack the last match through the router; the shard's cursor must move.
	var lastSeq int64 = -1
	for _, ev := range relayed {
		var p struct {
			Kind     string `json:"kind"`
			EventSeq int64  `json:"event_seq"`
		}
		if err := json.Unmarshal(ev.Event, &p); err != nil {
			t.Fatal(err)
		}
		if p.Kind == "match" {
			lastSeq = p.EventSeq
		}
	}
	if lastSeq < 0 {
		t.Fatal("no match events relayed")
	}
	if !ackVia(t, rts.URL, fid, lastSeq) {
		t.Fatalf("ack via router failed for %s seq %d", fid, lastSeq)
	}
	row, err := http.Get(rts.URL + "/v1/queries/" + fid)
	if err != nil {
		t.Fatal(err)
	}
	defer row.Body.Close()
	var status struct {
		ID    string `json:"id"`
		Shard string `json:"shard"`
		Acked int64  `json:"acked"`
	}
	if err := json.NewDecoder(row.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.ID != fid || status.Shard != "solo" {
		t.Fatalf("status row = %+v, want id %s on shard solo", status, fid)
	}
	if status.Acked != lastSeq {
		t.Fatalf("acked = %d, want %d (ack is through the sequence)", status.Acked, lastSeq)
	}
}

// TestRouterRefusesRecoveringShard: a shard answering healthz with 503
// {"status":"recovering"} is probed into the "recovering" state, refuses
// new registrations with 503 shard_unavailable, and degrades the
// router's aggregate healthz.
func TestRouterRefusesRecoveringShard(t *testing.T) {
	d := newShardDirectory()
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"recovering"}`)
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	}))
	defer stub.Close()
	d.set("slow.shard", stub.Listener.Addr().String())

	cfg := testRouterConfig(d)
	cfg.Shards = []ShardInfo{{Name: "slow", URL: "http://slow.shard"}}
	_, rts := startRouter(t, cfg)

	waitShardState(t, rts.URL, "slow", "recovering")

	resp, err := http.Post(rts.URL+"/v1/queries", "text/plain",
		strings.NewReader("SELECT FRAMES FROM cam1 WHERE COUNT(car) >= 0"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register on recovering shard: HTTP %d, want 503", resp.StatusCode)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "shard_unavailable" {
		t.Fatalf("error code = %q, want shard_unavailable", envelope.Error.Code)
	}

	hz, err := http.Get(rts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router healthz = HTTP %d with a recovering shard, want 503", hz.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("router status = %q, want degraded", health.Status)
	}
	if len(health.Shards) != 1 || health.Shards[0].State != "recovering" {
		t.Fatalf("healthz shards = %+v, want slow recovering", health.Shards)
	}
}

// TestRouterBreakerOpensOnDeadShard: probes against an unreachable
// shard trip the breaker, the shard reports "down", and the breaker
// state is visible in metrics.
func TestRouterBreakerOpensOnDeadShard(t *testing.T) {
	d := newShardDirectory() // "ghost.shard" never mapped: dials refuse
	cfg := testRouterConfig(d)
	cfg.Shards = []ShardInfo{{Name: "ghost", URL: "http://ghost.shard"}}
	_, rts := startRouter(t, cfg)

	// "down" appears on the first unreachable probe; keep polling until
	// the breaker itself has tripped open.
	deadline := time.Now().Add(5 * time.Second)
	var sm ShardMetrics
	for {
		for _, s := range routerMetricsOf(t, rts.URL).Shards {
			if s.Name == "ghost" {
				sm = s
			}
		}
		if sm.Trips >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; metrics %+v", sm)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sm.State != "down" {
		t.Fatalf("state = %q with a tripped breaker, want down", sm.State)
	}
	// Probe failures count toward the trip, but so does every other
	// transport failure (load fetches included), so only assert the
	// prober saw the outage at all.
	if sm.ProbeFailures < 1 {
		t.Fatalf("probe_failures = %d, want >= 1", sm.ProbeFailures)
	}
}
