package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"vmq/internal/fault"
)

// StreamEvent is one line of the merged fleet stream. Shard events pass
// through verbatim in Event — the router never re-encodes a shard's
// bytes, so a fleet consumer sees exactly what a direct consumer of the
// shard would (byte-identical resume proofs hold fleet-wide). The
// router adds its own typed kinds around them:
//
//	shard_down   the shard's link failed mid-stream; the relay is
//	             backing off and will resume. Survivor shards keep
//	             flowing — the merged stream never stalls on one death.
//	shard_up     the link recovered; ResumeFrom is the event_seq the
//	             relay re-asked for (its cursor after the last relayed
//	             event), Resumes the link's reconnect count.
//	relay_failed the shard answered with a permanent error (unknown
//	             query, bad request): the relay ends, no retry.
type StreamEvent struct {
	Shard   string `json:"shard"`
	QueryID string `json:"query_id,omitempty"` // fleet id: <shard>:<local id>
	Kind    string `json:"kind"`
	// Event is the shard's NDJSON line, verbatim, for pass-through
	// kinds (match, window, gap, end).
	Event json.RawMessage `json:"event,omitempty"`
	// Error details shard_down / relay_failed.
	Error string `json:"error,omitempty"`
	// ResumeFrom and Resumes annotate shard_up.
	ResumeFrom int64 `json:"resume_from,omitempty"`
	Resumes    int64 `json:"resumes,omitempty"`
}

// relayConfig is the retry tuning a relay runs under.
type relayConfig struct {
	backoffBase time.Duration
	backoffMax  time.Duration
}

// relay supervises one query's stream from its owning shard into the
// merged output channel. It survives shard deaths: on a dial or read
// failure it emits shard_down once, backs off exponentially with full
// jitter (gated on the shard's breaker so a dead shard is not
// hammered), reconnects with ?from=<cursor> — the event_seq after the
// last event it relayed — and emits shard_up. For a block-policy query
// whose history is durable the resumed stream continues gap-free; for
// drop-oldest the shard answers with its honest typed gap event, which
// passes through like any other.
type relay struct {
	sh      *shard
	fleetID string
	localID string
	next    int64 // resume cursor: the next event_seq to ask for
	cfg     relayConfig
	rng     *rand.Rand

	resumes int64
	down    bool // an outage is open (shard_down emitted, shard_up pending)
}

func newRelay(sh *shard, fleetID, localID string, from int64, cfg relayConfig) *relay {
	return &relay{
		sh:      sh,
		fleetID: fleetID,
		localID: localID,
		next:    from,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(int64(ringHash(fleetID)))),
	}
}

// run relays until the query's end event arrives, a permanent error
// ends the relay, or ctx is cancelled (the fleet consumer went away).
func (rl *relay) run(ctx context.Context, out chan<- StreamEvent) {
	rl.sh.relays.Add(1)
	defer rl.sh.relays.Add(-1)
	attempt := 0
	for ctx.Err() == nil {
		if !rl.sh.breaker.Allow() {
			// Breaker open: the shard is known dead. Wait out a slice of
			// the cooldown instead of dialing into the void.
			if !sleepCtx(ctx, rl.backoff(attempt)) {
				return
			}
			continue
		}
		done, err := rl.stream(ctx, out)
		if done {
			return
		}
		rl.sh.breaker.Failure()
		if !rl.down {
			rl.down = true
			if !send(ctx, out, StreamEvent{
				Shard: rl.sh.name, QueryID: rl.fleetID, Kind: "shard_down",
				Error: err.Error(),
			}) {
				return
			}
		}
		attempt++
		if !sleepCtx(ctx, rl.backoff(attempt)) {
			return
		}
	}
}

// stream opens one results connection at the resume cursor and relays
// lines until the body ends. done=true means the relay is finished for
// good (end event seen, permanent shard answer, or consumer gone).
func (rl *relay) stream(ctx context.Context, out chan<- StreamEvent) (done bool, err error) {
	path := fmt.Sprintf("/v1/queries/%s/results?from=%d", url.PathEscape(rl.localID), rl.next)
	req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, rl.sh.baseURL+path, nil)
	if rerr != nil {
		return true, nil
	}
	resp, derr := rl.sh.sc.Do(req)
	if derr != nil {
		return false, derr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			// Shard-side transient (recovering, shutting down): retry.
			return false, fmt.Errorf("shard %s: HTTP %d", rl.sh.name, resp.StatusCode)
		}
		// Permanent answer (query unknown on a shard that lost in-memory
		// state, bad request): surface it and stop.
		if !send(ctx, out, StreamEvent{
			Shard: rl.sh.name, QueryID: rl.fleetID, Kind: "relay_failed",
			Error: fmt.Sprintf("shard %s: HTTP %d for %s", rl.sh.name, resp.StatusCode, path),
		}) {
			return true, nil
		}
		return true, nil
	}
	rl.sh.breaker.Success()
	if rl.down {
		// Reconnected after an outage: the open stream itself proves the
		// shard is back, so the recovery marker goes out before whatever
		// events follow (which may take a while on an idle query).
		rl.down = false
		rl.resumes++
		rl.sh.resumes.Add(1)
		if !send(ctx, out, StreamEvent{
			Shard: rl.sh.name, QueryID: rl.fleetID, Kind: "shard_up",
			ResumeFrom: rl.next, Resumes: rl.resumes,
		}) {
			return true, nil
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if ferr := fault.Hit("fleet.relay.read"); ferr != nil {
			return false, ferr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind      string `json:"kind"`
			EventSeq  int64  `json:"event_seq"`
			DroppedTo int64  `json:"dropped_to"`
		}
		if jerr := json.Unmarshal(line, &probe); jerr != nil {
			return false, fmt.Errorf("shard %s: bad stream line: %w", rl.sh.name, jerr)
		}
		// Advance the resume cursor past what was relayed: a gap event
		// covers [dropped_from, dropped_to) and positions the consumer at
		// dropped_to; everything else occupies its event_seq.
		if probe.Kind == "gap" {
			rl.next = probe.DroppedTo
		} else if probe.EventSeq >= rl.next {
			rl.next = probe.EventSeq + 1
		}
		if probe.EventSeq > rl.sh.relaySeq.Load() {
			rl.sh.relaySeq.Store(probe.EventSeq)
		}
		if !send(ctx, out, StreamEvent{
			Shard: rl.sh.name, QueryID: rl.fleetID, Kind: probe.Kind,
			Event: json.RawMessage(append([]byte(nil), line...)),
		}) {
			return true, nil
		}
		if probe.Kind == "end" {
			return true, nil
		}
	}
	if serr := sc.Err(); serr != nil {
		return false, serr
	}
	// A body that ends without the end event is a severed stream (shard
	// shutdown closes streams cleanly mid-query): an outage, not an end.
	return false, fmt.Errorf("shard %s: stream closed before end event", rl.sh.name)
}

// backoff returns the attempt's sleep: exponential from the base with
// full jitter, capped at the max. Full jitter spreads a fleet of
// relays reconnecting to one restarted shard instead of stampeding it.
func (rl *relay) backoff(attempt int) time.Duration {
	d := rl.cfg.backoffBase << uint(min(attempt, 16))
	if d > rl.cfg.backoffMax || d <= 0 {
		d = rl.cfg.backoffMax
	}
	return time.Duration(1 + rl.rng.Int63n(int64(d)))
}

// send delivers ev unless the consumer's context ends first.
func send(ctx context.Context, out chan<- StreamEvent, ev StreamEvent) bool {
	select {
	case out <- ev:
		return true
	case <-ctx.Done():
		return false
	}
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runRelays drives one merged stream: one goroutine per relay, all
// feeding out, which closes once every relay finishes or ctx ends.
func runRelays(ctx context.Context, relays []*relay, buffer int) <-chan StreamEvent {
	if buffer <= 0 {
		buffer = 64
	}
	out := make(chan StreamEvent, buffer)
	var wg sync.WaitGroup
	for _, rl := range relays {
		wg.Add(1)
		go func(rl *relay) {
			defer wg.Done()
			rl.run(ctx, out)
		}(rl)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
