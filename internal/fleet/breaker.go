package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: the shard link is healthy; requests flow.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the link tripped after consecutive failures; requests
	// are refused until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request
	// is admitted to decide between closing and re-opening.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker is a consecutive-failure circuit breaker shared by a shard's
// prober and its relays: any of them reporting outcomes moves the same
// state, so one observed death stops every path hammering the shard.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures since the last success
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures (<=0 selects 3) and half-opens after cooldown
// (<=0 selects 5s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// Allow reports whether a request may proceed. While open it returns
// false until the cooldown elapses, then admits exactly one probe
// (half-open); the probe's Success/Failure decides what happens next.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy outcome: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed outcome: a half-open probe re-opens
// immediately, a closed breaker opens once the streak reaches the
// threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.threshold) {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's position (an open breaker past its
// cooldown still reports open until the next Allow admits the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
