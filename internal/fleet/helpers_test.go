package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vmq/internal/server"
)

// shardDirectory maps stable shard hostnames onto whatever listener
// currently backs them, so a "restarted" shard (new httptest server,
// new ephemeral port) keeps its fleet address — the router dials
// http://<name>.shard and the directory resolves it.
type shardDirectory struct {
	mu    sync.Mutex
	addrs map[string]string
	// throttleBytes/throttleEvery rate-limit reads on dialed conns
	// (bytes per interval). Chaos tests cap the relay's drain rate so a
	// kill reliably lands mid-replay instead of racing a fully-buffered
	// stream.
	throttleBytes int
	throttleEvery time.Duration
}

func newShardDirectory() *shardDirectory {
	return &shardDirectory{addrs: make(map[string]string)}
}

func (d *shardDirectory) set(host, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[host] = addr
}

// transport dials through the directory. Keep-alives are off so a
// shard restart cannot be papered over by a pooled connection to the
// dead listener.
func (d *shardDirectory) transport() http.RoundTripper {
	return &http.Transport{
		DisableKeepAlives: true,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			d.mu.Lock()
			real := d.addrs[host]
			d.mu.Unlock()
			if real == "" {
				return nil, fmt.Errorf("shard %s: connection refused", host)
			}
			conn, err := (&net.Dialer{Timeout: time.Second}).DialContext(ctx, network, real)
			if err != nil {
				return conn, err
			}
			// A small receive buffer keeps the kernel from absorbing a
			// whole replay ahead of the throttle below.
			if tcp, ok := conn.(*net.TCPConn); ok {
				_ = tcp.SetReadBuffer(4 << 10)
			}
			return &throttledConn{Conn: conn, d: d}, nil
		},
	}
}

// throttledConn caps read throughput at the directory's current
// throttle (re-read every call, so tests can lift it mid-run).
type throttledConn struct {
	net.Conn
	d *shardDirectory
}

func (c *throttledConn) Read(p []byte) (int, error) {
	c.d.mu.Lock()
	chunk, every := c.d.throttleBytes, c.d.throttleEvery
	c.d.mu.Unlock()
	if chunk <= 0 {
		return c.Conn.Read(p)
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := c.Conn.Read(p)
	if err == nil {
		time.Sleep(every)
	}
	return n, err
}

// setThrottle adjusts the read throttle for current and future conns.
func (d *shardDirectory) setThrottle(bytes int, every time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.throttleBytes, d.throttleEvery = bytes, every
}

// smallBufListener shrinks the send buffer of accepted conns so a
// shard cannot park an entire replay in the kernel before a kill.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		if tcp, ok := conn.(*net.TCPConn); ok {
			_ = tcp.SetWriteBuffer(4 << 10)
		}
	}
	return conn, err
}

// serveShard exposes srv over HTTP with small socket send buffers.
func serveShard(srv *server.Server) *httptest.Server {
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener = smallBufListener{ts.Listener}
	ts.Start()
	return ts
}

// testShard is one in-process shard behind an HTTP listener.
type testShard struct {
	name string
	dir  string // state dir; "" = in-memory
	srv  *server.Server
	ts   *httptest.Server
}

func (s *testShard) host() string { return s.name + ".shard" }
func (s *testShard) url() string  { return "http://" + s.host() }

// startShard brings a shard up (durable when dir != "") and registers
// its listener in the directory.
func startShard(t testing.TB, d *shardDirectory, name, dir string, cfg server.Config) *testShard {
	t.Helper()
	var srv *server.Server
	if dir != "" {
		cfg.StateDir = dir
		s, err := server.Recover(cfg)
		if err != nil {
			t.Fatalf("shard %s: recover: %v", name, err)
		}
		srv = s
	} else {
		srv = server.New(cfg)
	}
	srv.Start()
	sh := &testShard{name: name, dir: dir, srv: srv, ts: serveShard(srv)}
	d.set(sh.host(), sh.ts.Listener.Addr().String())
	return sh
}

// kill simulates kill -9: the server crashes (no graceful flush), the
// listener dies mid-connection, and the directory entry goes dark so
// new dials fail like a dead host's would.
func (s *testShard) kill(d *shardDirectory) {
	d.set(s.host(), "")
	s.srv.Crash()
	s.ts.CloseClientConnections()
	s.ts.Close()
}

// restart recovers the shard from its state dir onto a fresh listener
// at the same fleet address.
func (s *testShard) restart(t testing.TB, d *shardDirectory, cfg server.Config) {
	t.Helper()
	if s.dir == "" {
		t.Fatal("restart needs a durable shard")
	}
	cfg.StateDir = s.dir
	srv, err := server.Recover(cfg)
	if err != nil {
		t.Fatalf("shard %s: restart: %v", s.name, err)
	}
	srv.Start()
	s.srv = srv
	s.ts = serveShard(srv)
	d.set(s.host(), s.ts.Listener.Addr().String())
}

// testRouterConfig is the fast-converging tuning fleet tests run under.
func testRouterConfig(d *shardDirectory, shards ...*testShard) Config {
	infos := make([]ShardInfo, len(shards))
	for i, s := range shards {
		infos[i] = ShardInfo{Name: s.name, URL: s.url()}
	}
	return Config{
		Shards:          infos,
		ProbeInterval:   50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 150 * time.Millisecond,
		BackoffBase:     10 * time.Millisecond,
		BackoffMax:      150 * time.Millisecond,
		DialTimeout:     time.Second,
		RequestTimeout:  2 * time.Second,
		Transport:       d.transport(),
	}
}

// startRouter builds the router and serves its API.
func startRouter(t testing.TB, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		rts.Close()
		rt.Close()
	})
	return rt, rts
}

// feedOwnedBy finds a camN feed name the ring places on the wanted
// shard, skipping any names already taken.
func feedOwnedBy(t testing.TB, ring *Ring, shard string, taken map[string]bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("cam%d", i)
		if taken[name] {
			continue
		}
		if ring.Owner(name) == shard {
			taken[name] = true
			return name
		}
	}
	t.Fatalf("no cam* feed maps onto shard %q", shard)
	return ""
}

// registerVia registers a query through the router and returns the
// fleet id.
func registerVia(t testing.TB, routerURL, query string, extra map[string]any) string {
	t.Helper()
	body := map[string]any{"query": query}
	for k, v := range extra {
		body[k] = v
	}
	raw, _ := json.Marshal(body)
	resp, err := http.Post(routerURL+"/v1/queries", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var created struct {
		ID    string `json:"id"`
		Shard string `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %q: HTTP %d", query, resp.StatusCode)
	}
	return created.ID
}

// createFeedVia creates a feed through the router.
func createFeedVia(t testing.TB, routerURL string, spec map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(routerURL+"/v1/feeds", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b := new(strings.Builder)
		_, _ = bufio.NewReader(resp.Body).WriteTo(b)
		t.Fatalf("create feed %v: HTTP %d: %s", spec, resp.StatusCode, b.String())
	}
}

// ackVia acknowledges through the router; it reports success so chaos
// paths can tolerate acks racing a shard death.
func ackVia(t testing.TB, routerURL, fleetID string, seq int64) bool {
	t.Helper()
	raw, _ := json.Marshal(map[string]int64{"seq": seq})
	resp, err := http.Post(routerURL+"/v1/queries/"+fleetID+"/ack", "application/json", bytes.NewReader(raw))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// streamConn pumps a merged NDJSON stream into a channel so tests can
// assert liveness with timeouts.
type streamConn struct {
	resp *http.Response
	ch   chan StreamEvent
	errc chan error
}

// openStream opens an NDJSON stream (router or shard) and starts the
// pump.
func openStream(t testing.TB, url string) *streamConn {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream %s: HTTP %d", url, resp.StatusCode)
	}
	sc := &streamConn{resp: resp, ch: make(chan StreamEvent, 256), errc: make(chan error, 1)}
	go func() {
		defer close(sc.ch)
		scanner := bufio.NewScanner(resp.Body)
		scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for scanner.Scan() {
			line := scanner.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var ev StreamEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				sc.errc <- fmt.Errorf("bad stream line %q: %w", line, err)
				return
			}
			sc.ch <- ev
		}
		sc.errc <- scanner.Err()
	}()
	t.Cleanup(sc.close)
	return sc
}

func (sc *streamConn) close() { sc.resp.Body.Close() }

// next returns the next event, failing the test after the timeout —
// the stalled-stream detector.
func (sc *streamConn) next(t testing.TB, timeout time.Duration) (StreamEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-sc.ch:
		return ev, ok
	case <-time.After(timeout):
		t.Fatalf("stream produced nothing for %s — merged stream stalled", timeout)
		return StreamEvent{}, false
	}
}
