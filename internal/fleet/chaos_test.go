package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"vmq/internal/fault"
	"vmq/internal/rlog"
	"vmq/internal/server"
)

// shardEvent is the decoded core of a relayed shard payload.
type shardEvent struct {
	Kind      string `json:"kind"`
	EventSeq  int64  `json:"event_seq"`
	DroppedTo int64  `json:"dropped_to"`
}

func decodeShardEvent(t *testing.T, ev StreamEvent) shardEvent {
	t.Helper()
	var se shardEvent
	if err := json.Unmarshal(ev.Event, &se); err != nil {
		t.Fatalf("bad shard event %s: %v", ev.Event, err)
	}
	return se
}

// waitQueryDone polls a query's status row through the router until its
// runner has finished (every event durable on the shard).
func waitQueryDone(t testing.TB, routerURL, fleetID string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(routerURL + "/v1/queries/" + fleetID)
		if err == nil {
			var row struct {
				Done bool `json:"done"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&row)
			resp.Body.Close()
			if derr == nil && row.Done {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("query %s never finished", fleetID)
}

// referenceRun executes the acked query on a fresh single-process server
// over an identical feed and returns its raw NDJSON event lines — the
// byte-level ground truth an interrupted fleet relay must reproduce.
func referenceRun(t *testing.T, feed string, maxFrames int) []string {
	t.Helper()
	d := newShardDirectory()
	ref := startShard(t, d, "ref", t.TempDir(), server.Config{})
	defer ref.srv.Close()
	defer ref.ts.Close()
	if err := ref.srv.CreateFeedSpec(server.FeedSpec{
		Name: feed, Profile: "jackson", Source: "sim", MaxFrames: maxFrames,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ref.ts.URL+"/v1/queries", "application/json",
		strings.NewReader(`{"query":"SELECT FRAMES FROM `+feed+` WHERE COUNT(car) >= 0","policy":"block","spill":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&created); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("reference register: HTTP %d", resp.StatusCode)
	}
	stream, err := http.Get(ref.ts.URL + "/v1/queries/" + created.ID + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var lines []string
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		lines = append(lines, line)
		if strings.Contains(line, `"kind":"end"`) {
			break
		}
	}
	return lines
}

// TestFleetChaosKillRecover is the fleet resume acceptance bar: three
// durable shards behind one router, one shard killed (SIGKILL
// semantics) mid-relay and restarted from its state dir.
//
//   - The merged stream never stalls: the surviving shard's events keep
//     flowing through the outage, bracketed by typed shard_down/shard_up.
//   - The acked block-policy consumer's stream is gap-free across the
//     kill and byte-identical to an uninterrupted single-process run.
//   - An un-acked drop-oldest consumer resuming from an early sequence
//     after the restart gets the honest typed gap, not silence.
func TestFleetChaosKillRecover(t *testing.T) {
	const (
		ackedFrames = 600  // qAcked feed length: 600 matches + 1 end (~100KB)
		gapFrames   = 2000 // qGap feed length: enough to blow the spill budget
		killAtSeq   = 150  // kill once the relay has delivered this far
		ackThrough  = 100
	)
	d := newShardDirectory()
	// ~64KB/s shard-side read ceiling plus the 4KB socket buffers the
	// harness pins: at most ~16KB (~100 events) can be in flight, so a
	// kill at seq 150 of a ~100KB replay is reliably mid-relay.
	d.setThrottle(256, 4*time.Millisecond)

	// The victim's spill budget retains the acked query's entire history
	// (gap-free resume) but not the gap query's (honest eviction).
	victimCfg := server.Config{Spill: rlog.SpillConfig{SegmentBytes: 16 << 10, RetainBytes: 256 << 10}}
	victim := startShard(t, d, "alpha", t.TempDir(), victimCfg)
	surv := startShard(t, d, "bravo", t.TempDir(), server.Config{})
	third := startShard(t, d, "charlie", t.TempDir(), server.Config{})
	for _, sh := range []*testShard{surv, third} {
		sh := sh
		t.Cleanup(func() { sh.srv.Close(); sh.ts.Close() })
	}
	t.Cleanup(func() { victim.srv.Close(); victim.ts.Close() })

	rt, rts := startRouter(t, testRouterConfig(d, victim, surv, third))

	taken := map[string]bool{}
	feedAcked := feedOwnedBy(t, rt.ring, "alpha", taken)
	feedGap := feedOwnedBy(t, rt.ring, "alpha", taken)
	feedSurv := feedOwnedBy(t, rt.ring, "bravo", taken)
	createFeedVia(t, rts.URL, map[string]any{
		"name": feedAcked, "profile": "jackson", "source": "sim", "max_frames": ackedFrames,
	})
	createFeedVia(t, rts.URL, map[string]any{
		"name": feedGap, "profile": "jackson", "source": "sim", "max_frames": gapFrames,
	})
	createFeedVia(t, rts.URL, map[string]any{
		"name": feedSurv, "profile": "jackson", "source": "sim", "fps": 100,
	})

	qAcked := registerVia(t, rts.URL, "SELECT FRAMES FROM "+feedAcked+" WHERE COUNT(car) >= 0",
		map[string]any{"policy": "block", "spill": true})
	qGap := registerVia(t, rts.URL, "SELECT FRAMES FROM "+feedGap+" WHERE COUNT(car) >= 0",
		map[string]any{"policy": "drop-oldest", "spill": true, "result_buffer": 16})
	qSurv := registerVia(t, rts.URL, "SELECT FRAMES FROM "+feedSurv+" WHERE COUNT(car) >= 0",
		map[string]any{"policy": "block"})

	// Every event must be durable on the victim before the kill —
	// that is the contract under which resume is gap-free.
	waitQueryDone(t, rts.URL, qAcked)
	waitQueryDone(t, rts.URL, qGap)

	ref := referenceRun(t, feedAcked, ackedFrames)
	if len(ref) != ackedFrames+1 {
		t.Fatalf("reference run produced %d events, want %d", len(ref), ackedFrames+1)
	}

	// Merged stream: the acked consumer plus the survivor, one relay each.
	sc := openStream(t, rts.URL+"/v1/stream?id="+qAcked+"@0&id="+qSurv+"@0")

	ackedEvents := make(map[int64]string) // seq -> raw payload line
	var (
		ackedEnd            bool
		acked               bool
		killed              bool
		restarted           bool
		sawDown, sawUp      bool
		maxSeqPreKill       int64 = -1
		survPostKill        int
		downObservedAt      time.Time
		deadline                  = time.Now().Add(60 * time.Second)
		ackedSeqHigh        int64 = -1
		resumeFromOnShardUp int64 = -1
	)
	for !(ackedEnd && killed && restarted && sawUp && survPostKill >= 20) {
		if time.Now().After(deadline) {
			t.Fatalf("chaos run timed out: end=%v killed=%v restarted=%v up=%v survPostKill=%d",
				ackedEnd, killed, restarted, sawUp, survPostKill)
		}
		ev, ok := sc.next(t, 15*time.Second)
		if !ok {
			t.Fatal("merged stream closed early")
		}
		switch ev.Kind {
		case "shard_down":
			if ev.Shard == "alpha" {
				sawDown = true
				downObservedAt = time.Now()
			}
			continue
		case "shard_up":
			if ev.Shard == "alpha" && killed {
				sawUp = true
				if ev.ResumeFrom > resumeFromOnShardUp {
					resumeFromOnShardUp = ev.ResumeFrom
				}
			}
			continue
		case "relay_failed":
			t.Fatalf("relay failed permanently: %+v", ev)
		}
		switch ev.QueryID {
		case qAcked:
			se := decodeShardEvent(t, ev)
			if se.Kind == "gap" {
				t.Fatalf("gap on the acked block-policy stream: %s", ev.Event)
			}
			if _, dup := ackedEvents[se.EventSeq]; dup {
				t.Fatalf("event %d delivered twice on the acked stream", se.EventSeq)
			}
			ackedEvents[se.EventSeq] = strings.TrimSpace(string(ev.Event))
			if se.EventSeq > ackedSeqHigh {
				ackedSeqHigh = se.EventSeq
			}
			if se.Kind == "end" {
				ackedEnd = true
			}
			if !killed {
				maxSeqPreKill = ackedSeqHigh
			}
			if !acked && se.EventSeq >= ackThrough {
				ackVia(t, rts.URL, qAcked, ackThrough)
				acked = true
			}
			if !killed && se.EventSeq >= killAtSeq {
				t.Logf("killing shard alpha at relayed seq %d", se.EventSeq)
				victim.kill(d)
				killed = true
			}
		case qSurv:
			if killed {
				survPostKill++
			}
		}
		// Restart once the outage is visible in-band and the survivor has
		// proven the merged stream does not stall on a dead shard.
		if killed && !restarted && sawDown && survPostKill >= 10 &&
			time.Since(downObservedAt) > 200*time.Millisecond {
			t.Log("restarting shard alpha from its state dir")
			victim.restart(t, d, victimCfg)
			restarted = true
		}
	}

	if maxSeqPreKill >= ackedFrames {
		t.Fatalf("relay drained the whole stream (seq %d) before the kill — kill was not mid-relay", maxSeqPreKill)
	}
	if !sawDown {
		t.Fatal("no shard_down event for the killed shard")
	}
	if resumeFromOnShardUp <= 0 {
		t.Fatalf("shard_up resume_from = %d, want a mid-stream position", resumeFromOnShardUp)
	}

	// Gap-free and byte-identical: every sequence 0..ackedFrames present
	// exactly once, each payload the same bytes an uninterrupted run
	// produced.
	for seq := int64(0); seq <= ackedFrames; seq++ {
		got, ok := ackedEvents[seq]
		if !ok {
			t.Fatalf("acked stream is missing seq %d after the kill/restart", seq)
		}
		if got != ref[seq] {
			t.Fatalf("event %d differs from the uninterrupted run:\n  got %s\n want %s", seq, got, ref[seq])
		}
	}

	// The un-acked drop-oldest consumer resuming from the beginning gets
	// the honest typed gap — eviction is reported, never papered over.
	// The mid-relay pacing has done its job; lift it for the replay.
	d.setThrottle(0, 0)
	gapStream := openStream(t, rts.URL+"/v1/queries/"+qGap+"/results?from=0")
	var gapSeen bool
	var gapTo int64
	for {
		ev, ok := gapStream.next(t, 15*time.Second)
		if !ok {
			t.Fatal("gap stream closed before its end event")
		}
		if ev.Kind == "shard_down" || ev.Kind == "shard_up" {
			continue
		}
		if ev.Kind == "relay_failed" {
			t.Fatalf("gap relay failed permanently: %+v", ev)
		}
		se := decodeShardEvent(t, ev)
		if se.Kind == "gap" {
			gapSeen = true
			gapTo = se.DroppedTo
			continue
		}
		if !gapSeen {
			t.Fatalf("first event on the evicted stream is %q (seq %d), want the typed gap", se.Kind, se.EventSeq)
		}
		if se.Kind == "end" {
			break
		}
	}
	if gapTo <= 0 {
		t.Fatalf("gap dropped_to = %d, want the eviction horizon", gapTo)
	}

	// The router's telemetry recorded the outage and the resume.
	var am ShardMetrics
	for _, sm := range routerMetricsOf(t, rts.URL).Shards {
		if sm.Name == "alpha" {
			am = sm
		}
	}
	if am.Resumes < 1 {
		t.Fatalf("alpha resumes = %d, want >= 1", am.Resumes)
	}
	if am.Trips < 1 {
		t.Fatalf("alpha breaker trips = %d, want >= 1", am.Trips)
	}

	// When the CI chaos job arms the fleet failpoints, prove they fired:
	// the byte-identity above held even under injected relay read faults.
	if fault.Enabled && strings.Contains(os.Getenv(fault.EnvVar), "fleet.relay.read") {
		if fault.Fired("fleet.relay.read") == 0 {
			t.Fatal("fleet.relay.read armed but never fired")
		}
	}
}
