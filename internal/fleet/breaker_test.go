package fleet

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("after %d failures state = %s, want closed", i+1, st)
		}
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("after threshold state = %s, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("interleaved successes must reset the streak; state = %s", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(1, time.Hour)
	now := time.Now()
	b.now = func() time.Time { return now }
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
	now = now.Add(2 * time.Hour)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", st)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("probe success should close; state = %s", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	now := time.Now()
	b.now = func() time.Time { return now }
	b.Failure()
	b.Failure()
	now = now.Add(2 * time.Hour)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("probe failure should re-open immediately; state = %s", st)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}
