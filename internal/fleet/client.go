package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"vmq/internal/fault"
)

// shard is the router's view of one shard process: its address, the
// HTTP clients that reach it, the circuit breaker its prober and
// relays share, and the health/relay telemetry /v1/metrics aggregates.
type shard struct {
	name    string
	baseURL string // scheme://host:port, no trailing slash
	// hc serves bounded calls (register, ack, status, probes) with the
	// request timeout; sc serves result streams, which are long-lived by
	// design and must not be severed by a wall clock.
	hc      *http.Client
	sc      *http.Client
	breaker *Breaker

	// health is the prober's last verdict: "unknown" until the first
	// probe lands, then the shard's own healthz status ("ok",
	// "degraded", "recovering") or "unreachable".
	health atomic.Value // string

	probes     atomic.Int64
	probeFails atomic.Int64
	// resumes counts relay reconnects that picked a stream back up from
	// its last relayed event_seq; relays counts live relay loops.
	resumes atomic.Int64
	relays  atomic.Int64
	// relaySeq is the highest event_seq any relay has forwarded from
	// this shard — the fleet-wide resume high-water mark in /v1/metrics.
	relaySeq atomic.Int64
}

func newShard(name, baseURL string, cfg Config) *shard {
	transport := newTransport(cfg)
	sh := &shard{
		name:    name,
		baseURL: strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Transport: transport, Timeout: cfg.RequestTimeout},
		sc:      &http.Client{Transport: transport},
		breaker: NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown),
	}
	sh.health.Store("unknown")
	return sh
}

// newTransport builds the shard-facing transport: the configured dialer
// timeout, and the fleet.shard.dial failpoint in front of every dial so
// chaos tests can sever shard links without killing processes. A
// test-injected Config.Transport is wrapped with the same failpoint.
func newTransport(cfg Config) http.RoundTripper {
	if cfg.Transport != nil {
		return faultTripper{rt: cfg.Transport}
	}
	dialer := &net.Dialer{Timeout: cfg.DialTimeout}
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			if err := fault.Hit("fleet.shard.dial"); err != nil {
				return nil, err
			}
			return dialer.DialContext(ctx, network, addr)
		},
		ResponseHeaderTimeout: cfg.RequestTimeout,
		MaxIdleConnsPerHost:   4,
		IdleConnTimeout:       30 * time.Second,
	}
}

// faultTripper applies the dial failpoint to an injected transport,
// which has no dial hook of its own.
type faultTripper struct{ rt http.RoundTripper }

func (t faultTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	if err := fault.Hit("fleet.shard.dial"); err != nil {
		return nil, err
	}
	return t.rt.RoundTrip(r)
}

// setHealth records the prober's verdict.
func (sh *shard) setHealth(v string) { sh.health.Store(v) }

// healthState returns the last probe verdict.
func (sh *shard) healthState() string {
	s, _ := sh.health.Load().(string)
	return s
}

// state is the shard's aggregate position for /v1/healthz and routing:
// the breaker's view wins (open = down, half-open = probing), otherwise
// the probe verdict maps through.
func (sh *shard) state() string {
	switch sh.breaker.State() {
	case BreakerOpen:
		return "down"
	case BreakerHalfOpen:
		return "half-open"
	}
	switch sh.healthState() {
	case "ok":
		return "up"
	case "degraded":
		return "degraded"
	case "recovering":
		return "recovering"
	case "unreachable":
		return "down"
	default:
		return "unknown"
	}
}

// routable reports whether new queries may land on the shard. A
// recovering shard is reachable but must not take new registrations
// mid-replay; a down shard cannot. "unknown" (before the first probe)
// is optimistically routable — the forward itself will fail and feed
// the breaker if the shard is dead.
func (sh *shard) routable() bool {
	switch sh.state() {
	case "up", "degraded", "unknown":
		return true
	default:
		return false
	}
}

// do runs one bounded request against the shard and feeds the breaker
// with the transport outcome (an HTTP error status is a shard answer,
// not a link failure — only transport errors count against the link).
func (sh *shard) do(ctx context.Context, method, path string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, sh.baseURL+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := sh.hc.Do(req)
	if err != nil {
		sh.breaker.Failure()
		return nil, err
	}
	sh.breaker.Success()
	return resp, nil
}

// probe asks the shard's /v1/healthz for its status. The status string
// comes back for 200 and 503 alike (degraded and recovering are shard
// answers); only transport or decode failures are errors.
func (sh *shard) probe(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.baseURL+"/v1/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := sh.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var hr struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hr); err != nil {
		return "", fmt.Errorf("decode healthz: %w", err)
	}
	if hr.Status == "" {
		return "", fmt.Errorf("healthz status missing (HTTP %d)", resp.StatusCode)
	}
	return hr.Status, nil
}

// metricsLoad fetches the shard's /metrics worker_shares and sums the
// EWMA scan rates — the rate_fps-weighted load signal the router
// aggregates per shard.
func (sh *shard) metricsLoad(ctx context.Context) (ShardLoad, error) {
	resp, err := sh.do(ctx, http.MethodGet, "/v1/metrics", nil, "")
	if err != nil {
		return ShardLoad{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardLoad{}, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	var m struct {
		WorkerShares []struct {
			Feed    string  `json:"feed"`
			Workers int     `json:"workers"`
			Queries int     `json:"queries"`
			RateFPS float64 `json:"rate_fps"`
		} `json:"worker_shares"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return ShardLoad{}, err
	}
	var load ShardLoad
	for _, ws := range m.WorkerShares {
		load.Feeds++
		load.Workers += ws.Workers
		load.Queries += ws.Queries
		load.RateFPS += ws.RateFPS
	}
	return load, nil
}

// ShardLoad is one shard's aggregated worker_shares snapshot.
type ShardLoad struct {
	// Feeds counts feeds holding a worker share (live queries attached).
	Feeds int `json:"feeds"`
	// Workers is the shard's filter workers across those feeds.
	Workers int `json:"workers"`
	// Queries is the live query count across those feeds.
	Queries int `json:"queries"`
	// RateFPS sums the per-feed EWMA scan rates — observed load, not
	// feed count, so an idle feed weighs nothing.
	RateFPS float64 `json:"rate_fps"`
}
