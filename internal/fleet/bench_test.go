package fleet

import (
	"bufio"
	"net/http"
	"strings"
	"testing"

	"vmq/internal/server"
)

// Relay overhead benchmarks: the same finished query history read
// through the router's merged fan-in versus straight off a shard. The
// merged case carries three shards' streams through one connection —
// its per-event cost includes the relay goroutines, the fan-in
// channel, and the StreamEvent re-encoding.

const benchFrames = 500 // events per query: 500 matches + 1 end

// benchDrain reads an NDJSON stream to EOF and returns the line count.
func benchDrain(b *testing.B, url string) int {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("stream %s: HTTP %d", url, resp.StatusCode)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	n := 0
	for scanner.Scan() {
		if len(strings.TrimSpace(scanner.Text())) > 0 {
			n++
		}
	}
	if err := scanner.Err(); err != nil {
		b.Fatal(err)
	}
	return n
}

// benchQuery creates an unpaced finite feed owned by the wanted shard,
// registers a match-all query on it, and waits for the runner to
// finish so every iteration replays a complete, stable history.
func benchQuery(b *testing.B, rt *Router, routerURL, shard string, taken map[string]bool) string {
	b.Helper()
	feed := feedOwnedBy(b, rt.ring, shard, taken)
	createFeedVia(b, routerURL, map[string]any{
		"name": feed, "profile": "jackson", "source": "sim", "max_frames": benchFrames,
	})
	id := registerVia(b, routerURL, "SELECT FRAMES FROM "+feed+" WHERE COUNT(car) >= 0",
		map[string]any{"result_buffer": benchFrames + 8})
	waitQueryDone(b, routerURL, id)
	return id
}

// BenchmarkFleetRelayMerged measures one merged three-shard stream:
// each iteration drains 3×(benchFrames+1) events through the router.
func BenchmarkFleetRelayMerged(b *testing.B) {
	d := newShardDirectory()
	shards := []*testShard{
		startShard(b, d, "alpha", "", server.Config{}),
		startShard(b, d, "bravo", "", server.Config{}),
		startShard(b, d, "charlie", "", server.Config{}),
	}
	for _, s := range shards {
		defer s.srv.Close()
		defer s.ts.Close()
	}
	rt, rts := startRouter(b, testRouterConfig(d, shards...))

	taken := map[string]bool{}
	var ids []string
	for _, s := range shards {
		ids = append(ids, benchQuery(b, rt, rts.URL, s.name, taken))
	}
	url := rts.URL + "/v1/stream?id=" + strings.Join(ids, "@0&id=") + "@0"
	want := len(ids) * (benchFrames + 1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := benchDrain(b, url); n < want {
			b.Fatalf("merged stream delivered %d events, want >= %d", n, want)
		}
	}
	b.ReportMetric(float64(want), "events/op")
}

// BenchmarkFleetDirect is the baseline: the same history read straight
// off a single shard with no router in the path.
func BenchmarkFleetDirect(b *testing.B) {
	d := newShardDirectory()
	s := startShard(b, d, "solo", "", server.Config{})
	defer s.srv.Close()
	defer s.ts.Close()
	rt, rts := startRouter(b, testRouterConfig(d, s))

	id := benchQuery(b, rt, rts.URL, "solo", map[string]bool{})
	local := strings.TrimPrefix(id, "solo:")
	url := s.ts.URL + "/v1/queries/" + local + "/results?from=0"
	want := benchFrames + 1

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := benchDrain(b, url); n < want {
			b.Fatalf("direct stream delivered %d events, want >= %d", n, want)
		}
	}
	b.ReportMetric(float64(want), "events/op")
}
