// Package fleet is the cross-process sharding layer: a router that
// consistent-hashes feed names onto shard processes (each a vmq server
// with its own feeds, queries and durable state), proxies query
// registration to the owning shard by FROM clause, and fans per-shard
// result streams into one merged, shard-attributed NDJSON stream.
//
// The robustness contract is the point of the package. Each shard link
// is a supervised relay: dial and read failures back off exponentially
// with jitter, a circuit breaker fed by /v1/healthz probes stops the
// router hammering a dead shard, and when a shard dies mid-stream the
// relay resumes from its last relayed event_seq — gap-free for
// block-policy queries whose history is durable, with an honest typed
// gap event otherwise. The merged stream never stalls on one shard's
// death: survivors keep flowing and typed shard_down/shard_up events
// mark the outage in-band.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is each shard's virtual-node count on the ring. 64
// points per shard keeps the worst-case load skew across a handful of
// shards in the ~±20% range while the ring stays tiny (a few KB).
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring over shard names: a feed
// maps to the first virtual node clockwise of its hash, so adding or
// removing one shard moves only ~1/N of the feeds.
type Ring struct {
	points []ringPoint // sorted ascending by hash
	shards []string    // sorted shard names
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds a ring with vnodes virtual nodes per shard (<=0
// selects the default). Shard order does not matter: placement depends
// only on the set of names.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(shards)*vnodes),
		shards: append([]string(nil), shards...),
	}
	sort.Strings(r.shards)
	for _, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(s + "#" + strconv.Itoa(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical hashes (vanishingly rare): break by name so the
		// winner does not depend on sort order.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Owner returns the shard owning the feed — the first virtual node at
// or clockwise of the feed's hash, wrapping past the top.
func (r *Ring) Owner(feed string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(feed)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the shard names on the ring, sorted.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// ringHash is FNV-1a with a 64-bit avalanche finalizer. Raw FNV-1a
// barely disperses the high bits of short strings with shared prefixes
// ("a#0", "a#1", ... land in one contiguous arc), which collapses the
// ring; the fmix64 finalizer spreads every input bit across the word.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
