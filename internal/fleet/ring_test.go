package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndInputOrderFree(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 0)
	b := NewRing([]string{"c", "a", "b"}, 0)
	for i := 0; i < 200; i++ {
		feed := fmt.Sprintf("cam%d", i)
		if a.Owner(feed) != b.Owner(feed) {
			t.Fatalf("feed %q: owner depends on shard input order (%q vs %q)", feed, a.Owner(feed), b.Owner(feed))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Owner(fmt.Sprintf("cam%d", i))]++
	}
	for _, s := range r.Shards() {
		if counts[s] == 0 {
			t.Fatalf("shard %q owns no feeds out of 300: %v", s, counts)
		}
	}
}

// Adding one shard must move only a minority of feeds — the property
// consistent hashing exists for.
func TestRingMinimalDisruption(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 0)
	after := NewRing([]string{"a", "b", "c", "d"}, 0)
	const feeds = 1000
	moved, movedElsewhere := 0, 0
	for i := 0; i < feeds; i++ {
		feed := fmt.Sprintf("cam%d", i)
		ob, oa := before.Owner(feed), after.Owner(feed)
		if ob != oa {
			moved++
			if oa != "d" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d feeds moved between surviving shards; only moves onto the new shard are allowed", movedElsewhere)
	}
	if moved > feeds/2 {
		t.Fatalf("%d/%d feeds moved when one shard joined — not consistent", moved, feeds)
	}
}

func TestRingSingleShardOwnsAll(t *testing.T) {
	r := NewRing([]string{"solo"}, 4)
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("cam%d", i)); got != "solo" {
			t.Fatalf("owner = %q, want solo", got)
		}
	}
}
