package vql

import (
	"math/rand/v2"
	"testing"
)

// genQuery builds a random but valid query AST; rendering it with String
// and reparsing must reproduce an identical rendering (a full grammar
// round-trip property).
func genQuery(rng *rand.Rand) *Query {
	q := &Query{Source: pick(rng, "coral", "jackson", "detrac", "cam1")}
	if rng.IntN(4) == 0 {
		q.Detector = pick(rng, "maskrcnn", "yolo")
		if rng.IntN(2) == 0 {
			q.Produce = []string{"cameraID", "frameID"}
		}
	}
	switch rng.IntN(3) {
	case 0:
		q.Select = Select{Kind: SelectFrames}
	case 1:
		q.Select = Select{Kind: SelectFrameCount}
	default:
		agg := &AggTarget{Target: genClassRef(rng)}
		if rng.IntN(2) == 0 {
			r := genRegion(rng)
			agg.Region = &r
		}
		q.Select = Select{Kind: SelectAvg, Agg: agg}
	}
	if rng.IntN(5) > 0 {
		q.Where = genExpr(rng, 3)
	}
	if rng.IntN(3) == 0 {
		size := 1 + rng.IntN(9999)
		if rng.IntN(2) == 0 {
			// Hopping windows need advance >= size.
			q.Window = &WindowSpec{Kind: Hopping, Size: size, Advance: size + rng.IntN(5000)}
		} else {
			q.Window = &WindowSpec{Kind: Sliding, Size: size, Advance: 1 + rng.IntN(9999)}
		}
	}
	return q
}

func genExpr(rng *rand.Rand, depth int) Expr {
	if depth > 0 {
		switch rng.IntN(6) {
		case 0:
			return &AndExpr{L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
		case 1:
			return &OrExpr{L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
		case 2:
			return &NotExpr{E: genExpr(rng, depth-1)}
		}
	}
	switch rng.IntN(4) {
	case 0:
		return &CountPred{All: true, Op: CmpOp(rng.IntN(6)), Value: rng.IntN(20)}
	case 1:
		return &CountPred{Target: genClassRef(rng), Op: CmpOp(rng.IntN(6)), Value: rng.IntN(20)}
	case 2:
		rels := []string{"left-of", "right-of", "above", "below"}
		return &SpatialPred{A: genClassRef(rng), B: genClassRef(rng), Rel: pick(rng, rels...)}
	default:
		rp := &RegionPred{Target: genClassRef(rng), Region: genRegion(rng)}
		switch rng.IntN(3) {
		case 0: // existence
			rp.Op, rp.Value = CmpGE, 1
		case 1: // negated existence
			rp.Op, rp.Value, rp.Negate = CmpGE, 1, true
		default: // counted
			rp.Count = true
			rp.Op = CmpOp(rng.IntN(6))
			rp.Value = rng.IntN(10)
		}
		return rp
	}
}

func genClassRef(rng *rand.Rand) ClassRef {
	ref := ClassRef{Class: pick(rng, "car", "person", "bus", "truck", "bicycle", "stop-sign")}
	if rng.IntN(3) == 0 {
		ref.Color = pick(rng, "red", "blue", "green", "white", "black", "yellow")
	}
	return ref
}

func genRegion(rng *rand.Rand) Region {
	if rng.IntN(2) == 0 {
		return Region{Quadrant: pick(rng, "upper-left", "upper-right", "lower-left", "lower-right")}
	}
	x0 := float64(rng.IntN(100))
	y0 := float64(rng.IntN(100))
	return Region{X0: x0, Y0: y0, X1: x0 + 1 + float64(rng.IntN(300)), Y1: y0 + 1 + float64(rng.IntN(300))}
}

func pick(rng *rand.Rand, xs ...string) string { return xs[rng.IntN(len(xs))] }

func TestRandomQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	for i := 0; i < 2000; i++ {
		q := genQuery(rng)
		text := q.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: generated query failed to parse:\n  %s\n  %v", i, text, err)
		}
		if got := parsed.String(); got != text {
			t.Fatalf("iteration %d: round trip changed:\n  %s\n  %s", i, text, got)
		}
	}
}

// Parsing is total: arbitrary byte soup either parses or returns a
// SyntaxError — it must never panic.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	alphabet := []byte("SELECT FRAMES COUNT WHERE AND OR NOT car ()[]<>=!*,0123456789 leftofquadrant#@\n\t")
	for i := 0; i < 3000; i++ {
		n := rng.IntN(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.IntN(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}
