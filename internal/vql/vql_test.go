package vql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	got, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return got
}

func TestParseMonitoringQuery(t *testing.T) {
	q := mustParse(t, `SELECT FRAMES FROM jackson
		WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`)
	if q.Select.Kind != SelectFrames {
		t.Fatalf("Select = %v", q.Select)
	}
	if q.Source != "jackson" {
		t.Fatalf("Source = %q", q.Source)
	}
	and, ok := q.Where.(*AndExpr)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	sp, ok := and.R.(*SpatialPred)
	if !ok || sp.Rel != "left-of" || sp.A.Class != "car" || sp.B.Class != "person" {
		t.Fatalf("spatial pred = %+v", and.R)
	}
	inner, ok := and.L.(*AndExpr)
	if !ok {
		t.Fatalf("left = %T", and.L)
	}
	cp := inner.L.(*CountPred)
	if cp.Target.Class != "car" || cp.Op != CmpEQ || cp.Value != 1 {
		t.Fatalf("count pred = %+v", cp)
	}
}

func TestParseAggregateQuery(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE car[blue] LEFT OF stop-sign
		WINDOW HOPPING (SIZE 5000, ADVANCE BY 5000)`)
	if q.Select.Kind != SelectFrameCount {
		t.Fatalf("Select = %v", q.Select)
	}
	if q.Window == nil || q.Window.Size != 5000 || q.Window.Advance != 5000 {
		t.Fatalf("Window = %+v", q.Window)
	}
	sp := q.Where.(*SpatialPred)
	if sp.A.Class != "car" || sp.A.Color != "blue" || sp.B.Class != "stop-sign" {
		t.Fatalf("spatial = %+v", sp)
	}
}

func TestParseAvgQuery(t *testing.T) {
	q := mustParse(t, `SELECT AVG(COUNT(bicycle IN RECT(0, 300, 150, 448))) FROM jackson`)
	if q.Select.Kind != SelectAvg {
		t.Fatalf("Select = %v", q.Select)
	}
	if q.Select.Agg.Target.Class != "bicycle" || q.Select.Agg.Region == nil {
		t.Fatalf("Agg = %+v", q.Select.Agg)
	}
	if q.Where != nil {
		t.Fatal("unexpected Where")
	}
}

func TestParseQuadrantsAndRegions(t *testing.T) {
	q := mustParse(t, `SELECT FRAMES FROM coral
		WHERE COUNT(person IN QUADRANT(LOWER LEFT)) >= 2 AND COUNT(person) = 3`)
	rp := q.Where.(*AndExpr).L.(*RegionPred)
	if !rp.Count || rp.Region.Quadrant != "lower-left" || rp.Op != CmpGE || rp.Value != 2 {
		t.Fatalf("region pred = %+v", rp)
	}
	q2 := mustParse(t, `SELECT FRAMES FROM jackson WHERE car IN QUADRANT(LOWER RIGHT)`)
	rp2 := q2.Where.(*RegionPred)
	if rp2.Count || rp2.Region.Quadrant != "lower-right" || rp2.Op != CmpGE || rp2.Value != 1 {
		t.Fatalf("existence pred = %+v", rp2)
	}
	q3 := mustParse(t, `SELECT FRAMES FROM jackson WHERE bicycle NOT IN RECT(0,0,100,448)`)
	rp3 := q3.Where.(*RegionPred)
	if !rp3.Negate {
		t.Fatalf("negated region pred = %+v", rp3)
	}
}

func TestParseProcessClause(t *testing.T) {
	q := mustParse(t, `SELECT FRAMES FROM (PROCESS jackson PRODUCE cameraID, frameID USING maskrcnn)
		WHERE COUNT(car) = 1`)
	if q.Source != "jackson" || q.Detector != "maskrcnn" {
		t.Fatalf("PROCESS parse: source=%q detector=%q", q.Source, q.Detector)
	}
	if len(q.Produce) != 2 || q.Produce[0] != "cameraID" {
		t.Fatalf("Produce = %v", q.Produce)
	}
	// Round trip through the canonical form.
	q2 := mustParse(t, q.String())
	if q2.String() != q.String() {
		t.Fatalf("PROCESS round trip changed:\n  %s\n  %s", q, q2)
	}
	// USING without PRODUCE is fine; a bare PROCESS is not.
	if _, err := Parse(`SELECT FRAMES FROM (PROCESS jackson USING yolo)`); err != nil {
		t.Fatalf("USING-only rejected: %v", err)
	}
	if _, err := Parse(`SELECT FRAMES FROM (PROCESS jackson)`); err == nil {
		t.Fatal("bare PROCESS accepted")
	}
	if _, err := Parse(`SELECT FRAMES FROM (jackson)`); err == nil {
		t.Fatal("parenthesised source without PROCESS accepted")
	}
}

func TestParseSlidingWindow(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(FRAMES) FROM jackson
		WHERE COUNT(car) = 1
		WINDOW SLIDING (SIZE 1000, ADVANCE BY 100)`)
	if q.Window == nil || q.Window.Kind != Sliding || q.Window.Advance != 100 {
		t.Fatalf("Window = %+v", q.Window)
	}
	// Hopping with overlap is rejected with a hint.
	_, err := Parse(`SELECT COUNT(FRAMES) FROM x WHERE COUNT(car) = 1
		WINDOW HOPPING (SIZE 1000, ADVANCE BY 100)`)
	if err == nil || !strings.Contains(err.Error(), "SLIDING") {
		t.Fatalf("overlapping HOPPING not rejected with hint: %v", err)
	}
	if _, err := Parse(`SELECT FRAMES FROM x WINDOW BOUNCING (SIZE 1, ADVANCE BY 1)`); err == nil {
		t.Fatal("unknown window kind accepted")
	}
}

func TestParseBooleanStructure(t *testing.T) {
	q := mustParse(t, `SELECT FRAMES FROM d WHERE (COUNT(*) >= 2 OR COUNT(car) = 0) AND NOT person ABOVE car`)
	and := q.Where.(*AndExpr)
	if _, ok := and.L.(*OrExpr); !ok {
		t.Fatalf("left = %T", and.L)
	}
	not := and.R.(*NotExpr)
	sp := not.E.(*SpatialPred)
	if sp.Rel != "above" {
		t.Fatalf("rel = %q", sp.Rel)
	}
}

func TestParseAllComparisons(t *testing.T) {
	ops := map[string]CmpOp{"=": CmpEQ, "!=": CmpNEQ, "<": CmpLT, "<=": CmpLE, ">": CmpGT, ">=": CmpGE}
	for text, want := range ops {
		q := mustParse(t, "SELECT FRAMES FROM x WHERE COUNT(*) "+text+" 3")
		cp := q.Where.(*CountPred)
		if cp.Op != want || !cp.All || cp.Value != 3 {
			t.Fatalf("op %q parsed as %+v", text, cp)
		}
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r int
		want bool
	}{
		{CmpEQ, 2, 2, true}, {CmpEQ, 2, 3, false},
		{CmpNEQ, 2, 3, true}, {CmpLT, 1, 2, true}, {CmpLT, 2, 2, false},
		{CmpLE, 2, 2, true}, {CmpGT, 3, 2, true}, {CmpGE, 2, 2, true},
		{CmpGE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.l, c.r); got != c.want {
			t.Errorf("%d %s %d = %v", c.l, c.op, c.r, got)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND car LEFT OF person`,
		`SELECT COUNT(FRAMES) FROM detrac WHERE car RIGHT OF bus WINDOW HOPPING (SIZE 1000, ADVANCE BY 2000)`,
		`SELECT AVG(COUNT(person IN QUADRANT(LOWER LEFT))) FROM coral WHERE COUNT(*) >= 1`,
		`SELECT FRAMES FROM x WHERE NOT COUNT(truck) > 0 OR car[red] IN RECT(1,2,3,4)`,
	}
	for _, src := range queries {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, `select frames from Jackson where count(CAR) = 1`)
	if q.Source != "jackson" {
		t.Fatalf("Source = %q", q.Source)
	}
	cp := q.Where.(*CountPred)
	if cp.Target.Class != "car" {
		t.Fatalf("class = %q", cp.Target.Class)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FRAMES",
		"SELECT FRAMES FROM",
		"SELECT FRAMES FROM x WHERE",
		"SELECT FRAMES FROM x WHERE COUNT(",
		"SELECT FRAMES FROM x WHERE COUNT(*) 3",
		"SELECT FRAMES FROM x WHERE COUNT(*) = car",
		"SELECT FRAMES FROM x WHERE car",
		"SELECT FRAMES FROM x WHERE car LEFT person",
		"SELECT FRAMES FROM x WHERE select LEFT OF car",
		"SELECT FRAMES FROM x WHERE car IN QUADRANT(MIDDLE)",
		"SELECT FRAMES FROM x WHERE car IN RECT(5,5,1,1)",
		"SELECT FRAMES FROM x WHERE car IN RECT(1,2,3)",
		"SELECT FRAMES FROM x WINDOW HOPPING (SIZE 0, ADVANCE BY 5)",
		"SELECT FRAMES FROM x extra",
		"SELECT BOGUS FROM x",
		"SELECT FRAMES FROM x WHERE COUNT(*) ! 3",
		"SELECT FRAMES FROM x WHERE car[red LEFT OF bus",
		"SELECT AVG(COUNT(car) FROM x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "#", "!x"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) unexpectedly succeeded", src)
		}
	}
}

func TestLexHyphenIdent(t *testing.T) {
	toks, err := Lex("stop-sign left-of")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "stop-sign" || toks[1].Text != "left-of" {
		t.Fatalf("tokens = %v", toks)
	}
	// A trailing hyphen is not part of the identifier and has no other
	// meaning, so it is a lex error.
	if _, err := Lex("x- "); err == nil {
		t.Fatal("trailing hyphen accepted")
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("SELECT FRAMES FROM x WHERE @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "vql: syntax error") {
		t.Fatalf("error = %v", err)
	}
}

func TestWalk(t *testing.T) {
	q := mustParse(t, `SELECT FRAMES FROM x WHERE COUNT(car) = 1 AND (person ABOVE car OR NOT COUNT(*) > 5)`)
	var kinds []string
	Walk(q.Where, func(e Expr) {
		switch e.(type) {
		case *AndExpr:
			kinds = append(kinds, "and")
		case *OrExpr:
			kinds = append(kinds, "or")
		case *NotExpr:
			kinds = append(kinds, "not")
		case *CountPred:
			kinds = append(kinds, "count")
		case *SpatialPred:
			kinds = append(kinds, "spatial")
		}
	})
	want := strings.Join([]string{"and", "count", "or", "spatial", "not", "count"}, ",")
	if got := strings.Join(kinds, ","); got != want {
		t.Fatalf("Walk order = %s, want %s", got, want)
	}
}
