package vql

import (
	"fmt"
	"strings"
)

// Query is a parsed VQL statement.
type Query struct {
	Select Select
	Source string
	// Detector names the object detector of the paper's PROCESS clause
	// ("PROCESS inputVideo ... USING VehDetector"). Empty means the
	// engine default.
	Detector string
	// Produce lists the attributes of the PROCESS clause, kept for
	// round-tripping; the engine's schema is fixed.
	Produce []string
	Where   Expr // nil means "every frame"
	Window  *WindowSpec
}

// String renders the query back to (canonical) VQL text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(q.Select.String())
	b.WriteString(" FROM ")
	if q.Detector != "" || len(q.Produce) > 0 {
		b.WriteString("(PROCESS ")
		b.WriteString(q.Source)
		if len(q.Produce) > 0 {
			b.WriteString(" PRODUCE ")
			b.WriteString(strings.Join(q.Produce, ", "))
		}
		if q.Detector != "" {
			b.WriteString(" USING ")
			b.WriteString(q.Detector)
		}
		b.WriteString(")")
	} else {
		b.WriteString(q.Source)
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if q.Window != nil {
		kind := "HOPPING"
		if q.Window.Kind == Sliding {
			kind = "SLIDING"
		}
		fmt.Fprintf(&b, " WINDOW %s (SIZE %d, ADVANCE BY %d)", kind, q.Window.Size, q.Window.Advance)
	}
	return b.String()
}

// SelectKind distinguishes monitoring queries (emit qualifying frames)
// from the two aggregate forms of Section III.
type SelectKind int

// Select kinds.
const (
	// SelectFrames reports every qualifying frame (a monitoring query).
	SelectFrames SelectKind = iota
	// SelectFrameCount reports the number of qualifying frames per window.
	SelectFrameCount
	// SelectAvg reports the average of a per-frame count (e.g. average
	// number of bicycles in a bike lane) over qualifying frames.
	SelectAvg
)

// Select is the projection clause.
type Select struct {
	Kind SelectKind
	// Agg is the aggregated target for SelectAvg.
	Agg *AggTarget
}

// String implements fmt.Stringer.
func (s Select) String() string {
	switch s.Kind {
	case SelectFrames:
		return "FRAMES"
	case SelectFrameCount:
		return "COUNT(FRAMES)"
	case SelectAvg:
		return fmt.Sprintf("AVG(%s)", s.Agg.String())
	default:
		return fmt.Sprintf("Select(%d)", int(s.Kind))
	}
}

// AggTarget is the COUNT(class [IN region]) inside an AVG projection.
type AggTarget struct {
	Target ClassRef
	Region *Region
}

// String implements fmt.Stringer.
func (a *AggTarget) String() string {
	if a.Region != nil {
		return fmt.Sprintf("COUNT(%s IN %s)", a.Target.String(), a.Region.String())
	}
	return fmt.Sprintf("COUNT(%s)", a.Target.String())
}

// WindowKind distinguishes batch (hopping) from overlapping (sliding)
// windows.
type WindowKind int

// Window kinds.
const (
	Hopping WindowKind = iota
	Sliding
)

// WindowSpec is the paper's WINDOW HOPPING clause, extended with SLIDING
// for overlapping windows (advance < size).
type WindowSpec struct {
	Kind    WindowKind
	Size    int
	Advance int
}

// ClassRef names an object class with an optional colour attribute:
// car, car[red], stop-sign.
type ClassRef struct {
	Class string
	Color string // empty means any colour
}

// String implements fmt.Stringer.
func (c ClassRef) String() string {
	if c.Color != "" {
		return fmt.Sprintf("%s[%s]", c.Class, c.Color)
	}
	return c.Class
}

// CmpOp is a comparison operator in count predicates.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNEQ
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String implements fmt.Stringer.
func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNEQ:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Eval applies the operator to (lhs, rhs).
func (o CmpOp) Eval(lhs, rhs int) bool {
	switch o {
	case CmpEQ:
		return lhs == rhs
	case CmpNEQ:
		return lhs != rhs
	case CmpLT:
		return lhs < rhs
	case CmpLE:
		return lhs <= rhs
	case CmpGT:
		return lhs > rhs
	case CmpGE:
		return lhs >= rhs
	default:
		return false
	}
}

// Region is a screen area: a named quadrant or an explicit rectangle in
// frame coordinates.
type Region struct {
	Quadrant       string // "lower-left" etc.; empty when Rect is set
	X0, Y0, X1, Y1 float64
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	if r.Quadrant != "" {
		return fmt.Sprintf("QUADRANT(%s)", strings.ToUpper(strings.ReplaceAll(r.Quadrant, "-", " ")))
	}
	return fmt.Sprintf("RECT(%g,%g,%g,%g)", r.X0, r.Y0, r.X1, r.Y1)
}

// Expr is a boolean predicate over one frame.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// AndExpr is conjunction.
type AndExpr struct{ L, R Expr }

// OrExpr is disjunction.
type OrExpr struct{ L, R Expr }

// NotExpr is negation.
type NotExpr struct{ E Expr }

// CountPred compares an object count with a constant: COUNT(car) = 2,
// COUNT(*) >= 3.
type CountPred struct {
	All    bool // COUNT(*)
	Target ClassRef
	Op     CmpOp
	Value  int
}

// SpatialPred is a directional constraint between two object classes:
// car LEFT OF truck.
type SpatialPred struct {
	A, B ClassRef
	Rel  string // "left-of", "right-of", "above", "below"
}

// RegionPred constrains objects relative to a screen region. With Count
// false it asserts existence (car IN QUADRANT(LOWER LEFT)); with Count
// true it compares the number of qualifying objects
// (COUNT(person IN QUADRANT(LOWER LEFT)) >= 2).
type RegionPred struct {
	Target ClassRef
	Region Region
	Count  bool
	Op     CmpOp
	Value  int
	Negate bool // NOT IN (bicycle NOT IN bike lane)
}

func (*AndExpr) isExpr()     {}
func (*OrExpr) isExpr()      {}
func (*NotExpr) isExpr()     {}
func (*CountPred) isExpr()   {}
func (*SpatialPred) isExpr() {}
func (*RegionPred) isExpr()  {}

// String implements fmt.Stringer.
func (e *AndExpr) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

// String implements fmt.Stringer.
func (e *OrExpr) String() string { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// String implements fmt.Stringer.
func (e *NotExpr) String() string { return fmt.Sprintf("NOT %s", e.E) }

// String implements fmt.Stringer.
func (e *CountPred) String() string {
	target := "*"
	if !e.All {
		target = e.Target.String()
	}
	return fmt.Sprintf("COUNT(%s) %s %d", target, e.Op, e.Value)
}

// String implements fmt.Stringer.
func (e *SpatialPred) String() string {
	rel := map[string]string{
		"left-of": "LEFT OF", "right-of": "RIGHT OF", "above": "ABOVE", "below": "BELOW",
	}[e.Rel]
	return fmt.Sprintf("%s %s %s", e.A, rel, e.B)
}

// String implements fmt.Stringer.
func (e *RegionPred) String() string {
	if e.Count {
		return fmt.Sprintf("COUNT(%s IN %s) %s %d", e.Target, e.Region.String(), e.Op, e.Value)
	}
	if e.Negate {
		return fmt.Sprintf("%s NOT IN %s", e.Target, e.Region.String())
	}
	return fmt.Sprintf("%s IN %s", e.Target, e.Region.String())
}

// Walk visits every node of the expression tree in depth-first order.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *AndExpr:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *OrExpr:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *NotExpr:
		Walk(n.E, visit)
	}
}
