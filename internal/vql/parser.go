package vql

import (
	"strconv"
	"strings"
)

// Parse compiles a VQL statement into its AST.
func Parse(input string) (*Query, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(EOF) {
		return nil, errf(p.peek().Pos, "unexpected %q after query", p.peek().Text)
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k TokenKind) bool { return p.peek().Kind == k }

// atKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == IDENT && strings.EqualFold(t.Text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.peek().Pos, "expected %s, found %q", strings.ToUpper(kw), p.peek().Text)
	}
	return nil
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.peek().Pos, "expected %s, found %q", k, p.peek().Text)
	}
	return p.next(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	q := &Query{Select: sel}
	if p.at(LPAREN) {
		// The paper's full form: (PROCESS src [PRODUCE a, b, ...] [USING det]).
		p.next()
		if err := p.expectKeyword("process"); err != nil {
			return nil, err
		}
		src, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		q.Source = strings.ToLower(src.Text)
		if p.acceptKeyword("produce") {
			for {
				attr, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				q.Produce = append(q.Produce, attr.Text)
				if !p.at(COMMA) {
					break
				}
				p.next()
			}
		}
		if p.acceptKeyword("using") {
			det, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			q.Detector = det.Text
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if q.Detector == "" && len(q.Produce) == 0 {
			return nil, errf(p.peek().Pos, "PROCESS clause needs PRODUCE or USING")
		}
	} else {
		src, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		q.Source = strings.ToLower(src.Text)
	}
	if p.acceptKeyword("where") {
		q.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("window") {
		kind := Hopping
		switch {
		case p.acceptKeyword("hopping"):
		case p.acceptKeyword("sliding"):
			kind = Sliding
		default:
			return nil, errf(p.peek().Pos, "expected HOPPING or SLIDING, found %q", p.peek().Text)
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("size"); err != nil {
			return nil, err
		}
		size, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("advance"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		adv, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if size <= 0 || adv <= 0 {
			return nil, errf(p.peek().Pos, "window size and advance must be positive")
		}
		if kind == Hopping && adv < size {
			return nil, errf(p.peek().Pos, "HOPPING windows need advance >= size; use WINDOW SLIDING for overlap")
		}
		q.Window = &WindowSpec{Kind: kind, Size: size, Advance: adv}
	}
	return q, nil
}

func (p *parser) parseSelect() (Select, error) {
	switch {
	case p.acceptKeyword("frames"):
		return Select{Kind: SelectFrames}, nil
	case p.atKeyword("count"):
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return Select{}, err
		}
		if err := p.expectKeyword("frames"); err != nil {
			return Select{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Select{}, err
		}
		return Select{Kind: SelectFrameCount}, nil
	case p.atKeyword("avg"):
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return Select{}, err
		}
		if err := p.expectKeyword("count"); err != nil {
			return Select{}, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return Select{}, err
		}
		target, err := p.parseClassRef()
		if err != nil {
			return Select{}, err
		}
		agg := &AggTarget{Target: target}
		if p.acceptKeyword("in") {
			region, err := p.parseRegion()
			if err != nil {
				return Select{}, err
			}
			agg.Region = &region
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Select{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Select{}, err
		}
		return Select{Kind: SelectAvg, Agg: agg}, nil
	default:
		return Select{}, errf(p.peek().Pos, "expected FRAMES, COUNT(FRAMES) or AVG(...), found %q", p.peek().Text)
	}
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(NUMBER)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, errf(t.Pos, "expected integer, found %q", t.Text)
	}
	return v, nil
}

func (p *parser) parseFloat() (float64, error) {
	t, err := p.expect(NUMBER)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, errf(t.Pos, "expected number, found %q", t.Text)
	}
	return v, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseAtom()
}

// keywords that cannot start a class reference.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "window": true,
	"and": true, "or": true, "not": true, "count": true, "avg": true,
	"in": true, "left": true, "right": true, "above": true, "below": true,
	"of": true, "quadrant": true, "rect": true, "frames": true,
	"hopping": true, "size": true, "advance": true, "by": true,
	"upper": true, "lower": true,
}

func (p *parser) parseAtom() (Expr, error) {
	switch {
	case p.at(LPAREN):
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case p.atKeyword("count"):
		return p.parseCountPred()
	case p.at(IDENT) && !reserved[strings.ToLower(p.peek().Text)]:
		return p.parseObjectPred()
	default:
		return nil, errf(p.peek().Pos, "expected predicate, found %q", p.peek().Text)
	}
}

// parseCountPred handles COUNT(*) op n, COUNT(class) op n and
// COUNT(class IN region) op n.
func (p *parser) parseCountPred() (Expr, error) {
	p.next() // count
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if p.at(STAR) {
		p.next()
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		op, v, err := p.parseCmpValue()
		if err != nil {
			return nil, err
		}
		return &CountPred{All: true, Op: op, Value: v}, nil
	}
	target, err := p.parseClassRef()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("in") {
		region, err := p.parseRegion()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		op, v, err := p.parseCmpValue()
		if err != nil {
			return nil, err
		}
		return &RegionPred{Target: target, Region: region, Count: true, Op: op, Value: v}, nil
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	op, v, err := p.parseCmpValue()
	if err != nil {
		return nil, err
	}
	return &CountPred{Target: target, Op: op, Value: v}, nil
}

func (p *parser) parseCmpValue() (CmpOp, int, error) {
	var op CmpOp
	switch p.peek().Kind {
	case EQ:
		op = CmpEQ
	case NEQ:
		op = CmpNEQ
	case LT:
		op = CmpLT
	case LE:
		op = CmpLE
	case GT:
		op = CmpGT
	case GE:
		op = CmpGE
	default:
		return 0, 0, errf(p.peek().Pos, "expected comparison operator, found %q", p.peek().Text)
	}
	p.next()
	v, err := p.parseInt()
	return op, v, err
}

// parseObjectPred handles "class REL class", "class IN region" and
// "class NOT IN region".
func (p *parser) parseObjectPred() (Expr, error) {
	a, err := p.parseClassRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("left"), p.atKeyword("right"):
		dir := strings.ToLower(p.next().Text)
		if err := p.expectKeyword("of"); err != nil {
			return nil, err
		}
		b, err := p.parseClassRef()
		if err != nil {
			return nil, err
		}
		return &SpatialPred{A: a, B: b, Rel: dir + "-of"}, nil
	case p.atKeyword("above"), p.atKeyword("below"):
		rel := strings.ToLower(p.next().Text)
		b, err := p.parseClassRef()
		if err != nil {
			return nil, err
		}
		return &SpatialPred{A: a, B: b, Rel: rel}, nil
	case p.atKeyword("in"):
		p.next()
		region, err := p.parseRegion()
		if err != nil {
			return nil, err
		}
		return &RegionPred{Target: a, Region: region, Op: CmpGE, Value: 1}, nil
	case p.atKeyword("not"):
		p.next()
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		region, err := p.parseRegion()
		if err != nil {
			return nil, err
		}
		return &RegionPred{Target: a, Region: region, Negate: true, Op: CmpGE, Value: 1}, nil
	default:
		return nil, errf(p.peek().Pos, "expected spatial relation or IN after %q, found %q", a.String(), p.peek().Text)
	}
}

func (p *parser) parseClassRef() (ClassRef, error) {
	t, err := p.expect(IDENT)
	if err != nil {
		return ClassRef{}, err
	}
	if reserved[strings.ToLower(t.Text)] {
		return ClassRef{}, errf(t.Pos, "reserved word %q cannot name a class", t.Text)
	}
	ref := ClassRef{Class: strings.ToLower(t.Text)}
	if p.at(LBRACKET) {
		p.next()
		col, err := p.expect(IDENT)
		if err != nil {
			return ClassRef{}, err
		}
		ref.Color = strings.ToLower(col.Text)
		if _, err := p.expect(RBRACKET); err != nil {
			return ClassRef{}, err
		}
	}
	return ref, nil
}

func (p *parser) parseRegion() (Region, error) {
	switch {
	case p.acceptKeyword("quadrant"):
		if _, err := p.expect(LPAREN); err != nil {
			return Region{}, err
		}
		var parts []string
		for p.at(IDENT) {
			parts = append(parts, strings.ToLower(p.next().Text))
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Region{}, err
		}
		name := strings.Join(parts, "-")
		switch name {
		case "upper-left", "upper-right", "lower-left", "lower-right":
			return Region{Quadrant: name}, nil
		default:
			return Region{}, errf(p.peek().Pos, "unknown quadrant %q", name)
		}
	case p.acceptKeyword("rect"):
		if _, err := p.expect(LPAREN); err != nil {
			return Region{}, err
		}
		var coords [4]float64
		for i := 0; i < 4; i++ {
			v, err := p.parseFloat()
			if err != nil {
				return Region{}, err
			}
			coords[i] = v
			if i < 3 {
				if _, err := p.expect(COMMA); err != nil {
					return Region{}, err
				}
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Region{}, err
		}
		if coords[2] <= coords[0] || coords[3] <= coords[1] {
			return Region{}, errf(p.peek().Pos, "empty RECT region")
		}
		return Region{X0: coords[0], Y0: coords[1], X1: coords[2], Y1: coords[3]}, nil
	default:
		return Region{}, errf(p.peek().Pos, "expected QUADRANT(...) or RECT(...), found %q", p.peek().Text)
	}
}
