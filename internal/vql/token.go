// Package vql implements the declarative video query language of the
// paper (whose syntax follows Lu et al.'s probabilistic-predicates
// dialect): SELECT over a processed video source with WHERE predicates on
// object counts, colours, spatial relations between objects and screen
// regions, and WINDOW HOPPING clauses for streaming aggregates.
//
// The concrete grammar accepted here is a cleaned-up equivalent of the
// paper's examples:
//
//	SELECT FRAMES FROM jackson
//	WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person
//
//	SELECT COUNT(FRAMES) FROM jackson
//	WHERE car[blue] LEFT OF stop-sign
//	WINDOW HOPPING (SIZE 5000, ADVANCE BY 5000)
//
//	SELECT AVG(COUNT(bicycle IN RECT(0,300,150,448))) FROM jackson
//	WHERE COUNT(*) >= 1
//
// Keywords are case-insensitive; class, colour and dataset names are
// lower-case identifiers (hyphens allowed, e.g. stop-sign).
package vql

import "fmt"

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	NUMBER
	LPAREN
	RPAREN
	LBRACKET
	RBRACKET
	COMMA
	STAR
	EQ  // =
	NEQ // !=
	LT
	LE
	GT
	GE
)

func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "end of query"
	case IDENT:
		return "identifier"
	case NUMBER:
		return "number"
	case LPAREN:
		return "'('"
	case RPAREN:
		return "')'"
	case LBRACKET:
		return "'['"
	case RBRACKET:
		return "']'"
	case COMMA:
		return "','"
	case STAR:
		return "'*'"
	case EQ:
		return "'='"
	case NEQ:
		return "'!='"
	case LT:
		return "'<'"
	case LE:
		return "'<='"
	case GT:
		return "'>'"
	case GE:
		return "'>='"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// SyntaxError reports a parse failure with position context.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("vql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenises the input. Identifiers may contain letters, digits,
// underscores and interior hyphens (stop-sign).
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, Token{LPAREN, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{RPAREN, ")", i})
			i++
		case c == '[':
			toks = append(toks, Token{LBRACKET, "[", i})
			i++
		case c == ']':
			toks = append(toks, Token{RBRACKET, "]", i})
			i++
		case c == ',':
			toks = append(toks, Token{COMMA, ",", i})
			i++
		case c == '*':
			toks = append(toks, Token{STAR, "*", i})
			i++
		case c == '=':
			toks = append(toks, Token{EQ, "=", i})
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, Token{NEQ, "!=", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!'")
			}
		case c == '<':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, Token{LE, "<=", i})
				i += 2
			} else {
				toks = append(toks, Token{LT, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, Token{GE, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{GT, ">", i})
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, Token{NUMBER, input[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(input) && isIdentPart(input[j]) {
				j++
			}
			// Interior hyphens only: trim a trailing hyphen run.
			for j > i && input[j-1] == '-' {
				j--
			}
			toks = append(toks, Token{IDENT, input[i:j], i})
			i = j
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{EOF, "", len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}
