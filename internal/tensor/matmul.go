package tensor

import "fmt"

// MatMul returns a×b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop streaming over contiguous rows of
	// b and out, which matters for the conv-heavy training path.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT1 returns aᵀ×b for a (k×m) and b (k×n), yielding m×n. Used by
// convolution weight gradients without materialising the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 needs rank-2 operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT2 returns a×bᵀ for a (m×k) and b (n×k), yielding m×n. Used by
// input gradients of linear layers.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 needs rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for kk := range arow {
				s += arow[kk] * brow[kk]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose needs rank-2 operand")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
