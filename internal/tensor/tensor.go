// Package tensor implements the dense float32 n-dimensional arrays used by
// the neural-network substrate (package nn). It provides exactly the
// operations the paper's branch architectures need: element-wise arithmetic,
// matrix multiplication, im2col-based 2-D convolution, max pooling and
// global average pooling, each with the gradients required for training.
//
// Layout is row-major. Images follow the CHW convention (channels, height,
// width); batches prepend an N axis (NCHW).
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal length.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes length", t.Shape, shape))
	}
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

func mustSameShape(op string, t, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, u.Shape))
	}
}

// Add returns t+u element-wise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	mustSameShape("Add", t, u)
	out := New(t.Shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] + u.Data[i]
	}
	return out
}

// AddInPlace adds u into t.
func (t *Tensor) AddInPlace(u *Tensor) {
	mustSameShape("AddInPlace", t, u)
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
}

// Sub returns t-u element-wise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	mustSameShape("Sub", t, u)
	out := New(t.Shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] - u.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	mustSameShape("Mul", t, u)
	out := New(t.Shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] * u.Data[i]
	}
	return out
}

// Scale returns t*s element-wise.
func (t *Tensor) Scale(s float32) *Tensor {
	out := New(t.Shape...)
	for i := range t.Data {
		out.Data[i] = t.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies t by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += alpha*u in place.
func (t *Tensor) AXPY(alpha float32, u *Tensor) {
	mustSameShape("AXPY", t, u)
	for i := range t.Data {
		t.Data[i] += alpha * u.Data[i]
	}
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if t.Len() == 0 {
		return 0
	}
	return t.Sum() / float64(t.Len())
}

// Max returns the largest element; panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of t and u flattened.
func (t *Tensor) Dot(u *Tensor) float64 {
	mustSameShape("Dot", t, u)
	var s float64
	for i := range t.Data {
		s += float64(t.Data[i]) * float64(u.Data[i])
	}
	return s
}

// L2 returns the Euclidean norm of t.
func (t *Tensor) L2() float64 { return math.Sqrt(t.Dot(t)) }

// RandN fills t with N(0, std) values drawn from rng.
func (t *Tensor) RandN(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// RandUniform fills t with uniform values in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// String renders a compact description (shape plus up to 8 elements).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
