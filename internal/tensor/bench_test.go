package tensor

import (
	"math/rand/v2"
	"testing"
)

func benchTensors(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := New(m, k)
	b := New(k, n)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	return a, b
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchTensors(64, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

// BenchmarkMatMulBlocked measures the cache-blocked GEMM on the batched
// conv-layer shape (16 filters over a 32-frame batch of 48x48 planes).
func BenchmarkMatMulBlocked(b *testing.B) {
	x, y := benchTensors(16, 144, 32*48*48)
	dst := New(16, 32*48*48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkMatMulNaiveLarge is the naive reference on the same shape.
func BenchmarkMatMulNaiveLarge(b *testing.B) {
	x, y := benchTensors(16, 144, 32*48*48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

// BenchmarkMatMulParallel adds the column fan-out; run with -cpu 1,2,4.
func BenchmarkMatMulParallel(b *testing.B) {
	x, y := benchTensors(16, 144, 32*48*48)
	dst := New(16, 32*48*48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulParallel(dst, x, y, 0)
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	x, _ := benchTensors(64, 64, 64)
	y, _ := benchTensors(64, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT2(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	in := New(16, 48, 48)
	in.RandN(rng, 1)
	p := ConvParams{KH: 3, KW: 3, Stride: 1, Padding: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(in, p)
	}
}

// BenchmarkConv2D measures the trained-backend conv workload: 16 filters
// of 3x3 over a 16x48x48 feature map.
func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	in := New(16, 48, 48)
	in.RandN(rng, 1)
	w := New(16, 16, 3, 3)
	w.RandN(rng, 0.1)
	bias := New(16)
	p := ConvParams{KH: 3, KW: 3, Stride: 1, Padding: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, w, bias, p)
	}
}

func BenchmarkMaxPool(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	in := New(16, 48, 48)
	in.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool2D(in, 2)
	}
}

func BenchmarkGlobalAvgPool(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	in := New(256, 56, 56)
	in.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalAvgPool(in)
	}
}
