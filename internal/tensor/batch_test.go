package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The blocked GEMM must agree with the naive reference loop. Tolerance is
// zero: both kernels accumulate each output element in ascending-k order,
// and skipping zero terms is exact in IEEE arithmetic, so the results are
// bit-identical, which is what keeps the batched inference path
// result-identical to the sequential reference at the engine level.
func TestMatMulIntoMatchesNaive(t *testing.T) {
	ensureBitExact(t)
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.IntN(70)
		k := 1 + rng.IntN(300)
		n := 1 + rng.IntN(400)
		a, b := New(m, k), New(k, n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		// Inject sparsity so the zero-skip paths are exercised.
		for i := range a.Data {
			if rng.Float64() < 0.3 {
				a.Data[i] = 0
			}
		}
		want := MatMul(a, b)
		got := MatMulInto(nil, a, b)
		requireBitEqual(t, "MatMulInto", got, want)
		// Reused dirty dst.
		dirty := New(m, n)
		dirty.Fill(999)
		requireBitEqual(t, "MatMulInto reuse", MatMulInto(dirty, a, b), want)
		for workers := 1; workers <= 5; workers++ {
			requireBitEqual(t, "MatMulParallel", MatMulParallel(nil, a, b, workers), want)
		}
	}
}

func requireBitEqual(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %g, want %g", label, i, got.Data[i], want.Data[i])
		}
	}
}

// Property test for the whole batched convolution lowering: for random
// batch sizes, channel counts, spatial sizes, kernels, strides and
// paddings, Im2ColBatchInto + the parallel blocked GEMM must match the
// direct Conv2DNaive reference on every frame of the batch. Run under
// -race this also proves the column-partitioned workers never overlap.
func TestBatchedConvMatchesNaivePerFrame(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 0))
	for trial := 0; trial < 30; trial++ {
		batch := 1 + rng.IntN(7)
		c := 1 + rng.IntN(4)
		outC := 1 + rng.IntN(6)
		kk := 1 + rng.IntN(3)
		stride := 1 + rng.IntN(2)
		pad := rng.IntN(kk) // padding < kernel keeps the output non-empty
		h := kk + rng.IntN(14)
		w := kk + rng.IntN(14)
		p := ConvParams{KH: kk, KW: kk, Stride: stride, Padding: pad}
		oh, ow := p.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}

		frames := make([]*Tensor, batch)
		fm := New(c, batch, h, w) // feature-major batch
		for f := 0; f < batch; f++ {
			frames[f] = New(c, h, w)
			frames[f].RandN(rng, 1)
			for ci := 0; ci < c; ci++ {
				copy(fm.Data[(ci*batch+f)*h*w:(ci*batch+f+1)*h*w],
					frames[f].Data[ci*h*w:(ci+1)*h*w])
			}
		}
		weights := New(outC, c, kk, kk)
		weights.RandN(rng, 0.5)
		bias := New(outC)
		bias.RandN(rng, 0.5)

		// Batched path: im2col into a dirty scratch, one parallel GEMM.
		cols := New(c*kk*kk, batch*oh*ow)
		cols.Fill(7)
		Im2ColBatchInto(cols, fm, p)
		out := MatMulParallel(nil, weights.Reshape(outC, c*kk*kk), cols, 4)
		for o := 0; o < outC; o++ {
			row := out.Data[o*batch*oh*ow : (o+1)*batch*oh*ow]
			for i := range row {
				row[i] += bias.Data[o]
			}
		}

		for f := 0; f < batch; f++ {
			want := Conv2DNaive(frames[f], weights, bias, p)
			for o := 0; o < outC; o++ {
				for s := 0; s < oh*ow; s++ {
					got := out.Data[(o*batch+f)*oh*ow+s]
					if math.Abs(float64(got-want.Data[o*oh*ow+s])) > 1e-4 {
						t.Fatalf("trial %d (B=%d c=%d outC=%d k=%d s=%d p=%d %dx%d): frame %d out[%d,%d] = %g, want %g",
							trial, batch, c, outC, kk, stride, pad, h, w, f, o, s, got, want.Data[o*oh*ow+s])
					}
				}
			}
		}

		// The scratch-buffer single-frame unroll must equal the allocating
		// reference exactly.
		dirty := New(c*kk*kk, oh*ow)
		dirty.Fill(3)
		requireBitEqual(t, "Im2ColInto", Im2ColInto(dirty, frames[0], p), Im2Col(frames[0], p))
	}
}

// Batched pooling and GAP must match their single-frame references
// bit-for-bit on every frame.
func TestBatchedPoolingMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 0))
	for trial := 0; trial < 20; trial++ {
		batch := 1 + rng.IntN(6)
		c := 1 + rng.IntN(5)
		k := 1 + rng.IntN(3)
		h := k * (1 + rng.IntN(8))
		w := k * (1 + rng.IntN(8))
		fm := New(c, batch, h, w)
		fm.RandN(rng, 1)
		frame := func(f int) *Tensor {
			out := New(c, h, w)
			for ci := 0; ci < c; ci++ {
				copy(out.Data[ci*h*w:(ci+1)*h*w], fm.Data[(ci*batch+f)*h*w:(ci*batch+f+1)*h*w])
			}
			return out
		}

		pooled := MaxPool2DBatchInto(nil, fm, k)
		gap := GlobalAvgPoolBatchInto(nil, fm)
		oh, ow := h/k, w/k
		for f := 0; f < batch; f++ {
			single, _ := MaxPool2D(frame(f), k)
			for ci := 0; ci < c; ci++ {
				for s := 0; s < oh*ow; s++ {
					if pooled.Data[(ci*batch+f)*oh*ow+s] != single.Data[ci*oh*ow+s] {
						t.Fatalf("maxpool frame %d ch %d pos %d diverged", f, ci, s)
					}
				}
			}
			g := GlobalAvgPool(frame(f))
			for ci := 0; ci < c; ci++ {
				if gap.Data[ci*batch+f] != g.Data[ci] {
					t.Fatalf("gap frame %d ch %d: %g vs %g", f, ci, gap.Data[ci*batch+f], g.Data[ci])
				}
			}
		}
	}
}

// SwapBatchChannel is an involution that actually transposes.
func TestSwapBatchChannel(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 0))
	in := New(3, 5, 2, 4)
	in.RandN(rng, 1)
	out := SwapBatchChannel(nil, in)
	if out.Shape[0] != 5 || out.Shape[1] != 3 {
		t.Fatalf("swapped shape %v", out.Shape)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			for s := 0; s < 8; s++ {
				if out.Data[(j*3+i)*8+s] != in.Data[(i*5+j)*8+s] {
					t.Fatalf("swap mismatch at (%d,%d,%d)", i, j, s)
				}
			}
		}
	}
	back := SwapBatchChannel(New(3, 5, 2, 4), out)
	requireBitEqual(t, "swap involution", back, in)
}
