package tensor

// The portable micro-kernels behind the blocked GEMM. Every architecture
// compiles these: they are the correctness reference the SIMD variants are
// property-tested against (bit-identical outputs on every input, including
// signed zeros, denormals and NaN), and the fallback the "generic" kernel
// selection (VMQ_KERNEL=generic, or SetKernel) pins for debugging.

// axpyQuadGeneric computes d_r[j] += v_r * b[j] for the four accumulator
// rows. The SIMD variants perform the identical elementwise operations,
// only more lanes at a time.
func axpyQuadGeneric(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	d0 = d0[:len(b)]
	d1 = d1[:len(b)]
	d2 = d2[:len(b)]
	d3 = d3[:len(b)]
	for j, bv := range b {
		d0[j] += v0 * bv
		d1[j] += v1 * bv
		d2[j] += v2 * bv
		d3[j] += v3 * bv
	}
}

// maxPool2RowGeneric writes one output row of 2×2 stride-2 max pooling:
// dst[x] folds r0[2x], r0[2x+1], r1[2x], r1[2x+1] in that order with a
// strict-greater compare, so ties (signed zeros) and NaN keep the earlier
// value. The AVX2 variant performs the identical fold with VMAXPS, whose
// tie/NaN rule (return the second source unless the first is strictly
// greater) matches exactly.
func maxPool2RowGeneric(dst, r0, r1 []float32) {
	r0 = r0[:2*len(dst)]
	r1 = r1[:2*len(dst)]
	for ox := range dst {
		best := r0[2*ox]
		if v := r0[2*ox+1]; v > best {
			best = v
		}
		if v := r1[2*ox]; v > best {
			best = v
		}
		if v := r1[2*ox+1]; v > best {
			best = v
		}
		dst[ox] = best
	}
}

// fillRowGeneric sets every element of dst to v — the reference for the
// rasteriser's row/rectangle fills. No arithmetic, so every level's output
// is identical by construction.
func fillRowGeneric(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

// addClampRowGeneric computes dst[i] = clamp01(dst[i] + add[i]) with the
// rasteriser's exact select chain: add, then `if v < 0 { v = 0 } else if
// v > 1 { v = 1 }`. NaN fails both comparisons and passes through. The
// SIMD variants implement the same chain with compare+blend selects in the
// same order, so outputs stay bit-identical.
func addClampRowGeneric(dst, add []float32) {
	dst = dst[:len(add)]
	for i, a := range add {
		v := dst[i] + a
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		dst[i] = v
	}
}

// epilogueRowGeneric applies the bias and activation to one L1-hot dst
// segment. The AVX2 variant implements the same select semantics with
// compare+blend (not arithmetic identities), so outputs stay bit-identical
// even on signed zeros and NaN.
func epilogueRowGeneric(seg []float32, b float32, act Act, slope float32) {
	switch act {
	case ActReLU:
		for i := range seg {
			if v := seg[i] + b; v > 0 {
				seg[i] = v
			} else {
				seg[i] = 0
			}
		}
	case ActLeakyReLU:
		for i := range seg {
			if v := seg[i] + b; v > 0 {
				seg[i] = v
			} else {
				seg[i] = v * slope
			}
		}
	default:
		for i := range seg {
			seg[i] += b
		}
	}
}
