//go:build !amd64

package tensor

// axpyQuad is the portable micro-kernel: d_r[j] += v_r * b[j] for the four
// accumulator rows. The amd64 build replaces it with an SSE version that
// performs the identical elementwise operations four lanes at a time.
func axpyQuad(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	d0 = d0[:len(b)]
	d1 = d1[:len(b)]
	d2 = d2[:len(b)]
	d3 = d3[:len(b)]
	for j, bv := range b {
		d0[j] += v0 * bv
		d1[j] += v1 * bv
		d2[j] += v2 * bv
		d3[j] += v3 * bv
	}
}
