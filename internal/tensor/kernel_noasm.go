//go:build !amd64

package tensor

// archKernels reports no SIMD kernels off amd64; the generic loops are the
// only (and reference) implementation.
func archKernels() map[string]kernelImpl { return nil }

func defaultKernelName() string { return "generic" }
