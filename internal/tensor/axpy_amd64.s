//go:build amd64

#include "textflag.h"

// func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// d_r[j] += v_r * b[j] for r = 0..3, j = 0..n-1. SSE only (MOVUPS/MULPS/
// ADDPS are amd64 baseline). Elementwise multiply then add — no FMA, no
// horizontal ops — so every output element sees the exact IEEE operation
// sequence of the scalar loop.
TEXT ·axpy4(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), CX
	MOVSS v0+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS v1+52(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS v2+56(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS v3+60(FP), X3
	SHUFPS $0x00, X3, X3

	CMPQ CX, $4
	JL   tail

loop:
	MOVUPS (BX), X4

	MOVAPS X4, X5
	MULPS  X0, X5
	MOVUPS (R8), X6
	ADDPS  X5, X6
	MOVUPS X6, (R8)

	MOVAPS X4, X5
	MULPS  X1, X5
	MOVUPS (R9), X6
	ADDPS  X5, X6
	MOVUPS X6, (R9)

	MOVAPS X4, X5
	MULPS  X2, X5
	MOVUPS (R10), X6
	ADDPS  X5, X6
	MOVUPS X6, (R10)

	MOVAPS X4, X5
	MULPS  X3, X5
	MOVUPS (R11), X6
	ADDPS  X5, X6
	MOVUPS X6, (R11)

	ADDQ $16, BX
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	SUBQ $4, CX
	CMPQ CX, $4
	JGE  loop

tail:
	CMPQ CX, $0
	JLE  done

tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   tailloop

done:
	RET

// func axpy8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// AVX2 variant of axpy4: eight lanes per VMULPS/VADDPS. Still elementwise
// multiply then add — no FMA, so every output element sees the exact IEEE
// operation sequence of the scalar loop (multiplication and addition are
// commutative in IEEE 754, so operand order is immaterial). The < 8 tail
// runs scalar after VZEROUPPER; VBROADCASTSS leaves the scalar in lane 0,
// which the tail's MULSS uses.
TEXT ·axpy8(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), CX
	VBROADCASTSS v0+48(FP), Y0
	VBROADCASTSS v1+52(FP), Y1
	VBROADCASTSS v2+56(FP), Y2
	VBROADCASTSS v3+60(FP), Y3

	CMPQ CX, $8
	JL   avx2tail

avx2loop:
	VMOVUPS (BX), Y4

	VMULPS  Y0, Y4, Y5
	VMOVUPS (R8), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R8)

	VMULPS  Y1, Y4, Y5
	VMOVUPS (R9), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R9)

	VMULPS  Y2, Y4, Y5
	VMOVUPS (R10), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R10)

	VMULPS  Y3, Y4, Y5
	VMOVUPS (R11), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R11)

	ADDQ $32, BX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  avx2loop

avx2tail:
	VZEROUPPER
	CMPQ CX, $0
	JLE  avx2done

avx2tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   avx2tailloop

avx2done:
	RET

// func bias8(seg *float32, n int, b float32)
//
// seg[i] += b, eight lanes at a time. n must be a positive multiple of 8
// (the Go wrapper peels the tail).
TEXT ·bias8(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0

bias8loop:
	VMOVUPS (SI), Y1
	VADDPS  Y0, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JG      bias8loop

	VZEROUPPER
	RET

// func biasReLU8(seg *float32, n int, b float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : 0. VMAXPS with the zero vector as
// Intel SRC2 matches the scalar select exactly: ties (v == ±0) and NaN
// both yield SRC2 = +0, just like the scalar `v > 0` test failing.
TEXT ·biasReLU8(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0
	VXORPS       Y2, Y2, Y2

relu8loop:
	VMOVUPS (SI), Y1
	VADDPS  Y0, Y1, Y1
	VMAXPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JG      relu8loop

	VZEROUPPER
	RET

// func biasLeaky8(seg *float32, n int, b, slope float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : v*slope. A true select:
// VCMPPS(GT_OQ) builds the v > 0 mask (false on NaN, like the scalar
// comparison) and VBLENDVPS picks v or v*slope per lane, so the result is
// bit-identical to the scalar branch on every input, signed zeros and
// denormal underflow included.
TEXT ·biasLeaky8(SB), NOSPLIT, $0-24
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0
	VBROADCASTSS slope+20(FP), Y7
	VXORPS       Y2, Y2, Y2

leaky8loop:
	VMOVUPS   (SI), Y1
	VADDPS    Y0, Y1, Y1        // v = seg + b
	VMULPS    Y7, Y1, Y3        // v * slope
	VCMPPS    $0x1E, Y2, Y1, Y4 // GT_OQ: v > 0 (false on NaN)
	VBLENDVPS Y4, Y1, Y3, Y1    // v > 0 ? v : v*slope
	VMOVUPS   Y1, (SI)
	ADDQ      $32, SI
	SUBQ      $8, CX
	JG        leaky8loop

	VZEROUPPER
	RET

// func maxPool2x8(dst, r0, r1 *float32, n int)
//
// One 2×2 stride-2 pooling row, 8 outputs per iteration. Each block loads
// 16 floats of each input row, splits even/odd taps with VSHUFPS (which
// leaves the four output pairs in a lane-crossed qword order), folds the
// four tap vectors with VMAXPS in the scalar reference's exact order —
// Intel MAXPS returns the second source unless the first is strictly
// greater, which is precisely the `if v > best` fold, ties, signed zeros
// and NaN included — and restores output order with one VPERMPD.
TEXT ·maxPool2x8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), DX
	MOVQ n+24(FP), CX

pool8loop:
	VMOVUPS (SI), Y0           // r0[0:8]
	VMOVUPS 32(SI), Y1         // r0[8:16]
	VSHUFPS $0x88, Y1, Y0, Y2  // r0 even taps  (qword-scrambled)
	VSHUFPS $0xDD, Y1, Y0, Y3  // r0 odd taps
	VMOVUPS (DX), Y0           // r1[0:8]
	VMOVUPS 32(DX), Y1         // r1[8:16]
	VSHUFPS $0x88, Y1, Y0, Y4  // r1 even taps
	VSHUFPS $0xDD, Y1, Y0, Y5  // r1 odd taps

	// best = r0even; best = max(r0odd, best); ... — SRC2 is the running
	// best, so each VMAXPS keeps it unless the new tap is strictly greater.
	VMAXPS  Y2, Y3, Y2
	VMAXPS  Y2, Y4, Y2
	VMAXPS  Y2, Y5, Y2
	VPERMPD $0xD8, Y2, Y2      // undo the VSHUFPS qword scramble
	VMOVUPS Y2, (DI)

	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $32, DI
	SUBQ $8, CX
	JG   pool8loop

	VZEROUPPER
	RET

// func axpy16(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// AVX-512 variant of axpy8: sixteen lanes per VMULPS/VADDPS on ZMM
// registers. Still elementwise multiply then add — no FMA — so every
// output element sees the exact IEEE operation sequence of the scalar
// loop. The < 16 tail runs scalar after VZEROUPPER; VBROADCASTSS leaves
// the scalar in lane 0, which the tail's MULSS uses.
TEXT ·axpy16(SB), NOSPLIT, $0-64
	MOVQ         d0+0(FP), R8
	MOVQ         d1+8(FP), R9
	MOVQ         d2+16(FP), R10
	MOVQ         d3+24(FP), R11
	MOVQ         b+32(FP), BX
	MOVQ         n+40(FP), CX
	VBROADCASTSS v0+48(FP), Z0
	VBROADCASTSS v1+52(FP), Z1
	VBROADCASTSS v2+56(FP), Z2
	VBROADCASTSS v3+60(FP), Z3

	CMPQ CX, $16
	JL   z16tail

z16loop:
	VMOVUPS (BX), Z4

	VMULPS  Z0, Z4, Z5
	VMOVUPS (R8), Z6
	VADDPS  Z5, Z6, Z6
	VMOVUPS Z6, (R8)

	VMULPS  Z1, Z4, Z5
	VMOVUPS (R9), Z6
	VADDPS  Z5, Z6, Z6
	VMOVUPS Z6, (R9)

	VMULPS  Z2, Z4, Z5
	VMOVUPS (R10), Z6
	VADDPS  Z5, Z6, Z6
	VMOVUPS Z6, (R10)

	VMULPS  Z3, Z4, Z5
	VMOVUPS (R11), Z6
	VADDPS  Z5, Z6, Z6
	VMOVUPS Z6, (R11)

	ADDQ $64, BX
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, CX
	CMPQ CX, $16
	JGE  z16loop

z16tail:
	VZEROUPPER
	CMPQ CX, $0
	JLE  z16done

z16tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   z16tailloop

z16done:
	RET

// func axpyFMA8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// FMA variant of axpy8: VFMADD231PS fuses the multiply and add into one
// instruction with a single rounding, so outputs are NOT bit-identical to
// the mul-then-add kernels — each accumulation step skips the
// intermediate product rounding. Only reachable through the explicit
// SetTolerance/VMQ_KERNEL=fma opt-in; the correctness suite bounds the
// divergence in ULPs against an exactly-fused reference instead of
// asserting bit equality. The scalar tail uses VFMADD231SS so every
// element, lane or tail, sees the same one-rounding sequence.
TEXT ·axpyFMA8(SB), NOSPLIT, $0-64
	MOVQ         d0+0(FP), R8
	MOVQ         d1+8(FP), R9
	MOVQ         d2+16(FP), R10
	MOVQ         d3+24(FP), R11
	MOVQ         b+32(FP), BX
	MOVQ         n+40(FP), CX
	VBROADCASTSS v0+48(FP), Y0
	VBROADCASTSS v1+52(FP), Y1
	VBROADCASTSS v2+56(FP), Y2
	VBROADCASTSS v3+60(FP), Y3

	CMPQ CX, $8
	JL   fma8tail

fma8loop:
	VMOVUPS (BX), Y4

	VMOVUPS     (R8), Y6
	VFMADD231PS Y0, Y4, Y6
	VMOVUPS     Y6, (R8)

	VMOVUPS     (R9), Y6
	VFMADD231PS Y1, Y4, Y6
	VMOVUPS     Y6, (R9)

	VMOVUPS     (R10), Y6
	VFMADD231PS Y2, Y4, Y6
	VMOVUPS     Y6, (R10)

	VMOVUPS     (R11), Y6
	VFMADD231PS Y3, Y4, Y6
	VMOVUPS     Y6, (R11)

	ADDQ $32, BX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  fma8loop

fma8tail:
	VZEROUPPER
	CMPQ CX, $0
	JLE  fma8done

fma8tailloop:
	MOVSS (BX), X4

	MOVSS       (R8), X6
	VFMADD231SS X0, X4, X6
	MOVSS       X6, (R8)

	MOVSS       (R9), X6
	VFMADD231SS X1, X4, X6
	MOVSS       X6, (R9)

	MOVSS       (R10), X6
	VFMADD231SS X2, X4, X6
	MOVSS       X6, (R10)

	MOVSS       (R11), X6
	VFMADD231SS X3, X4, X6
	MOVSS       X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   fma8tailloop

fma8done:
	RET

// func bias16(seg *float32, n int, b float32)
//
// seg[i] += b, sixteen lanes at a time. n must be a positive multiple of
// 16 (the Go wrapper peels the tail).
TEXT ·bias16(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Z0

bias16loop:
	VMOVUPS (SI), Z1
	VADDPS  Z0, Z1, Z1
	VMOVUPS Z1, (SI)
	ADDQ    $64, SI
	SUBQ    $16, CX
	JG      bias16loop

	VZEROUPPER
	RET

// func biasReLU16(seg *float32, n int, b float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : 0 — the 16-wide VMAXPS select of
// biasReLU8. The zero vector comes from a VEX VXORPS on the YMM alias,
// which zeroes the full ZMM (AVX-512F has no VXORPS on ZMM; that needs
// AVX-512DQ, which we do not require).
TEXT ·biasReLU16(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Z0
	VXORPS       Y2, Y2, Y2

relu16loop:
	VMOVUPS (SI), Z1
	VADDPS  Z0, Z1, Z1
	VMAXPS  Z2, Z1, Z1
	VMOVUPS Z1, (SI)
	ADDQ    $64, SI
	SUBQ    $16, CX
	JG      relu16loop

	VZEROUPPER
	RET

// func biasLeaky16(seg *float32, n int, b, slope float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : v*slope. The AVX-512 form of the
// true select: VCMPPS builds the v > 0 opmask (false on NaN, like the
// scalar comparison) in K1 and VBLENDMPS picks v or v*slope per lane, so
// the result is bit-identical to the scalar branch on every input.
TEXT ·biasLeaky16(SB), NOSPLIT, $0-24
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Z0
	VBROADCASTSS slope+20(FP), Z7
	VXORPS       Y2, Y2, Y2

leaky16loop:
	VMOVUPS   (SI), Z1
	VADDPS    Z0, Z1, Z1        // v = seg + b
	VMULPS    Z7, Z1, Z3        // v * slope
	VCMPPS    $0x1E, Z2, Z1, K1 // GT_OQ: v > 0 (false on NaN)
	VBLENDMPS Z1, Z3, K1, Z1    // v > 0 ? v : v*slope
	VMOVUPS   Z1, (SI)
	ADDQ      $64, SI
	SUBQ      $16, CX
	JG        leaky16loop

	VZEROUPPER
	RET

// Dword index tables for VPERMT2PS: the even (0,2,..,30) and odd
// (1,3,..,31) elements of a 32-float concatenation, in output order.
GLOBL ·permEven16<>(SB), RODATA, $64
DATA ·permEven16<>+0(SB)/8, $0x0000000200000000
DATA ·permEven16<>+8(SB)/8, $0x0000000600000004
DATA ·permEven16<>+16(SB)/8, $0x0000000A00000008
DATA ·permEven16<>+24(SB)/8, $0x0000000E0000000C
DATA ·permEven16<>+32(SB)/8, $0x0000001200000010
DATA ·permEven16<>+40(SB)/8, $0x0000001600000014
DATA ·permEven16<>+48(SB)/8, $0x0000001A00000018
DATA ·permEven16<>+56(SB)/8, $0x0000001E0000001C
GLOBL ·permOdd16<>(SB), RODATA, $64
DATA ·permOdd16<>+0(SB)/8, $0x0000000300000001
DATA ·permOdd16<>+8(SB)/8, $0x0000000700000005
DATA ·permOdd16<>+16(SB)/8, $0x0000000B00000009
DATA ·permOdd16<>+24(SB)/8, $0x0000000F0000000D
DATA ·permOdd16<>+32(SB)/8, $0x0000001300000011
DATA ·permOdd16<>+40(SB)/8, $0x0000001700000015
DATA ·permOdd16<>+48(SB)/8, $0x0000001B00000019
DATA ·permOdd16<>+56(SB)/8, $0x0000001F0000001D

// func maxPool2x16(dst, r0, r1 *float32, n int)
//
// One 2×2 stride-2 pooling row, 16 outputs per iteration. Each block
// loads 32 floats of each input row and deinterleaves even/odd taps with
// VPERMT2PS (a full cross-lane permute, so unlike the AVX2 VSHUFPS path
// the taps land directly in output order — no VPERMPD repair needed),
// then folds the four tap vectors with VMAXPS in the scalar reference's
// exact order: the running best is the second source, kept unless the
// new tap is strictly greater, ties, signed zeros and NaN included.
TEXT ·maxPool2x16(SB), NOSPLIT, $0-32
	MOVQ    dst+0(FP), DI
	MOVQ    r0+8(FP), SI
	MOVQ    r1+16(FP), DX
	MOVQ    n+24(FP), CX
	VMOVUPS ·permEven16<>(SB), Z8
	VMOVUPS ·permOdd16<>(SB), Z9

pool16loop:
	VMOVUPS   (SI), Z0   // r0[0:16]
	VMOVUPS   64(SI), Z1 // r0[16:32]
	VMOVAPS   Z0, Z2
	VPERMT2PS Z1, Z8, Z2 // r0 even taps
	VMOVAPS   Z0, Z3
	VPERMT2PS Z1, Z9, Z3 // r0 odd taps
	VMOVUPS   (DX), Z0   // r1[0:16]
	VMOVUPS   64(DX), Z1 // r1[16:32]
	VMOVAPS   Z0, Z4
	VPERMT2PS Z1, Z8, Z4 // r1 even taps
	VMOVAPS   Z0, Z5
	VPERMT2PS Z1, Z9, Z5 // r1 odd taps

	VMAXPS  Z2, Z3, Z2
	VMAXPS  Z2, Z4, Z2
	VMAXPS  Z2, Z5, Z2
	VMOVUPS Z2, (DI)

	ADDQ $128, SI
	ADDQ $128, DX
	ADDQ $64, DI
	SUBQ $16, CX
	JG   pool16loop

	VZEROUPPER
	RET

// 1.0f, for the rasteriser clamp kernels.
GLOBL ·one32<>(SB), RODATA, $4
DATA ·one32<>+0(SB)/4, $0x3F800000

// func fill8(dst *float32, n int, v float32)
//
// dst[0:n] = v, eight lanes at a time (n a positive multiple of 8). Pure
// stores — trivially bit-identical to the scalar loop.
TEXT ·fill8(SB), NOSPLIT, $0-20
	MOVQ         dst+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSS v+16(FP), Y0

fill8loop:
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JG      fill8loop

	VZEROUPPER
	RET

// func fill16(dst *float32, n int, v float32)
//
// dst[0:n] = v, sixteen lanes at a time (n a positive multiple of 16).
TEXT ·fill16(SB), NOSPLIT, $0-20
	MOVQ         dst+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSS v+16(FP), Z0

fill16loop:
	VMOVUPS Z0, (DI)
	ADDQ    $64, DI
	SUBQ    $16, CX
	JG      fill16loop

	VZEROUPPER
	RET

// func addClamp8(dst, add *float32, n int)
//
// v = dst[i] + add[i]; v = v < 0 ? 0 : v; v = v > 1 ? 1 : v — the
// rasteriser's sensor-noise epilogue as true selects (VCMPPS +
// VBLENDVPS), bit-identical to the scalar else-if chain on every input:
// the low clamp's LT_OQ compare is false on NaN (NaN passes through,
// like the scalar), ties keep the original signed value, and the
// operation order (add, low clamp, high clamp) matches exactly.
TEXT ·addClamp8(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         add+8(FP), SI
	MOVQ         n+16(FP), CX
	VXORPS       Y2, Y2, Y2
	VBROADCASTSS ·one32<>(SB), Y3

clamp8loop:
	VMOVUPS   (DI), Y0
	VMOVUPS   (SI), Y1
	VADDPS    Y1, Y0, Y0       // v = dst + add
	VCMPPS    $0x11, Y2, Y0, Y4 // LT_OQ: v < 0 (false on NaN)
	VBLENDVPS Y4, Y2, Y0, Y0   // v < 0 ? 0 : v
	VCMPPS    $0x1E, Y3, Y0, Y4 // GT_OQ: v > 1 (false on NaN)
	VBLENDVPS Y4, Y3, Y0, Y0   // v > 1 ? 1 : v
	VMOVUPS   Y0, (DI)
	ADDQ      $32, DI
	ADDQ      $32, SI
	SUBQ      $8, CX
	JG        clamp8loop

	VZEROUPPER
	RET

// func addClamp16(dst, add *float32, n int)
//
// The 16-wide AVX-512 form of addClamp8: opmask compares + VBLENDMPS
// selects, same IEEE operation order, bit-identical to the scalar chain.
TEXT ·addClamp16(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         add+8(FP), SI
	MOVQ         n+16(FP), CX
	VXORPS       Y2, Y2, Y2
	VBROADCASTSS ·one32<>(SB), Z3

clamp16loop:
	VMOVUPS   (DI), Z0
	VMOVUPS   (SI), Z1
	VADDPS    Z1, Z0, Z0        // v = dst + add
	VCMPPS    $0x11, Z2, Z0, K1 // LT_OQ: v < 0
	VBLENDMPS Z2, Z0, K1, Z0    // v < 0 ? 0 : v
	VCMPPS    $0x1E, Z3, Z0, K1 // GT_OQ: v > 1
	VBLENDMPS Z3, Z0, K1, Z0    // v > 1 ? 1 : v
	VMOVUPS   Z0, (DI)
	ADDQ      $64, DI
	ADDQ      $64, SI
	SUBQ      $16, CX
	JG        clamp16loop

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0. Callers must have confirmed CPUID.1:ECX.OSXSAVE.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
