//go:build amd64

#include "textflag.h"

// func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// d_r[j] += v_r * b[j] for r = 0..3, j = 0..n-1. SSE only (MOVUPS/MULPS/
// ADDPS are amd64 baseline). Elementwise multiply then add — no FMA, no
// horizontal ops — so every output element sees the exact IEEE operation
// sequence of the scalar loop.
TEXT ·axpy4(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), CX
	MOVSS v0+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS v1+52(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS v2+56(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS v3+60(FP), X3
	SHUFPS $0x00, X3, X3

	CMPQ CX, $4
	JL   tail

loop:
	MOVUPS (BX), X4

	MOVAPS X4, X5
	MULPS  X0, X5
	MOVUPS (R8), X6
	ADDPS  X5, X6
	MOVUPS X6, (R8)

	MOVAPS X4, X5
	MULPS  X1, X5
	MOVUPS (R9), X6
	ADDPS  X5, X6
	MOVUPS X6, (R9)

	MOVAPS X4, X5
	MULPS  X2, X5
	MOVUPS (R10), X6
	ADDPS  X5, X6
	MOVUPS X6, (R10)

	MOVAPS X4, X5
	MULPS  X3, X5
	MOVUPS (R11), X6
	ADDPS  X5, X6
	MOVUPS X6, (R11)

	ADDQ $16, BX
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	SUBQ $4, CX
	CMPQ CX, $4
	JGE  loop

tail:
	CMPQ CX, $0
	JLE  done

tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   tailloop

done:
	RET
