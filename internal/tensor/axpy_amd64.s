//go:build amd64

#include "textflag.h"

// func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// d_r[j] += v_r * b[j] for r = 0..3, j = 0..n-1. SSE only (MOVUPS/MULPS/
// ADDPS are amd64 baseline). Elementwise multiply then add — no FMA, no
// horizontal ops — so every output element sees the exact IEEE operation
// sequence of the scalar loop.
TEXT ·axpy4(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), CX
	MOVSS v0+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS v1+52(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS v2+56(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS v3+60(FP), X3
	SHUFPS $0x00, X3, X3

	CMPQ CX, $4
	JL   tail

loop:
	MOVUPS (BX), X4

	MOVAPS X4, X5
	MULPS  X0, X5
	MOVUPS (R8), X6
	ADDPS  X5, X6
	MOVUPS X6, (R8)

	MOVAPS X4, X5
	MULPS  X1, X5
	MOVUPS (R9), X6
	ADDPS  X5, X6
	MOVUPS X6, (R9)

	MOVAPS X4, X5
	MULPS  X2, X5
	MOVUPS (R10), X6
	ADDPS  X5, X6
	MOVUPS X6, (R10)

	MOVAPS X4, X5
	MULPS  X3, X5
	MOVUPS (R11), X6
	ADDPS  X5, X6
	MOVUPS X6, (R11)

	ADDQ $16, BX
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	SUBQ $4, CX
	CMPQ CX, $4
	JGE  loop

tail:
	CMPQ CX, $0
	JLE  done

tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   tailloop

done:
	RET

// func axpy8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)
//
// AVX2 variant of axpy4: eight lanes per VMULPS/VADDPS. Still elementwise
// multiply then add — no FMA, so every output element sees the exact IEEE
// operation sequence of the scalar loop (multiplication and addition are
// commutative in IEEE 754, so operand order is immaterial). The < 8 tail
// runs scalar after VZEROUPPER; VBROADCASTSS leaves the scalar in lane 0,
// which the tail's MULSS uses.
TEXT ·axpy8(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), CX
	VBROADCASTSS v0+48(FP), Y0
	VBROADCASTSS v1+52(FP), Y1
	VBROADCASTSS v2+56(FP), Y2
	VBROADCASTSS v3+60(FP), Y3

	CMPQ CX, $8
	JL   avx2tail

avx2loop:
	VMOVUPS (BX), Y4

	VMULPS  Y0, Y4, Y5
	VMOVUPS (R8), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R8)

	VMULPS  Y1, Y4, Y5
	VMOVUPS (R9), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R9)

	VMULPS  Y2, Y4, Y5
	VMOVUPS (R10), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R10)

	VMULPS  Y3, Y4, Y5
	VMOVUPS (R11), Y6
	VADDPS  Y5, Y6, Y6
	VMOVUPS Y6, (R11)

	ADDQ $32, BX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  avx2loop

avx2tail:
	VZEROUPPER
	CMPQ CX, $0
	JLE  avx2done

avx2tailloop:
	MOVSS (BX), X4

	MOVAPS X4, X5
	MULSS  X0, X5
	MOVSS  (R8), X6
	ADDSS  X5, X6
	MOVSS  X6, (R8)

	MOVAPS X4, X5
	MULSS  X1, X5
	MOVSS  (R9), X6
	ADDSS  X5, X6
	MOVSS  X6, (R9)

	MOVAPS X4, X5
	MULSS  X2, X5
	MOVSS  (R10), X6
	ADDSS  X5, X6
	MOVSS  X6, (R10)

	MOVAPS X4, X5
	MULSS  X3, X5
	MOVSS  (R11), X6
	ADDSS  X5, X6
	MOVSS  X6, (R11)

	ADDQ $4, BX
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JG   avx2tailloop

avx2done:
	RET

// func bias8(seg *float32, n int, b float32)
//
// seg[i] += b, eight lanes at a time. n must be a positive multiple of 8
// (the Go wrapper peels the tail).
TEXT ·bias8(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0

bias8loop:
	VMOVUPS (SI), Y1
	VADDPS  Y0, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JG      bias8loop

	VZEROUPPER
	RET

// func biasReLU8(seg *float32, n int, b float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : 0. VMAXPS with the zero vector as
// Intel SRC2 matches the scalar select exactly: ties (v == ±0) and NaN
// both yield SRC2 = +0, just like the scalar `v > 0` test failing.
TEXT ·biasReLU8(SB), NOSPLIT, $0-20
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0
	VXORPS       Y2, Y2, Y2

relu8loop:
	VMOVUPS (SI), Y1
	VADDPS  Y0, Y1, Y1
	VMAXPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JG      relu8loop

	VZEROUPPER
	RET

// func biasLeaky8(seg *float32, n int, b, slope float32)
//
// v = seg[i] + b; seg[i] = v > 0 ? v : v*slope. A true select:
// VCMPPS(GT_OQ) builds the v > 0 mask (false on NaN, like the scalar
// comparison) and VBLENDVPS picks v or v*slope per lane, so the result is
// bit-identical to the scalar branch on every input, signed zeros and
// denormal underflow included.
TEXT ·biasLeaky8(SB), NOSPLIT, $0-24
	MOVQ         seg+0(FP), SI
	MOVQ         n+8(FP), CX
	VBROADCASTSS b+16(FP), Y0
	VBROADCASTSS slope+20(FP), Y7
	VXORPS       Y2, Y2, Y2

leaky8loop:
	VMOVUPS   (SI), Y1
	VADDPS    Y0, Y1, Y1        // v = seg + b
	VMULPS    Y7, Y1, Y3        // v * slope
	VCMPPS    $0x1E, Y2, Y1, Y4 // GT_OQ: v > 0 (false on NaN)
	VBLENDVPS Y4, Y1, Y3, Y1    // v > 0 ? v : v*slope
	VMOVUPS   Y1, (SI)
	ADDQ      $32, SI
	SUBQ      $8, CX
	JG        leaky8loop

	VZEROUPPER
	RET

// func maxPool2x8(dst, r0, r1 *float32, n int)
//
// One 2×2 stride-2 pooling row, 8 outputs per iteration. Each block loads
// 16 floats of each input row, splits even/odd taps with VSHUFPS (which
// leaves the four output pairs in a lane-crossed qword order), folds the
// four tap vectors with VMAXPS in the scalar reference's exact order —
// Intel MAXPS returns the second source unless the first is strictly
// greater, which is precisely the `if v > best` fold, ties, signed zeros
// and NaN included — and restores output order with one VPERMPD.
TEXT ·maxPool2x8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), DX
	MOVQ n+24(FP), CX

pool8loop:
	VMOVUPS (SI), Y0           // r0[0:8]
	VMOVUPS 32(SI), Y1         // r0[8:16]
	VSHUFPS $0x88, Y1, Y0, Y2  // r0 even taps  (qword-scrambled)
	VSHUFPS $0xDD, Y1, Y0, Y3  // r0 odd taps
	VMOVUPS (DX), Y0           // r1[0:8]
	VMOVUPS 32(DX), Y1         // r1[8:16]
	VSHUFPS $0x88, Y1, Y0, Y4  // r1 even taps
	VSHUFPS $0xDD, Y1, Y0, Y5  // r1 odd taps

	// best = r0even; best = max(r0odd, best); ... — SRC2 is the running
	// best, so each VMAXPS keeps it unless the new tap is strictly greater.
	VMAXPS  Y2, Y3, Y2
	VMAXPS  Y2, Y4, Y2
	VMAXPS  Y2, Y5, Y2
	VPERMPD $0xD8, Y2, Y2      // undo the VSHUFPS qword scramble
	VMOVUPS Y2, (DI)

	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $32, DI
	SUBQ $8, CX
	JG   pool8loop

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0. Callers must have confirmed CPUID.1:ECX.OSXSAVE.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
