package tensor

import "fmt"

// Batched inference layout
//
// The batched forward pass keeps activations in feature-major order:
// a batch of N CHW frames is stored as C×N×H×W, so channel c of frame n is
// the contiguous plane at (c·N+n)·H·W. This is the one layout in which
// every layer of the branch networks is a single pass with no transposes
// between layers: Im2ColBatchInto emits columns grouped per frame, the
// convolution GEMM's output (outC × N·OH·OW) is already the next layer's
// feature-major input, pooling and GAP reduce contiguous planes, and the
// FC head is one more GEMM over the C×N pooled matrix. Batch-major NCHW
// (the public API layout, batch dimension leading) is converted at the
// boundary with SwapBatchChannel.

// SwapBatchChannel transposes the two leading axes of in (at least rank 2)
// into dst: N×C×rest becomes C×N×rest and vice versa. The trailing axes
// are treated as one contiguous plane. dst must have the same length as
// in; a nil dst allocates. It returns dst.
func SwapBatchChannel(dst, in *Tensor) *Tensor {
	if in.Rank() < 2 {
		panic(fmt.Sprintf("tensor: SwapBatchChannel needs rank >= 2, got %v", in.Shape))
	}
	d0, d1 := in.Shape[0], in.Shape[1]
	plane := in.Len() / (d0 * d1)
	outShape := append([]int{d1, d0}, in.Shape[2:]...)
	if dst == nil {
		dst = New(outShape...)
	} else {
		if dst.Len() != in.Len() {
			panic(fmt.Sprintf("tensor: SwapBatchChannel dst length %d, want %d", dst.Len(), in.Len()))
		}
		dst.Shape = outShape
	}
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			copy(dst.Data[(j*d0+i)*plane:(j*d0+i+1)*plane], in.Data[(i*d1+j)*plane:(i*d1+j+1)*plane])
		}
	}
	return dst
}

// Im2ColInto unrolls input (C×H×W) into dst of shape (C·KH·KW)×(OH·OW)
// like Im2Col, but writes into the caller's scratch tensor instead of
// allocating. Out-of-bounds taps are written as explicit zeros, so a dirty
// reused buffer is safe. A nil dst allocates. It returns dst.
func Im2ColInto(dst, in *Tensor, p ConvParams) *Tensor {
	p.validate()
	if in.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2ColInto needs CHW input, got %v", in.Shape))
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	return im2colPlanes(dst, in.Data, c, 1, h, w, p)
}

// Im2ColBatchInto unrolls a feature-major batch (C×N×H×W) into dst of
// shape (C·KH·KW)×(N·OH·OW): column n·OH·OW+s is frame n's patch s, so a
// single GEMM with the (outC)×(C·KH·KW) weight matrix convolves the whole
// batch and its output is the next layer's feature-major input. Taps are
// written unconditionally (zeros for padding), so dst may be a dirty
// scratch buffer. A nil dst allocates. It returns dst.
func Im2ColBatchInto(dst, in *Tensor, p ConvParams) *Tensor {
	p.validate()
	if in.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto needs C×N×H×W input, got %v", in.Shape))
	}
	c, n, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	return im2colPlanes(dst, in.Data, c, n, h, w, p)
}

// im2colPlanes is the shared unroll over c channels of n frames: input
// plane (c,f) lives at (c·n+f)·h·w, output column f·oh·ow+s.
func im2colPlanes(dst *Tensor, data []float32, c, n, h, w int, p ConvParams) *Tensor {
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive for %dx%d input %+v", oh, ow, h, w, p))
	}
	rows, cols := c*p.KH*p.KW, n*oh*ow
	if dst == nil {
		dst = New(rows, cols)
	} else {
		if dst.Len() != rows*cols {
			panic(fmt.Sprintf("tensor: im2col dst length %d, want %d", dst.Len(), rows*cols))
		}
		dst.Shape = []int{rows, cols}
	}
	row := 0
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < p.KH; ky++ {
			for kx := 0; kx < p.KW; kx++ {
				// Precompute the ox range whose input column is in bounds:
				// 0 <= ox*stride + kx - padding < w. Outside it the tap is
				// padding; inside, stride 1 is a straight copy.
				off := kx - p.Padding
				ox0 := 0
				if off < 0 {
					ox0 = (-off + p.Stride - 1) / p.Stride
				}
				ox1 := (w - 1 - off) / p.Stride
				if ox1 >= ow {
					ox1 = ow - 1
				}
				for f := 0; f < n; f++ {
					chn := data[(ci*n+f)*h*w : (ci*n+f+1)*h*w]
					orow := dst.Data[row*cols+f*oh*ow : row*cols+(f+1)*oh*ow]
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Padding
						seg := orow[oy*ow : (oy+1)*ow]
						if iy < 0 || iy >= h || ox1 < ox0 {
							for x := range seg {
								seg[x] = 0
							}
							continue
						}
						base := iy * w
						for x := 0; x < ox0; x++ {
							seg[x] = 0
						}
						if p.Stride == 1 {
							copy(seg[ox0:ox1+1], chn[base+ox0+off:base+ox1+off+1])
						} else {
							for ox := ox0; ox <= ox1; ox++ {
								seg[ox] = chn[base+ox*p.Stride+off]
							}
						}
						for x := ox1 + 1; x < ow; x++ {
							seg[x] = 0
						}
					}
				}
				row++
			}
		}
	}
	return dst
}

// MaxPool2DBatchInto applies non-overlapping k×k max pooling to a
// feature-major batch (C×N×H×W), writing C×N×(H/k)×(W/k) into dst. No
// argmax indices are produced — this is the inference path. A nil dst
// allocates. It returns dst.
func MaxPool2DBatchInto(dst, in *Tensor, k int) *Tensor {
	if k <= 0 {
		panic("tensor: MaxPool2DBatchInto k must be positive")
	}
	if in.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2DBatchInto needs C×N×H×W input, got %v", in.Shape))
	}
	c, n, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := h/k, w/k
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("tensor: MaxPool2DBatchInto k=%d too large for %v", k, in.Shape))
	}
	if dst == nil {
		dst = New(c, n, oh, ow)
	} else {
		if dst.Len() != c*n*oh*ow {
			panic(fmt.Sprintf("tensor: MaxPool2DBatchInto dst length %d, want %d", dst.Len(), c*n*oh*ow))
		}
		dst.Shape = []int{c, n, oh, ow}
	}
	for pl := 0; pl < c*n; pl++ {
		chn := in.Data[pl*h*w : (pl+1)*h*w]
		out := dst.Data[pl*oh*ow : (pl+1)*oh*ow]
		if k == 2 {
			// The backbones pool exclusively with k=2; compare two rows
			// pairwise without the per-window index arithmetic, through
			// the dispatched row kernel (AVX2 where available).
			for oy := 0; oy < oh; oy++ {
				r0 := chn[(2*oy)*w:][: 2*ow : 2*ow]
				r1 := chn[(2*oy+1)*w:][: 2*ow : 2*ow]
				maxPool2Row(out[oy*ow:][:ow:ow], r0, r1)
			}
			continue
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(-1e30)
				for ky := 0; ky < k; ky++ {
					rowBase := (oy*k + ky) * w
					for kx := 0; kx < k; kx++ {
						if v := chn[rowBase+ox*k+kx]; v > best {
							best = v
						}
					}
				}
				out[oy*ow+ox] = best
			}
		}
	}
	return dst
}

// GlobalAvgPoolBatchInto reduces a feature-major batch (C×N×H×W) to the
// C×N matrix of per-plane means, summing each plane in the same order as
// GlobalAvgPool so per-frame results match the single-frame path exactly.
// A nil dst allocates. It returns dst.
func GlobalAvgPoolBatchInto(dst, in *Tensor) *Tensor {
	if in.Rank() != 4 {
		panic(fmt.Sprintf("tensor: GlobalAvgPoolBatchInto needs C×N×H×W input, got %v", in.Shape))
	}
	c, n, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	if dst == nil {
		dst = New(c, n)
	} else {
		if dst.Len() != c*n {
			panic(fmt.Sprintf("tensor: GlobalAvgPoolBatchInto dst length %d, want %d", dst.Len(), c*n))
		}
		dst.Shape = []int{c, n}
	}
	area := float32(h * w)
	for pl := 0; pl < c*n; pl++ {
		var s float32
		for _, v := range in.Data[pl*h*w : (pl+1)*h*w] {
			s += v
		}
		// Divide (not multiply by a reciprocal) so per-frame values are
		// bit-identical to GlobalAvgPool's.
		dst.Data[pl] = s / area
	}
	return dst
}
