package tensor

import (
	"fmt"
	"os"
	"sort"
)

// Micro-kernel dispatch
//
// The blocked GEMM's inner loops route through the two function pointers
// below. On amd64 the package selects the widest instruction set the CPU
// supports at process start (runtime CPUID feature detection, no build
// flags): "avx2" (8-wide mul+add axpy and compare+blend epilogues, no FMA)
// when available, else "sse" (4-wide axpy, scalar epilogue — the amd64
// baseline). Everywhere else the portable "generic" kernels run.
//
// All variants perform the exact IEEE operation sequence of the generic
// loops — elementwise multiply-then-add, select-based activations — so
// outputs are bit-identical across kernels, which is what lets the batched
// and coalesced inference paths keep their result-identity guarantees no
// matter which machine they land on.
//
// The VMQ_KERNEL environment variable pins a kernel at start
// (GODEBUG-style, for debugging and for CI to exercise the pure-Go path):
//
//	VMQ_KERNEL=generic go test ./...
//
// Unknown or unavailable values are ignored. SetKernel does the same at
// runtime for tests and benchmarks.
var (
	axpyQuad    = axpyQuadGeneric
	epilogueRow = epilogueRowGeneric
	maxPool2Row = maxPool2RowGeneric
	kernelName  = "generic"
)

// kernelImpl bundles one instruction-set level's micro-kernels.
type kernelImpl struct {
	axpy     func(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32)
	epilogue func(seg []float32, b float32, act Act, slope float32)
	pool2    func(dst, r0, r1 []float32)
}

// kernelTable lists the kernels this process can run: generic everywhere,
// plus whatever archKernels detects on this CPU.
func kernelTable() map[string]kernelImpl {
	ks := map[string]kernelImpl{"generic": {axpyQuadGeneric, epilogueRowGeneric, maxPool2RowGeneric}}
	for name, impl := range archKernels() {
		ks[name] = impl
	}
	return ks
}

func init() {
	name := defaultKernelName()
	if env := os.Getenv("VMQ_KERNEL"); env != "" {
		if _, ok := kernelTable()[env]; ok {
			name = env
		}
	}
	if err := SetKernel(name); err != nil {
		panic(err) // unreachable: name came from the table
	}
}

// Kernel reports the active micro-kernel level ("generic", "sse" or
// "avx2").
func Kernel() string { return kernelName }

// Kernels lists the kernel levels available on this CPU, sorted.
func Kernels() []string {
	names := make([]string, 0, 3)
	for name := range kernelTable() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetKernel pins the micro-kernel level for this process — a debugging and
// testing hook, not a hot-path switch: it must not race a running GEMM.
// It returns an error (and changes nothing) if the level is unknown or
// unavailable on this CPU.
func SetKernel(name string) error {
	impl, ok := kernelTable()[name]
	if !ok {
		return fmt.Errorf("tensor: unknown kernel %q (available: %v)", name, Kernels())
	}
	axpyQuad = impl.axpy
	epilogueRow = impl.epilogue
	maxPool2Row = impl.pool2
	kernelName = name
	return nil
}
