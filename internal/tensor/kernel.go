package tensor

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Micro-kernel dispatch
//
// The blocked GEMM's inner loops — and the rasteriser's row primitives —
// route through the function pointers below. On amd64 the package selects
// the widest instruction set the CPU supports at process start (runtime
// CPUID feature detection, no build flags): "avx512" (16-wide mul+add axpy,
// opmask epilogues and pooling) when the OS enables ZMM state, else "avx2"
// (8-wide mul+add axpy and compare+blend epilogues), else "sse" (4-wide
// axpy, scalar epilogue — the amd64 baseline). Everywhere else the portable
// "generic" kernels run.
//
// All of those variants perform the exact IEEE operation sequence of the
// generic loops — elementwise multiply-then-add, select-based activations —
// so outputs are bit-identical across kernels, which is what lets the
// batched and coalesced inference paths keep their result-identity
// guarantees no matter which machine they land on.
//
// One level deliberately breaks that contract: "fma" fuses each
// multiply-add pair into a single correctly-rounded operation
// (VFMADD231PS), dropping the intermediate product rounding. It is faster
// and usually more accurate, but not bit-identical, so it is never
// auto-selected and cannot be pinned without an explicit opt-in: call
// SetTolerance with a positive ULP budget first (VMQ_KERNEL=fma counts as
// that opt-in and sets a budget of 1). Its correctness suite asserts a ULP
// bound against an exactly-fused reference instead of bit equality.
//
// The VMQ_KERNEL environment variable pins a kernel at start
// (GODEBUG-style, for debugging and for CI to exercise the pure-Go path):
//
//	VMQ_KERNEL=generic go test ./...
//
// Unknown or unavailable values fall back to the default level with a
// one-line warning on stderr naming the levels this CPU offers. SetKernel
// does the same selection at runtime for tests and benchmarks.
var (
	axpyQuad    = axpyQuadGeneric
	epilogueRow = epilogueRowGeneric
	maxPool2Row = maxPool2RowGeneric
	fillRow     = fillRowGeneric
	addClampRow = addClampRowGeneric
	kernelName  = "generic"

	// kernelTolerance is the caller-declared ULP budget. Zero (the
	// default) means "bit-exact results required", which hides the
	// tolerant levels from selection entirely.
	kernelTolerance = 0
)

// kernelImpl bundles one instruction-set level's micro-kernels.
type kernelImpl struct {
	axpy     func(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32)
	epilogue func(seg []float32, b float32, act Act, slope float32)
	pool2    func(dst, r0, r1 []float32)
	fill     func(dst []float32, v float32)
	addClamp func(dst, add []float32)

	// tolerant marks levels whose arithmetic is not bit-identical to
	// generic (fused multiply-add). Selecting one requires a positive
	// SetTolerance budget, and defaultKernelName never picks one.
	tolerant bool
}

// kernelTable lists the kernels this process can select right now: generic
// everywhere, plus whatever archKernels detects on this CPU — minus the
// tolerant levels while no ULP budget is in effect.
func kernelTable() map[string]kernelImpl {
	ks := map[string]kernelImpl{"generic": {
		axpy:     axpyQuadGeneric,
		epilogue: epilogueRowGeneric,
		pool2:    maxPool2RowGeneric,
		fill:     fillRowGeneric,
		addClamp: addClampRowGeneric,
	}}
	for name, impl := range archKernels() {
		if impl.tolerant && kernelTolerance <= 0 {
			continue
		}
		ks[name] = impl
	}
	return ks
}

// pickKernel resolves the startup kernel level from a VMQ_KERNEL value. A
// valid env value pins that level (a tolerant level counts as the explicit
// opt-in and returns the default ULP budget of 1); an unknown or
// unavailable value falls back to the CPU default and returns a one-line
// warning naming every level this CPU offers.
func pickKernel(env string) (name string, ulps int, warning string) {
	name = defaultKernelName()
	if env == "" {
		return name, 0, ""
	}
	if impl, ok := archKernels()[env]; ok {
		if impl.tolerant {
			return env, 1, ""
		}
		return env, 0, ""
	}
	if env == "generic" {
		return "generic", 0, ""
	}
	avail := make([]string, 0, 8)
	avail = append(avail, "generic")
	for n := range archKernels() {
		avail = append(avail, n)
	}
	sort.Strings(avail)
	warning = fmt.Sprintf("vmq/tensor: VMQ_KERNEL=%q is unknown or unavailable on this CPU; using %q (available: %s)",
		env, name, strings.Join(avail, ", "))
	return name, 0, warning
}

func init() {
	initKernel(os.Getenv("VMQ_KERNEL"), os.Stderr)
}

// initKernel applies the VMQ_KERNEL startup selection, writing the
// unknown-value warning (if any) to warn. Factored out of init so tests
// can drive it with a buffer.
func initKernel(env string, warn io.Writer) {
	name, ulps, warning := pickKernel(env)
	if warning != "" {
		fmt.Fprintln(warn, warning)
	}
	if ulps > 0 {
		SetTolerance(ulps)
	}
	if err := SetKernel(name); err != nil {
		panic(err) // unreachable: name came from the table
	}
}

// Kernel reports the active micro-kernel level ("generic", "sse", "avx2",
// "avx512" or — under a tolerance opt-in — "fma").
func Kernel() string { return kernelName }

// Kernels lists the kernel levels selectable on this CPU right now,
// sorted. Tolerant levels (fma) appear only while a positive SetTolerance
// budget is in effect — without the opt-in they are not selectable and so
// not listed.
func Kernels() []string {
	names := make([]string, 0, 5)
	for name := range kernelTable() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetKernel pins the micro-kernel level for this process — a debugging and
// testing hook, not a hot-path switch: it must not race a running GEMM.
// It returns an error (and changes nothing) if the level is unknown or
// unavailable on this CPU, or if it is a tolerant level (fma) and no
// SetTolerance budget is in effect.
func SetKernel(name string) error {
	impl, ok := kernelTable()[name]
	if !ok {
		if locked, present := archKernels()[name]; present && locked.tolerant {
			return fmt.Errorf("tensor: kernel %q is not bit-exact (fused multiply-add); opt in with SetTolerance or VMQ_KERNEL=%s first", name, name)
		}
		return fmt.Errorf("tensor: unknown kernel %q (available: %v)", name, Kernels())
	}
	axpyQuad = impl.axpy
	epilogueRow = impl.epilogue
	maxPool2Row = impl.pool2
	fillRow = impl.fill
	addClampRow = impl.addClamp
	kernelName = name
	return nil
}

// SetTolerance declares how many float32 ULPs of divergence from the
// bit-exact kernels the caller accepts, and returns the previous budget.
// A positive budget unlocks the tolerant kernel levels (fma) for SetKernel
// and lists them in Kernels; it never switches kernels by itself. Setting
// the budget back to zero re-imposes the bit-exactness contract: if a
// tolerant kernel is active it is replaced by the default bit-exact level.
// Like SetKernel, this is a configuration hook, not a hot-path switch.
func SetTolerance(ulps int) int {
	prev := kernelTolerance
	if ulps < 0 {
		ulps = 0
	}
	kernelTolerance = ulps
	if ulps == 0 {
		if impl, ok := archKernels()[kernelName]; ok && impl.tolerant {
			if err := SetKernel(defaultKernelName()); err != nil {
				panic(err) // unreachable: default is always in the table
			}
		}
	}
	return prev
}

// Tolerance reports the current ULP budget (0 = bit-exact required).
func Tolerance() int { return kernelTolerance }

// Fill sets every element of dst to v through the active kernel level's
// row-fill primitive. All levels produce identical bytes (a fill has no
// arithmetic); the rasteriser's background and rectangle fills route
// through here.
func Fill(dst []float32, v float32) { fillRow(dst, v) }

// AddClamp01 computes dst[i] = clamp(dst[i]+add[i]) into [0, 1] with the
// scalar select order (add, then low clamp, then high clamp; NaN passes
// through). All non-tolerant levels are bit-identical to generic; the
// rasteriser's sensor-noise epilogue routes through here.
func AddClamp01(dst, add []float32) { addClampRow(dst, add) }
