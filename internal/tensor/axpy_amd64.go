//go:build amd64

package tensor

// axpy4 computes d_r[j] += v_r * b[j] for r = 0..3 over j = 0..n-1, four
// lanes at a time with SSE MULPS/ADDPS (baseline on amd64, no AVX/FMA
// needed). The operations are elementwise multiply-then-add — the exact
// IEEE sequence of the scalar loop — so results are bit-identical to the
// generic path; only the instruction width differs. Implemented in
// axpy_amd64.s.
//
//go:noescape
func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// axpyQuad is the architecture dispatch used by the GEMM micro-kernel:
// d_r[j] += v_r * b[j] for the four accumulator rows.
func axpyQuad(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy4(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}
