//go:build amd64

package tensor

// axpy4 computes d_r[j] += v_r * b[j] for r = 0..3 over j = 0..n-1, four
// lanes at a time with SSE MULPS/ADDPS (baseline on amd64, no AVX/FMA
// needed). The operations are elementwise multiply-then-add — the exact
// IEEE sequence of the scalar loop — so results are bit-identical to the
// generic path; only the instruction width differs. Implemented in
// axpy_amd64.s.
//
//go:noescape
func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// axpy8 is the AVX2 variant of axpy4: eight lanes per VMULPS/VADDPS
// (VEX-encoded, no FMA — multiply then add, like every other variant),
// with an in-asm scalar tail for n % 8. Implemented in axpy_amd64.s.
//
//go:noescape
func axpy8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// bias8 adds b to seg[0:n] eight lanes at a time (n must be a multiple of
// 8; the Go wrapper peels the tail).
//
//go:noescape
func bias8(seg *float32, n int, b float32)

// biasReLU8 computes seg[i] = max(seg[i]+b, 0) via VMAXPS with the zero
// vector as the second source, which reproduces the scalar `if v > 0`
// select exactly: ties, signed zeros and NaN all resolve to +0.
//
//go:noescape
func biasReLU8(seg *float32, n int, b float32)

// biasLeaky8 computes v = seg[i]+b; seg[i] = v > 0 ? v : v*slope using
// VCMPPS(GT_OQ) + VBLENDVPS — a true select, not an arithmetic identity,
// so it is bit-identical to the scalar branch on every input.
//
//go:noescape
func biasLeaky8(seg *float32, n int, b, slope float32)

// maxPool2x8 writes n outputs (n a positive multiple of 8) of one 2×2
// stride-2 pooling row: dst[x] = fold-max of r0[2x], r0[2x+1], r1[2x],
// r1[2x+1] in reference order. Even/odd lanes are deinterleaved with
// VSHUFPS, folded with three VMAXPS in the scalar loop's order, and
// restored with one VPERMPD per block.
//
//go:noescape
func maxPool2x8(dst, r0, r1 *float32, n int)

// maxPool2RowAVX2 is the 8-wide dispatch target for the k=2 pooling row.
func maxPool2RowAVX2(dst, r0, r1 []float32) {
	n8 := len(dst) &^ 7
	if n8 > 0 {
		maxPool2x8(&dst[0], &r0[0], &r1[0], n8)
	}
	if n8 < len(dst) {
		maxPool2RowGeneric(dst[n8:], r0[2*n8:], r1[2*n8:])
	}
}

// cpuidex executes CPUID with the given leaf/subleaf. Implemented in
// axpy_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (callers must check CPUID.1:ECX.OSXSAVE first).
// Implemented in axpy_amd64.s.
func xgetbv0() (eax, edx uint32)

// axpyQuadSSE is the 4-wide dispatch target used by the GEMM micro-kernel.
func axpyQuadSSE(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy4(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// axpyQuadAVX2 is the 8-wide dispatch target.
func axpyQuadAVX2(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy8(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// epilogueRowAVX2 applies the bias+activation epilogue with the 8-wide
// select kernels. The scalar epilogue's activation branches mispredict
// constantly on random-sign activations, so the branch-free compare+blend
// versions are a large win even beyond the width; the tail (< 8 elements)
// runs the generic loop, which computes the same values bit-for-bit.
func epilogueRowAVX2(seg []float32, b float32, act Act, slope float32) {
	n8 := len(seg) &^ 7
	if n8 > 0 {
		switch act {
		case ActReLU:
			biasReLU8(&seg[0], n8, b)
		case ActLeakyReLU:
			biasLeaky8(&seg[0], n8, b, slope)
		default:
			bias8(&seg[0], n8, b)
		}
	}
	if n8 < len(seg) {
		epilogueRowGeneric(seg[n8:], b, act, slope)
	}
}

// hasAVX2 reports whether the CPU and OS support AVX2 (CPUID feature bit
// plus OSXSAVE/XCR0 confirmation that the OS preserves YMM state).
func hasAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// archKernels returns the SIMD kernel levels this CPU supports. The "sse"
// level is exactly the pre-AVX2 system: 4-wide axpy with the scalar
// epilogue and pooling.
func archKernels() map[string]kernelImpl {
	ks := map[string]kernelImpl{
		"sse": {axpy: axpyQuadSSE, epilogue: epilogueRowGeneric, pool2: maxPool2RowGeneric},
	}
	if hasAVX2() {
		ks["avx2"] = kernelImpl{axpy: axpyQuadAVX2, epilogue: epilogueRowAVX2, pool2: maxPool2RowAVX2}
	}
	return ks
}

// defaultKernelName selects the widest available level.
func defaultKernelName() string {
	if hasAVX2() {
		return "avx2"
	}
	return "sse"
}
