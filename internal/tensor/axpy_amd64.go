//go:build amd64

package tensor

// axpy4 computes d_r[j] += v_r * b[j] for r = 0..3 over j = 0..n-1, four
// lanes at a time with SSE MULPS/ADDPS (baseline on amd64, no AVX/FMA
// needed). The operations are elementwise multiply-then-add — the exact
// IEEE sequence of the scalar loop — so results are bit-identical to the
// generic path; only the instruction width differs. Implemented in
// axpy_amd64.s.
//
//go:noescape
func axpy4(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// axpy8 is the AVX2 variant of axpy4: eight lanes per VMULPS/VADDPS
// (VEX-encoded, no FMA — multiply then add, like every other variant),
// with an in-asm scalar tail for n % 8. Implemented in axpy_amd64.s.
//
//go:noescape
func axpy8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// bias8 adds b to seg[0:n] eight lanes at a time (n must be a multiple of
// 8; the Go wrapper peels the tail).
//
//go:noescape
func bias8(seg *float32, n int, b float32)

// biasReLU8 computes seg[i] = max(seg[i]+b, 0) via VMAXPS with the zero
// vector as the second source, which reproduces the scalar `if v > 0`
// select exactly: ties, signed zeros and NaN all resolve to +0.
//
//go:noescape
func biasReLU8(seg *float32, n int, b float32)

// biasLeaky8 computes v = seg[i]+b; seg[i] = v > 0 ? v : v*slope using
// VCMPPS(GT_OQ) + VBLENDVPS — a true select, not an arithmetic identity,
// so it is bit-identical to the scalar branch on every input.
//
//go:noescape
func biasLeaky8(seg *float32, n int, b, slope float32)

// maxPool2x8 writes n outputs (n a positive multiple of 8) of one 2×2
// stride-2 pooling row: dst[x] = fold-max of r0[2x], r0[2x+1], r1[2x],
// r1[2x+1] in reference order. Even/odd lanes are deinterleaved with
// VSHUFPS, folded with three VMAXPS in the scalar loop's order, and
// restored with one VPERMPD per block.
//
//go:noescape
func maxPool2x8(dst, r0, r1 *float32, n int)

// maxPool2RowAVX2 is the 8-wide dispatch target for the k=2 pooling row.
func maxPool2RowAVX2(dst, r0, r1 []float32) {
	n8 := len(dst) &^ 7
	if n8 > 0 {
		maxPool2x8(&dst[0], &r0[0], &r1[0], n8)
	}
	if n8 < len(dst) {
		maxPool2RowGeneric(dst[n8:], r0[2*n8:], r1[2*n8:])
	}
}

// axpy16 is the AVX-512 variant of axpy8: sixteen lanes per VMULPS/VADDPS
// on ZMM registers (still multiply then add — no FMA), with an in-asm
// scalar tail for n % 16. Implemented in axpy_amd64.s.
//
//go:noescape
func axpy16(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// axpyFMA8 fuses each multiply-add pair with VFMADD231PS (one rounding per
// element instead of two), so its results are NOT bit-identical to the
// other variants. Reachable only through the SetTolerance opt-in. The
// scalar tail uses VFMADD231SS for the same one-rounding semantics.
//
//go:noescape
func axpyFMA8(d0, d1, d2, d3, b *float32, n int, v0, v1, v2, v3 float32)

// bias16 adds b to seg[0:n] sixteen lanes at a time (n must be a multiple
// of 16; the Go wrapper peels the tail).
//
//go:noescape
func bias16(seg *float32, n int, b float32)

// biasReLU16 computes seg[i] = max(seg[i]+b, 0), the 16-wide analogue of
// biasReLU8 with the identical VMAXPS tie/NaN semantics.
//
//go:noescape
func biasReLU16(seg *float32, n int, b float32)

// biasLeaky16 computes v = seg[i]+b; seg[i] = v > 0 ? v : v*slope with an
// opmask compare + VBLENDMPS — a true select, bit-identical to the scalar
// branch on every input.
//
//go:noescape
func biasLeaky16(seg *float32, n int, b, slope float32)

// maxPool2x16 writes n outputs (n a positive multiple of 16) of one 2×2
// stride-2 pooling row using VPERMT2PS deinterleaves and the reference
// VMAXPS fold order.
//
//go:noescape
func maxPool2x16(dst, r0, r1 *float32, n int)

// fill8 sets dst[0:n] = v eight lanes at a time (n a positive multiple of
// 8; the Go wrapper peels the tail).
//
//go:noescape
func fill8(dst *float32, n int, v float32)

// fill16 sets dst[0:n] = v sixteen lanes at a time (n a positive multiple
// of 16).
//
//go:noescape
func fill16(dst *float32, n int, v float32)

// addClamp8 computes dst[i] = clamp01(dst[i]+add[i]) with compare+blend
// selects in the scalar chain's exact order (n a positive multiple of 8).
//
//go:noescape
func addClamp8(dst, add *float32, n int)

// addClamp16 is the 16-wide opmask form of addClamp8 (n a positive
// multiple of 16).
//
//go:noescape
func addClamp16(dst, add *float32, n int)

// cpuidex executes CPUID with the given leaf/subleaf. Implemented in
// axpy_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (callers must check CPUID.1:ECX.OSXSAVE first).
// Implemented in axpy_amd64.s.
func xgetbv0() (eax, edx uint32)

// axpyQuadSSE is the 4-wide dispatch target used by the GEMM micro-kernel.
func axpyQuadSSE(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy4(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// axpyQuadAVX2 is the 8-wide dispatch target.
func axpyQuadAVX2(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy8(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// epilogueRowAVX2 applies the bias+activation epilogue with the 8-wide
// select kernels. The scalar epilogue's activation branches mispredict
// constantly on random-sign activations, so the branch-free compare+blend
// versions are a large win even beyond the width; the tail (< 8 elements)
// runs the generic loop, which computes the same values bit-for-bit.
func epilogueRowAVX2(seg []float32, b float32, act Act, slope float32) {
	n8 := len(seg) &^ 7
	if n8 > 0 {
		switch act {
		case ActReLU:
			biasReLU8(&seg[0], n8, b)
		case ActLeakyReLU:
			biasLeaky8(&seg[0], n8, b, slope)
		default:
			bias8(&seg[0], n8, b)
		}
	}
	if n8 < len(seg) {
		epilogueRowGeneric(seg[n8:], b, act, slope)
	}
}

// axpyQuadAVX512 is the 16-wide dispatch target.
func axpyQuadAVX512(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpy16(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// axpyQuadFMA is the fused-multiply-add dispatch target (tolerant level:
// not bit-identical to the others).
func axpyQuadFMA(d0, d1, d2, d3, b []float32, v0, v1, v2, v3 float32) {
	if len(b) == 0 {
		return
	}
	axpyFMA8(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), v0, v1, v2, v3)
}

// epilogueRowAVX512 applies the bias+activation epilogue with the 16-wide
// opmask kernels; the tail (< 16 elements) runs the generic loop, which
// computes the same values bit-for-bit.
func epilogueRowAVX512(seg []float32, b float32, act Act, slope float32) {
	n16 := len(seg) &^ 15
	if n16 > 0 {
		switch act {
		case ActReLU:
			biasReLU16(&seg[0], n16, b)
		case ActLeakyReLU:
			biasLeaky16(&seg[0], n16, b, slope)
		default:
			bias16(&seg[0], n16, b)
		}
	}
	if n16 < len(seg) {
		epilogueRowGeneric(seg[n16:], b, act, slope)
	}
}

// maxPool2RowAVX512 is the 16-wide dispatch target for the k=2 pooling row.
func maxPool2RowAVX512(dst, r0, r1 []float32) {
	n16 := len(dst) &^ 15
	if n16 > 0 {
		maxPool2x16(&dst[0], &r0[0], &r1[0], n16)
	}
	if n16 < len(dst) {
		maxPool2RowGeneric(dst[n16:], r0[2*n16:], r1[2*n16:])
	}
}

// fillRowAVX2 is the 8-wide dispatch target for the rasteriser row fill.
func fillRowAVX2(dst []float32, v float32) {
	n8 := len(dst) &^ 7
	if n8 > 0 {
		fill8(&dst[0], n8, v)
	}
	if n8 < len(dst) {
		fillRowGeneric(dst[n8:], v)
	}
}

// fillRowAVX512 is the 16-wide dispatch target for the rasteriser row fill.
func fillRowAVX512(dst []float32, v float32) {
	n16 := len(dst) &^ 15
	if n16 > 0 {
		fill16(&dst[0], n16, v)
	}
	if n16 < len(dst) {
		fillRowGeneric(dst[n16:], v)
	}
}

// addClampRowAVX2 is the 8-wide dispatch target for the rasteriser's noise
// add+clamp epilogue.
func addClampRowAVX2(dst, add []float32) {
	n8 := len(add) &^ 7
	if n8 > 0 {
		addClamp8(&dst[0], &add[0], n8)
	}
	if n8 < len(add) {
		addClampRowGeneric(dst[n8:], add[n8:])
	}
}

// addClampRowAVX512 is the 16-wide dispatch target for the rasteriser's
// noise add+clamp epilogue.
func addClampRowAVX512(dst, add []float32) {
	n16 := len(add) &^ 15
	if n16 > 0 {
		addClamp16(&dst[0], &add[0], n16)
	}
	if n16 < len(add) {
		addClampRowGeneric(dst[n16:], add[n16:])
	}
}

// hasAVX2 reports whether the CPU and OS support AVX2 (CPUID feature bit
// plus OSXSAVE/XCR0 confirmation that the OS preserves YMM state).
func hasAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// hasAVX512 reports whether the CPU and OS support the AVX-512 subset the
// 16-wide kernels need: AVX512F + AVX512VL (CPUID.(7,0):EBX bits 16 and
// 31) with the OS preserving opmask and ZMM state (XCR0 bits 5-7, on top
// of the XMM/YMM bits).
func hasAVX512() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0xE6 != 0xE6 { // XMM, YMM, opmask, ZMM_Hi256, Hi16_ZMM
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	const avx512vl = 1 << 31
	return ebx7&avx512f != 0 && ebx7&avx512vl != 0
}

// hasFMA reports whether the fused-multiply-add level can run: the FMA3
// feature bit (CPUID.1:ECX bit 12) plus full AVX2 support, since the fma
// level borrows the AVX2 epilogue, pooling and rasteriser kernels (those
// stay bit-exact — only the axpy fuses).
func hasFMA() bool {
	if !hasAVX2() {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	return ecx1&(1<<12) != 0
}

// archKernels returns the SIMD kernel levels this CPU supports. The "sse"
// level is exactly the pre-AVX2 system: 4-wide axpy with the scalar
// epilogue, pooling and rasteriser rows. The "fma" level is tolerant —
// its axpy is not bit-identical to generic — and is gated behind the
// SetTolerance opt-in by the dispatch layer.
func archKernels() map[string]kernelImpl {
	ks := map[string]kernelImpl{
		"sse": {
			axpy:     axpyQuadSSE,
			epilogue: epilogueRowGeneric,
			pool2:    maxPool2RowGeneric,
			fill:     fillRowGeneric,
			addClamp: addClampRowGeneric,
		},
	}
	if hasAVX2() {
		ks["avx2"] = kernelImpl{
			axpy:     axpyQuadAVX2,
			epilogue: epilogueRowAVX2,
			pool2:    maxPool2RowAVX2,
			fill:     fillRowAVX2,
			addClamp: addClampRowAVX2,
		}
	}
	if hasFMA() {
		ks["fma"] = kernelImpl{
			axpy:     axpyQuadFMA,
			epilogue: epilogueRowAVX2,
			pool2:    maxPool2RowAVX2,
			fill:     fillRowAVX2,
			addClamp: addClampRowAVX2,
			tolerant: true,
		}
	}
	if hasAVX512() {
		ks["avx512"] = kernelImpl{
			axpy:     axpyQuadAVX512,
			epilogue: epilogueRowAVX512,
			pool2:    maxPool2RowAVX512,
			fill:     fillRowAVX512,
			addClamp: addClampRowAVX512,
		}
	}
	return ks
}

// defaultKernelName selects the widest available bit-exact level; the
// tolerant fma level is never a default.
func defaultKernelName() string {
	if hasAVX512() {
		return "avx512"
	}
	if hasAVX2() {
		return "avx2"
	}
	return "sse"
}
