package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func close32(a, b float32, eps float64) bool {
	return math.Abs(float64(a)-float64(b)) <= eps
}

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || a.Rank() != 2 || a.Dim(1) != 3 {
		t.Fatalf("metadata wrong: %v", a)
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if a.Data[5] != 5 {
		t.Fatal("row-major layout violated")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad shape", func() { New(0, 3) })
	mustPanic("bad FromSlice", func() { FromSlice(make([]float32, 5), 2, 3) })
	mustPanic("bad reshape", func() { New(2, 3).Reshape(4) })
	mustPanic("oob index", func() { New(2, 2).At(2, 0) })
	mustPanic("rank mismatch", func() { New(2, 2).At(1) })
	mustPanic("add mismatch", func() { New(2).Add(New(3)) })
	mustPanic("empty max", func() { FromSlice(nil).Max() })
}

func TestElementwise(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := a.Add(b); got.Data[0] != 5 || got.Data[3] != 5 {
		t.Errorf("Add = %v", got.Data)
	}
	if got := a.Sub(b); got.Data[0] != -3 || got.Data[3] != 3 {
		t.Errorf("Sub = %v", got.Data)
	}
	if got := a.Mul(b); got.Data[1] != 6 {
		t.Errorf("Mul = %v", got.Data)
	}
	if got := a.Scale(2); got.Data[2] != 6 {
		t.Errorf("Scale = %v", got.Data)
	}
	c := a.Clone()
	c.AddInPlace(b)
	if c.Data[0] != 5 {
		t.Errorf("AddInPlace = %v", c.Data)
	}
	c = a.Clone()
	c.AXPY(0.5, b)
	if c.Data[0] != 3 {
		t.Errorf("AXPY = %v", c.Data)
	}
	if a.Sum() != 10 || a.Mean() != 2.5 {
		t.Errorf("Sum/Mean = %v/%v", a.Sum(), a.Mean())
	}
	if a.Max() != 4 || a.ArgMax() != 3 {
		t.Errorf("Max/ArgMax = %v/%v", a.Max(), a.ArgMax())
	}
	if a.Dot(b) != 4+6+6+4 {
		t.Errorf("Dot = %v", a.Dot(b))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
	r := a.Reshape(1, 2)
	r.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape should share data")
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulTransposedAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.IntN(6), 1+rng.IntN(6), 1+rng.IntN(6)
		a := New(m, k)
		b := New(k, n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		want := MatMul(a, b)
		got1 := MatMulT1(Transpose(a), b)
		got2 := MatMulT2(a, Transpose(b))
		for i := range want.Data {
			if !close32(want.Data[i], got1.Data[i], 1e-4) {
				t.Fatalf("MatMulT1 disagrees at %d: %v vs %v", i, got1.Data[i], want.Data[i])
			}
			if !close32(want.Data[i], got2.Data[i], 1e-4) {
				t.Fatalf("MatMulT2 disagrees at %d: %v vs %v", i, got2.Data[i], want.Data[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		m, n := 1+rng.IntN(5), 1+rng.IntN(5)
		a := New(m, n)
		a.RandN(rng, 1)
		b := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 25; trial++ {
		c := 1 + rng.IntN(3)
		h := 3 + rng.IntN(8)
		w := 3 + rng.IntN(8)
		k := 1 + rng.IntN(3)
		p := ConvParams{KH: k, KW: k, Stride: 1 + rng.IntN(2), Padding: rng.IntN(2)}
		oh, ow := p.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}
		outC := 1 + rng.IntN(4)
		in := New(c, h, w)
		in.RandN(rng, 1)
		wt := New(outC, c, k, k)
		wt.RandN(rng, 0.5)
		bias := New(outC)
		bias.RandN(rng, 0.1)
		fast := Conv2D(in, wt, bias, p)
		slow := Conv2DNaive(in, wt, bias, p)
		if !fast.SameShape(slow) {
			t.Fatalf("shape mismatch %v vs %v", fast.Shape, slow.Shape)
		}
		for i := range fast.Data {
			if !close32(fast.Data[i], slow.Data[i], 1e-3) {
				t.Fatalf("conv mismatch trial %d at %d: %v vs %v", trial, i, fast.Data[i], slow.Data[i])
			}
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property that
	// makes the conv backward pass correct.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 10; trial++ {
		c, h, w := 1+rng.IntN(2), 4+rng.IntN(4), 4+rng.IntN(4)
		p := ConvParams{KH: 3, KW: 3, Stride: 1, Padding: 1}
		x := New(c, h, w)
		x.RandN(rng, 1)
		cols := Im2Col(x, p)
		y := New(cols.Shape...)
		y.RandN(rng, 1)
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2Im(y, c, h, w, p))
		if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
			t.Fatalf("adjoint violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestConvOutSize(t *testing.T) {
	p := ConvParams{KH: 3, KW: 3, Stride: 1, Padding: 1}
	if oh, ow := p.OutSize(56, 56); oh != 56 || ow != 56 {
		t.Fatalf("same-padding 3x3 should preserve 56x56, got %dx%d", oh, ow)
	}
	p2 := ConvParams{KH: 2, KW: 2, Stride: 2}
	if oh, ow := p2.OutSize(8, 8); oh != 4 || ow != 4 {
		t.Fatalf("stride-2 2x2 on 8x8: got %dx%d", oh, ow)
	}
}

func TestMaxPool(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, arg := MaxPool2D(in, 2)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("MaxPool = %v, want %v", out.Data, want)
		}
	}
	grad := New(1, 2, 2)
	grad.Fill(1)
	back := MaxPool2DBackward(grad, arg, []int{1, 4, 4})
	// Gradient lands only at the max positions.
	var n int
	for _, v := range back.Data {
		if v != 0 {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("backward touched %d cells, want 4", n)
	}
	if back.At(0, 1, 1) != 1 || back.At(0, 3, 3) != 1 {
		t.Fatal("gradient not at argmax")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 2, 2, 2)
	out := GlobalAvgPool(in)
	if out.Data[0] != 2.5 || out.Data[1] != 10 {
		t.Fatalf("GAP = %v", out.Data)
	}
	g := FromSlice([]float32{4, 8}, 2)
	back := GlobalAvgPoolBackward(g, 2, 2, 2)
	if back.At(0, 0, 0) != 1 || back.At(1, 1, 1) != 2 {
		t.Fatalf("GAP backward = %v", back.Data)
	}
	// Adjoint check: <GAP(x), g> == <x, GAPᵀ(g)>.
	lhs := out.Dot(g)
	rhs := in.Dot(back)
	if math.Abs(lhs-rhs) > 1e-6 {
		t.Fatalf("GAP adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestRandFill(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := New(1000)
	a.RandN(rng, 2)
	mean := a.Mean()
	if math.Abs(mean) > 0.3 {
		t.Errorf("RandN mean = %v, want ~0", mean)
	}
	a.RandUniform(rng, -1, 1)
	if a.Max() > 1 {
		t.Error("RandUniform out of range")
	}
	a.Fill(3)
	if a.Data[500] != 3 {
		t.Error("Fill failed")
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Error("Zero failed")
	}
}

func TestString(t *testing.T) {
	a := New(3, 3)
	if a.String() == "" {
		t.Error("empty String")
	}
}
