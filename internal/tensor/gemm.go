package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// The blocked GEMM below is the inference hot path: Conv2D lowers to one
// matrix multiply per layer, and with batching those multiplies are large
// enough that the naive ikj loop of MatMul thrashes cache. The kernel
// blocks the output columns so the active segments of dst stay L1-resident
// while four rows accumulate per pass, and the per-row bias and activation
// epilogue runs on each column block while it is still cache-hot — the
// whole conv layer makes a single streaming pass over its output instead
// of three.
//
// Accumulation order is load-bearing: every output element is a sum of
// terms in ascending-k order with the bias added after the sum, exactly
// like the naive per-frame path, and that order does not depend on how
// rows or columns are partitioned. Batched and single-frame forwards
// therefore produce bit-identical per-frame results, and so does the
// goroutine-parallel variant (workers split columns, never k).
const (
	// gemmNC is the column block: 4 dst segments of gemmNC floats plus one
	// b-row segment must stay L1-resident across the k loop.
	gemmNC = 1024
	// gemmParallelFlops is the m*k*n threshold below which MatMulParallel
	// stays single-threaded: goroutine fork/join costs more than the
	// multiply.
	gemmParallelFlops = 1 << 16
	// gemmMinCols is the minimum column span handed to one worker.
	gemmMinCols = 64
)

// Act selects the fused activation of MatMulBiasAct's epilogue.
type Act uint8

// Epilogue activations.
const (
	ActNone Act = iota
	ActReLU
	ActLeakyReLU
)

// MatMulInto computes dst = a×b for 2-D tensors a (m×k) and b (k×n) with
// the cache-blocked kernel, writing into dst (m×n) without allocating
// (dst contents need not be zeroed). A nil dst allocates a fresh output.
// It returns dst. Results are bit-identical to MatMul's.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	return MatMulBiasAct(dst, a, b, nil, ActNone, 0, 1)
}

// MatMulParallel computes dst = a×b like MatMulInto, fanning the output
// columns across up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). Workers own disjoint column ranges and every element's
// accumulation order matches the single-threaded kernel, so the result is
// bit-identical to MatMulInto for any worker count.
func MatMulParallel(dst, a, b *Tensor, workers int) *Tensor {
	return MatMulBiasAct(dst, a, b, nil, ActNone, 0, workers)
}

// MatMulBiasAct computes dst = act(a×b + bias) — the fused convolution /
// fully-connected forward: bias (length m, added per output row after the
// k-sum, exactly like the per-frame path; nil skips it) and the activation
// are applied to each column block while it is cache-hot. Results are
// bit-identical to MatMul followed by separate bias and activation passes.
func MatMulBiasAct(dst, a, b *Tensor, bias []float32, act Act, slope float32, workers int) *Tensor {
	m, k, n := checkMatMul(a, b)
	if bias != nil && len(bias) != m {
		panic(fmt.Sprintf("tensor: MatMulBiasAct bias length %d, want %d", len(bias), m))
	}
	dst = ensureDst(dst, m, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxW := n / gemmMinCols; workers > maxW {
		workers = maxW
	}
	if workers <= 1 || m*k*n < gemmParallelFlops {
		gemmBlocked(dst.Data, a.Data, b.Data, m, k, n, 0, n, bias, act, slope)
		return dst
	}
	var wg sync.WaitGroup
	span := (n + workers - 1) / workers
	for j0 := 0; j0 < n; j0 += span {
		j1 := j0 + span
		if j1 > n {
			j1 = n
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			gemmBlocked(dst.Data, a.Data, b.Data, m, k, n, j0, j1, bias, act, slope)
		}(j0, j1)
	}
	wg.Wait()
	return dst
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto needs rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k = a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulInto inner dims %d vs %d", k, b.Shape[0]))
	}
	return m, k, b.Shape[1]
}

func ensureDst(dst *Tensor, m, n int) *Tensor {
	if dst == nil {
		return New(m, n)
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	return dst
}

// gemmBlocked computes dst[:, j0:j1] = act(a×b + bias) over the column
// range, overwriting dst there.
func gemmBlocked(dst, a, b []float32, m, k, n, j0, j1 int, bias []float32, act Act, slope float32) {
	for jb := j0; jb < j1; jb += gemmNC {
		jEnd := jb + gemmNC
		if jEnd > j1 {
			jEnd = j1
		}
		i := 0
		for ; i+4 <= m; i += 4 {
			gemmQuadRows(dst, a, b, i, k, n, jb, jEnd)
			if bias != nil || act != ActNone {
				for r := i; r < i+4; r++ {
					epilogueRow(dst[r*n+jb:r*n+jEnd], biasAt(bias, r), act, slope)
				}
			}
		}
		for ; i < m; i++ {
			gemmOneRow(dst, a, b, i, k, n, jb, jEnd)
			if bias != nil || act != ActNone {
				epilogueRow(dst[i*n+jb:i*n+jEnd], biasAt(bias, i), act, slope)
			}
		}
	}
}

func biasAt(bias []float32, i int) float32 {
	if bias == nil {
		return 0
	}
	return bias[i]
}

// gemmQuadRows accumulates four output rows over one column block. The b
// row segment is read once per quad instead of once per row, and the four
// independent accumulator streams give the scalar inner loop
// instruction-level parallelism. All row slices are cut to the same width
// so the compiler can prove the indexing in range and drop bounds checks.
func gemmQuadRows(dst, a, b []float32, i, k, n, jb, jEnd int) {
	width := jEnd - jb
	a0 := a[i*k : (i+1)*k]
	a1 := a[(i+1)*k : (i+2)*k]
	a2 := a[(i+2)*k : (i+3)*k]
	a3 := a[(i+3)*k : (i+4)*k]
	d0 := dst[i*n+jb:][:width]
	d1 := dst[(i+1)*n+jb:][:width]
	d2 := dst[(i+2)*n+jb:][:width]
	d3 := dst[(i+3)*n+jb:][:width]
	for j := range d0 {
		d0[j] = 0
	}
	for j := range d1 {
		d1[j] = 0
	}
	for j := range d2 {
		d2[j] = 0
	}
	for j := range d3 {
		d3[j] = 0
	}
	for kk := 0; kk < k; kk++ {
		v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
		if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
			continue // zero taps contribute nothing; skipping is exact
		}
		brow := b[kk*n+jb:][:width]
		axpyQuad(d0, d1, d2, d3, brow, v0, v1, v2, v3)
	}
}

// gemmOneRow accumulates one output row over a column block (m%4 tail).
func gemmOneRow(dst, a, b []float32, i, k, n, jb, jEnd int) {
	width := jEnd - jb
	arow := a[i*k : (i+1)*k]
	drow := dst[i*n+jb:][:width]
	for j := range drow {
		drow[j] = 0
	}
	for kk := 0; kk < k; kk++ {
		av := arow[kk]
		if av == 0 {
			continue
		}
		brow := b[kk*n+jb:][:width]
		for j, bv := range brow {
			drow[j] += av * bv
		}
	}
}
