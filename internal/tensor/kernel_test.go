package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
)

// withEveryKernel runs f once per kernel level available on this CPU,
// restoring the auto-selected kernel afterwards. On amd64 this covers
// generic + sse (+ avx2 on modern hardware); elsewhere generic only.
func withEveryKernel(t *testing.T, f func(t *testing.T, kernel string)) {
	t.Helper()
	prev := Kernel()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range Kernels() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		f(t, name)
	}
}

// awkwardFloats seeds inputs with the values where SIMD shortcuts diverge
// from scalar semantics if the kernel is not a true select: signed zeros,
// denormals (whose products underflow to signed zero), and values that
// straddle the activation threshold.
func awkwardFloats(rng *rand.Rand, dst []float32) {
	for i := range dst {
		switch rng.IntN(8) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(math.Copysign(0, -1))
		case 2:
			dst[i] = math.Float32frombits(uint32(1 + rng.IntN(16))) // tiny denormal
		case 3:
			dst[i] = -math.Float32frombits(uint32(1 + rng.IntN(16)))
		default:
			dst[i] = float32(rng.NormFloat64())
		}
	}
}

func requireBits(t *testing.T, label string, kernel string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: kernel %s diverges at %d: %g (%#x) vs %g (%#x)",
				label, kernel, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// Every compiled axpyQuad variant must produce bit-identical accumulators
// on ragged lengths covering all lane tails (0..67 spans the 8-wide body,
// the 4-wide body and every scalar remainder).
func TestAxpyQuadVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	for n := 0; n <= 67; n++ {
		b := make([]float32, n)
		d := make([][]float32, 4)
		awkwardFloats(rng, b)
		for r := range d {
			d[r] = make([]float32, n)
			awkwardFloats(rng, d[r])
		}
		vs := [4]float32{float32(rng.NormFloat64()), 0, float32(math.Copysign(0, -1)), float32(rng.NormFloat64())}

		want := make([][]float32, 4)
		for r := range want {
			want[r] = append([]float32(nil), d[r]...)
		}
		axpyQuadGeneric(want[0], want[1], want[2], want[3], b, vs[0], vs[1], vs[2], vs[3])

		withEveryKernel(t, func(t *testing.T, kernel string) {
			got := make([][]float32, 4)
			for r := range got {
				got[r] = append([]float32(nil), d[r]...)
			}
			axpyQuad(got[0], got[1], got[2], got[3], b, vs[0], vs[1], vs[2], vs[3])
			for r := range got {
				requireBits(t, "axpyQuad", kernel, got[r], want[r])
			}
		})
	}
}

// Every compiled epilogue variant must apply bias + activation with the
// exact select semantics of the scalar reference, including on signed
// zeros, denormal underflow (v*slope rounding to -0) and NaN.
func TestEpilogueVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	nan := float32(math.NaN())
	for n := 0; n <= 67; n++ {
		seg := make([]float32, n)
		awkwardFloats(rng, seg)
		if n > 0 {
			seg[rng.IntN(n)] = nan
		}
		for _, act := range []Act{ActNone, ActReLU, ActLeakyReLU} {
			for _, bias := range []float32{0, float32(math.Copysign(0, -1)), float32(rng.NormFloat64())} {
				want := append([]float32(nil), seg...)
				epilogueRowGeneric(want, bias, act, 0.1)
				withEveryKernel(t, func(t *testing.T, kernel string) {
					got := append([]float32(nil), seg...)
					epilogueRow(got, bias, act, 0.1)
					requireBits(t, "epilogue", kernel, got, want)
				})
			}
		}
	}
}

// Every compiled k=2 pooling row variant must reproduce the scalar fold —
// first tap wins ties (signed zeros) and NaN never displaces an earlier
// value — on ragged output widths covering every 8-wide tail.
func TestMaxPool2RowVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 0))
	nan := float32(math.NaN())
	for n := 0; n <= 67; n++ {
		r0 := make([]float32, 2*n)
		r1 := make([]float32, 2*n)
		awkwardFloats(rng, r0)
		awkwardFloats(rng, r1)
		if n > 0 {
			r0[rng.IntN(2*n)] = nan
			r1[rng.IntN(2*n)] = nan
		}
		want := make([]float32, n)
		maxPool2RowGeneric(want, r0, r1)
		withEveryKernel(t, func(t *testing.T, kernel string) {
			got := make([]float32, n)
			maxPool2Row(got, r0, r1)
			requireBits(t, "maxPool2Row", kernel, got, want)
		})
	}
}

// The full blocked GEMM must agree bit-for-bit with the naive reference
// under every kernel level — the end-to-end guarantee the per-lane tests
// above underwrite.
func TestGEMMBitIdenticalAcrossKernels(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.IntN(9)
		k := 1 + rng.IntN(40)
		n := 1 + rng.IntN(150)
		a, b := New(m, k), New(k, n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		bias := make([]float32, m)
		awkwardFloats(rng, bias)
		want := MatMul(a, b)
		epi := want.Clone()
		for i := 0; i < m; i++ {
			epilogueRowGeneric(epi.Data[i*n:(i+1)*n], bias[i], ActLeakyReLU, 0.1)
		}
		withEveryKernel(t, func(t *testing.T, kernel string) {
			requireBits(t, "MatMulInto", kernel, MatMulInto(nil, a, b).Data, want.Data)
			requireBits(t, "MatMulBiasAct", kernel,
				MatMulBiasAct(nil, a, b, bias, ActLeakyReLU, 0.1, 1).Data, epi.Data)
		})
	}
}

// SetKernel must reject unknown levels and report the active one.
func TestSetKernelValidation(t *testing.T) {
	prev := Kernel()
	defer SetKernel(prev)
	if err := SetKernel("avx1024"); err == nil {
		t.Fatal("SetKernel accepted an unknown kernel")
	}
	if Kernel() != prev {
		t.Fatalf("failed SetKernel changed the active kernel to %q", Kernel())
	}
	for _, name := range Kernels() {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		if Kernel() != name {
			t.Fatalf("Kernel() = %q after SetKernel(%q)", Kernel(), name)
		}
	}
}
