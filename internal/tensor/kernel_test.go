package tensor

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

// withEveryKernel runs f once per kernel level selectable on this CPU,
// restoring the auto-selected kernel afterwards. On amd64 this covers
// generic + sse (+ avx2/avx512 on modern hardware); elsewhere generic
// only. The tolerant fma level never appears here (these are the
// bit-exactness suites; fma is hidden while Tolerance() == 0).
func withEveryKernel(t *testing.T, f func(t *testing.T, kernel string)) {
	t.Helper()
	prev := Kernel()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range Kernels() {
		if impl, ok := archKernels()[name]; ok && impl.tolerant {
			// A process-wide opt-in (VMQ_KERNEL=fma) lists the tolerant
			// level; it has its own ULP-bound suite and must not join
			// the bit-exactness runs.
			continue
		}
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		f(t, name)
	}
}

// ensureBitExact pins the default bit-exact kernel for the duration of a
// test that compares exactly against a naive reference, in case the
// process was started with the VMQ_KERNEL=fma opt-in (whose arithmetic is
// deliberately not bit-identical).
func ensureBitExact(t *testing.T) {
	t.Helper()
	if impl, ok := archKernels()[Kernel()]; ok && impl.tolerant {
		prev := Kernel()
		if err := SetKernel(defaultKernelName()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if err := SetKernel(prev); err != nil {
				t.Error(err)
			}
		})
	}
}

// awkwardFloats seeds inputs with the values where SIMD shortcuts diverge
// from scalar semantics if the kernel is not a true select: signed zeros,
// denormals (whose products underflow to signed zero), and values that
// straddle the activation threshold.
func awkwardFloats(rng *rand.Rand, dst []float32) {
	for i := range dst {
		switch rng.IntN(8) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(math.Copysign(0, -1))
		case 2:
			dst[i] = math.Float32frombits(uint32(1 + rng.IntN(16))) // tiny denormal
		case 3:
			dst[i] = -math.Float32frombits(uint32(1 + rng.IntN(16)))
		default:
			dst[i] = float32(rng.NormFloat64())
		}
	}
}

func requireBits(t *testing.T, label string, kernel string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: kernel %s diverges at %d: %g (%#x) vs %g (%#x)",
				label, kernel, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// Every compiled axpyQuad variant must produce bit-identical accumulators
// on ragged lengths covering all lane tails (0..67 spans the 8-wide body,
// the 4-wide body and every scalar remainder).
func TestAxpyQuadVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	for n := 0; n <= 67; n++ {
		b := make([]float32, n)
		d := make([][]float32, 4)
		awkwardFloats(rng, b)
		for r := range d {
			d[r] = make([]float32, n)
			awkwardFloats(rng, d[r])
		}
		vs := [4]float32{float32(rng.NormFloat64()), 0, float32(math.Copysign(0, -1)), float32(rng.NormFloat64())}

		want := make([][]float32, 4)
		for r := range want {
			want[r] = append([]float32(nil), d[r]...)
		}
		axpyQuadGeneric(want[0], want[1], want[2], want[3], b, vs[0], vs[1], vs[2], vs[3])

		withEveryKernel(t, func(t *testing.T, kernel string) {
			got := make([][]float32, 4)
			for r := range got {
				got[r] = append([]float32(nil), d[r]...)
			}
			axpyQuad(got[0], got[1], got[2], got[3], b, vs[0], vs[1], vs[2], vs[3])
			for r := range got {
				requireBits(t, "axpyQuad", kernel, got[r], want[r])
			}
		})
	}
}

// Every compiled epilogue variant must apply bias + activation with the
// exact select semantics of the scalar reference, including on signed
// zeros, denormal underflow (v*slope rounding to -0) and NaN.
func TestEpilogueVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	nan := float32(math.NaN())
	for n := 0; n <= 67; n++ {
		seg := make([]float32, n)
		awkwardFloats(rng, seg)
		if n > 0 {
			seg[rng.IntN(n)] = nan
		}
		for _, act := range []Act{ActNone, ActReLU, ActLeakyReLU} {
			for _, bias := range []float32{0, float32(math.Copysign(0, -1)), float32(rng.NormFloat64())} {
				want := append([]float32(nil), seg...)
				epilogueRowGeneric(want, bias, act, 0.1)
				withEveryKernel(t, func(t *testing.T, kernel string) {
					got := append([]float32(nil), seg...)
					epilogueRow(got, bias, act, 0.1)
					requireBits(t, "epilogue", kernel, got, want)
				})
			}
		}
	}
}

// Every compiled k=2 pooling row variant must reproduce the scalar fold —
// first tap wins ties (signed zeros) and NaN never displaces an earlier
// value — on ragged output widths covering every 8-wide tail.
func TestMaxPool2RowVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 0))
	nan := float32(math.NaN())
	for n := 0; n <= 67; n++ {
		r0 := make([]float32, 2*n)
		r1 := make([]float32, 2*n)
		awkwardFloats(rng, r0)
		awkwardFloats(rng, r1)
		if n > 0 {
			r0[rng.IntN(2*n)] = nan
			r1[rng.IntN(2*n)] = nan
		}
		want := make([]float32, n)
		maxPool2RowGeneric(want, r0, r1)
		withEveryKernel(t, func(t *testing.T, kernel string) {
			got := make([]float32, n)
			maxPool2Row(got, r0, r1)
			requireBits(t, "maxPool2Row", kernel, got, want)
		})
	}
}

// The full blocked GEMM must agree bit-for-bit with the naive reference
// under every kernel level — the end-to-end guarantee the per-lane tests
// above underwrite.
func TestGEMMBitIdenticalAcrossKernels(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.IntN(9)
		k := 1 + rng.IntN(40)
		n := 1 + rng.IntN(150)
		a, b := New(m, k), New(k, n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		bias := make([]float32, m)
		awkwardFloats(rng, bias)
		want := MatMul(a, b)
		epi := want.Clone()
		for i := 0; i < m; i++ {
			epilogueRowGeneric(epi.Data[i*n:(i+1)*n], bias[i], ActLeakyReLU, 0.1)
		}
		withEveryKernel(t, func(t *testing.T, kernel string) {
			requireBits(t, "MatMulInto", kernel, MatMulInto(nil, a, b).Data, want.Data)
			requireBits(t, "MatMulBiasAct", kernel,
				MatMulBiasAct(nil, a, b, bias, ActLeakyReLU, 0.1, 1).Data, epi.Data)
		})
	}
}

// The rasteriser row primitives (Fill, AddClamp01) must be bit-identical
// across every selectable kernel level on ragged lengths covering the
// 16-wide, 8-wide and scalar tails, including out-of-range values (both
// clamps firing), signed zeros and NaN pass-through.
func TestFillAddClampVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(46, 0))
	nan := float32(math.NaN())
	negZero := float32(math.Copysign(0, -1))
	for n := 0; n <= 67; n++ {
		base := make([]float32, n)
		add := make([]float32, n)
		awkwardFloats(rng, base)
		awkwardFloats(rng, add)
		for i := range add {
			if rng.IntN(3) == 0 {
				add[i] *= 5 // force both clamp branches to fire
			}
		}
		if n > 0 {
			add[rng.IntN(n)] = nan
		}
		wantFill := make([]float32, n)
		fillRowGeneric(wantFill, negZero)
		wantClamp := append([]float32(nil), base...)
		addClampRowGeneric(wantClamp, add)
		withEveryKernel(t, func(t *testing.T, kernel string) {
			gotF := make([]float32, n)
			Fill(gotF, negZero)
			requireBits(t, "fill", kernel, gotF, wantFill)
			gotC := append([]float32(nil), base...)
			AddClamp01(gotC, add)
			requireBits(t, "addClamp01", kernel, gotC, wantClamp)
		})
	}
}

// orderedBits maps float32 bit patterns onto a line where adjacent
// representable values differ by 1, so ULP distances are plain integer
// differences. +0 and -0 map to the same point.
func orderedBits(f float32) int64 {
	u := int64(math.Float32bits(f))
	if u&0x80000000 != 0 {
		u = 0x80000000 - u
	}
	return u
}

func ulpDiff(a, b float32) int64 {
	if a == b {
		return 0
	}
	d := orderedBits(a) - orderedBits(b)
	if d < 0 {
		d = -d
	}
	return d
}

// The fma level is explicitly not bit-exact, so its suite asserts a ULP
// bound instead of bit equality: every accumulator element must land
// within 1 ULP of an exactly-fused float64 reference (math.FMA rounded to
// float32 — itself within 1 ULP of the correctly rounded float32 fused
// result, from double rounding).
func TestFMAAxpyWithinULPBound(t *testing.T) {
	if _, ok := archKernels()["fma"]; !ok {
		t.Skip("no fma kernel level on this CPU")
	}
	prevK := Kernel()
	prevTol := SetTolerance(2)
	defer func() {
		if err := SetKernel(prevK); err != nil {
			t.Error(err)
		}
		SetTolerance(prevTol)
	}()
	if err := SetKernel("fma"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(45, 0))
	for n := 0; n <= 67; n++ {
		b := make([]float32, n)
		awkwardFloats(rng, b)
		d := make([][]float32, 4)
		for r := range d {
			d[r] = make([]float32, n)
			awkwardFloats(rng, d[r])
		}
		vs := [4]float32{float32(rng.NormFloat64()), 0, float32(math.Copysign(0, -1)), float32(rng.NormFloat64())}

		want := make([][]float32, 4)
		for r := range want {
			want[r] = make([]float32, n)
			for j := range want[r] {
				want[r][j] = float32(math.FMA(float64(vs[r]), float64(b[j]), float64(d[r][j])))
			}
		}
		got := make([][]float32, 4)
		for r := range got {
			got[r] = append([]float32(nil), d[r]...)
		}
		axpyQuad(got[0], got[1], got[2], got[3], b, vs[0], vs[1], vs[2], vs[3])
		for r := range got {
			for j := range got[r] {
				if diff := ulpDiff(got[r][j], want[r][j]); diff > 2 {
					t.Fatalf("fma axpy n=%d row %d elem %d: %g (%#x) is %d ULPs from fused reference %g (%#x)",
						n, r, j, got[r][j], math.Float32bits(got[r][j]), diff,
						want[r][j], math.Float32bits(want[r][j]))
				}
			}
		}
	}
}

// The fma level must be unreachable without the explicit tolerance opt-in:
// hidden from Kernels(), rejected by SetKernel with a pointer at the
// opt-in, unlocked by SetTolerance > 0, and evicted (falling back to the
// bit-exact default) when the budget is withdrawn.
func TestToleranceGatesFMA(t *testing.T) {
	prevK := Kernel()
	prevTol := Tolerance()
	defer func() {
		SetTolerance(prevTol)
		if err := SetKernel(prevK); err != nil {
			t.Error(err)
		}
	}()

	SetTolerance(0)
	for _, name := range Kernels() {
		if name == "fma" {
			t.Fatal("Kernels() lists fma with no tolerance budget in effect")
		}
	}
	err := SetKernel("fma")
	if err == nil {
		t.Fatal("SetKernel(fma) succeeded without a tolerance opt-in")
	}
	if Kernel() == "fma" {
		t.Fatal("rejected SetKernel still activated fma")
	}
	if _, ok := archKernels()["fma"]; !ok {
		t.Skip("no fma kernel level on this CPU; gating of unavailable level verified")
	}
	if !strings.Contains(err.Error(), "SetTolerance") {
		t.Fatalf("gating error should point at the opt-in, got: %v", err)
	}

	if prev := SetTolerance(3); prev != 0 {
		t.Fatalf("SetTolerance returned stale previous budget %d", prev)
	}
	if Tolerance() != 3 {
		t.Fatalf("Tolerance() = %d after SetTolerance(3)", Tolerance())
	}
	found := false
	for _, name := range Kernels() {
		found = found || name == "fma"
	}
	if !found {
		t.Fatal("Kernels() does not list fma under a positive tolerance budget")
	}
	if err := SetKernel("fma"); err != nil {
		t.Fatal(err)
	}
	if Kernel() != "fma" {
		t.Fatalf("Kernel() = %q after SetKernel(fma)", Kernel())
	}

	SetTolerance(0)
	if Kernel() != defaultKernelName() {
		t.Fatalf("withdrawing the budget left kernel %q; want bit-exact default %q", Kernel(), defaultKernelName())
	}
}

// An unknown or unavailable VMQ_KERNEL value must fall back to the default
// level with a single warning line naming the available levels; valid
// values (including the fma opt-in) select silently.
func TestVMQKernelStartupSelection(t *testing.T) {
	prevK := Kernel()
	prevTol := Tolerance()
	defer func() {
		SetTolerance(prevTol)
		if err := SetKernel(prevK); err != nil {
			t.Error(err)
		}
	}()

	var buf strings.Builder
	initKernel("avx1024", &buf)
	if Kernel() != defaultKernelName() {
		t.Fatalf("unknown VMQ_KERNEL selected %q; want default %q", Kernel(), defaultKernelName())
	}
	warning := buf.String()
	if !strings.Contains(warning, `VMQ_KERNEL="avx1024"`) ||
		!strings.Contains(warning, "generic") ||
		!strings.Contains(warning, defaultKernelName()) {
		t.Fatalf("warning does not name the bad value, the fallback and the available levels: %q", warning)
	}
	if got := strings.Count(warning, "\n"); got != 1 {
		t.Fatalf("warning should be exactly one line, got %d: %q", got, warning)
	}

	buf.Reset()
	initKernel("", &buf)
	if buf.Len() != 0 || Kernel() != defaultKernelName() {
		t.Fatalf("empty VMQ_KERNEL: kernel %q, warning %q", Kernel(), buf.String())
	}

	buf.Reset()
	initKernel("generic", &buf)
	if buf.Len() != 0 || Kernel() != "generic" {
		t.Fatalf("VMQ_KERNEL=generic: kernel %q, warning %q", Kernel(), buf.String())
	}

	if _, ok := archKernels()["fma"]; ok {
		buf.Reset()
		SetTolerance(0)
		initKernel("fma", &buf)
		if buf.Len() != 0 {
			t.Fatalf("VMQ_KERNEL=fma warned despite being available: %q", buf.String())
		}
		if Kernel() != "fma" {
			t.Fatalf("VMQ_KERNEL=fma selected %q", Kernel())
		}
		if Tolerance() < 1 {
			t.Fatal("VMQ_KERNEL=fma did not establish a tolerance budget")
		}
	}
}

// SetKernel must reject unknown levels and report the active one.
func TestSetKernelValidation(t *testing.T) {
	prev := Kernel()
	defer SetKernel(prev)
	if err := SetKernel("avx1024"); err == nil {
		t.Fatal("SetKernel accepted an unknown kernel")
	}
	if Kernel() != prev {
		t.Fatalf("failed SetKernel changed the active kernel to %q", Kernel())
	}
	for _, name := range Kernels() {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		if Kernel() != name {
			t.Fatalf("Kernel() = %q after SetKernel(%q)", Kernel(), name)
		}
	}
}
