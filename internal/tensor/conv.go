package tensor

import "fmt"

// ConvParams describes a 2-D convolution (square kernel, symmetric stride
// and padding), matching the branch-network layer tables in the paper.
type ConvParams struct {
	KH, KW  int // kernel height and width
	Stride  int
	Padding int
}

// OutSize returns the output spatial size for an input of h×w.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.Padding-p.KH)/p.Stride + 1
	ow = (w+2*p.Padding-p.KW)/p.Stride + 1
	return oh, ow
}

func (p ConvParams) validate() {
	if p.KH <= 0 || p.KW <= 0 || p.Stride <= 0 || p.Padding < 0 {
		panic(fmt.Sprintf("tensor: invalid conv params %+v", p))
	}
}

// Im2Col unrolls input (C×H×W) into a matrix of shape
// (C*KH*KW) × (OH*OW) so that convolution becomes a single MatMul with the
// (outC)×(C*KH*KW) weight matrix. Out-of-bounds taps read as zero padding.
func Im2Col(in *Tensor, p ConvParams) *Tensor {
	p.validate()
	if in.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs CHW input, got %v", in.Shape))
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive for input %v params %+v", oh, ow, in.Shape, p))
	}
	out := New(c*p.KH*p.KW, oh*ow)
	row := 0
	for ci := 0; ci < c; ci++ {
		chn := in.Data[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < p.KH; ky++ {
			for kx := 0; kx < p.KW; kx++ {
				orow := out.Data[row*oh*ow : (row+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						continue // zero padding
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							continue
						}
						orow[oy*ow+ox] = chn[base+ix]
					}
				}
				row++
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a (C*KH*KW)×(OH*OW) matrix
// of gradients back onto a C×H×W input-gradient tensor, accumulating where
// kernel windows overlap.
func Col2Im(cols *Tensor, c, h, w int, p ConvParams) *Tensor {
	p.validate()
	oh, ow := p.OutSize(h, w)
	if cols.Shape[0] != c*p.KH*p.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with c=%d h=%d w=%d %+v", cols.Shape, c, h, w, p))
	}
	out := New(c, h, w)
	row := 0
	for ci := 0; ci < c; ci++ {
		chn := out.Data[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < p.KH; ky++ {
			for kx := 0; kx < p.KW; kx++ {
				crow := cols.Data[row*oh*ow : (row+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							continue
						}
						chn[base+ix] += crow[oy*ow+ox]
					}
				}
				row++
			}
		}
	}
	return out
}

// Conv2D applies outC filters (weights shaped outC×C×KH×KW, bias length
// outC) to input (C×H×W), returning outC×OH×OW. It is implemented as
// Im2Col + MatMul, the standard lowering.
func Conv2D(in, weights, bias *Tensor, p ConvParams) *Tensor {
	p.validate()
	if weights.Rank() != 4 {
		panic("tensor: Conv2D weights must be rank 4 (outC,C,KH,KW)")
	}
	outC, c := weights.Shape[0], weights.Shape[1]
	if weights.Shape[2] != p.KH || weights.Shape[3] != p.KW {
		panic("tensor: Conv2D kernel size mismatch")
	}
	if in.Shape[0] != c {
		panic(fmt.Sprintf("tensor: Conv2D channels %d vs weights %d", in.Shape[0], c))
	}
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := p.OutSize(h, w)
	cols := Im2Col(in, p)
	wmat := weights.Reshape(outC, c*p.KH*p.KW)
	out := MatMul(wmat, cols) // outC × (oh*ow)
	if bias != nil {
		if bias.Len() != outC {
			panic("tensor: Conv2D bias length mismatch")
		}
		for o := 0; o < outC; o++ {
			b := bias.Data[o]
			row := out.Data[o*oh*ow : (o+1)*oh*ow]
			for i := range row {
				row[i] += b
			}
		}
	}
	return out.Reshape(outC, oh, ow)
}

// Conv2DNaive is a reference direct convolution used to property-test the
// im2col implementation.
func Conv2DNaive(in, weights, bias *Tensor, p ConvParams) *Tensor {
	p.validate()
	outC, c := weights.Shape[0], weights.Shape[1]
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := p.OutSize(h, w)
	out := New(outC, oh, ow)
	for o := 0; o < outC; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				if bias != nil {
					s = bias.Data[o]
				}
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.Stride + ky - p.Padding
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.Stride + kx - p.Padding
							if ix < 0 || ix >= w {
								continue
							}
							s += in.At(ci, iy, ix) * weights.At(o, ci, ky, kx)
						}
					}
				}
				out.Set(s, o, oy, ox)
			}
		}
	}
	return out
}

// MaxPool2D applies non-overlapping k×k max pooling to a C×H×W tensor.
// It returns the pooled tensor and the flat argmax indices (into the input
// channel plane) needed by the backward pass.
func MaxPool2D(in *Tensor, k int) (out *Tensor, argmax []int) {
	if k <= 0 {
		panic("tensor: MaxPool2D k must be positive")
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/k, w/k
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D k=%d too large for %v", k, in.Shape))
	}
	out = New(c, oh, ow)
	argmax = make([]int, c*oh*ow)
	for ci := 0; ci < c; ci++ {
		chn := in.Data[ci*h*w : (ci+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(-1e30)
				bi := -1
				for ky := 0; ky < k; ky++ {
					iy := oy*k + ky
					for kx := 0; kx < k; kx++ {
						ix := ox*k + kx
						v := chn[iy*w+ix]
						if v > best {
							best, bi = v, iy*w+ix
						}
					}
				}
				oi := (ci*oh+oy)*ow + ox
				out.Data[oi] = best
				argmax[oi] = ci*h*w + bi
			}
		}
	}
	return out, argmax
}

// MaxPool2DBackward scatters output gradients to the argmax positions.
func MaxPool2DBackward(gradOut *Tensor, argmax []int, inShape []int) *Tensor {
	grad := New(inShape...)
	for i, g := range gradOut.Data {
		grad.Data[argmax[i]] += g
	}
	return grad
}

// GlobalAvgPool reduces C×H×W to a length-C vector of per-channel means —
// the GAP stage of the paper's Figure 2 architecture.
func GlobalAvgPool(in *Tensor) *Tensor {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	out := New(c)
	n := float32(h * w)
	for ci := 0; ci < c; ci++ {
		var s float32
		for _, v := range in.Data[ci*h*w : (ci+1)*h*w] {
			s += v
		}
		out.Data[ci] = s / n
	}
	return out
}

// GlobalAvgPoolBackward spreads a length-C gradient uniformly across each
// channel plane.
func GlobalAvgPoolBackward(gradOut *Tensor, c, h, w int) *Tensor {
	grad := New(c, h, w)
	inv := 1 / float32(h*w)
	for ci := 0; ci < c; ci++ {
		g := gradOut.Data[ci] * inv
		plane := grad.Data[ci*h*w : (ci+1)*h*w]
		for i := range plane {
			plane[i] = g
		}
	}
	return grad
}
