package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSeries(n, d int) ([]float64, [][]float64, []float64) {
	rng := rand.New(rand.NewPCG(1, 1))
	ys := make([]float64, n)
	zs := make([][]float64, n)
	mu := make([]float64, d)
	for i := range ys {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
			ys[i] += row[j]
		}
		ys[i] += rng.NormFloat64() * 0.3
		zs[i] = row
	}
	return ys, zs, mu
}

// BenchmarkControlVariate measures the single-CV estimator at a Table IV
// sample size.
func BenchmarkControlVariate(b *testing.B) {
	ys, zs, _ := benchSeries(720, 1)
	xs := make([]float64, len(zs))
	for i := range zs {
		xs[i] = zs[i][0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ControlVariate(ys, xs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultipleControlVariates measures the vector-CV estimator with
// three controls (the a3 configuration).
func BenchmarkMultipleControlVariates(b *testing.B) {
	ys, zs, mu := benchSeries(720, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultipleControlVariates(ys, zs, mu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSPD(b *testing.B) {
	a := [][]float64{{4, 2, 1}, {2, 5, 2}, {1, 2, 6}}
	rhs := []float64{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
