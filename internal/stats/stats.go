// Package stats implements the estimation machinery of Section III:
// sampling-based aggregate estimates with their variance, the classical
// control-variate (CV) estimator with the optimal coefficient
// β* = Cov(Y,X)/Var(X), and its generalisation to multiple control
// variates where β* = Σ_ZZ⁻¹ Σ_YZ is obtained by solving the sample
// covariance system. The variance reduction factors reported in Table IV
// come straight out of these estimators.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Summary holds the first two sample moments of a series.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
}

// Summarize computes N, mean and unbiased variance of xs.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	v := 0.0
	if n > 1 {
		v = ss / float64(n-1)
	}
	return Summary{N: n, Mean: mean, Variance: v}
}

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return math.Sqrt(s.Variance / float64(s.N))
}

// ConfidenceInterval returns the symmetric normal-approximation interval
// mean ± z·stderr for the given z score (1.96 ≈ 95 %).
func (s Summary) ConfidenceInterval(z float64) (lo, hi float64) {
	h := z * s.StdErr()
	return s.Mean - h, s.Mean + h
}

// Covariance returns the unbiased sample covariance of xs and ys.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx := Summarize(xs).Mean
	my := Summarize(ys).Mean
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation of xs and ys (0 when either
// series is constant).
func Correlation(xs, ys []float64) float64 {
	vx := Summarize(xs).Variance
	vy := Summarize(ys).Variance
	if vx == 0 || vy == 0 {
		return 0
	}
	return Covariance(xs, ys) / math.Sqrt(vx*vy)
}

// CVResult reports a control-variate estimate next to the plain sampling
// estimate it improves on.
type CVResult struct {
	// Plain is the naive sample-mean estimate of E[Y].
	Plain Summary
	// Estimate is the CV point estimate of E[Y].
	Estimate float64
	// Variance is the estimated variance of the CV estimator (per the
	// (1-ρ²)σ²_Y/n formula, computed from residuals).
	Variance float64
	// Beta holds the fitted coefficient(s).
	Beta []float64
	// Reduction is Var(plain mean) / Var(CV estimate); Table IV's
	// "variance reduction" column.
	Reduction float64
}

// ControlVariate computes the single-CV estimator of E[Y] using X with
// known (or estimated) control mean muX:
//
//	Ŷcv = Ȳ − β(X̄ − µX),  β* = S_XY / S_XX.
func ControlVariate(ys, xs []float64, muX float64) (CVResult, error) {
	if len(ys) != len(xs) {
		return CVResult{}, errors.New("stats: control variate series length mismatch")
	}
	if len(ys) < 3 {
		return CVResult{}, errors.New("stats: need at least 3 samples for control variates")
	}
	plain := Summarize(ys)
	if plain.Variance == 0 {
		// A constant response has nothing to reduce.
		return CVResult{
			Plain: plain, Estimate: plain.Mean,
			Variance: 0, Beta: []float64{0}, Reduction: 1,
		}, nil
	}
	sxx := Summarize(xs).Variance
	if sxx == 0 {
		// A constant control carries no information; fall back to plain.
		return CVResult{
			Plain: plain, Estimate: plain.Mean,
			Variance: plain.Variance / float64(plain.N),
			Beta:     []float64{0}, Reduction: 1,
		}, nil
	}
	beta := Covariance(ys, xs) / sxx
	xbar := Summarize(xs).Mean
	est := plain.Mean - beta*(xbar-muX)
	// Residual variance: Var(Y - beta X) / n.
	res := make([]float64, len(ys))
	for i := range ys {
		res[i] = ys[i] - beta*xs[i]
	}
	rv := Summarize(res).Variance / float64(len(ys))
	pv := plain.Variance / float64(plain.N)
	red := math.Inf(1)
	if rv > 0 {
		red = pv / rv
	}
	return CVResult{Plain: plain, Estimate: est, Variance: rv, Beta: []float64{beta}, Reduction: red}, nil
}

// MultipleControlVariates computes the vector-CV estimator of E[Y] given d
// controls zs (zs[i] is the length-d control vector of sample i) with
// control means muZ:
//
//	Ŷcv = Ȳ − βᵀ(Z̄ − µZ),  β* = Σ_ZZ⁻¹ Σ_YZ.
//
// It also reports R², the squared multiple correlation coefficient, via
// Var(Ŷcv) = (1−R²)·Var(Ȳ).
func MultipleControlVariates(ys []float64, zs [][]float64, muZ []float64) (CVResult, error) {
	n := len(ys)
	if len(zs) != n {
		return CVResult{}, errors.New("stats: control matrix row count mismatch")
	}
	if n < 4 {
		return CVResult{}, errors.New("stats: need at least 4 samples for multiple control variates")
	}
	d := len(muZ)
	for i, z := range zs {
		if len(z) != d {
			return CVResult{}, fmt.Errorf("stats: control row %d has %d entries, want %d", i, len(z), d)
		}
	}
	plain := Summarize(ys)
	if plain.Variance == 0 {
		return CVResult{
			Plain: plain, Estimate: plain.Mean,
			Variance: 0, Beta: make([]float64, d), Reduction: 1,
		}, nil
	}

	// Column means.
	zbar := make([]float64, d)
	for _, z := range zs {
		for j, v := range z {
			zbar[j] += v
		}
	}
	for j := range zbar {
		zbar[j] /= float64(n)
	}

	// Sample covariance matrix Σ_ZZ and vector Σ_YZ.
	szz := make([][]float64, d)
	for j := range szz {
		szz[j] = make([]float64, d)
	}
	syz := make([]float64, d)
	for i := 0; i < n; i++ {
		dy := ys[i] - plain.Mean
		for j := 0; j < d; j++ {
			dj := zs[i][j] - zbar[j]
			syz[j] += dy * dj
			for k := j; k < d; k++ {
				szz[j][k] += dj * (zs[i][k] - zbar[k])
			}
		}
	}
	for j := 0; j < d; j++ {
		syz[j] /= float64(n - 1)
		for k := j; k < d; k++ {
			szz[j][k] /= float64(n - 1)
			szz[k][j] = szz[j][k]
		}
	}

	beta, err := SolveSPD(szz, syz)
	if err != nil {
		return CVResult{}, fmt.Errorf("stats: singular control covariance: %w", err)
	}

	est := plain.Mean
	for j := 0; j < d; j++ {
		est -= beta[j] * (zbar[j] - muZ[j])
	}
	// Residual variance of Y - βᵀZ.
	res := make([]float64, n)
	for i := range ys {
		r := ys[i]
		for j := 0; j < d; j++ {
			r -= beta[j] * zs[i][j]
		}
		res[i] = r
	}
	rv := Summarize(res).Variance / float64(n)
	pv := plain.Variance / float64(plain.N)
	red := math.Inf(1)
	if rv > 0 {
		red = pv / rv
	}
	return CVResult{Plain: plain, Estimate: est, Variance: rv, Beta: beta, Reduction: red}, nil
}

// RSquared returns the squared multiple correlation implied by a CV result
// (1 − Var(cv)/Var(plain mean)), clamped to [0,1].
func (r CVResult) RSquared() float64 {
	pv := r.Plain.Variance / float64(max(r.Plain.N, 1))
	if pv == 0 {
		return 0
	}
	v := 1 - r.Variance/pv
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SolveSPD solves A x = b for a symmetric positive-definite matrix A using
// Cholesky factorisation with a tiny diagonal ridge for numerical safety.
func SolveSPD(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	if d == 0 {
		return nil, errors.New("stats: empty system")
	}
	// Copy with ridge.
	m := make([][]float64, d)
	trace := 0.0
	for i := range a {
		if len(a[i]) != d {
			return nil, errors.New("stats: non-square matrix")
		}
		trace += a[i][i]
	}
	if trace <= 0 {
		return nil, errors.New("stats: matrix not positive definite")
	}
	ridge := 1e-12 * trace / float64(d)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
		m[i][i] += ridge
	}
	// Cholesky: m = L Lᵀ, stored in lower triangle.
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			s := m[i][j]
			for k := 0; k < j; k++ {
				s -= m[i][k] * m[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, errors.New("stats: matrix not positive definite")
				}
				m[i][i] = math.Sqrt(s)
			} else {
				m[i][j] = s / m[j][j]
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, d)
	for i := 0; i < d; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= m[i][k] * y[k]
		}
		y[i] = s / m[i][i]
	}
	// Back substitution Lᵀ x = y.
	x := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < d; k++ {
			s -= m[k][i] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
