package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("variance = %v, want 2.5", s.Variance)
	}
	if math.Abs(s.StdErr()-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("stderr = %v", s.StdErr())
	}
	lo, hi := s.ConfidenceInterval(1.96)
	if lo >= s.Mean || hi <= s.Mean || math.Abs((hi-lo)/2-1.96*s.StdErr()) > 1e-12 {
		t.Fatalf("CI = [%v, %v]", lo, hi)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 || z.StdErr() != 0 {
		t.Fatal("empty summary not zero")
	}
	if one := Summarize([]float64{7}); one.Variance != 0 {
		t.Fatal("single-sample variance not 0")
	}
}

func TestCovarianceAndCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant series correlation = %v", c)
	}
	if Covariance(xs, ys) != 2*Summarize(xs).Variance {
		t.Fatal("covariance of y=2x should be 2 Var(x)")
	}
}

func TestControlVariateReducesVariance(t *testing.T) {
	// Y = X + small noise: the CV estimator should collapse most variance.
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 2000
	ys := make([]float64, n)
	xs := make([]float64, n)
	for i := range ys {
		x := rng.NormFloat64() * 3
		xs[i] = x
		ys[i] = 2*x + 5 + rng.NormFloat64()*0.5
	}
	res, err := ControlVariate(ys, xs, 0) // true E[X] = 0
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Beta[0]-2) > 0.1 {
		t.Fatalf("beta = %v, want ~2", res.Beta[0])
	}
	if math.Abs(res.Estimate-5) > 0.1 {
		t.Fatalf("estimate = %v, want ~5", res.Estimate)
	}
	if res.Reduction < 50 {
		t.Fatalf("reduction = %v, want large", res.Reduction)
	}
	if res.Variance >= res.Plain.Variance/float64(n) {
		t.Fatal("CV variance not below plain variance")
	}
	if r2 := res.RSquared(); r2 < 0.9 {
		t.Fatalf("R² = %v, want > 0.9", r2)
	}
}

func TestControlVariateUnbiased(t *testing.T) {
	// Across many independent replications the mean CV estimate must match
	// the true mean (unbiasedness of the CV estimator).
	rng := rand.New(rand.NewPCG(2, 2))
	const reps, n = 300, 50
	const trueMean = 10.0
	var sum float64
	for r := 0; r < reps; r++ {
		ys := make([]float64, n)
		xs := make([]float64, n)
		for i := range ys {
			x := rng.NormFloat64()
			xs[i] = x
			ys[i] = trueMean + 3*x + rng.NormFloat64()
		}
		res, err := ControlVariate(ys, xs, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimate
	}
	if got := sum / reps; math.Abs(got-trueMean) > 0.05 {
		t.Fatalf("mean CV estimate = %v, want ~%v", got, trueMean)
	}
}

func TestControlVariateDegenerate(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	if _, err := ControlVariate(ys, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ControlVariate([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Fatal("too-few samples accepted")
	}
	// Constant control: falls back to plain estimate, reduction 1.
	res, err := ControlVariate(ys, []float64{7, 7, 7, 7}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 2.5 || res.Reduction != 1 {
		t.Fatalf("constant control: %+v", res)
	}
}

// Property: the CV estimate is invariant under affine transforms of the
// control — replacing X with aX+b (and µX with aµX+b) must not change the
// estimate, because β* rescales accordingly.
func TestControlVariateAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.IntN(200)
		ys := make([]float64, n)
		xs := make([]float64, n)
		for i := range ys {
			x := rng.NormFloat64()
			xs[i] = x
			ys[i] = 3*x + rng.NormFloat64()
		}
		a := 0.5 + rng.Float64()*5
		b := rng.NormFloat64() * 10
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = a*xs[i] + b
		}
		r1, err1 := ControlVariate(ys, xs, 0)
		r2, err2 := ControlVariate(ys, xs2, b)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(r1.Estimate-r2.Estimate) > 1e-8*math.Max(1, math.Abs(r1.Estimate)) {
			t.Fatalf("affine transform changed estimate: %v vs %v", r1.Estimate, r2.Estimate)
		}
		if math.Abs(r1.Variance-r2.Variance) > 1e-8*math.Max(1e-12, r1.Variance) {
			t.Fatalf("affine transform changed variance: %v vs %v", r1.Variance, r2.Variance)
		}
		if math.Abs(r2.Beta[0]*a-r1.Beta[0]) > 1e-6*math.Max(1, math.Abs(r1.Beta[0])) {
			t.Fatalf("beta did not rescale: %v vs %v/a", r2.Beta[0], r1.Beta[0])
		}
	}
}

func TestMultipleControlVariates(t *testing.T) {
	// Y = 1·Z1 + 2·Z2 + 20 + noise; two informative controls.
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 3000
	ys := make([]float64, n)
	zs := make([][]float64, n)
	for i := range ys {
		z1 := rng.NormFloat64() * 2
		z2 := rng.NormFloat64()
		zs[i] = []float64{z1, z2}
		ys[i] = z1 + 2*z2 + 20 + rng.NormFloat64()*0.3
	}
	res, err := MultipleControlVariates(ys, zs, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Beta[0]-1) > 0.1 || math.Abs(res.Beta[1]-2) > 0.1 {
		t.Fatalf("beta = %v, want ~[1 2]", res.Beta)
	}
	if math.Abs(res.Estimate-20) > 0.2 {
		t.Fatalf("estimate = %v, want ~20", res.Estimate)
	}
	if res.Reduction < 20 {
		t.Fatalf("reduction = %v", res.Reduction)
	}
}

func TestMultipleCVBeatsBestSingle(t *testing.T) {
	// When Y depends on two independent controls, using both must beat
	// either alone.
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 4000
	ys := make([]float64, n)
	z1s := make([]float64, n)
	z2s := make([]float64, n)
	zs := make([][]float64, n)
	for i := range ys {
		z1 := rng.NormFloat64()
		z2 := rng.NormFloat64()
		z1s[i], z2s[i] = z1, z2
		zs[i] = []float64{z1, z2}
		ys[i] = z1 + z2 + rng.NormFloat64()*0.2
	}
	multi, err := MultipleControlVariates(ys, zs, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := ControlVariate(ys, z1s, 0)
	s2, _ := ControlVariate(ys, z2s, 0)
	if multi.Variance >= s1.Variance || multi.Variance >= s2.Variance {
		t.Fatalf("multi CV (%v) did not beat singles (%v, %v)",
			multi.Variance, s1.Variance, s2.Variance)
	}
}

func TestMultipleCVErrors(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5}
	if _, err := MultipleControlVariates(ys, make([][]float64, 3), []float64{0}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	zs := [][]float64{{1}, {2}, {3}, {4}, {5, 6}}
	if _, err := MultipleControlVariates(ys, zs, []float64{0}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := MultipleControlVariates(ys[:3], [][]float64{{1}, {2}, {3}}, []float64{0}); err == nil {
		t.Fatal("too-few samples accepted")
	}
}

func TestSolveSPD(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	b := []float64{10, 8}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x = b.
	for i := range b {
		got := a[i][0]*x[0] + a[i][1]*x[1]
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("residual row %d: %v vs %v", i, got, b[i])
		}
	}
	if _, err := SolveSPD(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := SolveSPD([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := SolveSPD([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestSolveSPDRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.IntN(5)
		// Build SPD as GᵀG + I.
		g := make([][]float64, d)
		for i := range g {
			g[i] = make([]float64, d)
			for j := range g[i] {
				g[i][j] = rng.NormFloat64()
			}
		}
		a := make([][]float64, d)
		for i := range a {
			a[i] = make([]float64, d)
			for j := range a[i] {
				for k := 0; k < d; k++ {
					a[i][j] += g[k][i] * g[k][j]
				}
				if i == j {
					a[i][j]++
				}
			}
		}
		b := make([]float64, d)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			var got float64
			for j := range x {
				got += a[i][j] * x[j]
			}
			if math.Abs(got-b[i]) > 1e-8 {
				t.Fatalf("residual %v vs %v", got, b[i])
			}
		}
	}
}
