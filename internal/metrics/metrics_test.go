package metrics

import (
	"math"
	"testing"
)

func TestCountAccuracy(t *testing.T) {
	var c CountAccuracy
	c.Observe(5, 5)   // exact
	c.Observe(5, 6)   // within 1
	c.Observe(5, 7.4) // within 2 (rounds to 7)
	c.Observe(5, 9)   // miss
	if c.N != 4 {
		t.Fatalf("N = %d", c.N)
	}
	if got := c.Accuracy(0); got != 0.25 {
		t.Fatalf("exact = %v", got)
	}
	if got := c.Accuracy(1); got != 0.5 {
		t.Fatalf("±1 = %v", got)
	}
	if got := c.Accuracy(2); got != 0.75 {
		t.Fatalf("±2 = %v", got)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	var empty CountAccuracy
	if empty.Accuracy(0) != 0 {
		t.Error("empty accuracy not 0")
	}
}

func TestCountAccuracyRounding(t *testing.T) {
	var c CountAccuracy
	c.Observe(3, 2.6) // rounds to 3: exact
	if c.Accuracy(0) != 1 {
		t.Fatal("rounding to nearest failed")
	}
}

func TestCountAccuracyMonotone(t *testing.T) {
	var c CountAccuracy
	for i := 0; i < 50; i++ {
		c.Observe(i%7, float64(i%5))
	}
	if !(c.Accuracy(0) <= c.Accuracy(1) && c.Accuracy(1) <= c.Accuracy(2)) {
		t.Fatal("tolerance accuracy not monotone")
	}
}

func TestPRF(t *testing.T) {
	var p PRF
	p.Add(8, 2, 4)
	if got := p.Precision(); got != 0.8 {
		t.Fatalf("precision = %v", got)
	}
	if got := p.Recall(); math.Abs(got-8.0/12.0) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if got := p.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v, want %v", got, wantF1)
	}
	var q PRF
	q.Merge(p)
	if q != p {
		t.Fatal("Merge failed")
	}
	var zero PRF
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Fatal("zero PRF not zero")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestPerfectPRF(t *testing.T) {
	var p PRF
	p.Add(10, 0, 0)
	if p.F1() != 1 {
		t.Fatalf("perfect f1 = %v", p.F1())
	}
}

func TestBoolAccuracy(t *testing.T) {
	var b BoolAccuracy
	b.Observe(true, true)   // tp
	b.Observe(true, false)  // fp
	b.Observe(false, true)  // fn
	b.Observe(false, false) // tn
	if b.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v", b.Accuracy())
	}
	if b.Precision() != 0.5 || b.Recall() != 0.5 {
		t.Fatalf("p/r = %v/%v", b.Precision(), b.Recall())
	}
	if b.F1() != 0.5 {
		t.Fatalf("f1 = %v", b.F1())
	}
	var empty BoolAccuracy
	if empty.Accuracy() != 0 {
		t.Fatal("empty BoolAccuracy not 0")
	}
}
