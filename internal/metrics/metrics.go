// Package metrics implements the evaluation measures of Section IV:
// count-filter accuracy (the fraction of frames whose estimate equals the
// true count, plus the ±1 and ±2 tolerance variants), and the precision /
// recall / f1 score used for CLF grid localisation.
package metrics

import (
	"fmt"
	"math"
)

// CountAccuracy accumulates exact and within-k count-filter accuracy over
// frames. Tolerance index k holds the fraction of frames with
// |estimate − truth| ≤ k, so index 0 is the paper's exact accuracy and
// indices 1 and 2 its CF-1 and CF-2 variants.
type CountAccuracy struct {
	N      int
	Within [3]int
}

// Observe records one frame's true count and filter estimate. The estimate
// is rounded to the nearest integer first, as the paper's filters emit real
// regression outputs.
func (c *CountAccuracy) Observe(truth int, estimate float64) {
	c.N++
	diff := int(math.Abs(math.Round(estimate) - float64(truth)))
	for k := 0; k < len(c.Within); k++ {
		if diff <= k {
			c.Within[k]++
		}
	}
}

// Accuracy returns the fraction of frames within tolerance k (0 ≤ k ≤ 2).
func (c *CountAccuracy) Accuracy(k int) float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Within[k]) / float64(c.N)
}

// String implements fmt.Stringer.
func (c *CountAccuracy) String() string {
	return fmt.Sprintf("exact %.3f, ±1 %.3f, ±2 %.3f (n=%d)",
		c.Accuracy(0), c.Accuracy(1), c.Accuracy(2), c.N)
}

// PRF accumulates true positives, false positives and false negatives.
type PRF struct {
	TP, FP, FN int
}

// Add accumulates one observation batch.
func (p *PRF) Add(tp, fp, fn int) {
	p.TP += tp
	p.FP += fp
	p.FN += fn
}

// Merge accumulates another PRF.
func (p *PRF) Merge(q PRF) { p.Add(q.TP, q.FP, q.FN) }

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (p *PRF) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), or 0 when there was no ground truth.
func (p *PRF) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (p *PRF) F1() float64 {
	pr, re := p.Precision(), p.Recall()
	if pr+re == 0 {
		return 0
	}
	return 2 * pr * re / (pr + re)
}

// String implements fmt.Stringer.
func (p *PRF) String() string {
	return fmt.Sprintf("p=%.3f r=%.3f f1=%.3f (tp=%d fp=%d fn=%d)",
		p.Precision(), p.Recall(), p.F1(), p.TP, p.FP, p.FN)
}

// BoolAccuracy accumulates agreement between a predicted and a true
// boolean per frame — used for query-level predicate accuracy.
type BoolAccuracy struct {
	N, Agree int
	prf      PRF
}

// Observe records one (prediction, truth) pair.
func (b *BoolAccuracy) Observe(pred, truth bool) {
	b.N++
	if pred == truth {
		b.Agree++
	}
	switch {
	case pred && truth:
		b.prf.TP++
	case pred && !truth:
		b.prf.FP++
	case !pred && truth:
		b.prf.FN++
	}
}

// Accuracy returns the agreement fraction.
func (b *BoolAccuracy) Accuracy() float64 {
	if b.N == 0 {
		return 0
	}
	return float64(b.Agree) / float64(b.N)
}

// F1 returns the f1 score treating truth=true as the positive class.
func (b *BoolAccuracy) F1() float64 { return b.prf.F1() }

// Recall returns the recall over positive frames — the measure the paper's
// Table III uses for count queries ("the fraction of frames that are
// correctly identified by our filters over the number of frames in which
// the query predicates are true").
func (b *BoolAccuracy) Recall() float64 { return b.prf.Recall() }

// Precision returns precision over predicted-positive frames.
func (b *BoolAccuracy) Precision() float64 { return b.prf.Precision() }
