package experiments

import (
	"fmt"
	"strings"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/plan"
	"vmq/internal/query"
	"vmq/internal/simclock"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// PlannerRow compares the automatic filter-selection optimizer (package
// plan) against the paper's hand-picked Table III combination for one
// query.
type PlannerRow struct {
	Query       string
	PaperCombo  string
	ChosenTol   query.Tolerances
	PaperTol    query.Tolerances
	Accuracy    float64
	PaperAcc    float64 // accuracy of the hand-picked combo on this run
	Seconds     float64
	PaperSec    float64 // virtual seconds of the hand-picked combo
	CalibFrames int
}

// Planner runs q1–q7 with tolerances chosen automatically from a
// calibration prefix (annotated by the oracle, as the paper annotates its
// training data with Mask R-CNN) and compares against the hand-picked
// combinations — the filter-ordering optimization the paper leaves as
// future work.
func Planner(cfg Config) []PlannerRow {
	const calibSize = 3000
	const targetRecall = 0.99
	var rows []PlannerRow
	for _, spec := range TableIIIQueries() {
		p, ok := video.ProfileByName(spec.Dataset)
		if !ok {
			panic("experiments: unknown dataset " + spec.Dataset)
		}
		q, err := vql.Parse(spec.VQL)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", spec.Name, err))
		}
		pl := query.MustBind(q, p)
		backend := filters.NewODFilter(p, cfg.seed(), nil)

		// Calibration prefix, then the test stream continues from there.
		src := video.NewStream(p, cfg.seed()+9)
		calib := src.Take(calibSize)
		best, _ := plan.Choose(pl, backend, detect.NewOracle(nil), calib, targetRecall)

		n := cfg.framesFor(p)
		frames := src.Take(n)
		truth := query.GroundTruth(pl, frames)

		run := func(tol query.Tolerances) (float64, time.Duration) {
			eng := &query.Engine{Backend: backend, Detector: detect.NewOracle(nil), Tol: tol}
			res := eng.Run(pl, frames)
			return query.Score(res, truth), res.VirtualTime
		}
		acc, dur := run(best.Tol)
		paperAcc, paperDur := run(spec.Tol)
		rows = append(rows, PlannerRow{
			Query:       spec.Name,
			PaperCombo:  spec.Combo,
			ChosenTol:   best.Tol,
			PaperTol:    spec.Tol,
			Accuracy:    acc,
			PaperAcc:    paperAcc,
			Seconds:     dur.Seconds(),
			PaperSec:    paperDur.Seconds(),
			CalibFrames: calibSize,
		})
	}
	return rows
}

// FormatPlanner renders the optimizer comparison.
func FormatPlanner(rows []PlannerRow) string {
	var b strings.Builder
	b.WriteString("Filter-selection optimizer vs Table III hand-picked combinations\n")
	fmt.Fprintf(&b, "%-4s %-12s %-12s %7s %7s %9s %9s\n",
		"q", "chosen", "hand-picked", "acc", "hpAcc", "time(s)", "hpTime(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-12s %-12s %7.3f %7.3f %9.1f %9.1f\n",
			r.Query, r.ChosenTol, r.PaperTol, r.Accuracy, r.PaperAcc, r.Seconds, r.PaperSec)
	}
	b.WriteString(fmt.Sprintf("(calibration: %d oracle-annotated frames = %v of virtual annotation time per query)\n",
		rows[0].CalibFrames, time.Duration(rows[0].CalibFrames)*simclock.CostMaskRCNN.PerCall))
	return b.String()
}
