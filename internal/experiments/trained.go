package experiments

import (
	"fmt"
	"strings"

	"vmq/internal/filters"
	"vmq/internal/grid"
	"vmq/internal/metrics"
	"vmq/internal/video"
)

// TrainedRow reports one real-CNN backend's held-out accuracy at
// reproduction scale, next to the calibrated backend that the full-size
// experiments use.
type TrainedRow struct {
	Backend    string // "IC trained", "OD trained", "IC calibrated", ...
	CountExact float64
	CountW1    float64
	LocF1R1    float64 // car localisation f1 at Manhattan radius 1
}

// ThresholdRow is one setting of the activation-map threshold sweep for
// the trained OD backend (the paper thresholds OD grids at 0.2).
type ThresholdRow struct {
	Threshold float32
	LocF1R1   float64
}

// TrainedComparison trains real IC and OD branch networks on rasterised
// Jackson frames (the paper's pipeline at laptop scale), evaluates their
// held-out counting and localisation accuracy against the calibrated
// backends, and sweeps the OD map threshold. It validates that the
// architecture and losses of Section II learn both tasks and that the
// statistical surrogate used by the full-size experiments sits in the same
// accuracy regime.
func TrainedComparison(cfg Config) (rows []TrainedRow, sweep []ThresholdRow) {
	p := video.Jackson()
	tcfg := filters.TrainedConfig{Frames: 250, Epochs: 4, Img: 32, Channels: 16, Seed: cfg.seed()}
	icT := filters.TrainFilter(filters.IC, p, tcfg, nil)
	odT := filters.TrainFilter(filters.OD, p, tcfg, nil)
	icC := filters.NewICFilter(p, cfg.seed(), nil)
	odC := filters.NewODFilter(p, cfg.seed(), nil)

	const testFrames = 150
	gT := icT.Grid()
	backends := []struct {
		name    string
		backend filters.Backend
		grid    int
	}{
		{"IC trained", icT, gT},
		{"OD trained", odT, gT},
		{"IC calibrated", icC, 56},
		{"OD calibrated", odC, 56},
	}

	counts := make([]metrics.CountAccuracy, len(backends))
	locs := make([]metrics.PRF, len(backends))
	s := video.NewStream(p, cfg.seed()+100)
	frames := s.Take(testFrames)
	for _, f := range frames {
		for bi, be := range backends {
			out := be.backend.Evaluate(f)
			counts[bi].Observe(f.CountClass(video.Car), out.Counts[video.Car])
			truth := grid.FromCenters(classBoxes(f, video.Car), f.Bounds, be.grid)
			tp, fp, fn := grid.Match(out.Map(video.Car, be.grid), truth, 1)
			locs[bi].Add(tp, fp, fn)
		}
	}
	for bi, be := range backends {
		rows = append(rows, TrainedRow{
			Backend:    be.name,
			CountExact: counts[bi].Accuracy(0),
			CountW1:    counts[bi].Accuracy(1),
			LocF1R1:    locs[bi].F1(),
		})
	}

	// Threshold sweep on the trained OD maps.
	for _, th := range []float32{0.05, 0.2, 0.5} {
		odT.Threshold = th
		var prf metrics.PRF
		for _, f := range frames {
			out := odT.Evaluate(f)
			truth := grid.FromCenters(classBoxes(f, video.Car), f.Bounds, gT)
			tp, fp, fn := grid.Match(out.Map(video.Car, gT), truth, 1)
			prf.Add(tp, fp, fn)
		}
		sweep = append(sweep, ThresholdRow{Threshold: th, LocF1R1: prf.F1()})
	}
	odT.Threshold = 0.2
	return rows, sweep
}

// FormatTrainedComparison renders the real-CNN validation experiment.
func FormatTrainedComparison(rows []TrainedRow, sweep []ThresholdRow) string {
	var b strings.Builder
	b.WriteString("Trained CNN backends vs calibrated surrogates (Jackson, car class, held-out frames)\n")
	fmt.Fprintf(&b, "%-15s %11s %8s %8s\n", "backend", "countExact", "count±1", "locF1@M1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %11.3f %8.3f %8.3f\n", r.Backend, r.CountExact, r.CountW1, r.LocF1R1)
	}
	b.WriteString("OD activation-map threshold sweep (paper uses 0.2):\n")
	for _, r := range sweep {
		fmt.Fprintf(&b, "  threshold %.2f: f1@M1 %.3f\n", r.Threshold, r.LocF1R1)
	}
	return b.String()
}
