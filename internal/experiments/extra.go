package experiments

import (
	"fmt"
	"strings"

	"vmq/internal/filters"
	"vmq/internal/metrics"
	"vmq/internal/query"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// ConstraintAccuracyResult reports the Section IV-A comparison: the OD
// filters assessing "car left of a bus" directly from activation maps
// versus a manually annotated ground truth (here, the simulator's exact
// annotations). The paper reports 99 % agreement.
type ConstraintAccuracyResult struct {
	Frames    int
	Agreement float64
	F1        float64
}

// ConstraintAccuracy measures per-frame agreement of the OD-CLF-based
// constraint check against ground truth on Detrac.
func ConstraintAccuracy(cfg Config) ConstraintAccuracyResult {
	p, _ := video.ProfileByName("detrac")
	n := cfg.framesFor(p)
	frames := video.NewStream(p, cfg.seed()+6).Take(n)
	q, err := vql.Parse(`SELECT FRAMES FROM detrac WHERE car LEFT OF bus`)
	if err != nil {
		panic(err)
	}
	plan := query.MustBind(q, p)
	truth := query.GroundTruth(plan, frames)
	backend := filters.NewODFilter(p, cfg.seed(), nil)
	var acc metrics.BoolAccuracy
	for i, f := range frames {
		out := backend.Evaluate(f)
		pred := plan.Where.EvalFilter(out, f.Bounds, query.Tolerances{Location: 1})
		acc.Observe(pred, truth[i])
	}
	return ConstraintAccuracyResult{Frames: n, Agreement: acc.Accuracy(), F1: acc.F1()}
}

// FormatConstraintAccuracy renders the Section IV-A comparison.
func FormatConstraintAccuracy(r ConstraintAccuracyResult) string {
	return fmt.Sprintf("Constraint check (car left of bus) vs annotated ground truth: "+
		"agreement %.3f, f1 %.3f over %d frames (paper: 0.99)\n", r.Agreement, r.F1, r.Frames)
}

// BranchTradeoffRow is one grid-size setting of the branch-placement
// ablation the paper discusses in Section IV: later branch layers shrink
// the grid (56 → 28 → 14), which "penalizes location accuracy (up to 8%
// lower across all techniques)".
type BranchTradeoffRow struct {
	GridSize int
	// SpatialF1 is the filter-only f1 of the q5-style spatial predicate
	// against ground truth.
	SpatialF1 float64
	// CountAccuracy is exact total-count accuracy (unchanged by the grid).
	CountAccuracy float64
}

// BranchTradeoff evaluates the OD filter at grid sizes 56, 28 and 14 on
// the Jackson spatial workload.
func BranchTradeoff(cfg Config) []BranchTradeoffRow {
	p, _ := video.ProfileByName("jackson")
	n := cfg.framesFor(p)
	frames := video.NewStream(p, cfg.seed()+7).Take(n)
	q, err := vql.Parse(`SELECT FRAMES FROM jackson WHERE car LEFT OF person`)
	if err != nil {
		panic(err)
	}
	plan := query.MustBind(q, p)
	truth := query.GroundTruth(plan, frames)
	var rows []BranchTradeoffRow
	for _, g := range []int{56, 28, 14} {
		backend := filters.NewCalibrated(filters.OD, filters.ODCalibration(), p, g, cfg.seed(), nil)
		var acc metrics.BoolAccuracy
		var counts metrics.CountAccuracy
		for i, f := range frames {
			out := backend.Evaluate(f)
			pred := plan.Where.EvalFilter(out, f.Bounds, query.Tolerances{})
			acc.Observe(pred, truth[i])
			counts.Observe(f.Count(), out.Total)
		}
		rows = append(rows, BranchTradeoffRow{
			GridSize:      g,
			SpatialF1:     acc.F1(),
			CountAccuracy: counts.Accuracy(0),
		})
	}
	return rows
}

// FormatBranchTradeoff renders the ablation rows.
func FormatBranchTradeoff(rows []BranchTradeoffRow) string {
	var b strings.Builder
	b.WriteString("Branch placement ablation: grid size vs spatial-predicate f1 (Jackson, car LEFT OF person)\n")
	fmt.Fprintf(&b, "%6s %10s %10s\n", "grid", "spatialF1", "countAcc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10.3f %10.3f\n", r.GridSize, r.SpatialF1, r.CountAccuracy)
	}
	return b.String()
}

// UnexpectedObjectsResult reports the unexpected-object monitoring
// experiment the evaluation section mentions ("we demonstrate the
// effectiveness of our approach to identify unexpected objects on video
// streams"): a rare foreign class is injected into a traffic stream and
// flagged by its CCF estimate alone.
type UnexpectedObjectsResult struct {
	Frames    int
	Injected  int
	Precision float64
	Recall    float64
}

// UnexpectedObjects injects a rare bicycle class into a Jackson-like
// stream and flags frames whose bicycle CCF estimate rounds to >= 1.
func UnexpectedObjects(cfg Config) UnexpectedObjectsResult {
	p, _ := video.ProfileByName("jackson")
	// Rare foreign class: 8% of spawns are bicycles. Spawns are much rarer
	// than frames (objects persist on screen), so the clip must be long
	// enough for a few foreign objects to appear at all.
	p.Name = "jackson-anomaly"
	p.Classes = []video.ClassMix{
		{Class: video.Car, P: 0.72},
		{Class: video.Person, P: 0.20},
		{Class: video.Bicycle, P: 0.08},
	}
	n := cfg.framesFor(p)
	if n < 3000 {
		n = 3000
	}
	frames := video.NewStream(p, cfg.seed()+8).Take(n)
	backend := filters.NewODFilter(p, cfg.seed(), nil)
	var prf metrics.PRF
	injected := 0
	for _, f := range frames {
		truth := f.CountClass(video.Bicycle) > 0
		if truth {
			injected++
		}
		pred := backend.Evaluate(f).Counts[video.Bicycle] >= 0.5
		switch {
		case pred && truth:
			prf.TP++
		case pred && !truth:
			prf.FP++
		case !pred && truth:
			prf.FN++
		}
	}
	return UnexpectedObjectsResult{
		Frames: n, Injected: injected,
		Precision: prf.Precision(), Recall: prf.Recall(),
	}
}

// FormatUnexpectedObjects renders the anomaly-flagging result.
func FormatUnexpectedObjects(r UnexpectedObjectsResult) string {
	return fmt.Sprintf("Unexpected-object flagging: %d/%d frames contained the foreign class; "+
		"precision %.3f, recall %.3f\n", r.Injected, r.Frames, r.Precision, r.Recall)
}
