package experiments

import (
	"fmt"
	"strings"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/simclock"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// QuerySpec pairs one of the paper's benchmark queries with the filter
// combination Table III reports as the most selective combination reaching
// (near-)full accuracy.
type QuerySpec struct {
	Name    string
	Dataset string
	VQL     string
	Combo   string // the paper's filter-combination label
	Tol     query.Tolerances
	// PaperSeconds is Table III's execution time for reference.
	PaperSeconds float64
	// PaperAccuracy is Table III's accuracy (1.0 except q7 = 0.93).
	PaperAccuracy float64
}

// TableIIIQueries returns q1–q7 exactly as defined in Section IV-B,
// annotated with the filter combinations of Table III.
func TableIIIQueries() []QuerySpec {
	return []QuerySpec{
		{
			Name: "q1", Dataset: "coral",
			VQL:   `SELECT FRAMES FROM coral WHERE COUNT(person) = 2`,
			Combo: "OD-CCF-1", Tol: query.Tolerances{Count: 1},
			PaperSeconds: 909.4, PaperAccuracy: 1,
		},
		{
			Name: "q2", Dataset: "coral",
			VQL: `SELECT FRAMES FROM coral
				WHERE COUNT(person) >= 2 AND COUNT(person IN QUADRANT(LOWER LEFT)) = 2`,
			Combo: "OD-CCF-1/OD-CLF", Tol: query.Tolerances{Count: 1},
			PaperSeconds: 427, PaperAccuracy: 1,
		},
		{
			Name: "q3", Dataset: "jackson",
			VQL:   `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1`,
			Combo: "OD-CCF", Tol: query.Tolerances{},
			PaperSeconds: 87.4, PaperAccuracy: 1,
		},
		{
			Name: "q4", Dataset: "jackson",
			VQL:   `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1 AND COUNT(person) >= 1`,
			Combo: "OD-CCF", Tol: query.Tolerances{},
			PaperSeconds: 122.6, PaperAccuracy: 1,
		},
		{
			Name: "q5", Dataset: "jackson",
			VQL: `SELECT FRAMES FROM jackson
				WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`,
			Combo: "OD-CCF/OD-CLF-1", Tol: query.Tolerances{Location: 1},
			PaperSeconds: 67.6, PaperAccuracy: 1,
		},
		{
			Name: "q6", Dataset: "detrac",
			VQL:   `SELECT FRAMES FROM detrac WHERE COUNT(car) = 1 AND COUNT(bus) = 1`,
			Combo: "OD-CCF-1", Tol: query.Tolerances{Count: 1},
			PaperSeconds: 367.6, PaperAccuracy: 1,
		},
		{
			Name: "q7", Dataset: "detrac",
			VQL: `SELECT FRAMES FROM detrac
				WHERE COUNT(car) = 1 AND COUNT(bus) = 1 AND car LEFT OF bus`,
			Combo: "OD-CCF-1/OD-CLF-2", Tol: query.Tolerances{Count: 1, Location: 2},
			PaperSeconds: 293.4, PaperAccuracy: 0.93,
		},
	}
}

// TableIIIRow is one row of Table III with the brute-force comparison of
// the accompanying text ("To run Coral through Mask R-CNN requires 5.2
// hours ...").
type TableIIIRow struct {
	Query         string
	Combo         string
	Frames        int
	TrueFrames    int
	Matched       int
	Accuracy      float64
	Selectivity   float64
	FilterSeconds float64 // cascaded execution, virtual time
	BruteSeconds  float64 // detector-on-every-frame, virtual time
	Speedup       float64
	PaperSeconds  float64
	PaperAccuracy float64
}

// TableIII executes q1–q7 with their Table III filter combinations,
// measuring accuracy against ground truth and virtual execution time
// against the brute-force baseline.
func TableIII(cfg Config) []TableIIIRow {
	var rows []TableIIIRow
	for _, spec := range TableIIIQueries() {
		p, ok := video.ProfileByName(spec.Dataset)
		if !ok {
			panic("experiments: unknown dataset " + spec.Dataset)
		}
		n := cfg.framesFor(p)
		frames := video.NewStream(p, cfg.seed()+4).Take(n)
		q, err := vql.Parse(spec.VQL)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", spec.Name, err))
		}
		plan := query.MustBind(q, p)
		truth := query.GroundTruth(plan, frames)
		trueFrames := 0
		for _, t := range truth {
			if t {
				trueFrames++
			}
		}
		eng := &query.Engine{
			Backend:  filters.NewODFilter(p, cfg.seed(), nil),
			Detector: detect.NewOracle(nil),
			Tol:      spec.Tol,
		}
		res := eng.Run(plan, frames)
		brute := time.Duration(n) * simclock.CostMaskRCNN.PerCall
		rows = append(rows, TableIIIRow{
			Query:         spec.Name,
			Combo:         spec.Combo,
			Frames:        n,
			TrueFrames:    trueFrames,
			Matched:       len(res.Matched),
			Accuracy:      query.Score(res, truth),
			Selectivity:   res.Selectivity(),
			FilterSeconds: res.VirtualTime.Seconds(),
			BruteSeconds:  brute.Seconds(),
			Speedup:       brute.Seconds() / res.VirtualTime.Seconds(),
			PaperSeconds:  spec.PaperSeconds,
			PaperAccuracy: spec.PaperAccuracy,
		})
	}
	return rows
}

// FormatTableIII renders the rows in Table III's layout with the
// brute-force comparison.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	b.WriteString("Table III: Execution times (s) and filter combinations\n")
	fmt.Fprintf(&b, "%-4s %-18s %7s %6s %9s %9s %8s %9s %9s\n",
		"q", "combo", "frames", "acc", "filt(s)", "brute(s)", "speedup", "paper(s)", "paperAcc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-18s %7d %6.3f %9.1f %9.1f %7.1fx %9.1f %9.2f\n",
			r.Query, r.Combo, r.Frames, r.Accuracy,
			r.FilterSeconds, r.BruteSeconds, r.Speedup, r.PaperSeconds, r.PaperAccuracy)
	}
	return b.String()
}

// AggregateSpec pairs one of the paper's Table IV aggregate queries with
// its published variance reduction.
type AggregateSpec struct {
	Name           string
	Dataset        string
	VQL            string
	PaperReduction float64
	PaperMsPerFrm  float64
}

// TableIVQueries returns a1–a5 exactly as defined in Section IV-C.
func TableIVQueries() []AggregateSpec {
	return []AggregateSpec{
		{
			Name: "a1", Dataset: "jackson",
			VQL: `SELECT COUNT(FRAMES) FROM jackson
				WHERE car IN QUADRANT(LOWER RIGHT)`,
			PaperReduction: 48, PaperMsPerFrm: 201.6,
		},
		{
			Name: "a2", Dataset: "jackson",
			VQL: `SELECT COUNT(FRAMES) FROM jackson
				WHERE car LEFT OF person`,
			PaperReduction: 12, PaperMsPerFrm: 201.6,
		},
		{
			// The paper's a3 asks for frames with exactly three objects; on
			// the synthetic Detrac (mean 15.8 objects with strong temporal
			// correlation) such frames effectively never occur within one
			// window, so the count constraint is adapted to >= 3. The
			// experiment's purpose — multiple control variates across a
			// count predicate and two region predicates — is unchanged.
			Name: "a3", Dataset: "detrac",
			VQL: `SELECT COUNT(FRAMES) FROM detrac
				WHERE COUNT(*) >= 3 AND car IN QUADRANT(LOWER LEFT) AND bus IN QUADRANT(UPPER LEFT)`,
			PaperReduction: 38, PaperMsPerFrm: 202.2,
		},
		{
			Name: "a4", Dataset: "detrac",
			VQL: `SELECT COUNT(FRAMES) FROM detrac
				WHERE car LEFT OF bus`,
			PaperReduction: 230, PaperMsPerFrm: 201.6,
		},
		{
			Name: "a5", Dataset: "coral",
			VQL: `SELECT COUNT(FRAMES) FROM coral
				WHERE COUNT(person) = 3 AND COUNT(person IN QUADRANT(LOWER LEFT)) >= 2`,
			PaperReduction: 89, PaperMsPerFrm: 202.2,
		},
	}
}

// TableIVRow is one row of Table IV: the virtual time per sampled frame
// (filters plus the Mask R-CNN stand-in) and the measured variance
// reduction from control variates, averaged over the configured number of
// repetitions.
type TableIVRow struct {
	Query          string
	Controls       int
	MsPerSample    float64
	MeanReduction  float64
	MeanEstimate   float64
	TrueValue      float64
	Repetitions    int
	PaperReduction float64
	PaperMsPerFrm  float64
}

// TableIV executes a1–a5 with sampling plus (multiple) control variates.
// Each query runs cfg.Repetitions times over the same window with fresh
// samples; reductions are averaged as in the paper ("each query is
// executed one hundred times and we report averages").
func TableIV(cfg Config) []TableIVRow {
	return tableIVWith(cfg, filters.ODCalibration())
}

// TableIVHighFidelity is the control-variate ablation: the same five
// aggregate queries with a near-saturation filter calibration, showing
// that the CV machinery reaches the paper's largest variance reductions
// once filter/ground-truth agreement is high enough.
func TableIVHighFidelity(cfg Config) []TableIVRow {
	return tableIVWith(cfg, filters.HighFidelityCalibration())
}

func tableIVWith(cfg Config, cal filters.Calibration) []TableIVRow {
	var rows []TableIVRow
	for _, spec := range TableIVQueries() {
		p, ok := video.ProfileByName(spec.Dataset)
		if !ok {
			panic("experiments: unknown dataset " + spec.Dataset)
		}
		n := cfg.framesFor(p)
		frames := video.NewStream(p, cfg.seed()+5).Take(n)
		q, err := vql.Parse(spec.VQL)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", spec.Name, err))
		}
		plan := query.MustBind(q, p)
		backend := filters.NewCalibrated(filters.OD, cal, p, 56, cfg.seed(), nil)
		det := detect.NewOracle(nil)
		sampleSize := n / 10
		if sampleSize < 30 {
			sampleSize = 30
		}
		reps := cfg.reps()
		var sumRed, sumEst float64
		var controls int
		var perSample time.Duration
		var truth float64
		for rep := 0; rep < reps; rep++ {
			res, err := query.RunAggregate(plan, frames, backend, det, query.AggregateConfig{
				SampleSize:       sampleSize,
				Sampler:          stream.NewUniformSampler(cfg.seed() + uint64(rep)*7919),
				MuFromFullWindow: true,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %s: %v", spec.Name, err))
			}
			// Cap per-repetition reductions: a sample whose residuals all
			// vanish reports an infinite ratio, which would swamp the mean.
			red := res.CV.Reduction
			if red > 1000 {
				red = 1000
			}
			sumRed += red
			sumEst += res.Estimate(vql.SelectFrameCount)
			controls = res.Controls
			perSample = res.VirtualTimePerSample
			truth = res.TruePerFrameMean * float64(res.WindowSize)
		}
		rows = append(rows, TableIVRow{
			Query:          spec.Name,
			Controls:       controls,
			MsPerSample:    float64(perSample.Microseconds()) / 1000,
			MeanReduction:  sumRed / float64(reps),
			MeanEstimate:   sumEst / float64(reps),
			TrueValue:      truth,
			Repetitions:    reps,
			PaperReduction: spec.PaperReduction,
			PaperMsPerFrm:  spec.PaperMsPerFrm,
		})
	}
	return rows
}

// FormatTableIV renders the rows in Table IV's layout.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	b.WriteString("Table IV: Aggregate queries, filter+detector time per sampled frame and variance reduction\n")
	fmt.Fprintf(&b, "%-4s %9s %10s %10s %10s %5s %10s %10s\n",
		"q", "ms/frame", "varRed", "estimate", "truth", "ctrl", "paperRed", "paperMs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %9.1f %9.1fx %10.1f %10.1f %5d %9.0fx %10.1f\n",
			r.Query, r.MsPerSample, r.MeanReduction, r.MeanEstimate, r.TrueValue,
			r.Controls, r.PaperReduction, r.PaperMsPerFrm)
	}
	return b.String()
}
