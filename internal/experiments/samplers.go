package experiments

import (
	"fmt"
	"math"
	"strings"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// SamplerRow compares frame samplers for one aggregate query: the empirical
// standard deviation of the plain and CV estimates across repetitions.
type SamplerRow struct {
	Sampler  string
	PlainStd float64
	CVStd    float64
	MeanEst  float64
	Truth    float64
}

// SamplerAblation runs the a1 aggregate (frames with a car in the lower
// right quadrant, Jackson) under uniform, systematic and temporally
// stratified sampling, reporting the across-repetition spread of the
// estimates. On autocorrelated video, spreading samples in time
// (systematic/stratified) reduces variance on top of what control
// variates deliver.
func SamplerAblation(cfg Config) []SamplerRow {
	p, _ := video.ProfileByName("jackson")
	n := cfg.framesFor(p)
	frames := video.NewStream(p, cfg.seed()+11).Take(n)
	q, err := vql.Parse(`SELECT COUNT(FRAMES) FROM jackson WHERE car IN QUADRANT(LOWER RIGHT)`)
	if err != nil {
		panic(err)
	}
	plan := query.MustBind(q, p)
	backend := filters.NewODFilter(p, cfg.seed(), nil)
	det := detect.NewOracle(nil)
	sampleSize := n / 10
	if sampleSize < 30 {
		sampleSize = 30
	}
	reps := cfg.reps()

	samplers := []struct {
		name string
		mk   func(seed uint64) stream.Sampler
	}{
		{"uniform", func(s uint64) stream.Sampler { return stream.NewUniformSampler(s) }},
		{"systematic", func(s uint64) stream.Sampler { return stream.NewSystematicSampler(s) }},
		{"stratified", func(s uint64) stream.Sampler { return stream.NewStratifiedSampler(s) }},
	}
	var rows []SamplerRow
	for _, sm := range samplers {
		var plainSum, plainSq, cvSum, cvSq float64
		var truth float64
		for rep := 0; rep < reps; rep++ {
			res, err := query.RunAggregate(plan, frames, backend, det, query.AggregateConfig{
				SampleSize:       sampleSize,
				Sampler:          sm.mk(cfg.seed() + uint64(rep)*6151),
				MuFromFullWindow: true,
			})
			if err != nil {
				panic(err)
			}
			plainSum += res.Plain.Mean
			plainSq += res.Plain.Mean * res.Plain.Mean
			cvSum += res.CV.Estimate
			cvSq += res.CV.Estimate * res.CV.Estimate
			truth = res.TruePerFrameMean
		}
		r := float64(reps)
		plainVar := plainSq/r - (plainSum/r)*(plainSum/r)
		cvVar := cvSq/r - (cvSum/r)*(cvSum/r)
		rows = append(rows, SamplerRow{
			Sampler:  sm.name,
			PlainStd: sqrtNonNeg(plainVar),
			CVStd:    sqrtNonNeg(cvVar),
			MeanEst:  cvSum / r,
			Truth:    truth,
		})
	}
	return rows
}

func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// FormatSamplerAblation renders the sampler comparison.
func FormatSamplerAblation(rows []SamplerRow) string {
	var b strings.Builder
	b.WriteString("Sampler ablation (a1, Jackson): across-repetition std of the per-frame estimate\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s\n", "sampler", "plainStd", "cvStd", "meanEst", "truth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.4f %10.4f %10.4f %10.4f\n",
			r.Sampler, r.PlainStd, r.CVStd, r.MeanEst, r.Truth)
	}
	return b.String()
}
