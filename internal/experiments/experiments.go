// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic substrate: Table II (dataset
// characteristics), Figure 7 (count-filter accuracy), Figures 8–10/11
// (per-class CCF accuracy), Figures 12–14/15 (per-class CLF f1), Table III
// (query execution times at the paper's filter combinations) and Table IV
// (aggregate queries with control variates). Two further experiments cover
// Section IV-A's constraint-accuracy comparison and the branch-depth /
// grid-size trade-off the paper discusses in the text.
//
// Each experiment returns structured rows plus a Format helper that prints
// the same layout the paper reports, so benches and the CLI share one
// implementation.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"vmq/internal/video"
)

// Config scales the experiments. The zero value selects the paper's test
// split sizes (Table II); smaller Frames values give quick runs for tests
// and benchmarks.
type Config struct {
	// Frames caps the number of test frames per dataset (0 = the paper's
	// test split size).
	Frames int
	// Seed drives stream generation and samplers.
	Seed uint64
	// Repetitions is the number of times aggregate queries are re-run
	// (paper: 100; 0 defaults to 20).
	Repetitions int
}

func (c Config) framesFor(p video.Profile) int {
	if c.Frames > 0 && c.Frames < p.TestSize {
		return c.Frames
	}
	return p.TestSize
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 20
	}
	return c.Seed
}

func (c Config) reps() int {
	if c.Repetitions <= 0 {
		return 20
	}
	return c.Repetitions
}

// TableIIRow describes one dataset, mirroring Table II's columns.
type TableIIRow struct {
	Dataset      string
	TrainSize    int
	TestSize     int
	MeasuredMean float64
	MeasuredStd  float64
	PaperMean    float64
	PaperStd     float64
	Classes      string
}

// TableII measures the synthetic datasets against Table II's published
// object/frame statistics.
func TableII(cfg Config) []TableIIRow {
	var rows []TableIIRow
	for _, p := range video.Profiles() {
		n := cfg.framesFor(p)
		s := video.NewStream(p, cfg.seed())
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			f := s.Next()
			c := float64(f.Count() - len(p.Static))
			sum += c
			sumSq += c * c
		}
		mean := sum / float64(n)
		std := math.Sqrt(math.Max(0, sumSq/float64(n)-mean*mean))
		var classes []string
		for _, cm := range p.Classes {
			if cm.P == 1 {
				classes = append(classes, cm.Class.String())
			} else {
				classes = append(classes, fmt.Sprintf("%s (%.0f%%)", cm.Class, cm.P*100))
			}
		}
		rows = append(rows, TableIIRow{
			Dataset:      p.Name,
			TrainSize:    p.TrainSize,
			TestSize:     p.TestSize,
			MeasuredMean: mean,
			MeasuredStd:  std,
			PaperMean:    p.MeanObjs,
			PaperStd:     p.StdObjs,
			Classes:      strings.Join(classes, ", "),
		})
	}
	return rows
}

// FormatTableII renders the rows in Table II's layout.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Datasets and their characteristics\n")
	fmt.Fprintf(&b, "%-9s %9s %9s %11s %9s %s\n", "Dataset", "Train", "Test", "Obj/Frame", "std", "Classes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %9d %9d %5.1f(%4.1f) %4.1f(%4.1f) %s\n",
			r.Dataset, r.TrainSize, r.TestSize,
			r.MeasuredMean, r.PaperMean, r.MeasuredStd, r.PaperStd, r.Classes)
	}
	b.WriteString("(measured(paper) per column)\n")
	return b.String()
}
