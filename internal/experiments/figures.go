package experiments

import (
	"fmt"
	"strings"

	"vmq/internal/filters"
	"vmq/internal/geom"
	"vmq/internal/grid"
	"vmq/internal/metrics"
	"vmq/internal/video"
)

// Figure7Row is one bar group of Figure 7: the accuracy of a total-count
// filter on one dataset at exact/±1/±2 tolerance.
type Figure7Row struct {
	Dataset string
	Filter  string // "OD-COF", "IC-CF", "OD-CF"
	Exact   float64
	Within1 float64
	Within2 float64
}

// Figure7 reproduces the count-filter accuracy comparison across the three
// datasets.
func Figure7(cfg Config) []Figure7Row {
	var rows []Figure7Row
	for _, p := range video.Profiles() {
		n := cfg.framesFor(p)
		backends := []struct {
			name string
			b    filters.Backend
		}{
			{"OD-COF", filters.NewCOFFilter(p, cfg.seed(), nil)},
			{"IC-CF", filters.NewICFilter(p, cfg.seed(), nil)},
			{"OD-CF", filters.NewODFilter(p, cfg.seed(), nil)},
		}
		accs := make([]metrics.CountAccuracy, len(backends))
		s := video.NewStream(p, cfg.seed()+1)
		for i := 0; i < n; i++ {
			f := s.Next()
			truth := f.Count()
			for bi, be := range backends {
				accs[bi].Observe(truth, be.b.Evaluate(f).Total)
			}
		}
		for bi, be := range backends {
			rows = append(rows, Figure7Row{
				Dataset: p.Name, Filter: be.name,
				Exact:   accs[bi].Accuracy(0),
				Within1: accs[bi].Accuracy(1),
				Within2: accs[bi].Accuracy(2),
			})
		}
	}
	return rows
}

// FormatFigure7 renders the rows as the bar values of Figure 7.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: Accuracy of object count filters\n")
	fmt.Fprintf(&b, "%-9s %-7s %7s %7s %7s\n", "Dataset", "Filter", "exact", "±1", "±2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-7s %7.3f %7.3f %7.3f\n", r.Dataset, r.Filter, r.Exact, r.Within1, r.Within2)
	}
	return b.String()
}

// Figure11Row is one bar group of Figures 8–10 (jointly Figure 11):
// per-class count accuracy for the IC and OD CCF filters.
type Figure11Row struct {
	Dataset string
	Filter  string // "IC-CCF", "OD-CCF"
	Class   string
	Exact   float64
	Within1 float64
	Within2 float64
}

// Figure11 reproduces the per-class CCF accuracy comparison (Figures 8,
// 9 and 10 for Coral, Jackson and Detrac respectively).
func Figure11(cfg Config) []Figure11Row {
	var rows []Figure11Row
	for _, p := range video.Profiles() {
		n := cfg.framesFor(p)
		ic := filters.NewICFilter(p, cfg.seed(), nil)
		od := filters.NewODFilter(p, cfg.seed(), nil)
		type key struct {
			filter string
			class  video.Class
		}
		accs := map[key]*metrics.CountAccuracy{}
		for _, cm := range p.Classes {
			accs[key{"IC-CCF", cm.Class}] = &metrics.CountAccuracy{}
			accs[key{"OD-CCF", cm.Class}] = &metrics.CountAccuracy{}
		}
		s := video.NewStream(p, cfg.seed()+2)
		for i := 0; i < n; i++ {
			f := s.Next()
			io, oo := ic.Evaluate(f), od.Evaluate(f)
			for _, cm := range p.Classes {
				truth := f.CountClass(cm.Class)
				accs[key{"IC-CCF", cm.Class}].Observe(truth, io.Counts[cm.Class])
				accs[key{"OD-CCF", cm.Class}].Observe(truth, oo.Counts[cm.Class])
			}
		}
		for _, filter := range []string{"IC-CCF", "OD-CCF"} {
			for _, cm := range p.Classes {
				a := accs[key{filter, cm.Class}]
				rows = append(rows, Figure11Row{
					Dataset: p.Name, Filter: filter, Class: cm.Class.String(),
					Exact: a.Accuracy(0), Within1: a.Accuracy(1), Within2: a.Accuracy(2),
				})
			}
		}
	}
	return rows
}

// FormatFigure11 renders the per-class CCF accuracies.
func FormatFigure11(rows []Figure11Row) string {
	var b strings.Builder
	b.WriteString("Figures 8-10 (11): CCF performance across data sets per class\n")
	fmt.Fprintf(&b, "%-9s %-7s %-9s %7s %7s %7s\n", "Dataset", "Filter", "Class", "exact", "±1", "±2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-7s %-9s %7.3f %7.3f %7.3f\n",
			r.Dataset, r.Filter, r.Class, r.Exact, r.Within1, r.Within2)
	}
	return b.String()
}

// Figure15Row is one bar group of Figures 12–14 (jointly Figure 15):
// per-class localisation f1 of the CLF filters at exact cell, Manhattan 1
// and Manhattan 2 tolerance.
type Figure15Row struct {
	Dataset string
	Filter  string // "IC-CLF", "OD-CLF"
	Class   string
	F1      float64
	F1R1    float64
	F1R2    float64
}

// Figure15 reproduces the CLF localisation comparison. Ground-truth maps
// mark the grid cell of each object centre, matching the prediction
// semantics of the filters.
func Figure15(cfg Config) []Figure15Row {
	var rows []Figure15Row
	for _, p := range video.Profiles() {
		n := cfg.framesFor(p)
		ic := filters.NewICFilter(p, cfg.seed(), nil)
		od := filters.NewODFilter(p, cfg.seed(), nil)
		type key struct {
			filter string
			class  video.Class
		}
		prfs := map[key]*[3]metrics.PRF{}
		for _, cm := range p.Classes {
			prfs[key{"IC-CLF", cm.Class}] = &[3]metrics.PRF{}
			prfs[key{"OD-CLF", cm.Class}] = &[3]metrics.PRF{}
		}
		s := video.NewStream(p, cfg.seed()+3)
		for i := 0; i < n; i++ {
			f := s.Next()
			io, oo := ic.Evaluate(f), od.Evaluate(f)
			for _, cm := range p.Classes {
				truth := grid.FromCenters(classBoxes(f, cm.Class), f.Bounds, 56)
				for r := 0; r <= 2; r++ {
					tp, fp, fn := grid.Match(io.Map(cm.Class, 56), truth, r)
					prfs[key{"IC-CLF", cm.Class}][r].Add(tp, fp, fn)
					tp, fp, fn = grid.Match(oo.Map(cm.Class, 56), truth, r)
					prfs[key{"OD-CLF", cm.Class}][r].Add(tp, fp, fn)
				}
			}
		}
		for _, filter := range []string{"IC-CLF", "OD-CLF"} {
			for _, cm := range p.Classes {
				pr := prfs[key{filter, cm.Class}]
				rows = append(rows, Figure15Row{
					Dataset: p.Name, Filter: filter, Class: cm.Class.String(),
					F1: pr[0].F1(), F1R1: pr[1].F1(), F1R2: pr[2].F1(),
				})
			}
		}
	}
	return rows
}

func classBoxes(f *video.Frame, cls video.Class) []geom.Rect {
	var out []geom.Rect
	for _, o := range f.Objects {
		if o.Class == cls {
			out = append(out, o.Box)
		}
	}
	return out
}

// FormatFigure15 renders the per-class CLF f1 scores.
func FormatFigure15(rows []Figure15Row) string {
	var b strings.Builder
	b.WriteString("Figures 12-14 (15): CLF performance across data sets per class (f1)\n")
	fmt.Fprintf(&b, "%-9s %-7s %-9s %7s %7s %7s\n", "Dataset", "Filter", "Class", "exact", "M1", "M2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-7s %-9s %7.3f %7.3f %7.3f\n",
			r.Dataset, r.Filter, r.Class, r.F1, r.F1R1, r.F1R2)
	}
	return b.String()
}
