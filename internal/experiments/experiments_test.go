package experiments

import (
	"math"
	"strings"
	"testing"
)

// quick keeps experiment tests fast; benches run larger slices.
var quick = Config{Frames: 600, Seed: 20, Repetitions: 5}

func TestTableII(t *testing.T) {
	rows := TableII(Config{Frames: 3000, Seed: 20})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.MeasuredMean-r.PaperMean) > r.PaperMean*0.25+0.5 {
			t.Errorf("%s: measured mean %.2f far from paper %.2f", r.Dataset, r.MeasuredMean, r.PaperMean)
		}
		if math.Abs(r.MeasuredStd-r.PaperStd) > r.PaperStd*0.4+0.5 {
			t.Errorf("%s: measured std %.2f far from paper %.2f", r.Dataset, r.MeasuredStd, r.PaperStd)
		}
		if r.Classes == "" || r.TrainSize == 0 {
			t.Errorf("%s: incomplete row %+v", r.Dataset, r)
		}
	}
	out := FormatTableII(rows)
	if !strings.Contains(out, "coral") || !strings.Contains(out, "detrac") {
		t.Error("FormatTableII missing datasets")
	}
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7(quick)
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	byKey := map[string]Figure7Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Filter] = r
		if !(r.Exact <= r.Within1 && r.Within1 <= r.Within2) {
			t.Errorf("%s/%s not monotone: %+v", r.Dataset, r.Filter, r)
		}
	}
	// OD-COF collapses on Detrac relative to the CF filters.
	if byKey["detrac/OD-COF"].Exact > byKey["detrac/IC-CF"].Exact-0.05 {
		t.Errorf("OD-COF (%v) should trail IC-CF (%v) on detrac",
			byKey["detrac/OD-COF"].Exact, byKey["detrac/IC-CF"].Exact)
	}
	// Jackson is easy for everyone.
	for _, f := range []string{"OD-COF", "IC-CF", "OD-CF"} {
		if byKey["jackson/"+f].Exact < 0.85 {
			t.Errorf("jackson/%s exact = %v", f, byKey["jackson/"+f].Exact)
		}
	}
	if s := FormatFigure7(rows); !strings.Contains(s, "OD-COF") {
		t.Error("FormatFigure7 incomplete")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows := Figure11(quick)
	// coral: 1 class, jackson: 2, detrac: 3 -> (1+2+3)*2 filters = 12.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byKey := map[string]Figure11Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Filter+"/"+r.Class] = r
	}
	// Rare classes are easier to count than common ones (paper: "higher
	// accuracy for classes that are less popular").
	if byKey["detrac/OD-CCF/truck"].Exact < byKey["detrac/OD-CCF/car"].Exact {
		t.Errorf("rare truck (%v) should beat common car (%v) at exact counts",
			byKey["detrac/OD-CCF/truck"].Exact, byKey["detrac/OD-CCF/car"].Exact)
	}
	if s := FormatFigure11(rows); !strings.Contains(s, "truck") {
		t.Error("FormatFigure11 incomplete")
	}
}

func TestFigure15Shape(t *testing.T) {
	rows := Figure15(quick)
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byKey := map[string]Figure15Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Filter+"/"+r.Class] = r
		if !(r.F1 <= r.F1R1+1e-9 && r.F1R1 <= r.F1R2+1e-9) {
			t.Errorf("%s/%s/%s tolerance not monotone: %+v", r.Dataset, r.Filter, r.Class, r)
		}
	}
	// OD localisation far ahead of IC on every dataset's dominant class.
	for _, k := range []string{"coral/person", "jackson/car", "detrac/car"} {
		parts := strings.Split(k, "/")
		od := byKey[parts[0]+"/OD-CLF/"+parts[1]]
		ic := byKey[parts[0]+"/IC-CLF/"+parts[1]]
		if od.F1 < ic.F1+0.1 {
			t.Errorf("%s: OD f1 (%v) should be far above IC (%v)", k, od.F1, ic.F1)
		}
	}
	// Rare classes localise worse (paper: lower f1 for person on Jackson,
	// truck/bus on Detrac).
	if byKey["detrac/OD-CLF/truck"].F1 > byKey["detrac/OD-CLF/car"].F1 {
		t.Errorf("rare truck f1 (%v) above common car (%v)",
			byKey["detrac/OD-CLF/truck"].F1, byKey["detrac/OD-CLF/car"].F1)
	}
	if s := FormatFigure15(rows); !strings.Contains(s, "OD-CLF") {
		t.Error("FormatFigure15 incomplete")
	}
}

func TestTableIIIShape(t *testing.T) {
	rows := TableIII(quick)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.85 {
			t.Errorf("%s: accuracy %.3f below 0.85 (combo %s, %d true frames)",
				r.Query, r.Accuracy, r.Combo, r.TrueFrames)
		}
		if r.Speedup < 2 {
			t.Errorf("%s: speedup %.1fx too small", r.Query, r.Speedup)
		}
		if r.FilterSeconds >= r.BruteSeconds {
			t.Errorf("%s: cascade (%.1fs) not below brute force (%.1fs)",
				r.Query, r.FilterSeconds, r.BruteSeconds)
		}
	}
	// Count-only queries reach (near-)perfect accuracy as in the paper.
	for _, r := range rows {
		switch r.Query {
		case "q1", "q3", "q4", "q6":
			if r.Accuracy < 0.97 {
				t.Errorf("%s: count query accuracy %.3f, want >= 0.97", r.Query, r.Accuracy)
			}
		}
	}
	if s := FormatTableIII(rows); !strings.Contains(s, "OD-CCF") {
		t.Error("FormatTableIII incomplete")
	}
}

func TestTableIVShape(t *testing.T) {
	// Rare predicates (a3, a5) need windows large enough that sampled
	// frames include positives at all.
	rows := TableIV(Config{Frames: 3000, Seed: 20, Repetitions: 4})
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.MeanReduction <= 1 {
			t.Errorf("%s: variance reduction %.2f not above 1", r.Query, r.MeanReduction)
		}
		// ~200ms detector + ~2ms filter.
		if r.MsPerSample < 200 || r.MsPerSample > 210 {
			t.Errorf("%s: ms/sample = %.1f", r.Query, r.MsPerSample)
		}
		if r.TrueValue > 0 {
			relErr := math.Abs(r.MeanEstimate-r.TrueValue) / r.TrueValue
			absErr := math.Abs(r.MeanEstimate - r.TrueValue)
			// Rare predicates (a5) have very few positives per sample, so
			// only an absolute-error bound is meaningful there.
			if relErr > 0.35 && absErr > 15 {
				t.Errorf("%s: estimate %.1f vs truth %.1f (relErr %.2f)",
					r.Query, r.MeanEstimate, r.TrueValue, relErr)
			}
		}
	}
	// a3 uses three predicate leaves -> multiple control variates.
	for _, r := range rows {
		if r.Query == "a3" && r.Controls < 2 {
			t.Errorf("a3 controls = %d, want multiple", r.Controls)
		}
	}
	if s := FormatTableIV(rows); !strings.Contains(s, "varRed") {
		t.Error("FormatTableIV incomplete")
	}
}

func TestConstraintAccuracy(t *testing.T) {
	r := ConstraintAccuracy(quick)
	if r.Agreement < 0.9 {
		t.Errorf("constraint agreement = %.3f, want >= 0.9 (paper: 0.99)", r.Agreement)
	}
	if !strings.Contains(FormatConstraintAccuracy(r), "0.99") {
		t.Error("FormatConstraintAccuracy missing paper reference")
	}
}

func TestBranchTradeoff(t *testing.T) {
	rows := BranchTradeoff(Config{Frames: 1200, Seed: 20})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].GridSize != 56 || rows[2].GridSize != 14 {
		t.Fatalf("grid order wrong: %+v", rows)
	}
	// Coarser grids must not improve spatial f1 beyond noise; the paper
	// reports up to 8% degradation.
	if rows[2].SpatialF1 > rows[0].SpatialF1+0.03 {
		t.Errorf("grid 14 f1 (%v) above grid 56 (%v)", rows[2].SpatialF1, rows[0].SpatialF1)
	}
	if s := FormatBranchTradeoff(rows); !strings.Contains(s, "spatialF1") {
		t.Error("FormatBranchTradeoff incomplete")
	}
}

func TestSamplerAblation(t *testing.T) {
	rows := SamplerAblation(Config{Frames: 2000, Seed: 20, Repetitions: 15})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]SamplerRow{}
	for _, r := range rows {
		byName[r.Sampler] = r
		// Every sampler's CV estimate should sit near the truth.
		if r.Truth > 0 && math.Abs(r.MeanEst-r.Truth) > r.Truth*0.2+0.02 {
			t.Errorf("%s: mean estimate %.4f vs truth %.4f", r.Sampler, r.MeanEst, r.Truth)
		}
	}
	// Temporal spreading must not be substantially worse than uniform on
	// an autocorrelated stream (and is typically better).
	if byName["stratified"].CVStd > byName["uniform"].CVStd*1.5+0.01 {
		t.Errorf("stratified cvStd %.4f much worse than uniform %.4f",
			byName["stratified"].CVStd, byName["uniform"].CVStd)
	}
	if s := FormatSamplerAblation(rows); !strings.Contains(s, "stratified") {
		t.Error("FormatSamplerAblation incomplete")
	}
}

func TestTrainedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training skipped in -short mode")
	}
	rows, sweep := TrainedComparison(Config{Seed: 20})
	if len(rows) != 4 || len(sweep) != 3 {
		t.Fatalf("rows=%d sweep=%d", len(rows), len(sweep))
	}
	byName := map[string]TrainedRow{}
	for _, r := range rows {
		byName[r.Backend] = r
	}
	// The trained nets must be usable: near-perfect within ±1 counts and
	// meaningful localisation.
	for _, name := range []string{"IC trained", "OD trained"} {
		if byName[name].CountW1 < 0.6 {
			t.Errorf("%s count±1 = %v", name, byName[name].CountW1)
		}
		if byName[name].LocF1R1 < 0.4 {
			t.Errorf("%s locF1 = %v", name, byName[name].LocF1R1)
		}
	}
	// The mid threshold (the paper's 0.2) should not be the worst setting.
	if sweep[1].LocF1R1 < sweep[0].LocF1R1 && sweep[1].LocF1R1 < sweep[2].LocF1R1 {
		t.Errorf("threshold sweep inverted: %+v", sweep)
	}
	if s := FormatTrainedComparison(rows, sweep); !strings.Contains(s, "threshold") {
		t.Error("FormatTrainedComparison incomplete")
	}
}

func TestUnexpectedObjects(t *testing.T) {
	r := UnexpectedObjects(Config{Frames: 2000, Seed: 20})
	if r.Injected == 0 {
		t.Fatal("no foreign objects injected")
	}
	if r.Recall < 0.8 || r.Precision < 0.8 {
		t.Errorf("anomaly flagging p=%.3f r=%.3f too weak", r.Precision, r.Recall)
	}
	if FormatUnexpectedObjects(r) == "" {
		t.Error("empty format")
	}
}
