package experiments

import (
	"strings"
	"testing"
)

func TestPlanner(t *testing.T) {
	rows := Planner(Config{Frames: 1000, Seed: 20})
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		// The optimizer must be at least as accurate as 0.85 everywhere
		// and must never be wildly slower than the hand-picked combo.
		if r.Accuracy < 0.85 {
			t.Errorf("%s: optimizer accuracy %.3f", r.Query, r.Accuracy)
		}
		if r.Seconds > r.PaperSec*6+30 {
			t.Errorf("%s: optimizer cost %.1fs vs hand-picked %.1fs", r.Query, r.Seconds, r.PaperSec)
		}
	}
	// On at least one query the optimizer should find a strictly cheaper
	// combination than the hand-picked one at equal accuracy (q1/q6-style
	// exact filters on easy counts).
	cheaper := false
	for _, r := range rows {
		if r.Accuracy >= r.PaperAcc && r.Seconds < r.PaperSec*0.8 {
			cheaper = true
		}
	}
	if !cheaper {
		t.Error("optimizer never beat a hand-picked combination")
	}
	if s := FormatPlanner(rows); !strings.Contains(s, "hand-picked") {
		t.Error("FormatPlanner incomplete")
	}
}
