package server

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// coalesceFleet runs nFeeds bounded feeds, each with its own trained
// backend instance built from tcfg (identical seeds → identical weights →
// one coalescing group) and nQueries registrations per feed, and returns
// every registration's events grouped [feed][query] plus the final
// metrics snapshot.
func coalesceFleet(t *testing.T, cfg Config, tcfg filters.TrainedConfig, clips [][]*video.Frame, nQueries int) ([][][]Event, Metrics) {
	t.Helper()
	base := video.Jackson()
	srv := New(cfg)
	for i := range clips {
		p := base
		p.Name = base.Name + strconv.Itoa(i)
		if err := srv.AddFeed(FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: clips[i]},
			Backend: filters.NewUntrained(filters.OD, base, tcfg, nil),
		}); err != nil {
			t.Fatal(err)
		}
	}
	defer srv.Close()
	regs := make([][]*Registration, len(clips))
	for i := range regs {
		regs[i] = make([]*Registration, nQueries)
		for q := range regs[i] {
			var err error
			regs[i][q], err = srv.Register(
				parse(t, `SELECT FRAMES FROM jackson`+strconv.Itoa(i)+` WHERE COUNT(car) = 1`), Options{})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Start()
	out := make([][][]Event, len(clips))
	var wg sync.WaitGroup
	for i := range regs {
		out[i] = make([][]Event, nQueries)
		for q, r := range regs[i] {
			wg.Add(1)
			go func(i, q int, r *Registration) {
				defer wg.Done()
				evs, _, _ := drain(r)
				out[i][q] = evs
			}(i, q, r)
		}
	}
	wg.Wait()
	return out, srv.Metrics()
}

// Cross-feed coalescing must not change any query's results: the same
// fleet over the same recordings with the broker on (default) and off
// (CoalesceBatch 1) yields identical events, while the broker's metrics
// prove frames from different feeds actually merged into shared GEMMs.
func TestServerCrossFeedCoalescingEquivalence(t *testing.T) {
	base := video.Jackson()
	const nFeeds, nFrames = 4, 96
	clips := make([][]*video.Frame, nFeeds)
	for i := range clips {
		clips[i] = video.NewStream(base, uint64(60+i)).Take(nFrames)
	}
	tcfg := filters.TrainedConfig{Img: 16, Channels: 8, Seed: 33}
	// ScanBatch 2 keeps each feed's submissions sparse (1–2 frames), the
	// regime the broker exists for.
	coalesced, m := coalesceFleet(t, Config{ScanBatch: 2}, tcfg, clips, 2)
	perFeed, _ := coalesceFleet(t, Config{ScanBatch: 2, CoalesceBatch: 1}, tcfg, clips, 2)

	for i := range coalesced {
		for q := range coalesced[i] {
			if len(coalesced[i][q]) != len(perFeed[i][q]) {
				t.Fatalf("feed %d query %d: %d events coalesced vs %d per-feed",
					i, q, len(coalesced[i][q]), len(perFeed[i][q]))
			}
			for e := range coalesced[i][q] {
				g, w := coalesced[i][q][e], perFeed[i][q][e]
				if g.Kind != w.Kind || g.Seq != w.Seq || g.FrameIndex != w.FrameIndex || g.Objects != w.Objects {
					t.Fatalf("feed %d query %d event %d: %+v vs %+v", i, q, e, g, w)
				}
			}
		}
	}

	if len(m.Coalesce) != 1 {
		t.Fatalf("identical architectures must form one group, got %+v", m.Coalesce)
	}
	g := m.Coalesce[0]
	if g.Members != nFeeds {
		t.Fatalf("group has %d members, want %d", g.Members, nFeeds)
	}
	if g.Frames != int64(nFeeds*nFrames) {
		t.Fatalf("group evaluated %d frames, want %d", g.Frames, nFeeds*nFrames)
	}
	if g.Merged == 0 {
		t.Fatal("no batch merged submissions from more than one feed — coalescing never happened")
	}
	if g.AvgBatch <= 2 {
		t.Fatalf("average coalesced batch %.2f — no better than the per-feed micro-batch", g.AvgBatch)
	}
}

// Feeds serving different architectures must keep their frames in
// separate groups (different weights would change results).
func TestServerCoalesceIsolatesArchitectures(t *testing.T) {
	base := video.Jackson()
	srv := New(Config{ScanBatch: 2})
	for i := 0; i < 2; i++ {
		p := base
		p.Name = base.Name + strconv.Itoa(i)
		if err := srv.AddFeed(FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: video.NewStream(base, uint64(80+i)).Take(32)},
			Backend: filters.NewUntrained(filters.OD, base, filters.TrainedConfig{Img: 16, Channels: 8, Seed: uint64(i)}, nil),
		}); err != nil {
			t.Fatal(err)
		}
	}
	defer srv.Close()
	var regs []*Registration
	for i := 0; i < 2; i++ {
		r, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson`+strconv.Itoa(i)+` WHERE COUNT(car) >= 1`), Options{})
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	srv.Start()
	var wg sync.WaitGroup
	for _, r := range regs {
		wg.Add(1)
		go func(r *Registration) { defer wg.Done(); drain(r) }(r)
	}
	wg.Wait()
	m := srv.Metrics()
	if len(m.Coalesce) != 2 {
		t.Fatalf("two architectures must form two groups, got %+v", m.Coalesce)
	}
	for _, g := range m.Coalesce {
		if g.Members != 1 || g.Frames != 32 {
			t.Fatalf("group %+v: want 1 member with exactly its own 32 frames", g)
		}
	}
}

// A paced feed under coalescing must still deliver matches promptly — the
// broker's deadline flushes partial batches instead of stalling for
// cross-feed batch-mates that never come — and stay result-identical to a
// standalone run of the same clip.
func TestServerCoalescePacedDeadlineFlush(t *testing.T) {
	p := video.Jackson()
	const n = 48
	frames := video.NewStream(p, 91).Take(n)
	tcfg := filters.TrainedConfig{Img: 16, Channels: 8, Seed: 91}
	srv := New(Config{
		ScanFlush:     500 * time.Microsecond,
		CoalesceFlush: 500 * time.Microsecond,
	})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:        &stream.SliceSource{Frames: frames},
		Backend:       filters.NewUntrained(filters.OD, p, tcfg, nil),
		FrameInterval: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	evs, _, sawEnd := drain(r)
	if !sawEnd {
		t.Fatal("paced run did not finish")
	}
	m := srv.Metrics()
	if len(m.Coalesce) != 1 || m.Coalesce[0].Frames != n {
		t.Fatalf("coalesce metrics %+v: want one group covering all %d frames", m.Coalesce, n)
	}
	// Sparse and paced: flushes must be deadline-driven small batches, not
	// size-trigger stalls.
	if g := m.Coalesce[0]; g.AvgBatch > 8 {
		t.Fatalf("paced feed coalesced batches average %.1f frames — deadline flush not working", g.AvgBatch)
	}
	eng := &query.Engine{
		Backend:  filters.NewUntrained(filters.OD, p, tcfg, nil),
		Detector: detect.NewOracle(nil),
		Tol:      query.Tolerances{Count: 1, Location: 1},
		// ChunkSize 1 mirrors the server's latency contract.
		ChunkSize: 1,
	}
	plan := query.MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	want := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, n)
	if len(evs) != len(want.Matched) {
		t.Fatalf("paced coalesced run matched %d frames, standalone %d", len(evs), len(want.Matched))
	}
	for i, ev := range evs {
		if ev.Seq != want.Matched[i] {
			t.Fatalf("match %d at seq %d, want %d", i, ev.Seq, want.Matched[i])
		}
	}
}

// Query churn with per-query override backends must not accumulate
// state: when the last registration using an override backend retires,
// the feed drops its shared entry and releases its broker membership, so
// a long-running server's memory and coalesce groups stay bounded.
func TestServerOverrideBackendChurnReleases(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source: stream.FromStream(video.NewStream(p, 71)), // unbounded live feed
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	tcfg := filters.TrainedConfig{Img: 16, Channels: 8, Seed: 71}
	const churn = 5
	for i := 0; i < churn; i++ {
		r, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), Options{
			Backend:   filters.NewUntrained(filters.OD, p, tcfg, nil),
			MaxFrames: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, sawEnd := drain(r); !sawEnd {
			t.Fatalf("churn query %d did not finish", i)
		}
		<-r.Done()
	}
	f := srv.feeds[p.Name]
	f.mu.Lock()
	entries := len(f.shared)
	f.mu.Unlock()
	if entries != 1 { // only the feed's default backend remains
		t.Fatalf("feed retains %d shared entries after churn, want 1", entries)
	}
	m := srv.Metrics()
	if len(m.Coalesce) != 1 {
		t.Fatalf("identical override architectures should share one group: %+v", m.Coalesce)
	}
	if g := m.Coalesce[0]; g.Members != churn || g.Live != 0 {
		t.Fatalf("group %+v: want %d total members, 0 live after churn", g, churn)
	}
}
