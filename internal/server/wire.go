package server

import (
	"fmt"

	"vmq/internal/geom"
	"vmq/internal/video"
)

// wireRect is a rectangle on the publisher wire.
type wireRect struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

// wireObject is one annotated object on the publisher wire. Classes and
// colours travel by their canonical names ("car", "red"), the vocabulary
// VQL predicates use.
type wireObject struct {
	TrackID int      `json:"track_id"`
	Class   string   `json:"class"`
	Color   string   `json:"color,omitempty"`
	Box     wireRect `json:"box"`
	VX      float64  `json:"vx,omitempty"`
	VY      float64  `json:"vy,omitempty"`
}

// wireFrame is one published frame: the annotated ground-truth schema a
// feed's upstream annotation pass (the paper's Mask R-CNN stage) emits,
// as NDJSON over HTTP or one WebSocket text message. CameraID and Bounds
// are optional; they default to the feed's identity and frame rectangle.
type wireFrame struct {
	CameraID string       `json:"camera_id,omitempty"`
	Index    int          `json:"index"`
	Bounds   *wireRect    `json:"bounds,omitempty"`
	Objects  []wireObject `json:"objects"`
}

// encodeWireFrame converts a frame to its wire form (used by tests and
// reference publishers; the server itself only decodes).
func encodeWireFrame(f *video.Frame) wireFrame {
	wf := wireFrame{
		CameraID: f.CameraID,
		Index:    f.Index,
		Bounds:   &wireRect{X0: f.Bounds.X0, Y0: f.Bounds.Y0, X1: f.Bounds.X1, Y1: f.Bounds.Y1},
		Objects:  make([]wireObject, len(f.Objects)),
	}
	for i, o := range f.Objects {
		wo := wireObject{
			TrackID: o.TrackID,
			Class:   o.Class.String(),
			Box:     wireRect{X0: o.Box.X0, Y0: o.Box.Y0, X1: o.Box.X1, Y1: o.Box.Y1},
			VX:      o.Vel.X,
			VY:      o.Vel.Y,
		}
		if o.Color != video.AnyColor {
			wo.Color = o.Color.String()
		}
		wf.Objects[i] = wo
	}
	return wf
}

// frame converts the wire form to a video.Frame bound to the feed's
// profile: absent camera id and bounds take the profile's, so a minimal
// publisher only ships index and objects.
func (wf wireFrame) frame(p video.Profile) (*video.Frame, error) {
	f := &video.Frame{
		CameraID: wf.CameraID,
		Index:    wf.Index,
		Bounds:   p.Bounds(),
	}
	if f.CameraID == "" {
		f.CameraID = p.Name
	}
	if wf.Bounds != nil {
		f.Bounds = geom.Rect{X0: wf.Bounds.X0, Y0: wf.Bounds.Y0, X1: wf.Bounds.X1, Y1: wf.Bounds.Y1}
	}
	if len(wf.Objects) > 0 {
		f.Objects = make([]video.Object, len(wf.Objects))
	}
	for i, wo := range wf.Objects {
		cls, ok := video.ParseClass(wo.Class)
		if !ok {
			return nil, fmt.Errorf("frame %d object %d: unknown class %q", wf.Index, i, wo.Class)
		}
		col := video.AnyColor
		if wo.Color != "" {
			col, ok = video.ParseColor(wo.Color)
			if !ok {
				return nil, fmt.Errorf("frame %d object %d: unknown color %q", wf.Index, i, wo.Color)
			}
		}
		f.Objects[i] = video.Object{
			TrackID: wo.TrackID,
			Class:   cls,
			Color:   col,
			Box:     geom.Rect{X0: wo.Box.X0, Y0: wo.Box.Y0, X1: wo.Box.X1, Y1: wo.Box.Y1},
			Vel:     geom.Point{X: wo.VX, Y: wo.VY},
		}
	}
	return f, nil
}
