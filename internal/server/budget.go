package server

import (
	"runtime"
	"sort"
	"sync"
)

// budgeter is the server-wide filter-worker budget: one machine's
// GOMAXPROCS split evenly across the feeds that currently host at least
// one monitoring query, exactly the way RunMulti budgets a camera fleet
// (CameraResult.Workers) — except live. Before it, every registration's
// engine sized its own pool to GOMAXPROCS, so a server with F busy feeds
// oversubscribed the machine F-fold and the OS scheduler picked the
// losers; now each feed's queries share a resizable gate whose capacity
// is its current share, rebalanced whenever a feed gains its first or
// loses its last query.
//
// Shares are floored at one worker: with more feeds than cores every
// feed still makes progress, it just degrades to serial filtering (the
// same silent floor RunMulti documents).
type budgeter struct {
	total int // worker budget, normally GOMAXPROCS at server start

	mu    sync.Mutex
	feeds map[string]*feedBudget
}

// feedBudget is one live feed's slice of the budget.
type feedBudget struct {
	gate *workerGate
	refs int // monitoring registrations holding the feed live
}

func newBudgeter(total int) *budgeter {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	return &budgeter{total: total, feeds: make(map[string]*feedBudget)}
}

// join adds one monitoring registration on the named feed and returns
// the feed's gate (shared by every query on the feed). The first
// registration on a feed triggers a rebalance across all live feeds.
func (b *budgeter) join(feed string) *workerGate {
	b.mu.Lock()
	defer b.mu.Unlock()
	fb, ok := b.feeds[feed]
	if !ok {
		fb = &feedBudget{gate: newWorkerGate(1)}
		b.feeds[feed] = fb
		b.rebalanceLocked()
	}
	fb.refs++
	return fb.gate
}

// leave drops one registration; a feed that loses its last returns its
// share to the pool and the survivors grow.
func (b *budgeter) leave(feed string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fb, ok := b.feeds[feed]
	if !ok {
		return
	}
	if fb.refs--; fb.refs <= 0 {
		delete(b.feeds, feed)
		// Wake anything still blocked on the departing gate: its queries
		// are winding down and must not wait on a retired budget.
		fb.gate.resize(b.total)
		b.rebalanceLocked()
	}
}

// rebalanceLocked recomputes every live feed's share (caller holds b.mu).
func (b *budgeter) rebalanceLocked() {
	if len(b.feeds) == 0 {
		return
	}
	share := b.total / len(b.feeds)
	if share < 1 {
		share = 1
	}
	for _, fb := range b.feeds {
		fb.gate.resize(share)
	}
}

// snapshot lists every live feed's share, sorted by feed name.
func (b *budgeter) snapshot() []workerShare {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]workerShare, 0, len(b.feeds))
	for name, fb := range b.feeds {
		out = append(out, workerShare{Feed: name, Workers: fb.gate.capacity(), Queries: fb.refs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Feed < out[j].Feed })
	return out
}

// workerShare is one feed's row in the budget snapshot.
type workerShare struct {
	Feed    string `json:"feed"`
	Workers int    `json:"workers"`
	Queries int    `json:"queries"`
}

// workerGate is a resizable counting semaphore implementing
// query.WorkerGate. Shrinking takes effect as holders release; growth
// wakes waiters immediately. Capacity never drops below one.
type workerGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int
	inUse int
}

func newWorkerGate(capacity int) *workerGate {
	if capacity < 1 {
		capacity = 1
	}
	g := &workerGate{cap: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Acquire implements query.WorkerGate.
func (g *workerGate) Acquire() {
	g.mu.Lock()
	for g.inUse >= g.cap {
		g.cond.Wait()
	}
	g.inUse++
	g.mu.Unlock()
}

// Release implements query.WorkerGate.
func (g *workerGate) Release() {
	g.mu.Lock()
	g.inUse--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// resize sets the capacity (floored at 1) and wakes waiters so growth is
// immediate.
func (g *workerGate) resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	g.mu.Lock()
	g.cap = capacity
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *workerGate) capacity() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap
}
