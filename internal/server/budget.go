package server

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

const (
	// budgetTick is how often the budgeter resamples each live feed's
	// dispatch counter to update its EWMA scan rate.
	budgetTick = 250 * time.Millisecond
	// budgetAlpha is the EWMA smoothing factor per sample: high enough to
	// follow a feed whose scene density shifts, low enough that one slow
	// tick does not yank workers around.
	budgetAlpha = 0.3
)

// budgeter is the server-wide filter-worker budget: one machine's
// GOMAXPROCS split across the feeds that currently host at least one
// monitoring query, the way RunMulti budgets a camera fleet
// (CameraResult.Workers) — except live. Before it, every registration's
// engine sized its own pool to GOMAXPROCS, so a server with F busy feeds
// oversubscribed the machine F-fold and the OS scheduler picked the
// losers; now each feed's queries share a resizable gate whose capacity
// is its current share, rebalanced whenever a feed gains its first or
// loses its last query.
//
// Shares are weighted by each feed's observed scan rate (an EWMA of
// frames/s sampled from its fan-out dispatch counter), not split evenly:
// a dense Detrac feed whose filter stage grinds through 15.8 objects per
// frame next to a sparse Jackson feed no longer starves at half the
// machine while its neighbour idles — the busy feed's weight grows with
// its throughput and the apportionment follows. A feed that has not been
// sampled yet takes the mean sampled rate, so a newborn feed neither
// starves nor steals before there is evidence. Shares are floored at one
// worker: with more feeds than cores every feed still makes progress, it
// just degrades to serial filtering (the same silent floor RunMulti
// documents).
type budgeter struct {
	total int           // worker budget, normally GOMAXPROCS at server start
	tick  time.Duration // resample cadence; 0 disables the sampler loop (tests drive it by hand)

	mu      sync.Mutex
	feeds   map[string]*feedBudget
	started bool
	stopC   chan struct{}
	stopO   sync.Once
}

// feedBudget is one live feed's slice of the budget.
type feedBudget struct {
	gate *workerGate
	refs int // monitoring registrations holding the feed live

	frames     func() int64 // the feed's dispatch counter (fan-out frames)
	lastFrames int64
	lastAt     time.Time
	rate       float64 // EWMA scan rate, frames/s
	sampled    bool
	weight     float64 // share weight from the last rebalance
}

func newBudgeter(total int, tick time.Duration) *budgeter {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	return &budgeter{
		total: total,
		tick:  tick,
		feeds: make(map[string]*feedBudget),
		stopC: make(chan struct{}),
	}
}

// join adds one monitoring registration on the named feed and returns
// the feed's gate (shared by every query on the feed). frames is the
// feed's dispatch counter, sampled to estimate its scan rate. The first
// registration on a feed triggers a rebalance across all live feeds, and
// the first join overall starts the rate sampler.
func (b *budgeter) join(feed string, frames func() int64) *workerGate {
	b.mu.Lock()
	defer b.mu.Unlock()
	fb, ok := b.feeds[feed]
	if !ok {
		fb = &feedBudget{gate: newWorkerGate(1), frames: frames, lastAt: time.Now()}
		if frames != nil {
			fb.lastFrames = frames()
		}
		b.feeds[feed] = fb
		b.rebalanceLocked()
	}
	fb.refs++
	if b.tick > 0 && !b.started {
		b.started = true
		go b.loop()
	}
	return fb.gate
}

// leave drops one registration; a feed that loses its last returns its
// share to the pool and the survivors grow.
func (b *budgeter) leave(feed string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fb, ok := b.feeds[feed]
	if !ok {
		return
	}
	if fb.refs--; fb.refs <= 0 {
		delete(b.feeds, feed)
		// Wake anything still blocked on the departing gate: its queries
		// are winding down and must not wait on a retired budget.
		fb.gate.resize(b.total)
		b.rebalanceLocked()
	}
}

// stop ends the rate sampler; idempotent.
func (b *budgeter) stop() { b.stopO.Do(func() { close(b.stopC) }) }

// loop resamples scan rates on the tick until stop.
func (b *budgeter) loop() {
	t := time.NewTicker(b.tick)
	defer t.Stop()
	for {
		select {
		case <-b.stopC:
			return
		case <-t.C:
			b.resampleAt(time.Now())
		}
	}
}

// resampleAt folds each live feed's dispatch counter into its EWMA scan
// rate and rebalances the shares.
func (b *budgeter) resampleAt(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed := false
	for _, fb := range b.feeds {
		if fb.frames == nil {
			continue
		}
		dt := now.Sub(fb.lastAt).Seconds()
		if dt <= 0 {
			continue
		}
		cur := fb.frames()
		inst := float64(cur-fb.lastFrames) / dt
		if fb.sampled {
			fb.rate = budgetAlpha*inst + (1-budgetAlpha)*fb.rate
		} else {
			fb.rate, fb.sampled = inst, true
		}
		fb.lastFrames, fb.lastAt = cur, now
		changed = true
	}
	if changed {
		b.rebalanceLocked()
	}
}

// rebalanceLocked recomputes every live feed's share (caller holds b.mu):
// weights 1 + EWMA rate (the +1 keeps an idle feed's weight positive and
// bounds how lopsided the split can get at tiny rates), apportioned by
// largest remainder so the whole budget is handed out, floored at one
// worker per feed.
func (b *budgeter) rebalanceLocked() {
	if len(b.feeds) == 0 {
		return
	}
	names := make([]string, 0, len(b.feeds))
	for name := range b.feeds {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic remainder tie-break

	var sum float64
	var sampled int
	for _, fb := range b.feeds {
		if fb.sampled {
			sum += fb.rate
			sampled++
		}
	}
	mean := 0.0
	if sampled > 0 {
		mean = sum / float64(sampled)
	}
	weights := make([]float64, len(names))
	var wTotal float64
	for i, name := range names {
		fb := b.feeds[name]
		w := 1 + mean
		if fb.sampled {
			w = 1 + fb.rate
		}
		weights[i] = w
		wTotal += w
		fb.weight = w
	}

	shares := make([]int, len(names))
	type frac struct {
		i   int
		rem float64
	}
	fracs := make([]frac, len(names))
	used := 0
	for i, w := range weights {
		exact := float64(b.total) * w / wTotal
		shares[i] = int(exact)
		used += shares[i]
		fracs[i] = frac{i, exact - float64(shares[i])}
	}
	sort.Slice(fracs, func(a, c int) bool {
		if fracs[a].rem != fracs[c].rem {
			return fracs[a].rem > fracs[c].rem
		}
		return fracs[a].i < fracs[c].i
	})
	for k := 0; used < b.total && k < len(fracs); k++ {
		shares[fracs[k].i]++
		used++
	}
	for i, name := range names {
		if shares[i] < 1 {
			shares[i] = 1
		}
		b.feeds[name].gate.resize(shares[i])
	}
}

// coalesceShare sizes the GEMM worker budget for one merged cross-feed
// batch. The coalescing broker reports how many distinct feeds
// contributed frames, and the batch gets those feeds' combined slice of
// the machine — total×distinct/live — so a batch merged from every live
// feed may use the whole budget while a batch from one feed of many
// stays inside that feed's fair share and cannot starve the per-feed
// gates. Clamped to [1, total]; with no live feeds (a flush can race
// the last registration's teardown) the whole budget is available.
func (b *budgeter) coalesceShare(distinct int) int {
	b.mu.Lock()
	live := len(b.feeds)
	b.mu.Unlock()
	if distinct < 1 {
		distinct = 1
	}
	if live <= distinct {
		return b.total
	}
	share := b.total * distinct / live
	if share < 1 {
		share = 1
	}
	return share
}

// snapshot lists every live feed's share, sorted by feed name.
func (b *budgeter) snapshot() []workerShare {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]workerShare, 0, len(b.feeds))
	for name, fb := range b.feeds {
		out = append(out, workerShare{
			Feed: name, Workers: fb.gate.capacity(), Queries: fb.refs,
			RateFPS: fb.rate, Weight: fb.weight,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Feed < out[j].Feed })
	return out
}

// workerShare is one feed's row in the budget snapshot.
type workerShare struct {
	Feed    string `json:"feed"`
	Workers int    `json:"workers"`
	Queries int    `json:"queries"`
	// RateFPS is the feed's EWMA scan rate driving its weight (0 until
	// the first sample lands); Weight is the share weight derived from it
	// at the last rebalance.
	RateFPS float64 `json:"rate_fps,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
}

// workerGate is a resizable counting semaphore implementing
// query.WorkerGate. Shrinking takes effect as holders release; growth
// wakes waiters immediately. Capacity never drops below one.
type workerGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int
	inUse int
}

func newWorkerGate(capacity int) *workerGate {
	if capacity < 1 {
		capacity = 1
	}
	g := &workerGate{cap: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Acquire implements query.WorkerGate.
func (g *workerGate) Acquire() {
	g.mu.Lock()
	for g.inUse >= g.cap {
		g.cond.Wait()
	}
	g.inUse++
	g.mu.Unlock()
}

// Release implements query.WorkerGate.
func (g *workerGate) Release() {
	g.mu.Lock()
	g.inUse--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// resize sets the capacity (floored at 1) and wakes waiters so growth is
// immediate.
func (g *workerGate) resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	g.mu.Lock()
	g.cap = capacity
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *workerGate) capacity() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap
}
