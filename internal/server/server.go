// Package server is the continuous-query layer over the vmq engine: the
// paper's deployment model is standing monitoring queries evaluated
// forever over live camera feeds, and this package turns the one-shot
// executor of internal/query into that serving system.
//
// Clients register parsed VQL queries against named feeds and receive a
// stream of results (matches for monitoring queries, per-window estimates
// for aggregates) on a channel. Per feed, a shared-scan schedule keeps
// the marginal cost of another query near zero on the filter stage: the
// feed is decoded once (stream.Fanout tees the same frames to every
// query's pipeline) and each distinct filter backend is evaluated once
// per frame (filters.Shared memoises outputs across the pipelines), so N
// queries sharing a backend cost one network scan plus N cheap predicate
// evaluations — only the per-query confirmation detectors scale with N,
// and those the filters already keep rare. Each query still runs the
// pipelined executor of internal/query end to end, which is what makes
// its results field-identical to a standalone RunStream over the same
// frames.
package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/query"
	"vmq/internal/rlog"
	"vmq/internal/sched"
	"vmq/internal/stream"
	"vmq/internal/vql"
)

// Typed registry errors, for errors.Is at the API boundary (the HTTP
// layer maps them to status codes).
var (
	// ErrQueryNotFound reports an id with no registration behind it —
	// never registered, or already unregistered/evicted after finishing.
	ErrQueryNotFound = errors.New("server: query not found")
	// ErrFeedBusy reports a feed at its registration limit
	// (Config.MaxQueriesPerFeed).
	ErrFeedBusy = errors.New("server: feed at its query limit")
	// ErrFeedNotFound reports a feed name with no feed behind it.
	ErrFeedNotFound = errors.New("server: feed not found")
	// ErrFeedDraining reports a registration against a feed that is
	// draining: its ingestion is cut and its queries are winding down, so
	// no new query may join.
	ErrFeedDraining = errors.New("server: feed is draining")
	// ErrFeedExists reports a CreateFeed/AddFeed against a name already
	// in use.
	ErrFeedExists = errors.New("server: feed already exists")
	// ErrBufferTooLarge reports a client-requested buffer capacity
	// beyond its cap (MaxResultBuffer, MaxIngestBuffer) — the rings are
	// allocated eagerly, so unauthenticated input must not size them.
	ErrBufferTooLarge = errors.New("server: buffer exceeds limit")
	// ErrClosed reports an operation on a closed server.
	ErrClosed = errors.New("server: closed")
)

// End-event reasons. A query that ends because its feed was torn down
// carries the reason on its EventEnd, so consumers can tell an exhausted
// recording from an operator action.
const (
	// EndReasonFeedRemoved marks end events forced by RemoveFeed.
	EndReasonFeedRemoved = "feed_removed"
	// EndReasonFeedDrained marks end events from a graceful DrainFeed (or
	// server Shutdown).
	EndReasonFeedDrained = "feed_drained"
	// EndReasonQueryFailed marks end events from a query whose backend or
	// detector panicked: the panic was isolated to the query, its final
	// event carries the fault, and its siblings keep streaming.
	EndReasonQueryFailed = "query_failed"
)

// MaxResultBuffer caps a registration's requested result-log ring
// capacity. The ring is allocated eagerly at registration, the request
// reaches Register from the unauthenticated HTTP body (result_buffer),
// and finished registrations stay referenced up to retainFinished, so
// client input must not pin large allocations: 2^16 events keeps the
// worst case per ring in the ~10MB range while still holding minutes
// of matches for a resuming consumer (spill files extend it further).
const MaxResultBuffer = 1 << 16

// Config tunes a Server. The zero value is usable.
type Config struct {
	// Tol is the default filter tolerance pair for registered queries
	// (CCF-1/CLF-1 when zero — the robust general-purpose combination).
	Tol *query.Tolerances
	// FanoutBuffer is the per-query frame buffer of each feed tee
	// (default 64): how far queries on one feed may drift apart before
	// the slowest throttles the rest.
	FanoutBuffer int
	// ResultBuffer is the default result-log ring capacity per
	// registration, in events (default 64, rounded up to a power of
	// two): how many delivered-but-unread events a query retains for
	// resuming consumers before its policy decides between blocking and
	// shedding.
	ResultBuffer int
	// DefaultPolicy is the delivery policy for registrations that do not
	// set their own: rlog.Block (default — lossless, the writer waits
	// for the slowest consumer), rlog.DropOldest, or rlog.Sample.
	DefaultPolicy rlog.Policy
	// MaxQueriesPerFeed caps live registrations per feed (0 =
	// unlimited). Register returns ErrFeedBusy beyond it — admission
	// control so one tenant cannot crowd a feed out.
	MaxQueriesPerFeed int
	// WorkerBudget is the server-wide filter worker budget split across
	// feeds with live monitoring queries (default GOMAXPROCS).
	WorkerBudget int
	// SharedCacheCap caps each shared filter memo, in frames
	// (default 4096).
	SharedCacheCap int
	// ScanBatch is the shared scan's micro-batch size per feed (default
	// 16): frames are grouped before the fan-out and each group pre-fills
	// the default filter memo through the backend's batch path. 1 disables
	// micro-batching; values <= 0 select the default.
	ScanBatch int
	// ScanFlush bounds how long a partial micro-batch may wait for more
	// frames before flushing downstream (default 2ms) — the latency a
	// paced feed's frame can add waiting for batch-mates.
	ScanFlush time.Duration
	// CoalesceBatch is the size trigger of the cross-feed inference
	// broker (default 32): pending frames from every feed whose backend
	// shares an architecture/weights identity (filters.Coalescable) are
	// merged into one batch evaluation once this many accumulate, so many
	// sparse feeds serving one trained model issue one large GEMM instead
	// of one tiny GEMM each. 1 disables coalescing; values <= 0 select
	// the default.
	CoalesceBatch int
	// CoalesceFlush bounds how long a pending frame may wait for
	// cross-feed batch-mates before the broker flushes (default 2ms) —
	// the coalescing analogue of ScanFlush, preserving the per-feed
	// latency contract.
	CoalesceFlush time.Duration
	// SpillDir is the root directory for server-managed result spills
	// (Options.Spill): each spilling registration gets
	// SpillDir/<query-id>, removed when the registration leaves the
	// registry. Default: "vmq-spill" under the OS temp directory.
	SpillDir string
	// Spill is the default segment-rotation and retention-budget tuning
	// for attached spills; a registration's Options.SpillConfig
	// overrides it, and the zero value selects the rlog defaults.
	Spill rlog.SpillConfig
	// StateDir, when set, is where Recover keeps the durable control-plane
	// manifest (and, unless SpillDir overrides it, result spills under
	// StateDir/spill). New ignores it — journaling is enabled by building
	// the server with Recover.
	StateDir string
	// StallAfter is the watchdog window: a running feed with subscribers
	// that has not dispatched a frame for longer is flagged stalled in
	// /metrics, feed listings and /healthz. Default 10s; negative
	// disables the watchdog.
	StallAfter time.Duration
	// WSPingInterval paces server-side pings on the WebSocket results
	// bridge: the server pings every interval and closes the connection
	// when no pong (or any other client frame) arrives within two
	// intervals — so a relay or client can tell a dead peer from an idle
	// stream instead of waiting on a silent TCP half-open. Default 30s;
	// negative disables the pinger.
	WSPingInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Tol == nil {
		c.Tol = &query.Tolerances{Count: 1, Location: 1}
	}
	if c.FanoutBuffer <= 0 {
		c.FanoutBuffer = 64
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 64
	}
	if c.DefaultPolicy == "" {
		c.DefaultPolicy = rlog.Block
	}
	if c.SharedCacheCap <= 0 {
		c.SharedCacheCap = 4096
	}
	if c.ScanBatch <= 0 {
		c.ScanBatch = 16
	}
	if c.ScanFlush <= 0 {
		c.ScanFlush = 2 * time.Millisecond
	}
	if c.CoalesceBatch <= 0 {
		c.CoalesceBatch = 32
	}
	if c.CoalesceFlush <= 0 {
		c.CoalesceFlush = 2 * time.Millisecond
	}
	if c.SpillDir == "" {
		if c.StateDir != "" {
			c.SpillDir = filepath.Join(c.StateDir, "spill")
		} else {
			c.SpillDir = filepath.Join(os.TempDir(), "vmq-spill")
		}
	}
	if c.StallAfter == 0 {
		c.StallAfter = 10 * time.Second
	}
	if c.WSPingInterval == 0 {
		c.WSPingInterval = 30 * time.Second
	}
	return c
}

// Server hosts named feeds and the continuous queries registered on them.
type Server struct {
	cfg      Config
	birth    time.Time
	broker   *sched.Broker // cross-feed inference coalescing (nil when disabled)
	budget   *budgeter     // server-wide filter worker budget
	manifest *manifest     // durable control-plane journal (nil unless built with Recover)
	mu       sync.Mutex
	feeds    map[string]*feed
	regs     map[string]*Registration
	liveRegs map[string]int // live registrations per feed, for admission control
	finished []string       // finished registration ids, oldest first
	nextID   int
	started  bool
	closed   bool
	wg       sync.WaitGroup
	// recovering is set by Recover for the manifest replay and cleared by
	// Start: the readiness side of /v1/healthz. A recovering server
	// answers 503 {"status":"recovering"} so a fleet router never routes
	// new queries to a shard still rebuilding its registry.
	recovering atomic.Bool
}

// retainFinished caps how many finished registrations the server keeps
// around for inspection (listings, metrics). Beyond it the oldest
// finished ones are dropped, so a long-running server with query churn
// does not grow its registry — and its /metrics payload — without bound.
const retainFinished = 64

// New creates an empty server.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		birth:    time.Now(),
		feeds:    make(map[string]*feed),
		regs:     make(map[string]*Registration),
		liveRegs: make(map[string]int),
	}
	s.budget = newBudgeter(s.cfg.WorkerBudget, budgetTick)
	if s.cfg.CoalesceBatch > 1 {
		// Merged batches big enough to parallelise draw workers from the
		// same budget the per-feed gates split, so coalescing never
		// oversubscribes the machine the budgeter is metering.
		s.broker = sched.New(sched.Config{
			Batch:   s.cfg.CoalesceBatch,
			Flush:   s.cfg.CoalesceFlush,
			Workers: s.budget.coalesceShare,
		})
	}
	return s
}

// AddFeed registers a named feed. Feeds added after Start begin pumping
// immediately; feeds added before Start wait for it. A name freed by
// RemoveFeed may be reused.
func (s *Server) AddFeed(cfg FeedConfig) error {
	f, err := newFeed(cfg, s.cfg, s.broker)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.feeds[f.name]; dup {
		return fmt.Errorf("%w: %q", ErrFeedExists, f.name)
	}
	s.feeds[f.name] = f
	if s.started {
		f.start()
	}
	return nil
}

// CreateFeed is AddFeed under the lifecycle API's name: feeds are runtime
// objects that can be created, drained and removed while the server runs.
func (s *Server) CreateFeed(cfg FeedConfig) error { return s.AddFeed(cfg) }

// DrainFeed begins a graceful drain of the named feed: ingestion is cut
// (publishers on a push feed get ErrPushClosed), new registrations are
// rejected with ErrFeedDraining, and every frame already in flight —
// ingest ring, scan batches, fan-out buffers — still reaches the
// registered queries, which then end through the ordinary source-EOF path
// and emit end events carrying the "feed_drained" reason. The feed stays
// listed (state draining, then closed) until RemoveFeed deletes it.
// Draining an already-draining or closed feed is a no-op.
func (s *Server) DrainFeed(name string) error {
	f, err := s.feedByName(name)
	if err != nil {
		return err
	}
	if f.drain(EndReasonFeedDrained) && s.manifest != nil {
		// Journal only the initiating call: replaying duplicate drains is
		// harmless but pointless.
		_ = s.manifest.feedDrained(name)
	}
	return nil
}

// RemoveFeed drains the named feed with the "feed_removed" end reason,
// waits for every registration on it to finish — each query's end event
// lands in its result log before the log closes; none are lost — then
// tears the feed down (broker memberships released, pump stopped) and
// deletes it from the registry, freeing the name for reuse.
//
// The wait honours the delivery contract: a Block-policy query whose
// consumer never drains holds its runner (and so RemoveFeed) until the
// consumer reads or the query is unregistered — lossless delivery does
// not get lossy because an operator deletes the feed. Shutdown bounds
// that wait with a deadline.
func (s *Server) RemoveFeed(name string) error {
	f, err := s.feedByName(name)
	if err != nil {
		return err
	}
	f.drain(EndReasonFeedRemoved)
	s.mu.Lock()
	waits := make([]*Registration, 0, 4)
	for _, r := range s.regs {
		if r.feed == f {
			waits = append(waits, r)
		}
	}
	s.mu.Unlock()
	for _, r := range waits {
		<-r.done
	}
	f.close()
	f.start() // a never-started pump must still observe Stop and close its subscriptions
	s.mu.Lock()
	removed := s.feeds[name] == f
	if removed {
		delete(s.feeds, name)
	}
	s.mu.Unlock()
	if removed && s.manifest != nil {
		_ = s.manifest.feedRemoved(name)
	}
	return nil
}

// feedByName resolves a feed for the lifecycle API.
func (s *Server) feedByName(name string) (*feed, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	f, ok := s.feeds[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFeedNotFound, name)
	}
	return f, nil
}

// Shutdown drains every feed, waits up to timeout for the registered
// queries to finish and their end events to be consumed, then closes the
// server (which flushes and closes result-log spills). Queries still
// running at the deadline are cancelled by Close — the graceful window is
// bounded, a wedged consumer cannot hold the process open.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	regs := make([]*Registration, 0, len(s.regs))
	for _, r := range s.regs {
		regs = append(regs, r)
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.Close()
		return
	}
	for _, f := range feeds {
		f.drain(EndReasonFeedDrained)
	}
	// Pumps that never ran still need to run to observe the cut source and
	// close their subscriptions, or pre-Start registrations would never
	// see their end events.
	s.Start()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
wait:
	for _, r := range regs {
		select {
		case <-r.done:
		case <-timer.C:
			break wait
		}
	}
	s.Close()
}

// Feeds lists the configured feed names, sorted.
func (s *Server) Feeds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.feeds))
	for n := range s.feeds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Start begins pumping every feed. Frames only flow to feeds with at
// least one registered query, so starting an idle server is free.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.recovering.Store(false)
	for _, f := range s.feeds {
		f.start()
	}
}

// Recovering reports whether the server was built by Recover and has not
// started serving yet — the window in which /v1/healthz answers 503
// {"status":"recovering"}.
func (s *Server) Recovering() bool {
	return s.recovering.Load()
}

// Register binds q against the feed its FROM clause names and starts its
// runner. The returned registration's Results channel must be drained.
// Registering before Start is how a batch of queries is guaranteed to see
// the feed's very first frame; registering later joins mid-stream.
func (s *Server) Register(q *vql.Query, opt Options) (*Registration, error) {
	return s.register(q, opt, nil)
}

// register is Register plus the recovery path: a non-nil pin re-creates
// a journalled registration under its original id with its result log
// already resumed over the existing spill segments, instead of minting
// fresh ones.
func (s *Server) register(q *vql.Query, opt Options, pin *recoveredQuery) (*Registration, error) {
	policy := opt.Policy
	if policy == "" {
		policy = s.cfg.DefaultPolicy
	}
	if _, ok := rlog.ParsePolicy(string(policy)); !ok {
		return nil, fmt.Errorf("server: unknown delivery policy %q", policy)
	}
	// Only registrations expressible over the wire are journalled: a
	// programmatic backend, detector or caller-owned spill cannot be
	// re-created from a record, so those queries stay session-scoped
	// exactly as on a server without a manifest.
	journaled := s.manifest != nil && opt.Backend == nil && opt.Detector == nil &&
		opt.SpillPath == "" && opt.SpillConfig == (rlog.SpillConfig{})
	if pin != nil {
		journaled = s.manifest != nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	f, ok := s.feeds[q.Source]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: no feed %q (have %v)", ErrFeedNotFound, q.Source, s.feedNamesLocked())
	}
	if f.State() == FeedDraining {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrFeedDraining, f.name)
	}
	if lim := s.cfg.MaxQueriesPerFeed; lim > 0 && s.liveRegs[f.name] >= lim {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: feed %q serves %d queries (limit %d)",
			ErrFeedBusy, f.name, lim, lim)
	}
	var id string
	if pin != nil {
		id = pin.id
		s.mu.Unlock()
	} else {
		s.nextID++
		id = fmt.Sprintf("q%d", s.nextID)
		reserved := s.nextID
		s.mu.Unlock()
		if journaled {
			// Reserve the id durably before its spill directory exists: a
			// crash right after the spill is created must not let a restart
			// hand the id to a new query whose consumers would then replay
			// the dead registration's stale segments.
			if err := s.manifest.reserveID(reserved); err != nil {
				return nil, err
			}
		}
	}

	plan, err := query.Bind(q, f.profile)
	if err != nil {
		return nil, err
	}
	isWindowed := q.Select.Kind != vql.SelectFrames
	if isWindowed && q.Window == nil {
		return nil, fmt.Errorf("server: continuous aggregate query needs a WINDOW clause")
	}
	if !isWindowed && q.Window != nil && q.Window.Advance < q.Window.Size {
		return nil, fmt.Errorf("server: SELECT FRAMES does not take a sliding window")
	}

	tol := *s.cfg.Tol
	if opt.Tol != nil {
		tol = *opt.Tol
	}
	det := opt.Detector
	if det == nil {
		det = f.newDet()
	}
	buffer := opt.ResultBuffer
	if buffer > MaxResultBuffer {
		return nil, fmt.Errorf("%w: result buffer %d (limit %d)", ErrBufferTooLarge, buffer, MaxResultBuffer)
	}
	if buffer <= 0 {
		buffer = s.cfg.ResultBuffer
	}
	var (
		log        *rlog.Log[Event]
		spill      *rlog.FileSpill[Event]
		spillOwned string
	)
	if pin != nil {
		log, spill, spillOwned = pin.log, pin.spill, pin.spillOwned
	} else {
		log = rlog.New[Event](buffer, policy)
		spillCfg := opt.SpillConfig
		if spillCfg == (rlog.SpillConfig{}) {
			spillCfg = s.cfg.Spill
		}
		if journaled {
			// Journalled spills are the recovery substrate: durable (each
			// append flushed, segments fsynced on seal) and write-ahead, so
			// any event a consumer was promised survives a kill.
			spillCfg.Durable = true
		}
		switch {
		case opt.SpillPath != "":
			spill, err = rlog.NewFileSpill[Event](opt.SpillPath, spillCfg)
		case opt.Spill:
			dir := filepath.Join(s.cfg.SpillDir, id)
			spill, err = rlog.NewFileSpill[Event](dir, spillCfg)
			spillOwned = dir
		}
		if err != nil {
			return nil, err
		}
		if spill != nil {
			log.SetSpill(spill)
			if journaled {
				log.SetWriteThrough()
			}
		}
	}

	backend := f.sharedFor(opt.Backend, s.cfg.SharedCacheCap)
	usesDefault := opt.Backend == nil
	if usesDefault {
		f.defaultUsers.Add(1)
	}

	r := &Registration{
		id:         id,
		feed:       f,
		feedName:   f.name,
		qry:        q,
		plan:       plan,
		sub:        f.fanout.Subscribe(),
		log:        log,
		spill:      spill,
		spillOwned: spillOwned,
		done:       make(chan struct{}),
		recovered:  pin != nil,
	}
	r.stats.detectCost = det.Cost().PerCall
	r.stats.windowed = isWindowed
	if plan.Where != nil && !isWindowed {
		r.stats.filterCost = backend.Technique().Cost().PerCall
	}
	if journaled {
		m := s.manifest
		r.onAck = func(seq int64) { _ = m.queryAcked(id, seq) }
		if pin == nil {
			// Journal before the commit: a record for a registration that
			// then fails to commit is compensated below; the reverse — a
			// committed registration with no record — would silently vanish
			// on restart.
			rec := QueryRecord{
				ID: id, Query: q.String(), Feed: f.name,
				MaxFrames: opt.MaxFrames, SampleSize: opt.SampleSize, Seed: opt.Seed,
				ResultBuffer: opt.ResultBuffer, Policy: string(policy), Spill: opt.Spill,
			}
			if opt.Tol != nil {
				ct, lt := opt.Tol.Count, opt.Tol.Location
				rec.CountTol, rec.LocationTol = &ct, &lt
			}
			if jerr := s.manifest.queryRegistered(rec); jerr != nil {
				r.sub.Cancel()
				r.closeSpill()
				f.release(usesDefault, opt.Backend)
				return nil, jerr
			}
		}
	}

	s.mu.Lock()
	err = nil
	switch lim := s.cfg.MaxQueriesPerFeed; {
	case s.closed:
		err = ErrClosed
	case f.State() == FeedDraining:
		// Re-checked under the same lock hold that records the
		// registration: drain flips the state first and collects waiters
		// under this lock after, so a registration either lands before the
		// collection (and is waited for) or is rejected here — it cannot
		// slip between.
		err = fmt.Errorf("%w: %q", ErrFeedDraining, f.name)
	case lim > 0 && s.liveRegs[f.name] >= lim:
		// Re-checked here, where the slot is actually taken: the early
		// check ran under a previous lock acquisition and concurrent
		// registrations may have filled the feed since.
		err = fmt.Errorf("%w: feed %q serves %d queries (limit %d)",
			ErrFeedBusy, f.name, s.liveRegs[f.name], lim)
	}
	if err != nil {
		s.mu.Unlock()
		r.sub.Cancel()
		r.closeSpill()
		f.release(usesDefault, opt.Backend)
		if journaled && pin == nil {
			_ = s.manifest.queryUnregistered(id)
		}
		return nil, err
	}
	s.regs[id] = r
	s.liveRegs[f.name]++
	s.mu.Unlock()

	release := func() {
		f.release(usesDefault, opt.Backend)
		s.mu.Lock()
		if s.liveRegs[f.name]--; s.liveRegs[f.name] <= 0 {
			delete(s.liveRegs, f.name)
		}
		s.mu.Unlock()
	}

	s.wg.Add(1)
	if isWindowed {
		sampleSize := opt.SampleSize
		if sampleSize <= 0 {
			sampleSize = 200
		}
		seed := opt.Seed
		if seed == 0 {
			seed = 1
		}
		cfg := query.AggregateConfig{
			SampleSize:       sampleSize,
			Sampler:          stream.NewUniformSampler(seed),
			MuFromFullWindow: true,
		}
		go func() {
			defer s.wg.Done()
			r.guard(func() { r.runWindows(backend, det, cfg, opt.MaxFrames) })
			release()
			r.finish()
			s.retire(id)
			s.journalFinished(r, journaled)
		}()
	} else {
		// ChunkSize 1: a monitoring server exists to surface matches the
		// moment they happen, so the pipeline must not sit on a partial
		// chunk waiting for a paced feed to fill it. The worker gate is
		// the feed's share of the server-wide budget, resized as feeds
		// come and go — only filtered queries join: an unfiltered SELECT
		// FRAMES runs no filter stage, so it must not shrink other
		// feeds' shares for a gate it would never acquire.
		eng := &query.Engine{
			Backend: backend, Detector: det, Tol: tol, ChunkSize: 1,
		}
		budgeted := plan.Where != nil
		if budgeted {
			eng.Gate = s.budget.join(f.name, f.fanout.Frames)
		}
		go func() {
			defer s.wg.Done()
			r.guard(func() { r.runMonitor(eng, opt.MaxFrames) })
			// Release before signalling Done: whoever waited on the
			// unregister sees the worker budget already rebalanced and
			// the admission slot already free.
			if budgeted {
				s.budget.leave(f.name)
			}
			release()
			r.finish()
			s.retire(id)
			s.journalFinished(r, journaled)
		}()
	}
	return r, nil
}

// journalFinished settles a finished runner's manifest record. A spilled
// query keeps its record — its spill ends with the end event, so a
// restart recovers it as a finished row with its history replayable. A
// ring-only query has nothing durable to replay; its record is removed
// so a restart does not re-run a query that already completed.
func (s *Server) journalFinished(r *Registration, journaled bool) {
	if !journaled || r.spill != nil || r.killed.Load() {
		return
	}
	_ = s.manifest.queryUnregistered(r.id)
}

// retire records that a registration's runner finished on its own,
// evicting the oldest finished registrations beyond the retention cap.
// (Unregister removes entries directly; a stale id in the finished list
// is then a harmless no-op delete.)
func (s *Server) retire(id string) {
	s.mu.Lock()
	var evicted []*Registration
	if _, ok := s.regs[id]; ok {
		s.finished = append(s.finished, id)
		for len(s.finished) > retainFinished {
			old := s.finished[0]
			if r, ok := s.regs[old]; ok {
				evicted = append(evicted, r)
			}
			delete(s.regs, old)
			s.finished = s.finished[1:]
		}
	}
	s.mu.Unlock()
	for _, r := range evicted {
		// Eviction removes the query from the registry for good, so the
		// manifest record (and with it the spill directory) goes too —
		// otherwise a restart would resurrect rows the living server
		// already forgot.
		if s.manifest != nil {
			_ = s.manifest.queryUnregistered(r.id)
		}
		r.closeSpill()
	}
}

func (s *Server) feedNamesLocked() []string {
	names := make([]string, 0, len(s.feeds))
	for n := range s.feeds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns a registration by id.
func (s *Server) Get(id string) (*Registration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regs[id]
	return r, ok
}

// Unregister cancels a query: its runner winds down, emits nothing
// further, and closes the result stream. The registration disappears
// from the metrics snapshot. An unknown id — never registered, already
// unregistered, or retired and evicted after its feed ended — returns
// ErrQueryNotFound (check with errors.Is); a registration whose feed
// already finished is still found and unregisters cleanly, it does not
// race the feed's teardown.
func (s *Server) Unregister(id string) error {
	s.mu.Lock()
	r, ok := s.regs[id]
	if ok {
		delete(s.regs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrQueryNotFound, id)
	}
	r.cancelSub()
	<-r.done
	r.closeSpill()
	if s.manifest != nil {
		_ = s.manifest.queryUnregistered(id)
	}
	return nil
}

// Close stops every feed and query and waits for the runners. The server
// cannot be restarted.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	regs := make([]*Registration, 0, len(s.regs))
	for _, r := range s.regs {
		regs = append(regs, r)
	}
	s.mu.Unlock()
	for _, r := range regs {
		r.cancelSub()
	}
	for _, f := range feeds {
		f.close()
		f.start() // a never-started pump still needs its Run to observe Stop and close subscriptions
	}
	s.wg.Wait()
	s.budget.stop()
	// Flush and close live registrations' spills (retire/Unregister cover
	// their own paths); FileSpill buffers writes, so skipping this would
	// drop buffered entries and leak the descriptor. A journaling server
	// keeps the directories: the manifest still records these queries,
	// and a restart replays their history from exactly these segments.
	for _, r := range regs {
		if s.manifest != nil {
			r.closeSpillKeep()
		} else {
			r.closeSpill()
		}
	}
	if s.manifest != nil {
		_ = s.manifest.close()
	}
}

// Metrics is the server-wide telemetry snapshot the /metrics endpoint
// serves.
type Metrics struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Feeds         []FeedMetrics  `json:"feeds"`
	Queries       []QueryMetrics `json:"queries"`
	// WorkerBudget is the server-wide filter worker budget and its
	// current split across feeds with live monitoring queries.
	WorkerBudget int           `json:"worker_budget"`
	WorkerShares []workerShare `json:"worker_shares,omitempty"`
	// Coalesce reports the cross-feed inference broker's per-architecture
	// groups (absent when coalescing is disabled or no coalescable
	// backend is registered).
	Coalesce []sched.GroupMetrics `json:"coalesce,omitempty"`
}

// IngestMetrics reports a push-fed feed's ingest ring: how deep the
// publisher-side buffer runs, the admission policy, and how many frames
// were admitted or lost to admission control.
type IngestMetrics struct {
	Policy    string `json:"policy"`
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	Published int64  `json:"published"`
	Dropped   int64  `json:"dropped"`
}

// FeedMetrics is one feed's share of the snapshot.
type FeedMetrics struct {
	Name string `json:"name"`
	// State is the feed's lifecycle phase: creating, running, draining or
	// closed.
	State string `json:"state"`
	// Ingest reports the push-ingestion ring for feeds fed by publishers
	// (absent for decoded feeds).
	Ingest *IngestMetrics `json:"ingest,omitempty"`
	// Frames is the number of frames the pump has dispatched.
	Frames int64 `json:"frames"`
	// FramesPerSec is the dispatch rate since the pump started.
	FramesPerSec float64 `json:"frames_per_sec"`
	// Queries is the number of live subscriptions.
	Queries int `json:"queries"`
	// Workers is the feed's current share of the server-wide filter
	// worker budget (0 while no monitoring query runs on it).
	Workers int `json:"workers"`
	// LastFrameUnixMs is when the pump last dispatched a frame (Unix
	// milliseconds; 0 before the first frame) — the watchdog's input.
	LastFrameUnixMs int64 `json:"last_frame_unix_ms,omitempty"`
	// Stalled reports the watchdog verdict: the feed is running with
	// subscribers but has not dispatched a frame within
	// Config.StallAfter.
	Stalled bool `json:"stalled,omitempty"`
	// ScanBatches is how many micro-batches the shared scan has flushed;
	// ScanAvgBatch is their mean size in frames.
	ScanBatches  int64   `json:"scan_batches,omitempty"`
	ScanAvgBatch float64 `json:"scan_avg_batch,omitempty"`
	// SharedFilters reports each memoised backend's shared-scan economy.
	SharedFilters []SharedFilterMetrics `json:"shared_filters"`
	// SharedDetector reports the feed's memoised confirmation detector
	// (present when the detector is order-insensitive and shareable).
	SharedDetector *SharedDetectorMetrics `json:"shared_detector,omitempty"`
}

// SharedDetectorMetrics reports the shared confirmation stage: Evals is
// the number of true detector evaluations, Hits the confirmations other
// queries got from the memo, and EvalsPerFrame the detector evaluations
// per dispatched frame (at most 1 no matter how many queries share the
// oracle).
type SharedDetectorMetrics struct {
	Evals         int64   `json:"evaluations"`
	Hits          int64   `json:"hits"`
	EvalsPerFrame float64 `json:"evals_per_frame"`
}

// SharedFilterMetrics reports one shared backend's cache counters: Misses
// is the number of true network evaluations, Hits the evaluations other
// queries got for free.
type SharedFilterMetrics struct {
	Technique string  `json:"technique"`
	Misses    int64   `json:"evaluations"`
	Hits      int64   `json:"hits"`
	HitRate   float64 `json:"hit_rate"`
}

// QueryMetrics is one registration's share of the snapshot.
type QueryMetrics struct {
	ID    string `json:"id"`
	Feed  string `json:"feed"`
	Query string `json:"query"`
	Done  bool   `json:"done"`
	// Frames/FilterPassed/DetectorCalls/Matches mirror query.Result for
	// the frames processed so far.
	Frames        int     `json:"frames"`
	FilterPassed  int     `json:"filter_passed"`
	DetectorCalls int     `json:"detector_calls"`
	Matches       int     `json:"matches"`
	Windows       int     `json:"windows"`
	Selectivity   float64 `json:"selectivity"`
	// Recall and Precision are online proxies against simulator ground
	// truth (internal/metrics.BoolAccuracy over per-frame outcomes).
	Recall    float64 `json:"recall"`
	Precision float64 `json:"precision"`
	// QueueDepth is the query's backlog in its feed tee.
	QueueDepth int `json:"queue_depth"`
	// VirtualTimeMs is the simulated pipeline cost so far.
	VirtualTimeMs float64 `json:"virtual_time_ms"`
	// Result-log delivery telemetry: the policy in force, the next
	// sequence the log will assign (= events stored so far), the oldest
	// sequence still resumable from the ring, events lost to the policy,
	// attached consumers, and how far the slowest consumer (or the
	// parked resume point) trails the writer.
	Policy        string `json:"policy"`
	EventSeq      int64  `json:"event_seq"`
	FirstRetained int64  `json:"first_retained"`
	Dropped       int64  `json:"dropped"`
	Readers       int    `json:"readers"`
	ConsumerLag   int64  `json:"consumer_lag"`
	// Acked is the highest event sequence the consuming side has
	// acknowledged as durably processed, -1 when nothing has ever been
	// acked (the floor then follows read positions, the pre-ack
	// contract).
	Acked int64 `json:"acked"`
	// Spill telemetry, present when the registration spills: on-disk
	// footprint and segment count of its result history.
	SpillBytes    int64 `json:"spill_bytes,omitempty"`
	SpillSegments int   `json:"spill_segments,omitempty"`
	// Recovered marks a registration re-created from the durable
	// manifest after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Failure carries the recovered panic when the query ended because
	// its backend or detector panicked (end reason "query_failed").
	Failure *query.Failure `json:"failure,omitempty"`
}

// Metrics snapshots the server.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	regs := make([]*Registration, 0, len(s.regs))
	for _, r := range s.regs {
		regs = append(regs, r)
	}
	s.mu.Unlock()

	m := Metrics{
		UptimeSeconds: time.Since(s.birth).Seconds(),
		WorkerBudget:  s.budget.total,
		WorkerShares:  s.budget.snapshot(),
		Coalesce:      s.broker.Metrics(),
	}
	// Per-feed Workers comes from the one snapshot above, so the two
	// fields always agree even when a rebalance lands mid-Metrics (and
	// the budget lock is taken once, not once per feed).
	shares := make(map[string]int, len(m.WorkerShares))
	for _, ws := range m.WorkerShares {
		shares[ws.Feed] = ws.Workers
	}
	for _, f := range feeds {
		fm := FeedMetrics{
			Name:    f.name,
			State:   string(f.State()),
			Frames:  f.fanout.Frames(),
			Queries: f.fanout.Subscribers(),
			Workers: shares[f.name],
		}
		fm.LastFrameUnixMs, fm.Stalled = f.stalledNow(s.cfg.StallAfter)
		if f.push != nil {
			fm.Ingest = &IngestMetrics{
				Policy:    string(f.push.Policy()),
				Depth:     f.push.Depth(),
				Capacity:  f.push.Capacity(),
				Published: f.push.Published(),
				Dropped:   f.push.Dropped(),
			}
		}
		if f.batcher != nil {
			fm.ScanBatches = f.batcher.batches.Load()
			if fm.ScanBatches > 0 {
				fm.ScanAvgBatch = float64(f.batcher.framesN.Load()) / float64(fm.ScanBatches)
			}
		}
		if f.detMemo != nil {
			hits, misses := f.detMemo.Stats()
			dm := &SharedDetectorMetrics{Evals: misses, Hits: hits}
			if fm.Frames > 0 {
				dm.EvalsPerFrame = float64(misses) / float64(fm.Frames)
			}
			fm.SharedDetector = dm
		}
		f.mu.Lock()
		if f.running {
			if secs := time.Since(f.started).Seconds(); secs > 0 {
				fm.FramesPerSec = float64(fm.Frames) / secs
			}
		}
		for _, e := range f.shared {
			hits, misses := e.sh.Stats()
			sf := SharedFilterMetrics{
				Technique: e.sh.Technique().String(),
				Misses:    misses,
				Hits:      hits,
			}
			if hits+misses > 0 {
				sf.HitRate = float64(hits) / float64(hits+misses)
			}
			fm.SharedFilters = append(fm.SharedFilters, sf)
		}
		f.mu.Unlock()
		sort.Slice(fm.SharedFilters, func(a, b int) bool {
			return fm.SharedFilters[a].Technique < fm.SharedFilters[b].Technique
		})
		m.Feeds = append(m.Feeds, fm)
	}
	sort.Slice(m.Feeds, func(a, b int) bool { return m.Feeds[a].Name < m.Feeds[b].Name })

	for _, r := range regs {
		m.Queries = append(m.Queries, r.metricsRow())
	}
	sort.Slice(m.Queries, func(a, b int) bool { return lessID(m.Queries[a].ID, m.Queries[b].ID) })
	return m
}

// metricsRow snapshots one registration's telemetry — the QueryMetrics
// entry of the /metrics payload, reused by the query listing and
// single-query status endpoints.
func (r *Registration) metricsRow() QueryMetrics {
	r.stats.mu.Lock()
	qm := QueryMetrics{
		ID:            r.id,
		Feed:          r.feedName,
		Query:         r.qry.String(),
		Done:          r.stats.finished,
		Frames:        r.stats.frames,
		FilterPassed:  r.stats.passed,
		DetectorCalls: r.stats.passed,
		Matches:       r.stats.matches,
		Windows:       r.stats.windows,
		Recall:        r.stats.acc.Recall(),
		Precision:     r.stats.acc.Precision(),
		Policy:        string(r.log.Policy()),
		EventSeq:      r.log.NextSeq(),
		FirstRetained: r.log.FirstRetained(),
		Dropped:       r.log.Dropped(),
		Readers:       r.log.Readers(),
		ConsumerLag:   r.log.Lag(),
		Acked:         r.log.AckedSeq(),
		Recovered:     r.recovered,
		Failure:       r.stats.failure,
	}
	if r.sub != nil {
		qm.QueueDepth = r.sub.Depth()
	}
	if r.stats.frames > 0 {
		qm.Selectivity = float64(r.stats.passed) / float64(r.stats.frames)
	}
	// Window runners pay per sampled frame (virtualExtra), monitor
	// runners per frame filtered plus per confirmation.
	virtual := r.stats.virtualExtra
	if !r.stats.windowed {
		virtual += r.stats.filterCost*time.Duration(r.stats.frames) +
			r.stats.detectCost*time.Duration(r.stats.passed)
	}
	qm.VirtualTimeMs = float64(virtual) / float64(time.Millisecond)
	r.stats.mu.Unlock()
	if r.spill != nil {
		qm.SpillBytes = r.spill.SizeBytes()
		qm.SpillSegments = r.spill.Segments()
	}
	return qm
}
