package server

import (
	"sync"
	"testing"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/simclock"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// countingDetector counts true Detect invocations through an inner
// order-insensitive detector.
type countingDetector struct {
	inner detect.Detector
	mu    sync.Mutex
	calls int
}

func (c *countingDetector) Detect(f *video.Frame) []detect.Detection {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.inner.Detect(f)
}
func (c *countingDetector) Cost() simclock.Cost { return c.inner.Cost() }
func (c *countingDetector) OrderInsensitiveDetections() bool {
	return detect.IsOrderInsensitive(c.inner)
}
func (c *countingDetector) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Queries sharing the feed's oracle pay one Detect per distinct confirmed
// frame — the shared detector stage mirrors the filter memo.
func TestServerSharedDetectorOneDetectPerFrame(t *testing.T) {
	p := video.Jackson()
	const n, nQueries = 300, 5
	counting := &countingDetector{inner: detect.NewOracle(nil)}
	frames := video.NewStream(p, 23).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		// No WHERE filter would confirm every frame; use the default OD
		// backend and a permissive predicate so plenty of frames confirm.
		NewDetector: func() detect.Detector { return counting },
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	regs := make([]*Registration, nQueries)
	for i := range regs {
		var err error
		regs[i], err = srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	var wg sync.WaitGroup
	for _, r := range regs {
		wg.Add(1)
		go func(r *Registration) {
			defer wg.Done()
			drain(r)
		}(r)
	}
	wg.Wait()

	// COUNT >= 0 passes every frame through every query's confirmation
	// stage: without the memo that is nQueries*n Detects, with it n.
	if got := counting.Calls(); got != n {
		t.Fatalf("detector ran %d times for %d frames x %d queries — shared stage broken", got, n, nQueries)
	}
	m := srv.Metrics()
	sd := m.Feeds[0].SharedDetector
	if sd == nil {
		t.Fatal("no shared detector metrics")
	}
	if sd.Evals != n || sd.Hits != int64((nQueries-1)*n) {
		t.Fatalf("shared detector counters = %+v", *sd)
	}
	if sd.EvalsPerFrame != 1 {
		t.Fatalf("evals/frame = %v, want 1", sd.EvalsPerFrame)
	}
	// Each query still accounts its own confirmations (the virtual cost
	// model is per query; the memo saves real compute only).
	for _, qm := range m.Queries {
		if qm.DetectorCalls != n {
			t.Fatalf("query %s detector calls = %d, want %d", qm.ID, qm.DetectorCalls, n)
		}
	}
}

// An order-sensitive detector factory must NOT be shared: each query gets
// its own instance, exactly as before.
func TestServerOrderSensitiveDetectorNotShared(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	var mu sync.Mutex
	made := 0
	if err := srv.AddFeed(FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  stream.FromStream(video.NewStream(p, 29)),
		NewDetector: func() detect.Detector {
			mu.Lock()
			made++
			mu.Unlock()
			return detect.NewSimYOLO(nil, 29)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 3; i++ {
		r, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`), Options{MaxFrames: 10})
		if err != nil {
			t.Fatal(err)
		}
		go drain(r)
	}
	srv.Start()
	srv.Close()
	mu.Lock()
	defer mu.Unlock()
	// One probe at feed construction plus one per registration.
	if made != 4 {
		t.Fatalf("detector factory ran %d times, want 4 (probe + one per query)", made)
	}
	m := srv.Metrics()
	if m.Feeds[0].SharedDetector != nil {
		t.Fatal("order-sensitive detector must not report a shared stage")
	}
}

// Micro-batching must not change any query's results: the same fleet over
// the same recording with batching on (default), off (ScanBatch 1), and
// with a trained backend, yields identical events; and a paced feed's
// batcher flushes on the deadline instead of waiting for a full batch.
func TestServerScanBatchEquivalenceAndPacedFlush(t *testing.T) {
	p := video.Jackson()
	const n = 256
	frames := video.NewStream(p, 33).Take(n)
	run := func(cfg Config, backend filters.Backend) [][]Event {
		srv := New(cfg)
		if err := srv.AddFeed(FeedConfig{
			Name: p.Name, Profile: p,
			Source:  &stream.SliceSource{Frames: frames},
			Backend: backend,
		}); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		regs := make([]*Registration, 3)
		for i := range regs {
			var err error
			regs[i], err = srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), Options{})
			if err != nil {
				t.Fatal(err)
			}
		}
		srv.Start()
		out := make([][]Event, len(regs))
		var wg sync.WaitGroup
		for i, r := range regs {
			wg.Add(1)
			go func(i int, r *Registration) {
				defer wg.Done()
				evs, _, _ := drain(r)
				out[i] = evs
			}(i, r)
		}
		wg.Wait()
		return out
	}
	requireSameEvents := func(label string, got, want [][]Event) {
		t.Helper()
		for q := range want {
			if len(got[q]) != len(want[q]) {
				t.Fatalf("%s: query %d event count %d vs %d", label, q, len(got[q]), len(want[q]))
			}
			for i := range want[q] {
				g, w := got[q][i], want[q][i]
				if g.Kind != w.Kind || g.Seq != w.Seq || g.FrameIndex != w.FrameIndex || g.Objects != w.Objects {
					t.Fatalf("%s: query %d event %d = %+v, want %+v", label, q, i, g, w)
				}
			}
		}
	}

	batched := run(Config{}, filters.NewODFilter(p, 33, nil))
	unbatched := run(Config{ScanBatch: 1}, filters.NewODFilter(p, 33, nil))
	requireSameEvents("calibrated", batched, unbatched)

	tcfg := filters.TrainedConfig{Img: 32, Channels: 8, Seed: 33}
	trainedBatched := run(Config{}, filters.NewUntrained(filters.OD, p, tcfg, nil))
	trainedUnbatched := run(Config{ScanBatch: 1}, filters.NewUntrained(filters.OD, p, tcfg, nil))
	requireSameEvents("trained", trainedBatched, trainedUnbatched)

	// Paced feed: frames arrive ~1ms apart with a 500µs flush deadline, so
	// batches must flush small instead of stalling the pipeline for 16
	// frames; the events still match an unpaced run.
	srv := New(Config{ScanFlush: 500 * time.Microsecond})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:        &stream.SliceSource{Frames: frames[:64]},
		Backend:       filters.NewODFilter(p, 33, nil),
		FrameInterval: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	evs, _, sawEnd := drain(r)
	if !sawEnd {
		t.Fatal("paced run did not finish")
	}
	m := srv.Metrics()
	fm := m.Feeds[0]
	if fm.ScanBatches == 0 {
		t.Fatal("paced feed produced no batches")
	}
	if fm.ScanAvgBatch > 8 {
		t.Fatalf("paced feed batches average %.1f frames — deadline flush not working", fm.ScanAvgBatch)
	}
	// Sanity: the paced run still produced the standalone-identical match
	// set for its prefix.
	eng := &query.Engine{Backend: filters.NewODFilter(p, 33, nil), Detector: detect.NewOracle(nil), Tol: query.Tolerances{Count: 1, Location: 1}}
	plan := query.MustBind(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), p)
	want := eng.RunStream(plan, &stream.SliceSource{Frames: frames[:64]}, 64)
	if len(evs) != len(want.Matched) {
		t.Fatalf("paced run matched %d frames, standalone %d", len(evs), len(want.Matched))
	}
	for i, ev := range evs {
		if ev.Seq != want.Matched[i] {
			t.Fatalf("paced match %d at seq %d, want %d", i, ev.Seq, want.Matched[i])
		}
	}
}
