package server

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"vmq/internal/fault"
	"vmq/internal/filters"
	"vmq/internal/video"
)

// panicFilterBackend delegates to a real backend until its Nth
// evaluation, then panics — a crashing model. It deliberately implements
// only the base Backend interface (no embedding), so no BatchBackend or
// ConcurrentBackend promotion kicks in and the executor takes the
// serial per-frame path: the panic lands deterministically.
type panicFilterBackend struct {
	inner filters.Backend
	calls atomic.Int64
	at    int64
}

func (b *panicFilterBackend) Technique() filters.Technique { return b.inner.Technique() }
func (b *panicFilterBackend) Grid() int                    { return b.inner.Grid() }
func (b *panicFilterBackend) Evaluate(f *video.Frame) *filters.Output {
	if b.calls.Add(1) == b.at {
		panic("injected backend panic")
	}
	return b.inner.Evaluate(f)
}

// A backend that panics mid-stream ends exactly that query with a typed
// query_failed event — panic value in the event, stage and stack in the
// status row — while a sibling query on the same feed streams to
// completion untouched.
func TestServerPanicIsolatesQuery(t *testing.T) {
	p := video.Jackson()
	const n = 160
	cfg, _ := clipFeed(p, 42, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`
	victim, err := srv.Register(parse(t, src), Options{
		Backend: &panicFilterBackend{inner: filters.NewODFilter(p, 42, nil), at: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := srv.Register(parse(t, src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	var (
		wg             sync.WaitGroup
		vFinal, sFinal Event
		vEnd, sEnd     bool
		sEvents        []Event
	)
	wg.Add(2)
	go func() { defer wg.Done(); _, vFinal, vEnd = drain(victim) }()
	go func() { defer wg.Done(); sEvents, sFinal, sEnd = drain(sibling) }()
	wg.Wait()

	if !vEnd {
		t.Fatal("victim never delivered its end event")
	}
	if vFinal.Reason != EndReasonQueryFailed {
		t.Fatalf("victim end reason = %q, want %q", vFinal.Reason, EndReasonQueryFailed)
	}
	if !strings.Contains(vFinal.Error, "injected backend panic") {
		t.Fatalf("victim end error = %q, want the panic value", vFinal.Error)
	}
	if vFinal.Final == nil || vFinal.Final.Failure == nil || vFinal.Final.Failure.Stage != "filter" {
		t.Fatalf("victim final = %+v, want a filter-stage failure", vFinal.Final)
	}

	if !sEnd || sFinal.Reason != "" {
		t.Fatalf("sibling end=%v reason=%q — the panic leaked across queries", sEnd, sFinal.Reason)
	}
	if sFinal.Final == nil || sFinal.Final.FramesTotal != n {
		t.Fatalf("sibling final = %+v, want all %d frames", sFinal.Final, n)
	}
	if len(sEvents) != n {
		t.Fatalf("sibling saw %d events, want %d", len(sEvents), n)
	}

	// The status row keeps the fault for post-mortem.
	var found bool
	for _, qm := range srv.Metrics().Queries {
		if qm.ID != victim.ID() {
			continue
		}
		found = true
		if qm.Failure == nil || qm.Failure.Stage != "filter" || qm.Failure.Stack == "" {
			t.Fatalf("victim status row failure = %+v, want filter stage with stack", qm.Failure)
		}
	}
	if !found {
		t.Fatal("victim missing from metrics")
	}
}

// The query.detect failpoint drives a panic through the confirmation
// stage: the stream ends query_failed with the detect stage latched.
func TestServerFaultInjectedDetectPanic(t *testing.T) {
	if !fault.Enabled {
		t.Skip("fault registry compiled out (vmq_nofault)")
	}
	fault.Reset()
	if err := fault.Arm("query.detect=panic:after=5:times=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	p := video.Jackson()
	cfg, _ := clipFeed(p, 42, 80)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	_, final, sawEnd := drain(reg)
	if !sawEnd {
		t.Fatal("no end event")
	}
	if final.Reason != EndReasonQueryFailed {
		t.Fatalf("end reason = %q, want %q", final.Reason, EndReasonQueryFailed)
	}
	if final.Final == nil || final.Final.Failure == nil || final.Final.Failure.Stage != "detect" {
		t.Fatalf("final = %+v, want a detect-stage failure", final.Final)
	}
	if got := fault.Fired("query.detect"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
}
