package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmq/internal/stream"
	"vmq/internal/video"
)

// newFeedAPIServer starts an empty server (no seeded feed) behind the
// HTTP API, for tests that create feeds at runtime.
func newFeedAPIServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response, want int) feedStatus {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d", resp.StatusCode, want)
	}
	var st feedStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The acceptance path, end to end over HTTP: create a push feed at
// runtime, register a query on it, publish >1k frames through the NDJSON
// bridge, watch them matched, drain, and delete — with the end event
// delivered, typed, and nothing lost.
func TestHTTPFeedLifecycleAndPublish(t *testing.T) {
	_, ts := newFeedAPIServer(t)
	p := video.Jackson()
	const n = 1200

	st := decodeStatus(t, postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{
		Name: "cam1", Profile: "jackson",
	}), http.StatusCreated)
	if st.State != string(FeedRunning) {
		t.Fatalf("created feed state %q, want running (server already started)", st.State)
	}
	if st.Profile != "jackson" {
		t.Fatalf("created feed profile %q, want the dataset name, not the bind copy", st.Profile)
	}
	if st.Ingest == nil || st.Ingest.Capacity != defaultIngestBuffer || st.Ingest.Policy != string(stream.PushBlock) {
		t.Fatalf("created feed ingest = %+v", st.Ingest)
	}

	// Duplicate names and unknown profiles are refused.
	if resp := postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{Name: "cam1", Profile: "jackson"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate feed: status %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{Name: "cam2", Profile: "nowhere"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown profile: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Register a query on the runtime feed.
	resp, err := http.Post(apiBase(ts)+"/queries", "text/plain",
		strings.NewReader(`SELECT FRAMES FROM cam1 WHERE COUNT(car) = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on runtime feed: status %d", resp.StatusCode)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Stream results concurrently with publishing.
	type tally struct {
		matches int
		final   Event
		sawEnd  bool
	}
	results := make(chan tally, 1)
	go func() {
		var tl tally
		defer func() { results <- tl }()
		resp, err := http.Get(apiBase(ts) + "/queries/" + created.ID + "/results")
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Error(err)
				return
			}
			switch ev.Kind {
			case EventMatch:
				tl.matches++
			case EventEnd:
				tl.final, tl.sawEnd = ev, true
			}
		}
	}()

	// Publish the clip in batches through the NDJSON bridge.
	frames := video.NewStream(p, 42).Take(n)
	const batch = 400
	for lo := 0; lo < n; lo += batch {
		body, err := EncodeFrames(frames[lo : lo+batch])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(apiBase(ts)+"/feeds/cam1/frames", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var pub publishResponse
		if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || pub.Published != batch || pub.Rejected != 0 || pub.Closed {
			t.Fatalf("publish batch at %d: status %d, %+v", lo, resp.StatusCode, pub)
		}
	}

	// The listing shows the feed running with every frame admitted.
	resp, err = http.Get(apiBase(ts) + "/feeds")
	if err != nil {
		t.Fatal(err)
	}
	var listed []feedStatus
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].Name != "cam1" || listed[0].Ingest.Published != n {
		t.Fatalf("GET /feeds = %+v, want cam1 with %d published", listed, n)
	}

	// Drain: the query ends with the typed reason; nothing in flight lost.
	st = decodeStatus(t, postJSON(t, apiBase(ts)+"/feeds/cam1/drain", struct{}{}), http.StatusOK)
	if st.State != string(FeedDraining) && st.State != string(FeedClosed) {
		t.Fatalf("state after drain = %q", st.State)
	}
	tl := <-results
	if !tl.sawEnd {
		t.Fatal("results stream closed without an end event")
	}
	if tl.final.Reason != EndReasonFeedDrained {
		t.Fatalf("end reason %q, want %q", tl.final.Reason, EndReasonFeedDrained)
	}
	if tl.matches == 0 {
		t.Fatal("published clip produced no matches — frames did not reach the query")
	}

	// Publishing into the drained feed reports closed, not an error.
	line, err := EncodeFrames(frames[:1])
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(apiBase(ts)+"/feeds/cam1/frames", "application/x-ndjson", bytes.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	var pub publishResponse
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !pub.Closed || pub.Published != 0 {
		t.Fatalf("publish after drain = %+v, want closed", pub)
	}

	// Delete; a 200 means teardown completed and the name is free.
	req, err := http.NewRequest(http.MethodDelete, apiBase(ts)+"/feeds/cam1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp, err = http.Get(apiBase(ts) + "/feeds")
	if err != nil {
		t.Fatal(err)
	}
	listed = nil
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 0 {
		t.Fatalf("feed still listed after delete: %+v", listed)
	}
	if resp := postJSON(t, apiBase(ts)+"/feeds/gone/drain", struct{}{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain of unknown feed: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// Admission policies behave over the bridge: with no query consuming, a
// reject ring refuses the overflow and a drop-oldest ring evicts it —
// both visible in the publish response and the feed's ingest metrics.
func TestHTTPPublishAdmissionPolicies(t *testing.T) {
	_, ts := newFeedAPIServer(t)
	p := video.Jackson()
	frames := video.NewStream(p, 5).Take(20)
	body, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}

	// No query subscribes, so the pump never drains the ring: admission is
	// exactly the ring capacity.
	decodeStatus(t, postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{
		Name: "rej", Profile: "jackson", IngestBuffer: 8, IngestPolicy: "reject",
	}), http.StatusCreated)
	resp, err := http.Post(apiBase(ts)+"/feeds/rej/frames", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pub publishResponse
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pub.Published != 8 || pub.Rejected != 12 {
		t.Fatalf("reject policy: %+v, want 8 published / 12 rejected", pub)
	}

	decodeStatus(t, postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{
		Name: "drop", Profile: "jackson", IngestBuffer: 8, IngestPolicy: "drop-oldest",
	}), http.StatusCreated)
	resp, err = http.Post(apiBase(ts)+"/feeds/drop/frames", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pub = publishResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pub.Published != 20 || pub.Rejected != 0 {
		t.Fatalf("drop-oldest policy: %+v, want all 20 published", pub)
	}
	m, err := http.Get(apiBase(ts) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Metrics
	if err := json.NewDecoder(m.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	m.Body.Close()
	for _, fm := range snap.Feeds {
		switch fm.Name {
		case "drop":
			if fm.Ingest == nil || fm.Ingest.Dropped != 12 || fm.Ingest.Depth != 8 {
				t.Fatalf("drop feed ingest metrics = %+v, want 12 dropped at depth 8", fm.Ingest)
			}
		case "rej":
			if fm.Ingest == nil || fm.Ingest.Published != 8 {
				t.Fatalf("reject feed ingest metrics = %+v", fm.Ingest)
			}
		}
	}

	// An oversized ring request is refused before allocation, with the
	// cap-rejection code.
	if resp := postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{
		Name: "huge", Profile: "jackson", IngestBuffer: MaxIngestBuffer + 1,
	}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized ingest buffer: status %d, want 422", resp.StatusCode)
	} else {
		var env apiError
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "buffer_too_large" {
			t.Fatalf("oversized ingest buffer envelope = %+v, %v", env, err)
		}
		resp.Body.Close()
	}
}

// wsClientFrame encodes one masked client frame (clients must mask).
func wsClientFrame(op byte, fin bool, payload []byte) []byte {
	mask := [4]byte{0x21, 0x43, 0x65, 0x87}
	b0 := op
	if fin {
		b0 |= 0x80
	}
	out := []byte{b0}
	switch n := len(payload); {
	case n < 126:
		out = append(out, 0x80|byte(n))
	case n <= 0xFFFF:
		out = append(out, 0x80|126, byte(n>>8), byte(n))
	default:
		panic("test frame too large")
	}
	out = append(out, mask[:]...)
	for i, c := range payload {
		out = append(out, c^mask[i%4])
	}
	return out
}

// wsReadServerFrame reads one unmasked server frame (7- and 16-bit
// lengths; result events exceed the 125-byte short form).
func wsReadServerFrame(t *testing.T, br *bufio.Reader) (op byte, payload []byte) {
	t.Helper()
	b0, err := br.ReadByte()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := br.ReadByte()
	if err != nil {
		t.Fatal(err)
	}
	if b1&0x80 != 0 {
		t.Fatal("server frame is masked")
	}
	n := int(b1 & 0x7F)
	if n == 126 {
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			t.Fatal(err)
		}
		n = int(ext[0])<<8 | int(ext[1])
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	return b0 & 0x0F, payload
}

// wsDial performs the client side of the handshake against the test
// server and returns the raw connection.
func wsDial(t *testing.T, tsURL, path string) (net.Conn, *bufio.Reader) {
	t.Helper()
	addr := strings.TrimPrefix(tsURL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	const key = "dGhlIHNhbXBsZSBub25jZQ=="
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		apiPrefix()+path, addr, key)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("handshake status = %d, want 101", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Sec-WebSocket-Accept"), wsAcceptKey(key); got != want {
		t.Fatalf("Sec-WebSocket-Accept = %q, want %q", got, want)
	}
	return conn, br
}

// The WebSocket bridge: handshake, one frame per text message (including
// a fragmented one), ping answered with pong, clean close — and every
// published frame admitted to the feed.
func TestHTTPFeedWebSocketPublish(t *testing.T) {
	srv, ts := newFeedAPIServer(t)
	decodeStatus(t, postJSON(t, apiBase(ts)+"/feeds", createFeedRequest{
		Name: "wscam", Profile: "jackson", IngestBuffer: 128,
	}), http.StatusCreated)
	f, err := srv.feedByName("wscam")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM wscam WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	endc := make(chan Event, 1)
	go func() {
		_, final, _ := drain(reg)
		endc <- final
	}()

	p := video.Jackson()
	frames := video.NewStream(p, 9).Take(51)
	conn, br := wsDial(t, ts.URL, "/feeds/wscam/publish")
	for i, fr := range frames[:50] {
		msg, err := json.Marshal(encodeWireFrame(fr))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(wsClientFrame(wsOpText, true, msg)); err != nil {
			t.Fatal(err)
		}
		if i == 25 { // a ping mid-stream must come back as a pong
			if _, err := conn.Write(wsClientFrame(wsOpPing, true, []byte("hb"))); err != nil {
				t.Fatal(err)
			}
			op, payload := wsReadServerFrame(t, br)
			if op != wsOpPong || string(payload) != "hb" {
				t.Fatalf("ping answered with op %d %q", op, payload)
			}
		}
	}
	// The last frame arrives fragmented: text fragment + continuation.
	msg, err := json.Marshal(encodeWireFrame(frames[50]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wsClientFrame(wsOpText, false, msg[:len(msg)/2])); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wsClientFrame(wsOpCont, true, msg[len(msg)/2:])); err != nil {
		t.Fatal(err)
	}
	// Close handshake: the server echoes the close frame.
	if _, err := conn.Write(wsClientFrame(wsOpClose, true, []byte{0x03, 0xE8})); err != nil {
		t.Fatal(err)
	}
	op, _ := wsReadServerFrame(t, br)
	if op != wsOpClose {
		t.Fatalf("close answered with op %d", op)
	}

	// Everything published is admitted (block policy, consumer live).
	deadline := time.Now().Add(5 * time.Second)
	for f.push.Published() != int64(len(frames)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := f.push.Published(); got != int64(len(frames)) {
		t.Fatalf("bridge admitted %d frames, want %d", got, len(frames))
	}

	if err := srv.DrainFeed("wscam"); err != nil {
		t.Fatal(err)
	}
	final := <-endc
	if final.Reason != EndReasonFeedDrained {
		t.Fatalf("end reason %q, want %q", final.Reason, EndReasonFeedDrained)
	}

	// A publisher connecting to the drained feed is shut down with a
	// going-away close as soon as it publishes.
	conn2, br2 := wsDial(t, ts.URL, "/feeds/wscam/publish")
	msg, err = json.Marshal(encodeWireFrame(frames[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(wsClientFrame(wsOpText, true, msg)); err != nil {
		t.Fatal(err)
	}
	op, payload := wsReadServerFrame(t, br2)
	if op != wsOpClose || len(payload) < 2 {
		t.Fatalf("drained feed answered op %d payload %q, want close", op, payload)
	}
	if code := uint16(payload[0])<<8 | uint16(payload[1]); code != 1001 {
		t.Fatalf("close code %d, want 1001 (going away)", code)
	}
}
