package server

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vmq/internal/filters"
	"vmq/internal/rlog"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// runFleet registers nQueries copies of src on a feed over the given
// clip, drains them all, and returns the per-query event streams.
func runFleet(t *testing.T, cfg Config, backend filters.Backend, frames []*video.Frame, src string, nQueries int, opt Options) [][]Event {
	t.Helper()
	p := video.Jackson()
	srv := New(cfg)
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: backend,
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	regs := make([]*Registration, nQueries)
	for i := range regs {
		var err error
		if regs[i], err = srv.Register(parse(t, src), opt); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	out := make([][]Event, nQueries)
	var wg sync.WaitGroup
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r *Registration) {
			defer wg.Done()
			evs, final, sawEnd := drain(r)
			if !sawEnd {
				t.Errorf("query %d: no end event", i)
			}
			out[i] = append(evs, final)
		}(i, r)
	}
	wg.Wait()
	return out
}

// Delivery policies must not change what a keeping-up consumer sees: the
// same fleet over the same clip under block (the lossless pre-log
// contract), drop-oldest and sample-under-pressure yields identical
// event streams when consumers drain promptly — the policies differ only
// under pressure. Checked for a calibrated and a trained backend.
func TestServerPolicyEquivalenceWhenDraining(t *testing.T) {
	p := video.Jackson()
	const n, nQueries = 256, 3
	frames := video.NewStream(p, 33).Take(n)
	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`

	requireSame := func(label string, got, want [][]Event) {
		t.Helper()
		for q := range want {
			if len(got[q]) != len(want[q]) {
				t.Fatalf("%s: query %d event count %d vs %d", label, q, len(got[q]), len(want[q]))
			}
			for i := range want[q] {
				g, w := got[q][i], want[q][i]
				if g.Kind != w.Kind || g.Seq != w.Seq || g.FrameIndex != w.FrameIndex ||
					g.EventSeq != w.EventSeq || g.Objects != w.Objects {
					t.Fatalf("%s: query %d event %d = %+v, want %+v", label, q, i, g, w)
				}
			}
		}
	}

	backends := map[string]func() filters.Backend{
		"calibrated": func() filters.Backend { return filters.NewODFilter(p, 33, nil) },
		"trained": func() filters.Backend {
			return filters.NewUntrained(filters.OD, p, filters.TrainedConfig{Img: 32, Channels: 8, Seed: 33}, nil)
		},
	}
	for label, mk := range backends {
		block := runFleet(t, Config{}, mk(), frames, src, nQueries, Options{Policy: rlog.Block})
		drop := runFleet(t, Config{}, mk(), frames, src, nQueries, Options{Policy: rlog.DropOldest})
		sample := runFleet(t, Config{}, mk(), frames, src, nQueries, Options{Policy: rlog.Sample})
		requireSame(label+"/drop-oldest", drop, block)
		requireSame(label+"/sample", sample, block)
	}
}

// A deliberately stalled consumer under drop-oldest must not stall its
// feed: sibling queries drain to completion, the stalled query's runner
// also completes (shedding into its ring), and the drops are accounted.
// Under the old lossless channel this scenario wedged the whole feed
// once the buffers filled.
func TestServerDropOldestIsolatesStalledConsumer(t *testing.T) {
	p := video.Jackson()
	const n = 400
	frames := video.NewStream(p, 7).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: filters.NewODFilter(p, 7, nil),
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Matches every frame: the stalled query's ring (16) wraps many times.
	q := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`
	stalled, err := srv.Register(parse(t, q), Options{Policy: rlog.DropOldest, ResultBuffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := srv.Register(parse(t, q), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	// Only the healthy consumer reads; the stalled registration's log has
	// no reader at all.
	evs, final, sawEnd := drain(healthy)
	if !sawEnd || final.Final == nil || final.Final.FramesTotal != n {
		t.Fatalf("healthy sibling did not finish cleanly: %+v", final.Final)
	}
	if len(evs) != n {
		t.Fatalf("healthy sibling saw %d matches, want %d", len(evs), n)
	}

	// The stalled runner also finished — shedding, not stalling.
	select {
	case <-stalled.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stalled query's runner wedged its feed")
	}
	log := stalled.Log()
	if log.Dropped() == 0 {
		t.Fatal("stalled drop-oldest query recorded no drops")
	}
	// n matches + 1 end event were appended; the ring retains the tail.
	if log.NextSeq() != n+1 {
		t.Fatalf("stalled log high-water %d, want %d", log.NextSeq(), n+1)
	}
	// A late consumer sees one gap covering the evictions, then the
	// contiguous retained tail ending with the totals.
	evs2, final2, sawEnd2 := drain(stalled)
	if !sawEnd2 || final2.Final == nil || final2.Final.FramesTotal != n {
		t.Fatalf("stalled stream did not deliver its end event: %+v", final2.Final)
	}
	if len(evs2) == 0 || evs2[0].Kind != EventGap {
		t.Fatalf("late consumer's first event = %+v, want a gap", evs2[0])
	}
	if evs2[0].DroppedFrom != 0 || evs2[0].DroppedTo != log.FirstRetained() {
		t.Fatalf("gap = [%d,%d), want [0,%d)", evs2[0].DroppedFrom, evs2[0].DroppedTo, log.FirstRetained())
	}
	next := evs2[0].DroppedTo
	for _, ev := range append(evs2[1:], final2) {
		if ev.EventSeq != next {
			t.Fatalf("event seq %d, want %d (stream not contiguous after gap)", ev.EventSeq, next)
		}
		next++
	}
}

// Sample-under-pressure sheds matches but never the end event, and the
// metrics account every shed event.
func TestServerSamplePolicySheds(t *testing.T) {
	p := video.Jackson()
	const n = 300
	frames := video.NewStream(p, 9).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: filters.NewODFilter(p, 9, nil),
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`),
		Options{Policy: rlog.Sample, ResultBuffer: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	<-reg.Done() // no consumer while running: maximum pressure
	log := reg.Log()
	if log.Dropped() == 0 {
		t.Fatal("sampling under pressure dropped nothing")
	}
	// Every produced event is either stored or dropped (an event stored
	// and later overwritten unread counts in both, so >=).
	if log.NextSeq()+log.Dropped() < n+1 {
		t.Fatalf("stored %d + dropped %d < %d events produced — events unaccounted", log.NextSeq(), log.Dropped(), n+1)
	}
	if log.NextSeq() > int64(log.Capacity())+1 {
		t.Fatalf("sampling stored %d events into a %d ring without pressure relief", log.NextSeq(), log.Capacity())
	}
	_, final, sawEnd := drain(reg)
	if !sawEnd || final.Final == nil || final.Final.FramesTotal != n {
		t.Fatalf("sampled stream lost its end event: %+v", final.Final)
	}
}

// The file-backed spill extends the resumable window beyond the ring: a
// consumer arriving after heavy shedding replays the complete history
// with no gap.
func TestServerSpillServesFullHistory(t *testing.T) {
	p := video.Jackson()
	const n = 200
	frames := video.NewStream(p, 13).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: filters.NewODFilter(p, 13, nil),
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{
		Policy:       rlog.DropOldest,
		ResultBuffer: 16,
		SpillPath:    filepath.Join(t.TempDir(), "q.ndjson"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	<-reg.Done()
	evs, final, sawEnd := drain(reg)
	if !sawEnd {
		t.Fatal("no end event")
	}
	if len(evs) != n {
		t.Fatalf("spill-backed replay delivered %d events, want all %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Kind != EventMatch || ev.EventSeq != int64(i) || ev.Seq != i {
			t.Fatalf("replayed event %d = %+v", i, ev)
		}
	}
	if final.EventSeq != int64(n) {
		t.Fatalf("end event at seq %d, want %d", final.EventSeq, n)
	}
}

// The server-wide worker budget splits GOMAXPROCS-equivalents across
// feeds with live monitoring queries and rebalances as they come and go.
func TestServerWorkerBudgetRebalances(t *testing.T) {
	pj, pd := video.Jackson(), video.Detrac()
	srv := New(Config{WorkerBudget: 8})
	for _, p := range []video.Profile{pj, pd} {
		if err := srv.AddFeed(LiveFeed(p, 3)); err != nil {
			t.Fatal(err)
		}
	}
	defer srv.Close()
	srv.Start()

	share := func(feed string) int {
		t.Helper()
		for _, fm := range srv.Metrics().Feeds {
			if fm.Name == feed {
				return fm.Workers
			}
		}
		t.Fatalf("no feed %q in metrics", feed)
		return 0
	}

	a, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	go drain(a)
	if got := share("jackson"); got != 8 {
		t.Fatalf("lone feed's share = %d, want the whole budget 8", got)
	}
	if got := share("detrac"); got != 0 {
		t.Fatalf("idle feed's share = %d, want 0", got)
	}

	b, err := srv.Register(parse(t, `SELECT FRAMES FROM detrac WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	go drain(b)
	if sj, sd := share("jackson"), share("detrac"); sj != 4 || sd != 4 {
		t.Fatalf("two live feeds share %d/%d, want 4/4", sj, sd)
	}
	m := srv.Metrics()
	if m.WorkerBudget != 8 || len(m.WorkerShares) != 2 {
		t.Fatalf("budget snapshot = %d %+v", m.WorkerBudget, m.WorkerShares)
	}

	if err := srv.Unregister(b.ID()); err != nil {
		t.Fatal(err)
	}
	if got := share("jackson"); got != 8 {
		t.Fatalf("survivor's share after rebalance = %d, want 8", got)
	}

	// An unfiltered SELECT FRAMES runs no filter stage, so it must not
	// join the budget: the filtered survivor keeps the whole budget.
	c, err := srv.Register(parse(t, `SELECT FRAMES FROM detrac`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	go drain(c)
	if sj, sd := share("jackson"), share("detrac"); sj != 8 || sd != 0 {
		t.Fatalf("unfiltered query shifted the budget to %d/%d, want 8/0", sj, sd)
	}
	if err := srv.Unregister(c.ID()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Unregister(a.ID()); err != nil {
		t.Fatal(err)
	}
}

// MaxQueriesPerFeed rejects registrations beyond the limit with the
// typed ErrFeedBusy, and frees the slot when a query unregisters.
func TestServerFeedRegistrationLimit(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{MaxQueriesPerFeed: 2})
	if err := srv.AddFeed(LiveFeed(p, 5)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`
	var regs []*Registration
	for i := 0; i < 2; i++ {
		r, err := srv.Register(parse(t, src), Options{})
		if err != nil {
			t.Fatal(err)
		}
		go drain(r)
		regs = append(regs, r)
	}
	if _, err := srv.Register(parse(t, src), Options{}); !errors.Is(err, ErrFeedBusy) {
		t.Fatalf("third registration error = %v, want ErrFeedBusy", err)
	}
	if err := srv.Unregister(regs[0].ID()); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Register(parse(t, src), Options{})
	if err != nil {
		t.Fatalf("registration after a slot freed: %v", err)
	}
	go drain(r)
	if err := srv.Unregister(r.ID()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Unregister(regs[1].ID()); err != nil {
		t.Fatal(err)
	}
}

// Unknown delivery policies are rejected at registration.
func TestServerRejectsUnknownPolicy(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(LiveFeed(p, 5)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`),
		Options{Policy: "nonsense"}); err == nil {
		t.Fatal("junk policy accepted")
	}
}
