package server

import (
	"fmt"
	"sync"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// FeedConfig describes one named live feed: where its frames come from
// and the default operator stack queries on it share.
type FeedConfig struct {
	// Name is the feed's registry key; queries address it via their FROM
	// clause, so it must match the profile name the VQL references.
	Name string
	// Profile is the dataset profile queries are bound against.
	Profile video.Profile
	// Source supplies the frames. A bounded source (a recording) ends the
	// feed and every query on it gracefully; an unbounded one (a live
	// camera) runs until the server closes.
	Source stream.Source
	// Backend is the default filter backend for queries on this feed. It
	// is wrapped in a shared-scan memo, so no matter how many queries
	// register, the network runs once per frame. Nil selects the OD
	// family over the profile (the paper's best performer).
	Backend filters.Backend
	// NewDetector builds one confirmation detector per registered query.
	// Detectors carry call-order-sensitive state (SimYOLO's RNG), so they
	// cannot be shared the way filter outputs can. Nil selects the
	// Mask R-CNN-stand-in oracle.
	NewDetector func() detect.Detector
	// FrameInterval paces the feed (e.g. 33 ms for a 30 fps camera).
	// Zero runs as fast as the slowest query consumes.
	FrameInterval time.Duration
	// MaxFrames ends the feed after this many frames. Zero means
	// unbounded (or until the source itself ends).
	MaxFrames int
}

// LiveFeed is the standard synthetic live feed over a profile: an
// unbounded simulator stream with the OD filter family and oracle
// confirmation, deterministic for the seed.
func LiveFeed(p video.Profile, seed uint64) FeedConfig {
	return FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  stream.FromStream(video.NewStream(p, seed)),
		Backend: filters.NewODFilter(p, seed, nil),
	}
}

// feed is one running feed: the fan-out pump plus the shared-scan filter
// memos queries on this feed draw from.
type feed struct {
	name    string
	profile video.Profile
	fanout  *stream.Fanout
	newDet  func() detect.Detector
	deflt   *filters.Shared

	mu      sync.Mutex
	shared  map[filters.Backend]*filters.Shared
	started time.Time
	running bool
}

func newFeed(cfg FeedConfig, fanoutBuffer, cacheCap int) (*feed, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: feed needs a name")
	}
	if cfg.Name != cfg.Profile.Name {
		return nil, fmt.Errorf("server: feed %q must carry its profile's name %q (VQL FROM clauses resolve against it)",
			cfg.Name, cfg.Profile.Name)
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("server: feed %q needs a source", cfg.Name)
	}
	src := cfg.Source
	if cfg.MaxFrames > 0 {
		src = &limitSource{src: src, left: cfg.MaxFrames}
	}
	if cfg.FrameInterval > 0 {
		src = &pacedSource{src: src, interval: cfg.FrameInterval}
	}
	backend := cfg.Backend
	if backend == nil {
		backend = filters.NewODFilter(cfg.Profile, 1, nil)
	}
	newDet := cfg.NewDetector
	if newDet == nil {
		newDet = func() detect.Detector { return detect.NewOracle(nil) }
	}
	f := &feed{
		name:    cfg.Name,
		profile: cfg.Profile,
		fanout:  stream.NewFanout(src, fanoutBuffer),
		newDet:  newDet,
		shared:  make(map[filters.Backend]*filters.Shared),
	}
	f.deflt = filters.NewShared(backend, cacheCap)
	f.shared[backend] = f.deflt
	return f, nil
}

// sharedFor returns the feed's memoised wrapper for a backend, creating
// one on first use so every query naming the same backend instance joins
// the same shared scan. A nil backend selects the feed default.
func (f *feed) sharedFor(b filters.Backend, cacheCap int) *filters.Shared {
	if b == nil {
		return f.deflt
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.shared[b]; ok {
		return s
	}
	s := filters.NewShared(b, cacheCap)
	f.shared[b] = s
	return s
}

// start launches the pump goroutine (once).
func (f *feed) start() {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.started = time.Now()
	f.mu.Unlock()
	go f.fanout.Run()
}

// limitSource caps a source at n frames.
type limitSource struct {
	src  stream.Source
	left int
}

func (l *limitSource) Next() (*video.Frame, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.src.Next()
}

// pacedSource spaces frames at least interval apart — a real-time camera
// instead of a CPU-bound generator.
type pacedSource struct {
	src      stream.Source
	interval time.Duration
	last     time.Time
}

func (p *pacedSource) Next() (*video.Frame, bool) {
	if !p.last.IsZero() {
		if wait := p.interval - time.Since(p.last); wait > 0 {
			time.Sleep(wait)
		}
	}
	p.last = time.Now()
	return p.src.Next()
}
