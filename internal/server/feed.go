package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/sched"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// FeedState is a feed's lifecycle phase. Feeds move strictly forward:
// creating -> running -> draining -> closed (a bounded feed whose source
// ends naturally skips draining and goes straight to closed).
type FeedState string

// Feed lifecycle states.
const (
	// FeedCreating is a feed registered but not yet pumping (the server
	// has not started, or the pump goroutine has not launched yet).
	FeedCreating FeedState = "creating"
	// FeedRunning is a feed whose pump is live.
	FeedRunning FeedState = "running"
	// FeedDraining is a feed whose ingestion has been cut: no new frames
	// are admitted and no new queries may register, but frames already
	// in flight (ingest ring, scan batches, fan-out buffers) still flow
	// so every query ends with its end event.
	FeedDraining FeedState = "draining"
	// FeedClosed is a feed whose pump has finished; its subscriptions are
	// closed and it holds no broker memberships.
	FeedClosed FeedState = "closed"
)

// FeedConfig describes one named live feed: where its frames come from
// and the default operator stack queries on it share.
type FeedConfig struct {
	// Name is the feed's registry key; queries address it via their FROM
	// clause. When it differs from the profile's dataset name, the feed
	// binds queries against a copy of the profile renamed to the feed
	// name, so `FROM <feed-name>` resolves naturally (this is how several
	// runtime feeds share one dataset profile).
	Name string
	// Profile is the dataset profile queries are bound against.
	Profile video.Profile
	// Source supplies the frames. A bounded source (a recording) ends the
	// feed and every query on it gracefully; an unbounded one (a live
	// camera) runs until the server closes.
	Source stream.Source
	// Backend is the default filter backend for queries on this feed. It
	// is wrapped in a shared-scan memo, so no matter how many queries
	// register, the network runs once per frame. Nil selects the OD
	// family over the profile (the paper's best performer).
	Backend filters.Backend
	// NewDetector builds one confirmation detector per registered query.
	// Detectors carry call-order-sensitive state (SimYOLO's RNG), so they
	// cannot be shared the way filter outputs can. Nil selects the
	// Mask R-CNN-stand-in oracle.
	NewDetector func() detect.Detector
	// FrameInterval paces the feed (e.g. 33 ms for a 30 fps camera).
	// Zero runs as fast as the slowest query consumes.
	FrameInterval time.Duration
	// MaxFrames ends the feed after this many frames. Zero means
	// unbounded (or until the source itself ends).
	MaxFrames int
}

// LiveFeed is the standard synthetic live feed over a profile: an
// unbounded simulator stream with the OD filter family and oracle
// confirmation, deterministic for the seed.
func LiveFeed(p video.Profile, seed uint64) FeedConfig {
	return FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  stream.FromStream(video.NewStream(p, seed)),
		Backend: filters.NewODFilter(p, seed, nil),
	}
}

// feed is one running feed: the fan-out pump, the shared-scan filter
// memos queries on this feed draw from, the micro-batching scan stage
// that fills the default memo chunk-at-a-time, and (for order-insensitive
// detectors) the shared confirmation memo.
type feed struct {
	name    string
	profile video.Profile
	// dataset is the underlying dataset profile's name, kept before the
	// bind copy is renamed to the feed — what listings report as the
	// feed's profile.
	dataset string
	fanout  *stream.Fanout
	newDet  func() detect.Detector
	deflt   *filters.Shared
	batcher *scanBatcher
	detMemo *detect.Memo
	broker  *sched.Broker // nil when cross-feed coalescing is disabled

	// push is the feed's ingest ring when its frames arrive from
	// publishers (a *stream.PushSource config); nil for decoded feeds.
	push *stream.PushSource
	// gate cuts the source on drain for feeds without a scan batcher (the
	// batcher drains at its own input so in-flight batches still flush).
	gate *drainGate

	// defaultUsers counts live registrations on the default backend; the
	// scan batcher only warms the memo while someone will read it.
	defaultUsers atomic.Int64

	// lastFrame is the wall-clock UnixMilli of the last frame the pump
	// dispatched (0 until the first frame) — the stall watchdog's input.
	lastFrame atomic.Int64

	mu      sync.Mutex
	shared  map[filters.Backend]*sharedEntry
	started time.Time
	running bool
	// state is the lifecycle phase; endReason is stamped on every query's
	// end event once a drain or removal decides how the feed ends (empty
	// for a source that ends on its own).
	state     FeedState
	endReason string
}

// State returns the feed's lifecycle phase.
func (f *feed) State() FeedState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// endedReason returns the reason runners stamp on end events ("" while
// the feed has not been drained or removed).
func (f *feed) endedReason() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.endReason
}

// stalledNow reports the feed's last-frame timestamp (UnixMilli, 0
// until the first frame) and whether the watchdog flags the feed as
// stalled: running, with subscribers waiting on it, yet no frame pumped
// within the window. A non-positive window disables the check. A feed
// nobody subscribes to is idle by design (the pull-driven pump never
// reads its source), not stalled.
func (f *feed) stalledNow(window time.Duration) (int64, bool) {
	last := f.lastFrame.Load()
	f.mu.Lock()
	running := f.running && f.state == FeedRunning
	started := f.started
	f.mu.Unlock()
	if !running || window <= 0 || f.fanout.Subscribers() == 0 {
		return last, false
	}
	ref := started
	if last > 0 {
		ref = time.UnixMilli(last)
	}
	return last, time.Since(ref) > window
}

// drain cuts the feed's ingestion while letting everything already in
// flight — ingest-ring frames, scan batches, memo warm-ups, fan-out
// buffers — flow to the registered queries, which then end through the
// ordinary source-EOF path: the batcher flushes its partial batch, the
// EOF notifier releases the feed's broker memberships, the fan-out
// closes every subscription, and each runner emits its end event carrying
// reason. Reports whether this call initiated the drain (false when the
// feed was already draining or closed). Safe to call before the pump
// starts: the later start finds the source already cut and closes out
// immediately.
func (f *feed) drain(reason string) bool {
	f.mu.Lock()
	if f.state == FeedDraining || f.state == FeedClosed {
		f.mu.Unlock()
		return false
	}
	f.state = FeedDraining
	f.endReason = reason
	f.mu.Unlock()
	switch {
	case f.push != nil:
		// Close the ring's input: publishers get ErrPushClosed, buffered
		// frames still reach the scan.
		f.push.Close()
	case f.batcher != nil:
		f.batcher.drainInput()
	default:
		f.gate.cut()
	}
	// A pump idling on an empty subscriber set never reads the source, so
	// it would never observe the cut; with registrations rejected from
	// here on, no subscriber can appear and stopping it is safe.
	if f.fanout.Subscribers() == 0 {
		f.fanout.Stop()
	}
	return true
}

// sharedEntry is one memoised backend on this feed. Override backends
// (Options.Backend) are reference-counted by the registrations using
// them: when the last one retires, the entry is dropped and its broker
// membership released, so long-running servers with query churn do not
// accumulate groups, members and retained weight tensors. The feed's
// default entry lives for the feed's lifetime (defaultUsers gates its
// scan warm-up instead).
type sharedEntry struct {
	sh    *filters.Shared
	refs  int          // live registrations on an override backend
	leave sched.Member // non-nil when the wrapped backend holds a broker membership
}

func newSharedEntry(sh *filters.Shared, wrapped filters.Backend) *sharedEntry {
	e := &sharedEntry{sh: sh}
	if m, ok := wrapped.(sched.Member); ok {
		e.leave = m
	}
	return e
}

// leaveBroker releases every broker membership this feed holds, so other
// feeds' coalesced flushes stop deadline-waiting for a feed that will
// never submit again. Idempotent (Member.Leave is once-only).
func (f *feed) leaveBroker() {
	f.mu.Lock()
	var leavers []sched.Member
	for _, e := range f.shared {
		if e.leave != nil {
			leavers = append(leavers, e.leave)
		}
	}
	f.mu.Unlock()
	for _, m := range leavers {
		m.Leave()
	}
}

func newFeed(cfg FeedConfig, srv Config, broker *sched.Broker) (*feed, error) {
	fanoutBuffer, cacheCap := srv.FanoutBuffer, srv.SharedCacheCap
	scanBatch, scanFlush := srv.ScanBatch, srv.ScanFlush
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: feed needs a name")
	}
	if cfg.Profile.Name == "" {
		return nil, fmt.Errorf("server: feed %q needs a profile", cfg.Name)
	}
	// VQL FROM clauses resolve against the bound profile's name, so a feed
	// named differently from its dataset profile binds queries against a
	// renamed copy — several runtime feeds can then share one profile.
	dataset := cfg.Profile.Name
	if cfg.Name != cfg.Profile.Name {
		cfg.Profile.Name = cfg.Name
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("server: feed %q needs a source", cfg.Name)
	}
	src := cfg.Source
	if cfg.MaxFrames > 0 {
		src = &limitSource{src: src, left: cfg.MaxFrames}
	}
	if cfg.FrameInterval > 0 {
		src = &pacedSource{src: src, interval: cfg.FrameInterval}
	}
	backend := cfg.Backend
	if backend == nil {
		backend = filters.NewODFilter(cfg.Profile, 1, nil)
	}
	f := &feed{
		name:    cfg.Name,
		dataset: dataset,
		profile: cfg.Profile,
		broker:  broker,
		shared:  make(map[filters.Backend]*sharedEntry),
		state:   FeedCreating,
	}
	if ps, ok := cfg.Source.(*stream.PushSource); ok {
		f.push = ps
	}
	// Trained backends that fingerprint an architecture identity route
	// through the cross-feed broker: feeds serving the same model merge
	// their micro-batches into one GEMM, and the memo scatter below the
	// Shared wrapper is untouched. The shared map stays keyed by the
	// original backend so queries naming the same instance join the same
	// memo.
	wrapped := broker.Wrap(backend)
	f.deflt = filters.NewShared(wrapped, cacheCap)
	f.shared[backend] = newSharedEntry(f.deflt, wrapped)

	// Micro-batch the shared scan: frames flow source -> batcher ->
	// fan-out, and each flushed batch pre-fills the default memo through
	// the backend's batch path (one clock transaction, batched GEMMs for
	// trained backends), so every query's ChunkSize=1 low-latency pipeline
	// hits a warm cache.
	if scanBatch > 1 {
		f.batcher = &scanBatcher{
			src:     src,
			warm:    f.deflt,
			active:  func() bool { return f.defaultUsers.Load() > 0 },
			size:    scanBatch,
			flush:   scanFlush,
			raw:     make(chan *video.Frame, scanBatch),
			stop:    make(chan struct{}),
			drainC:  make(chan struct{}),
			warmSem: make(chan struct{}, 2),
		}
		src = f.batcher
	} else {
		// No batcher to drain at: give drain a gate that cuts the source
		// directly (frames already teed downstream still flow).
		f.gate = &drainGate{src: src}
		src = f.gate
	}
	// Stamp every pumped frame for the stall watchdog before the EOF
	// notifier (a feed that ended is closed, not stalled).
	src = &stampSource{src: src, last: &f.lastFrame}
	// A bounded feed that drains releases its broker memberships the
	// moment its source ends, so feeds still running stop spending the
	// coalesce deadline waiting for submissions it will never make.
	src = &eofNotifySource{src: src, fire: f.leaveBroker}
	f.fanout = stream.NewFanout(src, fanoutBuffer)

	newDet := cfg.NewDetector
	if newDet == nil {
		newDet = func() detect.Detector { return detect.NewOracle(nil) }
	}
	// Share one confirmation memo across queries when the feed's detector
	// declares order-insensitive output (the oracle does): queries sharing
	// the oracle pay one Detect per frame, mirroring the filter memo.
	if memo := detect.NewMemo(newDet(), cacheCap); memo != nil {
		f.detMemo = memo
		f.newDet = func() detect.Detector { return memo }
	} else {
		f.newDet = newDet
	}
	return f, nil
}

// release undoes a registration's claims: the default-backend warm-up
// gate, and — for a registration that brought its own backend — that
// backend's shared entry, dropped (memo and broker membership released)
// when its last registration retires.
func (f *feed) release(usedDefault bool, override filters.Backend) {
	if usedDefault {
		f.defaultUsers.Add(-1)
	}
	if override == nil {
		return
	}
	f.mu.Lock()
	e, ok := f.shared[override]
	if !ok || e.sh == f.deflt {
		f.mu.Unlock()
		return
	}
	e.refs--
	var leave sched.Member
	if e.refs <= 0 {
		delete(f.shared, override)
		leave = e.leave
	}
	f.mu.Unlock()
	if leave != nil {
		leave.Leave()
	}
}

// close stops the scan batcher and the fan-out pump, releasing the feed's
// broker memberships. Unlike drain it does not wait for in-flight frames;
// it is the hard-stop path (server Close, teardown after a drain has
// already flushed).
func (f *feed) close() {
	if f.push != nil {
		// Unblock a pump parked in PushSource.Next waiting for publishers
		// that will never come — Fanout.Stop cannot interrupt a blocking
		// source read.
		f.push.Close()
	}
	if f.batcher != nil {
		f.batcher.shutdown()
	}
	f.leaveBroker()
	f.fanout.Stop()
}

// sharedFor returns the feed's memoised wrapper for a backend, creating
// one on first use so every query naming the same backend instance joins
// the same shared scan. A nil backend selects the feed default. Override
// entries are reference-counted; each call must be paired with a release
// carrying the same backend.
func (f *feed) sharedFor(b filters.Backend, cacheCap int) *filters.Shared {
	if b == nil {
		return f.deflt
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.shared[b]; ok {
		// The default entry is not refcounted (it lives for the feed's
		// lifetime), so keep the increment symmetric with release's guard
		// even when a query names the feed's own backend explicitly.
		if e.sh != f.deflt {
			e.refs++
		}
		return e.sh
	}
	wrapped := f.broker.Wrap(b)
	e := newSharedEntry(filters.NewShared(wrapped, cacheCap), wrapped)
	e.refs = 1
	f.shared[b] = e
	return e.sh
}

// start launches the pump goroutine (once). A feed drained before its
// pump ever ran keeps its draining state — the pump then observes the cut
// source (or the stop flag) and moves it to closed.
func (f *feed) start() {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.started = time.Now()
	if f.state == FeedCreating {
		f.state = FeedRunning
	}
	f.mu.Unlock()
	go func() {
		f.fanout.Run()
		f.mu.Lock()
		f.state = FeedClosed
		f.mu.Unlock()
	}()
}

// drainGate sits between a feed's source and its fan-out when there is no
// scan batcher to drain at: cut flips it to end-of-stream, so the pump
// observes EOF on its next read and the ordinary teardown path runs.
type drainGate struct {
	src    stream.Source
	closed atomic.Bool
}

func (g *drainGate) Next() (*video.Frame, bool) {
	if g.closed.Load() {
		return nil, false
	}
	return g.src.Next()
}

func (g *drainGate) cut() { g.closed.Store(true) }

// scanBatcher is the micro-batching stage between a feed's source and its
// fan-out: frames are grouped into batches of up to size frames, flushed
// early when the flush deadline expires, and each flushed batch pre-fills
// the default shared filter memo in one batch evaluation. Added latency
// per frame is bounded by flush (a paced camera frame waits at most flush
// before dispatch, preserving the server's match-the-moment-it-happens
// contract); a backlogged source fills whole batches with no waiting.
//
// The batcher is pull-driven: its source puller starts on the fan-out's
// first read, so a bounded recording still does not drain before the
// first query registers. Once running it looks ahead at most size frames.
type scanBatcher struct {
	src    stream.Source
	warm   *filters.Shared
	active func() bool // whether any registration reads the default memo
	size   int
	flush  time.Duration

	start sync.Once
	raw   chan *video.Frame
	stop  chan struct{}
	stopO sync.Once
	// drainC ends the puller without cutting frames already pulled: the
	// raw channel closes, fill flushes the partial batch, and EOF
	// propagates downstream — a graceful drain, where stop is the hard
	// shutdown that also abandons buffered frames.
	drainC chan struct{}
	drainO sync.Once

	cur []*video.Frame
	idx int
	// warmWG tracks fire-and-forget memo warm-ups. EOF waits for them:
	// the frames-exhausted signal is what releases the feed's broker
	// membership, and a warm-up still submitting after that would
	// evaluate into a retired group whose counters are no longer
	// visible. Add and Wait both run on the pump goroutine. warmSem
	// bounds how many warm-ups run at once — when EvaluateBatch falls
	// behind the pump, acquiring a slot blocks the pump at a fixed
	// pipeline depth instead of accumulating goroutines and batch
	// copies without limit (see fill for why blocking, not skipping).
	warmWG  sync.WaitGroup
	warmSem chan struct{}

	batches atomic.Int64
	framesN atomic.Int64
}

// Next implements stream.Source for the fan-out pump. It is called from
// the single pump goroutine only.
func (s *scanBatcher) Next() (*video.Frame, bool) {
	s.start.Do(func() { go s.pull() })
	if s.idx >= len(s.cur) {
		if !s.fill() {
			return nil, false
		}
	}
	f := s.cur[s.idx]
	s.idx++
	return f, true
}

// fill collects the next micro-batch: it blocks for the first frame, then
// gathers more until the batch is full or the flush deadline passes, and
// warms the shared memo with one batch evaluation.
func (s *scanBatcher) fill() bool {
	f, ok := <-s.raw
	if !ok {
		s.warmWG.Wait() // let in-flight warm-ups land before EOF propagates
		return false
	}
	s.cur = append(s.cur[:0], f)
	timer := time.NewTimer(s.flush)
collect:
	for len(s.cur) < s.size {
		select {
		case f, ok := <-s.raw:
			if !ok {
				break collect
			}
			s.cur = append(s.cur, f)
		case <-timer.C:
			break collect
		}
	}
	timer.Stop()
	s.idx = 0
	s.batches.Add(1)
	s.framesN.Add(int64(len(s.cur)))
	if s.warm != nil && s.active() {
		// Warm the memo fire-and-forget: the batch claims its frames'
		// memo entries in one inner batch evaluation while the pump is
		// already dispatching them downstream, overlapping decode and
		// fan-out with a flush that may be waiting on coalesced
		// batch-mates from other feeds. Queries that reach a frame first
		// simply claim it themselves (memo entries are exactly-once) and
		// everyone else blocks on the entry's ready channel, so results
		// and shared-scan economy are unchanged — only the pump stops
		// stalling. The goroutine owns its own copy of the batch (s.cur
		// is reused). warmSem bounds the look-ahead: when EvaluateBatch
		// falls behind the pump, acquiring a slot blocks, restoring
		// backpressure at a fixed pipeline depth instead of accumulating
		// goroutines and batch copies without limit. Skipping instead of
		// blocking is not safe here: a batch left for queries to claim
		// after the feed's EOF releases its broker membership would
		// evaluate into a retired group and vanish from the metrics.
		// On shutdown the stop branch forgoes the warm-up.
		select {
		case s.warmSem <- struct{}{}:
			batch := make([]*video.Frame, len(s.cur))
			copy(batch, s.cur)
			s.warmWG.Add(1)
			go func() {
				defer func() {
					// A panicking backend must not take the process down
					// from a fire-and-forget warm-up; queries that claim
					// the frames themselves hit the same panic behind the
					// executor's own barrier and fail individually.
					_ = recover()
					<-s.warmSem
					s.warmWG.Done()
				}()
				s.warm.EvaluateBatch(batch, nil)
			}()
		case <-s.stop:
		}
	}
	return true
}

// pull streams the source into the raw channel until the source ends, the
// batcher is shut down, or a drain cuts further pulls.
func (s *scanBatcher) pull() {
	defer close(s.raw)
	for {
		select {
		case <-s.drainC:
			return
		default:
		}
		f, ok := s.src.Next()
		if !ok {
			return
		}
		select {
		case s.raw <- f:
		case <-s.stop:
			return
		case <-s.drainC:
			// The frame in hand was never admitted to a batch; the drain
			// cut the source just before it.
			return
		}
	}
}

// shutdown releases the puller; idempotent.
func (s *scanBatcher) shutdown() { s.stopO.Do(func() { close(s.stop) }) }

// drainInput stops pulling new frames while letting everything already in
// the raw channel flush downstream as the final (possibly partial) batch;
// idempotent.
func (s *scanBatcher) drainInput() { s.drainO.Do(func() { close(s.drainC) }) }

// stampSource records the wall-clock instant of every frame the wrapped
// source yields, feeding the feed's stall watchdog.
type stampSource struct {
	src  stream.Source
	last *atomic.Int64
}

func (s *stampSource) Next() (*video.Frame, bool) {
	f, ok := s.src.Next()
	if ok {
		s.last.Store(time.Now().UnixMilli())
	}
	return f, ok
}

// eofNotifySource fires a callback once when the wrapped source ends.
type eofNotifySource struct {
	src  stream.Source
	fire func()
	once sync.Once
}

func (s *eofNotifySource) Next() (*video.Frame, bool) {
	f, ok := s.src.Next()
	if !ok {
		s.once.Do(s.fire)
	}
	return f, ok
}

// limitSource caps a source at n frames.
type limitSource struct {
	src  stream.Source
	left int
}

func (l *limitSource) Next() (*video.Frame, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.src.Next()
}

// pacedSource spaces frames at least interval apart — a real-time camera
// instead of a CPU-bound generator.
type pacedSource struct {
	src      stream.Source
	interval time.Duration
	last     time.Time
}

func (p *pacedSource) Next() (*video.Frame, bool) {
	if !p.last.IsZero() {
		if wait := p.interval - time.Since(p.last); wait > 0 {
			time.Sleep(wait)
		}
	}
	p.last = time.Now()
	return p.src.Next()
}
