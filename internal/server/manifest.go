package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vmq/internal/fault"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// FeedSpec is the serialisable description of a feed — the subset of
// FeedConfig that can round-trip through JSON, which is what the HTTP
// create endpoint accepts and what the durable manifest journals. A
// programmatic FeedConfig (custom Source, Backend, or detector factory)
// cannot be journalled; feeds created through CreateFeedSpec can, and
// are re-created identically by Recover.
type FeedSpec struct {
	// Name is the feed's registry key (FROM clauses resolve on it).
	Name string `json:"name"`
	// Profile names the dataset profile ("coral", "jackson", "detrac").
	Profile string `json:"profile"`
	// Source selects ingestion: "push" (default) accepts frames from
	// publishers; "sim" runs the built-in simulator stream.
	Source string `json:"source,omitempty"`
	// Seed seeds a sim feed's stream and its default filter backend
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// FPS paces the feed at the given frame rate (0 = unpaced).
	FPS float64 `json:"fps,omitempty"`
	// MaxFrames ends the feed after this many frames (0 = unbounded).
	MaxFrames int `json:"max_frames,omitempty"`
	// IngestBuffer is a push feed's ring capacity in frames (default
	// 256, max MaxIngestBuffer).
	IngestBuffer int `json:"ingest_buffer,omitempty"`
	// IngestPolicy is a push feed's admission policy: "block" (default),
	// "drop-oldest" or "reject".
	IngestPolicy string `json:"ingest_policy,omitempty"`
}

// specError is a FeedSpec validation failure carrying the HTTP mapping,
// so the create endpoint answers the same status/code pairs it always
// has while the validation itself lives with the spec.
type specError struct {
	status int
	code   string
	err    error
}

func (e *specError) Error() string { return e.err.Error() }
func (e *specError) Unwrap() error { return e.err }

// feedConfig materialises the spec into a runnable FeedConfig. It is
// deterministic: replaying the same spec after a restart rebuilds the
// same feed (the simulator stream and default backend are seeded from
// the spec, not from wall-clock state).
func (sp FeedSpec) feedConfig() (FeedConfig, error) {
	bad := func(status int, code, format string, args ...any) (FeedConfig, error) {
		return FeedConfig{}, &specError{status: status, code: code, err: fmt.Errorf(format, args...)}
	}
	if sp.Name == "" {
		return bad(http.StatusBadRequest, "bad_request", "feed needs a name")
	}
	prof, ok := video.ProfileByName(sp.Profile)
	if !ok {
		return bad(http.StatusBadRequest, "bad_request", "unknown profile %q", sp.Profile)
	}
	cfg := FeedConfig{Name: sp.Name, Profile: prof, MaxFrames: sp.MaxFrames}
	if sp.FPS > 0 {
		cfg.FrameInterval = time.Duration(float64(time.Second) / sp.FPS)
	}
	switch sp.Source {
	case "", "push":
		policy, err := stream.ParsePushPolicy(sp.IngestPolicy)
		if err != nil {
			return bad(http.StatusBadRequest, "unknown_policy", "%v", err)
		}
		buffer := sp.IngestBuffer
		if buffer > MaxIngestBuffer {
			return bad(http.StatusUnprocessableEntity, "buffer_too_large",
				"%v: ingest buffer %d (limit %d)", ErrBufferTooLarge, buffer, MaxIngestBuffer)
		}
		if buffer <= 0 {
			buffer = defaultIngestBuffer
		}
		cfg.Source = stream.NewPushSource(buffer, policy)
	case "sim":
		seed := sp.Seed
		if seed == 0 {
			seed = 1
		}
		cfg.Source = stream.FromStream(video.NewStream(prof, seed))
	default:
		return bad(http.StatusBadRequest, "bad_request", "unknown source %q (want push or sim)", sp.Source)
	}
	return cfg, nil
}

// QueryRecord is the journalled form of one registration: the VQL text
// plus the options a restart needs to re-create the query under its
// original id. Only registrations expressible over the wire are
// journalled (no programmatic Backend/Detector/SpillPath overrides).
type QueryRecord struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	// Feed is the feed name the query ran on — informational (the FROM
	// clause is authoritative), kept so a detached recovery row can
	// still report its feed.
	Feed         string `json:"feed,omitempty"`
	MaxFrames    int    `json:"max_frames,omitempty"`
	SampleSize   int    `json:"samples,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	ResultBuffer int    `json:"result_buffer,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Spill        bool   `json:"spill,omitempty"`
	CountTol     *int   `json:"count_tolerance,omitempty"`
	LocationTol  *int   `json:"location_tolerance,omitempty"`
}

// Manifest record types. The manifest is an append-only NDJSON journal:
// one typed record per line, applied in order on replay. Every record
// is written and fsynced before the in-memory state change it describes
// is applied, so the journal never claims less than what happened.
const (
	recFeedCreate      = "feed_create"
	recFeedDrain       = "feed_drain"
	recFeedRemove      = "feed_remove"
	recQueryRegister   = "query_register"
	recQueryUnregister = "query_unregister"
	recQueryAck        = "query_ack"
	recNextID          = "next_id"
)

// manifestRecord is one journal line. Exactly the fields the record
// type needs are set; the rest stay at their zero values and are
// omitted from the encoding.
type manifestRecord struct {
	Type string `json:"type"`
	// feed_create.
	Feed *FeedSpec `json:"feed,omitempty"`
	// feed_drain / feed_remove.
	Name string `json:"name,omitempty"`
	// query_register.
	Query *QueryRecord `json:"query,omitempty"`
	// query_unregister / query_ack.
	ID string `json:"id,omitempty"`
	// query_ack: the highest acknowledged sequence. No omitempty — 0 is
	// a legitimate acked position (the first event).
	Seq int64 `json:"seq"`
	// next_id: the highest reserved numeric query id.
	Next int `json:"next,omitempty"`
}

// feedManifest is one feed's replayed state: its spec plus whether a
// drain was journalled (a drained feed restarts drained — its
// ingestion was already cut, and un-draining on restart would silently
// resurrect a feed the operator shut down).
type feedManifest struct {
	spec    FeedSpec
	drained bool
}

// manifestState is the journal's replayed view of the control plane:
// which feeds and queries exist, the acknowledged position per query,
// and the highest query id ever reserved (so a restart never reuses an
// id whose spill segments may still be on disk).
type manifestState struct {
	feeds   map[string]*feedManifest
	queries map[string]*QueryRecord
	acks    map[string]int64
	nextID  int
}

func newManifestState() manifestState {
	return manifestState{
		feeds:   make(map[string]*feedManifest),
		queries: make(map[string]*QueryRecord),
		acks:    make(map[string]int64),
	}
}

// apply folds one record into the state. Replay is idempotent: records
// overwrite or max-merge, so a journal carrying duplicates (an append
// that was synced but whose writer crashed before observing success,
// then retried) replays to the same state.
func (st *manifestState) apply(rec manifestRecord) {
	switch rec.Type {
	case recFeedCreate:
		if rec.Feed != nil && rec.Feed.Name != "" {
			st.feeds[rec.Feed.Name] = &feedManifest{spec: *rec.Feed}
		}
	case recFeedDrain:
		if fm, ok := st.feeds[rec.Name]; ok {
			fm.drained = true
		}
	case recFeedRemove:
		delete(st.feeds, rec.Name)
	case recQueryRegister:
		if rec.Query != nil && rec.Query.ID != "" {
			q := *rec.Query
			st.queries[q.ID] = &q
			st.bumpNextID(q.ID)
		}
	case recQueryUnregister:
		delete(st.queries, rec.ID)
		delete(st.acks, rec.ID)
	case recQueryAck:
		if _, ok := st.queries[rec.ID]; ok {
			if cur, ok := st.acks[rec.ID]; !ok || rec.Seq > cur {
				st.acks[rec.ID] = rec.Seq
			}
		}
	case recNextID:
		if rec.Next > st.nextID {
			st.nextID = rec.Next
		}
	}
}

// bumpNextID raises the id high-water mark from a journalled "qN" id.
func (st *manifestState) bumpNextID(id string) {
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "q")); err == nil && n > st.nextID {
		st.nextID = n
	}
}

// records renders the state as its minimal journal — what compaction
// writes: feeds (with drains) sorted by name, the id high-water mark,
// then queries and their acks sorted by id.
func (st *manifestState) records() []manifestRecord {
	var out []manifestRecord
	feedNames := make([]string, 0, len(st.feeds))
	for n := range st.feeds {
		feedNames = append(feedNames, n)
	}
	sort.Strings(feedNames)
	for _, n := range feedNames {
		fm := st.feeds[n]
		spec := fm.spec
		out = append(out, manifestRecord{Type: recFeedCreate, Feed: &spec})
		if fm.drained {
			out = append(out, manifestRecord{Type: recFeedDrain, Name: n})
		}
	}
	if st.nextID > 0 {
		out = append(out, manifestRecord{Type: recNextID, Next: st.nextID})
	}
	ids := make([]string, 0, len(st.queries))
	for id := range st.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return lessID(ids[a], ids[b]) })
	for _, id := range ids {
		q := *st.queries[id]
		out = append(out, manifestRecord{Type: recQueryRegister, Query: &q})
		if seq, ok := st.acks[id]; ok {
			out = append(out, manifestRecord{Type: recQueryAck, ID: id, Seq: seq})
		}
	}
	return out
}

// manifestFile is the journal's file name under Config.StateDir.
const manifestFile = "manifest.ndjson"

// manifestCompactBytes triggers an in-place compaction once the journal
// grows past it — ack records dominate a long-running journal, and each
// query keeps only its highest ack after compaction.
const manifestCompactBytes = 1 << 20

// manifest is the durable control-plane journal: an append-only NDJSON
// file under Config.StateDir recording feed and query lifecycle, with
// the same crash-consistency discipline as the result spill — every
// record is written and fsynced before the change it describes takes
// effect in memory, a torn final line is dropped on replay, and the
// journal is compacted (atomic tmp+rename) on open and on growth.
type manifest struct {
	mu    sync.Mutex
	dir   string
	path  string
	f     *os.File
	size  int64
	state manifestState
}

// openManifest opens (creating if needed) the journal in dir, replays
// it into state, compacts it, and leaves the file open for appends. A
// final line truncated by a crash mid-write is dropped; complete
// records after an unparsable line are still applied (each line stands
// alone), so one damaged record costs one record, not the tail.
func openManifest(dir string) (*manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: manifest: %w", err)
	}
	m := &manifest{dir: dir, path: filepath.Join(dir, manifestFile), state: newManifestState()}
	if err := m.replay(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.compactLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// replay folds the existing journal, if any, into m.state.
func (m *manifest) replay() error {
	f, err := os.Open(m.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: manifest: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF with a partial line is the crash-truncated tail: the
			// record was never acknowledged to its caller, dropping it is
			// the correct recovery.
			return nil
		}
		var rec manifestRecord
		if json.Unmarshal(line, &rec) == nil {
			m.state.apply(rec)
		}
	}
}

// compactLocked rewrites the journal as the state's minimal record set:
// written to a temp file, fsynced, renamed over the journal, directory
// fsynced — the same atomic-replace discipline a crashed compaction
// must survive (the old journal stays intact until the rename lands).
func (m *manifest) compactLocked() error {
	if m.f != nil {
		_ = m.f.Close()
		m.f = nil
	}
	tmp := m.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: manifest: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range m.state.records() {
		if err := enc.Encode(rec); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return fmt.Errorf("server: manifest: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("server: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("server: manifest: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("server: manifest: %w", err)
	}
	syncManifestDir(m.dir)
	out, err := os.OpenFile(m.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: manifest: %w", err)
	}
	st, err := out.Stat()
	if err != nil {
		_ = out.Close()
		return fmt.Errorf("server: manifest: %w", err)
	}
	m.f = out
	m.size = st.Size()
	return nil
}

// append journals one record durably (write + fsync) and, on success,
// applies it to the in-memory state — journal-then-apply, so a crash
// between the two replays to at least what the caller was promised. A
// failed append leaves the state unchanged; the caller decides whether
// to abort or compensate.
func (m *manifest) append(rec manifestRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: manifest: %w", err)
	}
	line = append(line, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return fmt.Errorf("server: manifest: closed")
	}
	if err := fault.Hit("manifest.append"); err != nil {
		if errors.Is(err, fault.ErrShort) {
			// Simulate a torn write: half the line lands, then the
			// "crash". The newline never lands, so replay drops it.
			_, _ = m.f.Write(line[:len(line)/2])
			_ = m.f.Sync()
		}
		return fmt.Errorf("server: manifest: %w", err)
	}
	n, err := m.f.Write(line)
	m.size += int64(n)
	if err == nil {
		err = m.f.Sync()
	}
	if err != nil {
		return fmt.Errorf("server: manifest: %w", err)
	}
	m.state.apply(rec)
	if m.size > manifestCompactBytes {
		if cerr := m.compactLocked(); cerr != nil {
			// The journal is still valid, just uncompacted; surface
			// nothing — the next growth retries.
			_ = cerr
		}
	}
	return nil
}

// feedCreated journals a feed definition.
func (m *manifest) feedCreated(spec FeedSpec) error {
	return m.append(manifestRecord{Type: recFeedCreate, Feed: &spec})
}

// feedDrained journals that a feed's drain was initiated.
func (m *manifest) feedDrained(name string) error {
	return m.append(manifestRecord{Type: recFeedDrain, Name: name})
}

// feedRemoved journals a feed removal.
func (m *manifest) feedRemoved(name string) error {
	return m.append(manifestRecord{Type: recFeedRemove, Name: name})
}

// queryRegistered journals a registration.
func (m *manifest) queryRegistered(rec QueryRecord) error {
	return m.append(manifestRecord{Type: recQueryRegister, Query: &rec})
}

// queryUnregistered journals that a query left the control plane (an
// explicit unregister, or a finished query with no history to keep).
func (m *manifest) queryUnregistered(id string) error {
	return m.append(manifestRecord{Type: recQueryUnregister, ID: id})
}

// queryAcked journals the consumer's acknowledged position, deduplicated
// against the replayed state so an unchanged ack costs no journal write
// (consumers commonly re-ack on reconnect).
func (m *manifest) queryAcked(id string, seq int64) error {
	m.mu.Lock()
	if cur, ok := m.state.acks[id]; ok && seq <= cur {
		m.mu.Unlock()
		return nil
	}
	if _, ok := m.state.queries[id]; !ok {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	return m.append(manifestRecord{Type: recQueryAck, ID: id, Seq: seq})
}

// reserveID journals the id high-water mark BEFORE the id's spill
// directory is created: if the process dies between the reservation and
// the query_register record, the restart still never hands the id to a
// new query whose consumers could then read the dead query's stale
// spill segments.
func (m *manifest) reserveID(n int) error {
	m.mu.Lock()
	if n <= m.state.nextID {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	return m.append(manifestRecord{Type: recNextID, Next: n})
}

// close compacts and closes the journal. Safe to call once; appends
// after close fail.
func (m *manifest) close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.compactLocked()
	if m.f != nil {
		_ = m.f.Close()
		m.f = nil
	}
	return err
}

// closeAbrupt closes the journal without compacting — the crash
// simulation path used by tests: whatever the file holds is exactly
// what a killed process would have left.
func (m *manifest) closeAbrupt() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f != nil {
		_ = m.f.Close()
		m.f = nil
	}
}

// syncManifestDir fsyncs a directory so a rename or create within it is
// durable. Best-effort, mirroring the spill's discipline: filesystems
// that refuse directory fsync don't fail the operation.
func syncManifestDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
