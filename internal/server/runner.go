package server

import (
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/metrics"
	"vmq/internal/query"
	"vmq/internal/rlog"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// Options tunes one query registration.
type Options struct {
	// Tol overrides the server's default filter tolerances.
	Tol *query.Tolerances
	// Backend overrides the feed's default filter backend (e.g. to put
	// one query on the IC family). Registrations naming the same backend
	// instance share one memoised scan of it.
	Backend filters.Backend
	// Detector overrides the feed's per-query detector factory.
	Detector detect.Detector
	// MaxFrames ends the query after this many frames (0 = until the
	// feed ends or the query is unregistered).
	MaxFrames int
	// SampleSize is the detector sample budget per window for aggregate
	// queries (default 200).
	SampleSize int
	// Seed seeds the window sampler (default 1).
	Seed uint64
	// ResultBuffer overrides the server's default result-log ring
	// capacity for this query (rounded up to a power of two, at most
	// MaxResultBuffer — the ring is allocated eagerly, so Register
	// rejects requests beyond the cap rather than size an allocation
	// by client input).
	ResultBuffer int
	// Policy overrides the server's default delivery policy for this
	// query: rlog.Block (lossless, the writer waits for the slowest
	// consumer), rlog.DropOldest (bounded lag, slow consumers see gaps)
	// or rlog.Sample (decimate under backlog pressure).
	Policy rlog.Policy
	// Spill attaches a server-managed file-backed spill: events evicted
	// from the ring are appended to rotating segment files under
	// Config.SpillDir/<query-id> and served back to consumers resuming
	// from far behind, extending the resumable window beyond the ring.
	// The directory is removed when the registration leaves the registry.
	Spill bool
	// SpillPath, when non-empty, attaches the spill at this directory
	// instead of a server-managed one; the caller owns the directory and
	// its files survive the registration (a later registration may replay
	// them by spilling to the same path).
	SpillPath string
	// SpillConfig tunes the attached spill's segment rotation and
	// retention budget; the zero value takes Config.Spill (and then the
	// rlog defaults).
	SpillConfig rlog.SpillConfig
}

// EventKind distinguishes the entries of a registration's result stream.
type EventKind string

// Event kinds.
const (
	// EventMatch reports one detector-confirmed frame of a monitoring
	// query.
	EventMatch EventKind = "match"
	// EventWindow reports one completed window of a continuous aggregate
	// query.
	EventWindow EventKind = "window"
	// EventEnd is the final entry before the stream closes, carrying the
	// run's totals.
	EventEnd EventKind = "end"
	// EventGap reports that the events in [DroppedFrom, DroppedTo) were
	// evicted from the result log before this consumer reached them — a
	// slow consumer under drop-oldest/sampling, or a resume from below
	// the retained window. Gap events are synthesised per consumer at
	// read time; they occupy no log sequence.
	EventGap EventKind = "gap"
)

// Event is one entry in a registered query's result stream.
type Event struct {
	Kind    EventKind `json:"kind"`
	QueryID string    `json:"query_id"`
	Feed    string    `json:"feed"`

	// EventSeq is the event's position in the query's result log — the
	// monotonically increasing delivery sequence a consumer passes back
	// as ?from= to resume after a disconnect. (Distinct from Seq, which
	// is a frame position.)
	EventSeq int64 `json:"event_seq"`

	// Match events: Seq is the frame's index within the query's executed
	// sequence (what Result.Matched records), FrameIndex the frame's
	// global position in its camera stream, Objects its ground-truth
	// object count. No omitempty — zero is a legitimate value for all
	// three (a match on the very first frame), and NDJSON consumers must
	// be able to tell it from an absent field.
	Seq        int `json:"seq"`
	FrameIndex int `json:"frame_index"`
	Objects    int `json:"objects"`

	// Window events.
	WindowStart int                    `json:"window_start"`
	Window      *query.AggregateResult `json:"window,omitempty"`

	// End events. Reason says why the stream ended when an operator
	// action ended it ("feed_drained", "feed_removed") or a fault did
	// ("query_failed"); empty when the source ran out or the query hit
	// its own frame budget. Error carries the panic value's string form
	// on a query_failed end.
	Final  *query.Result `json:"final,omitempty"`
	Reason string        `json:"reason,omitempty"`
	Error  string        `json:"error,omitempty"`

	// Gap events: the half-open dropped range. DroppedFrom has no
	// omitempty — 0 is its most common legitimate value (a resume from
	// the beginning after the ring wrapped) and wire consumers must see
	// it; DroppedTo is never 0 for a real gap.
	DroppedFrom int64 `json:"dropped_from"`
	DroppedTo   int64 `json:"dropped_to,omitempty"`
}

// Registration is one continuous query registered against a feed.
type Registration struct {
	id string
	// feed is nil for a registration recovered in its finished form (the
	// feed may no longer exist); feedName always carries the name.
	feed     *feed
	feedName string
	qry      *vql.Query
	plan     *query.Plan
	// sub is nil for a finished-form recovery (no runner, no fan-out
	// slot); every use outside the runner goroutine must tolerate that.
	sub *stream.Subscription

	// log is the registration's result log: the runner appends, any
	// number of consumers read through cursors (Results, ResultsFrom).
	log        *rlog.Log[Event]
	spill      *rlog.FileSpill[Event] // non-nil when a spill is attached
	spillOwned string                 // server-managed spill dir, removed on closeSpill
	done       chan struct{}

	// killed marks a simulated process kill (tests): the runner's
	// unwinding emits are dropped so the log holds exactly what a real
	// kill would have persisted.
	killed atomic.Bool
	// endOnce guards the final end event: the runner's orderly end and
	// the panic barrier's forced end must not both land.
	endOnce sync.Once
	// onAck, when set, journals acknowledged positions durably (the
	// manifest's query_ack records).
	onAck func(int64)
	// recovered marks a registration re-created from the manifest.
	recovered bool

	resultsOnce sync.Once
	resultsCh   chan Event

	stats regStats
}

// regStats is the registration's live telemetry, updated from the
// runner's confirmation stage and snapshotted by Metrics.
type regStats struct {
	mu           sync.Mutex
	frames       int
	passed       int
	matches      int
	windows      int
	windowed     bool // the runner estimates windows; cost is per sample, not per frame
	acc          metrics.BoolAccuracy
	filterCost   time.Duration // per-frame filter charge (0 when not filtering)
	detectCost   time.Duration // per-confirmation detector charge
	virtualExtra time.Duration // window runners: per-sample cost actually paid
	finished     bool
	failure      *query.Failure // the recovered panic when the query failed
}

// ID returns the registration id the HTTP API addresses.
func (r *Registration) ID() string { return r.id }

// Feed returns the feed name the query runs on.
func (r *Registration) Feed() string { return r.feedName }

// Query returns the registered query.
func (r *Registration) Query() *vql.Query { return r.qry }

// Results is the registration's event stream as a channel: matches (or
// window estimates) as they confirm, then one EventEnd, then the channel
// closes. It is a convenience consumer over the registration's result
// log, reading from sequence 0; under the default Block policy an
// abandoned channel back-pressures the query exactly as the pre-log
// contract did, while DropOldest/Sample queries shed into gap events
// instead. For resumable consumption use ResultsFrom.
func (r *Registration) Results() <-chan Event {
	r.resultsOnce.Do(func() {
		r.resultsCh = make(chan Event, 16)
		reader := r.log.ReaderFrom(0)
		go func() {
			defer close(r.resultsCh)
			defer reader.Detach()
			for {
				// The runner closes the log when it finishes or is
				// unregistered, so this read always unblocks and the
				// drain after close is finite. Sends are unconditional:
				// the channel contract has always been that the stream
				// must be drained, and under Block that is exactly the
				// back-pressure the policy promises.
				it, ok := reader.Next(nil)
				if !ok {
					return
				}
				r.resultsCh <- r.itemEvent(it)
			}
		}()
	})
	return r.resultsCh
}

// ResultsFrom attaches a new cursor to the registration's result log at
// the given sequence (negative = live tail, skipping history). Each
// consumer reads independently; Detach the reader when the consumer goes
// away so a Block-policy writer stops retaining on its behalf.
func (r *Registration) ResultsFrom(seq int64) *rlog.Reader[Event] {
	return r.log.ReaderFrom(seq)
}

// Ack records out of band that the consuming side durably processed
// every event through seq — the path for acknowledgements that arrive
// between streaming reads (POST /v1/queries/{id}/ack) or while no
// consumer is attached. The result log's retention floor follows the
// acknowledged position from then on. Returns the highest acked
// sequence.
func (r *Registration) Ack(seq int64) int64 {
	acked := r.log.Ack(seq)
	r.noteAck(acked)
	return acked
}

// noteAck journals an acknowledged position when the registration is
// journalled. Streaming paths that ack through their own reader call
// this with the reader's result so durable cursors follow every ack
// route.
func (r *Registration) noteAck(acked int64) {
	if r.onAck != nil && acked >= 0 {
		r.onAck(acked)
	}
}

// neverBlock is a pre-closed abort channel: a log read given it returns
// immediately instead of waiting for the writer — how history paging
// reads whatever is already there.
var neverBlock = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// HistoryPage reads up to limit events starting at sequence from,
// without attaching a streaming consumer or waiting for new events: gaps
// and spilled history are served exactly as a streaming read would see
// them, and the page's transient cursor does not move the retention
// floor. The second return is the sequence to pass as the next page's
// from (equal to from when nothing was readable).
func (r *Registration) HistoryPage(from int64, limit int) ([]Event, int64) {
	if from < 0 {
		from = 0
	}
	p := r.log.PagerFrom(from)
	defer p.Detach()
	out := make([]Event, 0, limit)
	for len(out) < limit {
		it, ok := p.Next(neverBlock)
		if !ok {
			break
		}
		out = append(out, r.itemEvent(it))
	}
	return out, p.Cursor()
}

// itemEvent converts one log item to its wire event: either the stored
// event or a synthesised gap notice.
func (r *Registration) itemEvent(it rlog.Item[Event]) Event {
	if it.Gap == nil {
		return it.Value
	}
	return Event{
		Kind:        EventGap,
		QueryID:     r.id,
		Feed:        r.feedName,
		EventSeq:    it.Gap.From,
		DroppedFrom: it.Gap.From,
		DroppedTo:   it.Gap.To,
	}
}

// Log exposes the registration's result log for telemetry (sequence
// high-water mark, retained window, drops, consumer lag).
func (r *Registration) Log() *rlog.Log[Event] { return r.log }

// Done closes when the runner has finished (feed ended, frame budget
// reached, or unregistered).
func (r *Registration) Done() <-chan struct{} { return r.done }

// emit appends an event to the result log unless the registration was
// cancelled (then the consumers are gone and the event is dropped so the
// runner can wind down). droppable marks events the query's policy may
// shed; the end-of-stream event passes false so it always lands. A
// Block-policy append waiting for a slow consumer aborts the moment the
// registration is cancelled.
func (r *Registration) emit(ev Event, droppable bool) {
	ev.QueryID = r.id
	ev.Feed = r.feedName
	if r.killed.Load() {
		return // simulated process kill: nothing lands after the cut
	}
	select {
	case <-r.sub.Cancelled():
		return
	default:
	}
	// Single writer: the sequence the next append takes is stable here,
	// so the stored event carries its own resume cursor.
	ev.EventSeq = r.log.NextSeq()
	r.log.Append(ev, droppable, r.sub.Cancelled())
}

// emitFinal appends the stream's single end event. endOnce keeps the
// orderly end and the panic barrier's forced end from both landing.
// force bypasses the cancellation drop: the barrier runs after the
// runner's deferred sub.Cancel, yet its query_failed notice must reach
// consumers; a normal end keeps the long-standing drop-on-unregister
// semantics.
func (r *Registration) emitFinal(ev Event, force bool) {
	r.endOnce.Do(func() {
		if r.killed.Load() {
			return
		}
		if !force {
			select {
			case <-r.sub.Cancelled():
				return
			default:
			}
		}
		ev.QueryID = r.id
		ev.Feed = r.feedName
		ev.EventSeq = r.log.NextSeq()
		r.log.Append(ev, false, nil)
	})
}

// guard runs one runner goroutine body under a panic barrier: a
// panicking backend or detector ends that query with a typed
// query_failed event — panic value and stack preserved in the status
// row — instead of tearing the process down with every other query on
// it.
func (r *Registration) guard(run func()) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		fail := &query.Failure{
			Stage: "runner",
			Panic: fmt.Sprint(p),
			Stack: string(debug.Stack()),
		}
		r.stats.mu.Lock()
		r.stats.failure = fail
		r.stats.finished = true
		r.stats.mu.Unlock()
		r.emitFinal(Event{
			Kind:   EventEnd,
			Reason: EndReasonQueryFailed,
			Error:  fail.Panic,
		}, true)
	}()
	run()
}

// cancelSub cancels the registration's subscription when it has one
// (finished-form recoveries never do).
func (r *Registration) cancelSub() {
	if r.sub != nil {
		r.sub.Cancel()
	}
}

// finish closes the result log (consumers drain and end) and signals
// Done. It runs after the runner's resource releases (worker budget,
// backend refcounts, admission slots), so by the time Unregister or a
// Done waiter proceeds the server's books are already rebalanced. The
// spill file stays open so late consumers can still replay a finished
// query's history; it is closed when the registration leaves the
// registry (closeSpill).
func (r *Registration) finish() {
	r.log.Close()
	close(r.done)
}

// closeSpill releases the registration's spill, if any. Called when the
// registration is removed from the server's registry. A server-managed
// spill directory (Options.Spill) is deleted with it; a caller-provided
// SpillPath survives for the caller to reuse or clean up.
func (r *Registration) closeSpill() {
	if r.spill == nil {
		return
	}
	_ = r.spill.Close()
	if r.spillOwned != "" {
		_ = os.RemoveAll(r.spillOwned)
	}
}

// closeSpillKeep closes the spill's descriptors but leaves its files in
// place — the shutdown path of a journaling server, whose restart
// replays history from those segments.
func (r *Registration) closeSpillKeep() {
	if r.spill != nil {
		_ = r.spill.Close()
	}
}

// runMonitor executes a SELECT FRAMES query on the pipelined executor,
// streaming matches out of the confirmation stage as they happen.
func (r *Registration) runMonitor(eng *query.Engine, n int) {
	defer r.sub.Cancel()
	if n <= 0 {
		n = math.MaxInt
	}
	eng.Observe = func(o query.FrameObservation) {
		truth := query.GroundTruthFrame(r.plan, o.Frame)
		r.stats.mu.Lock()
		r.stats.frames++
		if o.Passed {
			r.stats.passed++
		}
		if o.Matched {
			r.stats.matches++
		}
		r.stats.acc.Observe(o.Matched, truth)
		r.stats.mu.Unlock()
		if o.Matched {
			r.emit(Event{
				Kind:       EventMatch,
				Seq:        o.Index,
				FrameIndex: o.Frame.Index,
				Objects:    len(o.Frame.Objects),
			}, true)
		}
	}
	res := eng.RunStream(r.plan, r.sub, n)
	ev := Event{Kind: EventEnd, Final: res, Reason: r.feed.endedReason()}
	r.stats.mu.Lock()
	r.stats.finished = true
	if res != nil && res.Failure != nil {
		// The executor latched a backend/detector panic and drained: the
		// stream ends failed, not exhausted.
		r.stats.failure = res.Failure
		ev.Reason = EndReasonQueryFailed
		ev.Error = res.Failure.Panic
	}
	r.stats.mu.Unlock()
	// The end event is not droppable: however hard the policy shed load,
	// the stream's totals always land (overwriting the oldest retained
	// event if it must).
	r.emitFinal(ev, false)
}

// runWindows executes a windowed aggregate query continuously: it builds
// each window incrementally from the subscription (hopping windows tile
// or skip, sliding windows overlap) and emits one estimate per window
// until the feed ends or the query is unregistered.
func (r *Registration) runWindows(backend filters.Backend, det detect.Detector, cfg query.AggregateConfig, maxFrames int) {
	defer r.sub.Cancel()
	w := r.qry.Window
	if maxFrames <= 0 {
		maxFrames = math.MaxInt
	}
	var (
		buf      []*video.Frame
		start    int // stream position of buf[0] within the subscription
		consumed int
	)
	next := func() (*video.Frame, bool) {
		if consumed >= maxFrames {
			return nil, false
		}
		f, ok := r.sub.Next()
		if ok {
			consumed++
			r.stats.mu.Lock()
			r.stats.frames++
			r.stats.mu.Unlock()
		}
		return f, ok
	}
	for {
		for len(buf) < w.Size {
			f, ok := next()
			if !ok {
				r.finishWindows()
				return
			}
			buf = append(buf, f)
		}
		frames := make([]*video.Frame, w.Size)
		copy(frames, buf)
		res, err := query.RunAggregate(r.plan, frames, backend, det, cfg)
		if err != nil {
			// Unreachable for a bound aggregate query over a full window;
			// finish rather than wedge the feed.
			r.finishWindows()
			return
		}
		r.stats.mu.Lock()
		r.stats.windows++
		r.stats.virtualExtra += res.VirtualTimePerSample * time.Duration(res.Samples)
		r.stats.mu.Unlock()
		r.emit(Event{Kind: EventWindow, WindowStart: start, Window: res}, true)
		if w.Kind == vql.Sliding && w.Advance < w.Size {
			buf = buf[:copy(buf, buf[w.Advance:])]
			start += w.Advance
		} else {
			buf = buf[:0]
			start += w.Size
			for skip := w.Size; skip < w.Advance; skip++ {
				if _, ok := next(); !ok {
					r.finishWindows()
					return
				}
				start++
			}
		}
	}
}

func (r *Registration) finishWindows() {
	r.stats.mu.Lock()
	r.stats.finished = true
	r.stats.mu.Unlock()
	r.emitFinal(Event{Kind: EventEnd, Reason: r.feed.endedReason()}, false)
}
