package server

import (
	"math"
	"sync"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/metrics"
	"vmq/internal/query"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

// Options tunes one query registration.
type Options struct {
	// Tol overrides the server's default filter tolerances.
	Tol *query.Tolerances
	// Backend overrides the feed's default filter backend (e.g. to put
	// one query on the IC family). Registrations naming the same backend
	// instance share one memoised scan of it.
	Backend filters.Backend
	// Detector overrides the feed's per-query detector factory.
	Detector detect.Detector
	// MaxFrames ends the query after this many frames (0 = until the
	// feed ends or the query is unregistered).
	MaxFrames int
	// SampleSize is the detector sample budget per window for aggregate
	// queries (default 200).
	SampleSize int
	// Seed seeds the window sampler (default 1).
	Seed uint64
	// ResultBuffer overrides the server's default event-channel buffer.
	ResultBuffer int
}

// EventKind distinguishes the entries of a registration's result stream.
type EventKind string

// Event kinds.
const (
	// EventMatch reports one detector-confirmed frame of a monitoring
	// query.
	EventMatch EventKind = "match"
	// EventWindow reports one completed window of a continuous aggregate
	// query.
	EventWindow EventKind = "window"
	// EventEnd is the final entry before the stream closes, carrying the
	// run's totals.
	EventEnd EventKind = "end"
)

// Event is one entry in a registered query's result stream.
type Event struct {
	Kind    EventKind `json:"kind"`
	QueryID string    `json:"query_id"`
	Feed    string    `json:"feed"`

	// Match events: Seq is the frame's index within the query's executed
	// sequence (what Result.Matched records), FrameIndex the frame's
	// global position in its camera stream, Objects its ground-truth
	// object count. No omitempty — zero is a legitimate value for all
	// three (a match on the very first frame), and NDJSON consumers must
	// be able to tell it from an absent field.
	Seq        int `json:"seq"`
	FrameIndex int `json:"frame_index"`
	Objects    int `json:"objects"`

	// Window events.
	WindowStart int                    `json:"window_start"`
	Window      *query.AggregateResult `json:"window,omitempty"`

	// End events.
	Final *query.Result `json:"final,omitempty"`
}

// Registration is one continuous query registered against a feed.
type Registration struct {
	id   string
	feed *feed
	qry  *vql.Query
	plan *query.Plan
	sub  *stream.Subscription

	events chan Event
	done   chan struct{}

	stats regStats
}

// regStats is the registration's live telemetry, updated from the
// runner's confirmation stage and snapshotted by Metrics.
type regStats struct {
	mu           sync.Mutex
	frames       int
	passed       int
	matches      int
	windows      int
	windowed     bool // the runner estimates windows; cost is per sample, not per frame
	acc          metrics.BoolAccuracy
	filterCost   time.Duration // per-frame filter charge (0 when not filtering)
	detectCost   time.Duration // per-confirmation detector charge
	virtualExtra time.Duration // window runners: per-sample cost actually paid
	finished     bool
}

// ID returns the registration id the HTTP API addresses.
func (r *Registration) ID() string { return r.id }

// Feed returns the feed name the query runs on.
func (r *Registration) Feed() string { return r.feed.name }

// Query returns the registered query.
func (r *Registration) Query() *vql.Query { return r.qry }

// Results is the registration's event stream: matches (or window
// estimates) as they confirm, then one EventEnd, then the channel closes.
// The stream must be drained — an abandoned consumer eventually
// back-pressures the whole feed, which is the lossless-delivery contract
// (admission control is future work, see ROADMAP).
func (r *Registration) Results() <-chan Event { return r.events }

// Done closes when the runner has finished (feed ended, frame budget
// reached, or unregistered).
func (r *Registration) Done() <-chan struct{} { return r.done }

// emit delivers an event unless the registration was cancelled (then the
// consumer is gone and the event is dropped so the runner can wind down).
func (r *Registration) emit(ev Event) {
	ev.QueryID = r.id
	ev.Feed = r.feed.name
	select {
	case r.events <- ev:
	case <-r.sub.Cancelled():
	}
}

// runMonitor executes a SELECT FRAMES query on the pipelined executor,
// streaming matches out of the confirmation stage as they happen.
func (r *Registration) runMonitor(eng *query.Engine, n int) {
	defer close(r.done)
	defer close(r.events)
	defer r.sub.Cancel()
	if n <= 0 {
		n = math.MaxInt
	}
	eng.Observe = func(o query.FrameObservation) {
		truth := query.GroundTruthFrame(r.plan, o.Frame)
		r.stats.mu.Lock()
		r.stats.frames++
		if o.Passed {
			r.stats.passed++
		}
		if o.Matched {
			r.stats.matches++
		}
		r.stats.acc.Observe(o.Matched, truth)
		r.stats.mu.Unlock()
		if o.Matched {
			r.emit(Event{
				Kind:       EventMatch,
				Seq:        o.Index,
				FrameIndex: o.Frame.Index,
				Objects:    len(o.Frame.Objects),
			})
		}
	}
	res := eng.RunStream(r.plan, r.sub, n)
	r.stats.mu.Lock()
	r.stats.finished = true
	r.stats.mu.Unlock()
	r.emit(Event{Kind: EventEnd, Final: res})
}

// runWindows executes a windowed aggregate query continuously: it builds
// each window incrementally from the subscription (hopping windows tile
// or skip, sliding windows overlap) and emits one estimate per window
// until the feed ends or the query is unregistered.
func (r *Registration) runWindows(backend filters.Backend, det detect.Detector, cfg query.AggregateConfig, maxFrames int) {
	defer close(r.done)
	defer close(r.events)
	defer r.sub.Cancel()
	w := r.qry.Window
	if maxFrames <= 0 {
		maxFrames = math.MaxInt
	}
	var (
		buf      []*video.Frame
		start    int // stream position of buf[0] within the subscription
		consumed int
	)
	next := func() (*video.Frame, bool) {
		if consumed >= maxFrames {
			return nil, false
		}
		f, ok := r.sub.Next()
		if ok {
			consumed++
			r.stats.mu.Lock()
			r.stats.frames++
			r.stats.mu.Unlock()
		}
		return f, ok
	}
	for {
		for len(buf) < w.Size {
			f, ok := next()
			if !ok {
				r.finishWindows()
				return
			}
			buf = append(buf, f)
		}
		frames := make([]*video.Frame, w.Size)
		copy(frames, buf)
		res, err := query.RunAggregate(r.plan, frames, backend, det, cfg)
		if err != nil {
			// Unreachable for a bound aggregate query over a full window;
			// finish rather than wedge the feed.
			r.finishWindows()
			return
		}
		r.stats.mu.Lock()
		r.stats.windows++
		r.stats.virtualExtra += res.VirtualTimePerSample * time.Duration(res.Samples)
		r.stats.mu.Unlock()
		r.emit(Event{Kind: EventWindow, WindowStart: start, Window: res})
		if w.Kind == vql.Sliding && w.Advance < w.Size {
			buf = buf[:copy(buf, buf[w.Advance:])]
			start += w.Advance
		} else {
			buf = buf[:0]
			start += w.Size
			for skip := w.Size; skip < w.Advance; skip++ {
				if _, ok := next(); !ok {
					r.finishWindows()
					return
				}
				start++
			}
		}
	}
}

func (r *Registration) finishWindows() {
	r.stats.mu.Lock()
	r.stats.finished = true
	r.stats.mu.Unlock()
	r.emit(Event{Kind: EventEnd})
}
