package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"vmq/internal/stream"
	"vmq/internal/video"
)

// MaxIngestBuffer caps a push feed's requested ingest-ring capacity. Like
// MaxResultBuffer, the ring is allocated eagerly from an unauthenticated
// request body, so client input must not size an arbitrary allocation.
const MaxIngestBuffer = 1 << 16

// defaultIngestBuffer is the push ring capacity when the request leaves
// it unset: enough to ride out scan-side scheduling hiccups at camera
// frame rates without hiding sustained overload from the policy.
const defaultIngestBuffer = 256

// createFeedRequest is the JSON body of POST /feeds.
type createFeedRequest struct {
	// Name is the new feed's registry key (FROM clauses resolve on it).
	Name string `json:"name"`
	// Profile names the dataset profile the feed binds queries against
	// ("coral", "jackson", "detrac").
	Profile string `json:"profile"`
	// Source selects ingestion: "push" (default) accepts frames from
	// publishers via POST /feeds/{name}/frames or the WebSocket bridge;
	// "sim" runs the built-in simulator stream.
	Source string `json:"source,omitempty"`
	// Seed seeds a sim feed's stream (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// FPS paces the feed at the given frame rate (0 = unpaced: a sim feed
	// runs as fast as its queries consume, a push feed at publisher pace).
	FPS int `json:"fps,omitempty"`
	// MaxFrames ends the feed after this many frames (0 = unbounded).
	MaxFrames int `json:"max_frames,omitempty"`
	// IngestBuffer is a push feed's ring capacity in frames (default 256,
	// max MaxIngestBuffer).
	IngestBuffer int `json:"ingest_buffer,omitempty"`
	// IngestPolicy is a push feed's admission policy: "block" (default),
	// "drop-oldest" or "reject".
	IngestPolicy string `json:"ingest_policy,omitempty"`
}

// feedStatus is one feed's row in POST/GET /feeds responses.
type feedStatus struct {
	Name    string `json:"name"`
	Profile string `json:"profile"`
	State   string `json:"state"`
	Frames  int64  `json:"frames"`
	Queries int    `json:"queries"`
	// Stalled is the watchdog's verdict: the feed is running with
	// subscribers waiting, yet pumped no frame within Config.StallAfter.
	Stalled bool           `json:"stalled,omitempty"`
	Ingest  *IngestMetrics `json:"ingest,omitempty"`
}

func (f *feed) status(stallAfter time.Duration) feedStatus {
	st := feedStatus{
		Name:    f.name,
		Profile: f.dataset,
		State:   string(f.State()),
		Frames:  f.fanout.Frames(),
		Queries: f.fanout.Subscribers(),
	}
	_, st.Stalled = f.stalledNow(stallAfter)
	if f.push != nil {
		st.Ingest = &IngestMetrics{
			Policy:    string(f.push.Policy()),
			Depth:     f.push.Depth(),
			Capacity:  f.push.Capacity(),
			Published: f.push.Published(),
			Dropped:   f.push.Dropped(),
		}
	}
	return st
}

func (s *Server) handleCreateFeed(w http.ResponseWriter, r *http.Request) {
	var req createFeedRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "decode request: %v", err)
		return
	}
	// The wire request is exactly a FeedSpec: build the spec and route
	// through CreateFeedSpec, so on a journaling server the feed is
	// recorded durably and survives a restart.
	spec := FeedSpec{
		Name:         req.Name,
		Profile:      req.Profile,
		Source:       req.Source,
		Seed:         req.Seed,
		FPS:          float64(req.FPS),
		MaxFrames:    req.MaxFrames,
		IngestBuffer: req.IngestBuffer,
		IngestPolicy: req.IngestPolicy,
	}
	if err := s.CreateFeedSpec(spec); err != nil {
		var se *specError
		if errors.As(err, &se) {
			httpError(w, se.status, se.code, "%v", se.err)
			return
		}
		status, code := errorStatus(err)
		httpError(w, status, code, "%v", err)
		return
	}
	f, err := s.feedByName(req.Name)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(f.status(s.cfg.StallAfter))
}

func (s *Server) handleListFeeds(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	out := make([]feedStatus, 0, len(feeds))
	for _, f := range feeds {
		out = append(out, f.status(s.cfg.StallAfter))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// feedHTTPError maps lifecycle errors to the error envelope.
func feedHTTPError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	httpError(w, status, code, "%v", err)
}

func (s *Server) handleDrainFeed(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.DrainFeed(name); err != nil {
		feedHTTPError(w, err)
		return
	}
	f, err := s.feedByName(name)
	if err != nil {
		feedHTTPError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(f.status(s.cfg.StallAfter))
}

// handleRemoveFeed implements DELETE /feeds/{name}. It responds once
// every query on the feed has ended — each end event already in its
// result log — so a 200 means the teardown is complete, not scheduled.
func (s *Server) handleRemoveFeed(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.RemoveFeed(name); err != nil {
		feedHTTPError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"removed": name})
}

// publishResponse answers POST /feeds/{name}/frames.
type publishResponse struct {
	// Published counts frames admitted to the ingest ring from this
	// request; Rejected counts frames the reject policy refused.
	Published int64 `json:"published"`
	Rejected  int64 `json:"rejected,omitempty"`
	// Closed reports that the feed drained mid-request: the remaining
	// frames were not admitted.
	Closed bool `json:"closed,omitempty"`
}

// handlePublishFrames ingests newline-delimited JSON frames into a push
// feed's ring. Admission follows the feed's policy: block parks the
// request (and so the client's upload) until the scan frees space,
// drop-oldest always admits, reject skips the frame and counts it. The
// response reports how the batch fared.
func (s *Server) handlePublishFrames(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedByName(r.PathValue("name"))
	if err != nil {
		feedHTTPError(w, err)
		return
	}
	if f.push == nil {
		httpError(w, http.StatusConflict, "not_push_feed", "feed %q is not a push feed", f.name)
		return
	}
	var resp publishResponse
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var wf wireFrame
		if err := json.Unmarshal(raw, &wf); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "line %d: %v", line, err)
			return
		}
		frame, err := wf.frame(f.profile)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "line %d: %v", line, err)
			return
		}
		switch err := f.push.Publish(frame, r.Context().Done()); {
		case err == nil:
			resp.Published++
		case errors.Is(err, stream.ErrPushRejected):
			resp.Rejected++
		case errors.Is(err, stream.ErrPushClosed):
			resp.Closed = true
		case errors.Is(err, stream.ErrPushAborted):
			return // client gone; nothing to answer
		}
		if resp.Closed {
			break
		}
	}
	if err := sc.Err(); err != nil && resp.Published == 0 {
		httpError(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// EncodeFrames renders frames in the publisher wire format, one JSON
// object per line — the body POST /feeds/{name}/frames expects (and,
// line by line, the WebSocket bridge's message format). Exported through
// the facade for reference publishers and tests.
func EncodeFrames(frames []*video.Frame) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.Encode(encodeWireFrame(f)); err != nil {
			return nil, fmt.Errorf("encode frame %d: %w", f.Index, err)
		}
	}
	return buf.Bytes(), nil
}
