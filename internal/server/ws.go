// WebSocket publisher bridge: GET /feeds/{name}/publish upgrades to a
// WebSocket whose text messages are publisher wire frames (the same JSON
// objects POST /feeds/{name}/frames takes per line), admitted to the
// feed's ingest ring under its policy. A hand-rolled RFC 6455 server —
// the repository takes no dependencies, and the publisher side of the
// protocol (handshake, masked client frames, ping/pong, close) is small.
//
// Backpressure is the transport's: under the block policy a full ring
// stops this goroutine reading the socket, TCP flow control reaches the
// publisher, and the camera slows — no frames are lost and no buffer
// grows without bound.
package server

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmq/internal/stream"
)

// wsGUID is the protocol's fixed handshake salt (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsMaxMessage bounds one message's reassembled payload: a published
// frame is a few KB of JSON; 1MB leaves two orders of magnitude of
// headroom while keeping a hostile peer from ballooning memory.
const wsMaxMessage = 1 << 20

// WebSocket opcodes.
const (
	wsOpCont   = 0x0
	wsOpText   = 0x1
	wsOpBinary = 0x2
	wsOpClose  = 0x8
	wsOpPing   = 0x9
	wsOpPong   = 0xA
)

// wsAcceptKey computes the Sec-WebSocket-Accept header value.
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// isWSUpgrade reports whether the request asks for a WebSocket upgrade
// — how GET /v1/queries/{id}/results chooses between NDJSON and the
// message bridge.
func isWSUpgrade(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get("Upgrade"), "websocket") &&
		headerContainsToken(r.Header.Get("Connection"), "upgrade")
}

// wsUpgrade performs the server side of the RFC 6455 handshake,
// hijacking the connection. On failure it has already answered the
// request with the error envelope and returns ok=false.
func wsUpgrade(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.Reader, bool) {
	if !isWSUpgrade(r) {
		httpError(w, http.StatusBadRequest, "bad_request", "websocket upgrade required")
		return nil, nil, false
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "bad_request", "missing Sec-WebSocket-Key")
		return nil, nil, false
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		httpError(w, http.StatusInternalServerError, "internal", "connection cannot be hijacked")
		return nil, nil, false
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", "hijack: %v", err)
		return nil, nil, false
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil, false
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, nil, false
	}
	return conn, rw.Reader, true
}

// handlePublishWS upgrades GET /feeds/{name}/publish and ingests one
// wire frame per text (or binary) message until the publisher closes,
// the feed drains, or a protocol error ends the connection.
func (s *Server) handlePublishWS(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedByName(r.PathValue("name"))
	if err != nil {
		feedHTTPError(w, err)
		return
	}
	if f.push == nil {
		httpError(w, http.StatusConflict, "not_push_feed", "feed %q is not a push feed", f.name)
		return
	}
	conn, br, ok := wsUpgrade(w, r)
	if !ok {
		return
	}
	defer conn.Close()
	s.servePublisher(conn, br, f)
}

// serveResultsWS is the WebSocket form of the results stream: each
// event goes out as one text message, and the client sends
// {"ack":<seq>} messages back on the same connection — in-band
// acknowledgement with no extra round-trip endpoint. The stream ends
// with a close frame when the query's log closes, or when the client
// closes first.
func (s *Server) serveResultsWS(w http.ResponseWriter, r *http.Request, reg *Registration, from int64) {
	conn, br, ok := wsUpgrade(w, r)
	if !ok {
		return
	}
	defer conn.Close()
	reader := reg.ResultsFrom(from)
	defer reader.Detach()
	// Events and control replies (pongs, closes) come from different
	// goroutines; frame writes must not interleave.
	var wmu sync.Mutex
	writeFrame := func(op byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return wsWriteFrame(conn, op, payload)
	}
	// Server-side keepalive: ping every WSPingInterval and close the
	// connection when no client frame (pong or otherwise) lands within
	// two intervals. An idle stream stays open — the peer keeps ponging
	// — while a dead peer behind a silent TCP half-open is detected
	// within a bounded window instead of never.
	var lastPong atomic.Int64
	lastPong.Store(time.Now().UnixNano())
	if interval := s.cfg.WSPingInterval; interval > 0 {
		pingStop := make(chan struct{})
		defer close(pingStop)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-pingStop:
					return
				case <-t.C:
					if time.Since(time.Unix(0, lastPong.Load())) > 2*interval {
						conn.Close() // pong deadline missed: dead peer, not idle stream
						return
					}
					if writeFrame(wsOpPing, []byte("vmq")) != nil {
						return
					}
				}
			}
		}()
	}
	// The client loop owns the read side: acks advance the cursor's
	// acknowledged position, pings are answered, and a close (or peer
	// loss) aborts the event loop's blocking read via done.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wr := &wsReader{br: br}
		for {
			op, payload, err := wr.next()
			if err != nil {
				return
			}
			// Any frame proves the peer alive; the pinger's deadline only
			// fires on total silence.
			lastPong.Store(time.Now().UnixNano())
			switch op {
			case wsOpText, wsOpBinary:
				var msg struct {
					Ack *int64 `json:"ack"`
				}
				if err := json.Unmarshal(payload, &msg); err != nil || msg.Ack == nil {
					wmu.Lock()
					wsWriteClose(conn, 1007, `expected {"ack":<seq>}`)
					wmu.Unlock()
					return
				}
				reg.noteAck(reader.Ack(*msg.Ack))
			case wsOpPing:
				if writeFrame(wsOpPong, payload) != nil {
					return
				}
			case wsOpPong:
				// Liveness already noted above; nothing else to do.
			case wsOpClose:
				if len(payload) > 125 {
					payload = payload[:125]
				}
				wmu.Lock()
				_ = wsWriteFrame(conn, wsOpClose, payload)
				wmu.Unlock()
				return
			}
		}
	}()
	for {
		it, ok := reader.Next(done)
		if !ok {
			break
		}
		payload, err := json.Marshal(reg.itemEvent(it))
		if err != nil {
			break
		}
		if writeFrame(wsOpText, payload) != nil {
			break
		}
	}
	select {
	case <-done:
		// The client ended the conversation; its close was already
		// echoed.
	default:
		wmu.Lock()
		wsWriteClose(conn, 1000, "end of stream")
		wmu.Unlock()
	}
}

// headerContainsToken reports whether a comma-separated header value
// contains the token (Connection can be "keep-alive, Upgrade").
func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// servePublisher runs the post-handshake message loop. This goroutine is
// the connection's only reader and writer, so pongs and the closing
// handshake need no write lock.
func (s *Server) servePublisher(conn net.Conn, br *bufio.Reader, f *feed) {
	wr := &wsReader{br: br}
	for {
		op, payload, err := wr.next()
		if err != nil {
			return // peer gone or protocol violation; nothing to answer
		}
		switch op {
		case wsOpText, wsOpBinary:
			var wf wireFrame
			if err := json.Unmarshal(payload, &wf); err != nil {
				wsWriteClose(conn, 1007, fmt.Sprintf("bad frame: %v", err))
				return
			}
			frame, err := wf.frame(f.profile)
			if err != nil {
				wsWriteClose(conn, 1007, err.Error())
				return
			}
			switch err := f.push.Publish(frame, nil); {
			case err == nil:
			case errors.Is(err, stream.ErrPushRejected):
				// The reject policy's answer is per-frame; the publisher
				// keeps the connection and decides whether to retry.
			case errors.Is(err, stream.ErrPushClosed):
				wsWriteClose(conn, 1001, "feed draining")
				return
			}
		case wsOpPing:
			if wsWriteFrame(conn, wsOpPong, payload) != nil {
				return
			}
		case wsOpPong:
			// Unsolicited pong: ignore.
		case wsOpClose:
			if len(payload) > 125 {
				payload = payload[:125]
			}
			_ = wsWriteFrame(conn, wsOpClose, payload)
			return
		}
	}
}

// wsReader reassembles the client's frames into messages. next returns
// the next complete data message (text/binary, continuation fragments
// joined) or the next control frame (ping/pong/close) — control frames
// may interleave a fragmented message (RFC 6455 §5.4), so the partial
// message survives across calls. Client frames must be masked (§5.1).
type wsReader struct {
	br     *bufio.Reader
	msgOp  byte
	msgBuf []byte
	inMsg  bool
}

func (r *wsReader) next() (op byte, payload []byte, err error) {
	for {
		fin, opcode, data, err := wsReadFrame(r.br)
		if err != nil {
			return 0, nil, err
		}
		switch {
		case opcode >= wsOpClose: // control frame: never fragmented
			if !fin {
				return 0, nil, errors.New("fragmented control frame")
			}
			return opcode, data, nil
		case opcode == wsOpCont:
			if !r.inMsg {
				return 0, nil, errors.New("continuation without a message")
			}
			r.msgBuf = append(r.msgBuf, data...)
		default: // text or binary
			if r.inMsg {
				return 0, nil, errors.New("new data frame inside a fragmented message")
			}
			r.inMsg, r.msgOp = true, opcode
			r.msgBuf = append(r.msgBuf, data...)
		}
		if len(r.msgBuf) > wsMaxMessage {
			return 0, nil, errors.New("message too large")
		}
		if r.inMsg && fin {
			msg := r.msgBuf
			r.msgBuf, r.inMsg = nil, false
			return r.msgOp, msg, nil
		}
	}
}

// wsReadFrame reads one raw frame and unmasks its payload.
func wsReadFrame(br *bufio.Reader) (fin bool, opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		err = errors.New("reserved bits set")
		return
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	if !masked {
		err = errors.New("unmasked client frame")
		return
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxMessage {
		err = errors.New("frame too large")
		return
	}
	var mask [4]byte
	if _, err = io.ReadFull(br, mask[:]); err != nil {
		return
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(br, payload); err != nil {
		return
	}
	for i := range payload {
		payload[i] ^= mask[i%4]
	}
	return
}

// wsWriteFrame writes one unfragmented, unmasked frame (server frames
// are never masked).
func wsWriteFrame(w io.Writer, opcode byte, payload []byte) error {
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, 0x80|opcode)
	switch n := len(payload); {
	case n < 126:
		hdr = append(hdr, byte(n))
	case n <= 0xFFFF:
		hdr = append(hdr, 126, byte(n>>8), byte(n))
	default:
		hdr = append(hdr, 127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		hdr = append(hdr, ext[:]...)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// wsWriteClose sends a close frame with a status code and reason.
func wsWriteClose(w io.Writer, code uint16, reason string) {
	if len(reason) > 123 {
		reason = reason[:123]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	copy(payload[2:], reason)
	_ = wsWriteFrame(w, wsOpClose, payload)
}
