package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"vmq/internal/rlog"
	"vmq/internal/vql"
)

// Recover builds a server from the durable manifest under
// Config.StateDir: journalled feeds are re-created from their specs
// (drained feeds restart drained), journalled queries re-register under
// their original ids with their result logs resumed from their spill
// segments, and the acknowledged positions replayed — a consumer that
// acked through N before the crash reconnects with ?from=N+1 and
// continues gap-free, byte-identical to an uninterrupted run.
//
// A query whose spill ends with its end event is recovered as a
// finished registration: no runner starts, but its history stays
// replayable through results/history exactly as a retired query's
// would. A query whose feed no longer admits it (removed, or drained
// before the crash) is recovered the same way when it has history, and
// dropped from the manifest when it has none.
//
// Recover is also how journaling is enabled in the first place: a
// server built with New never journals, one built with Recover journals
// every wire-expressible feed and query from then on. An empty or
// absent StateDir is an error; a StateDir with no manifest yet recovers
// an empty server and starts the journal.
func Recover(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("server: Recover needs Config.StateDir")
	}
	s := New(cfg)
	// Readiness: until Start, /v1/healthz answers 503 recovering — the
	// manifest replay below re-registers queries and resumes spills, and
	// a router must not route new work at a half-rebuilt registry.
	s.recovering.Store(true)
	m, err := openManifest(s.cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.manifest = m
	if m.state.nextID > s.nextID {
		s.nextID = m.state.nextID
	}
	s.mu.Unlock()

	// Feeds first (queries register against them), in name order for
	// deterministic recovery.
	feedNames := make([]string, 0, len(m.state.feeds))
	for n := range m.state.feeds {
		feedNames = append(feedNames, n)
	}
	sort.Strings(feedNames)
	for _, name := range feedNames {
		fm := m.state.feeds[name]
		fc, err := fm.spec.feedConfig()
		if err != nil {
			continue // a journal from a newer/older build: skip what cannot build
		}
		if err := s.AddFeed(fc); err != nil {
			continue
		}
		if fm.drained {
			if f, ferr := s.feedByName(name); ferr == nil {
				f.drain(EndReasonFeedDrained)
			}
		}
	}

	// Queries in id order: earlier registrations re-register first, so
	// admission limits and budget shares land the way they originally
	// did.
	ids := make([]string, 0, len(m.state.queries))
	for id := range m.state.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return lessID(ids[a], ids[b]) })
	for _, id := range ids {
		acked, ok := m.state.acks[id]
		if !ok {
			acked = -1
		}
		s.recoverQuery(*m.state.queries[id], acked)
	}

	// Orphan spill segments: a crash between the durable id reservation
	// and the query_register record leaves a spill directory no record
	// claims. The id was reserved, so it will never be reused — the
	// directory is dead weight and is swept. Only the server-owned spill
	// root under StateDir is swept; a caller-pointed SpillDir may hold
	// directories the server does not own.
	if s.cfg.SpillDir == filepath.Join(s.cfg.StateDir, "spill") {
		sweepOrphanSpills(s.cfg.SpillDir, m.state.queries)
	}
	return s, nil
}

// CreateFeedSpec creates a feed from its serialisable spec and, when
// the server journals (Recover), records it durably so a restart
// re-creates it. The HTTP create endpoint routes through here; AddFeed
// remains the programmatic path and is never journalled (a custom
// Source or Backend cannot be re-created from a record).
func (s *Server) CreateFeedSpec(spec FeedSpec) error {
	cfg, err := spec.feedConfig()
	if err != nil {
		return err
	}
	if err := s.AddFeed(cfg); err != nil {
		return err
	}
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()
	if m != nil {
		if jerr := m.feedCreated(spec); jerr != nil {
			// The feed must not exist undurably: a restart would lose it
			// while its publishers keep addressing it. Roll back.
			_ = s.RemoveFeed(spec.Name)
			return fmt.Errorf("server: journal feed %q: %w", spec.Name, jerr)
		}
	}
	return nil
}

// recoveredQuery pins a recovery-time registration: the original id and
// the result log already resumed over the existing spill segments.
// register() uses these instead of minting fresh ones.
type recoveredQuery struct {
	id         string
	log        *rlog.Log[Event]
	spill      *rlog.FileSpill[Event]
	spillOwned string
}

// recoverQuery rebuilds one journalled registration. Its spill (when it
// has one) decides the shape: a spill whose last entry is the query's
// end event recovers as a finished registration (history only, no
// runner); anything else re-registers live with the log resumed one
// past the last durable event, so new events continue the sequence
// gap-free.
func (s *Server) recoverQuery(rec QueryRecord, acked int64) {
	q, err := vql.Parse(rec.Query)
	if err != nil {
		_ = s.manifest.queryUnregistered(rec.ID)
		return
	}
	var (
		spill      *rlog.FileSpill[Event]
		spillOwned string
		next       int64
		finished   bool
	)
	if rec.Spill {
		dir := filepath.Join(s.cfg.SpillDir, rec.ID)
		scfg := s.cfg.Spill
		scfg.Durable = true
		sp, serr := rlog.NewFileSpill[Event](dir, scfg)
		if serr == nil {
			spill = sp
			spillOwned = dir
			if last, ok := sp.LastRetained(); ok {
				next = last + 1
				if ev, ok := sp.Read(last); ok && ev.Kind == EventEnd {
					finished = true
				}
			}
		}
	}
	if next == 0 && acked >= 0 {
		// No durable history (ring-only query): at least keep sequence
		// numbering monotone past what the consumer already processed.
		next = acked + 1
	}
	if finished {
		s.recoverFinished(rec, q, spill, spillOwned, next, acked)
		return
	}
	pin := &recoveredQuery{
		id:         rec.ID,
		log:        s.resumedLog(rec, spill, next, acked),
		spill:      spill,
		spillOwned: spillOwned,
	}
	if _, err := s.register(q, rec.options(s.cfg), pin); err != nil {
		// The feed is gone or draining. With history, keep it visible as
		// a finished row; with none, purge the record.
		if spill != nil {
			s.recoverFinished(rec, q, spill, spillOwned, next, acked)
		} else {
			_ = s.manifest.queryUnregistered(rec.ID)
		}
	}
}

// resumedLog builds the registration's result log positioned to
// continue the recovered stream.
func (s *Server) resumedLog(rec QueryRecord, spill *rlog.FileSpill[Event], next, acked int64) *rlog.Log[Event] {
	buffer := rec.ResultBuffer
	if buffer <= 0 || buffer > MaxResultBuffer {
		buffer = s.cfg.ResultBuffer
	}
	policy, ok := rlog.ParsePolicy(rec.Policy)
	if !ok {
		policy = s.cfg.DefaultPolicy
	}
	log := rlog.New[Event](buffer, policy)
	if spill != nil {
		log.SetSpill(spill)
		log.SetWriteThrough()
	}
	log.Resume(next, acked)
	return log
}

// options rebuilds the Options a journalled registration was created
// with.
func (rec QueryRecord) options(cfg Config) Options {
	opt := Options{
		MaxFrames:    rec.MaxFrames,
		SampleSize:   rec.SampleSize,
		Seed:         rec.Seed,
		ResultBuffer: rec.ResultBuffer,
		Spill:        rec.Spill,
	}
	if p, ok := rlog.ParsePolicy(rec.Policy); ok {
		opt.Policy = p
	}
	if rec.CountTol != nil || rec.LocationTol != nil {
		tol := *cfg.Tol
		if rec.CountTol != nil {
			tol.Count = *rec.CountTol
		}
		if rec.LocationTol != nil {
			tol.Location = *rec.LocationTol
		}
		opt.Tol = &tol
	}
	return opt
}

// recoverFinished installs a registration whose runner already ended
// (or whose feed no longer admits it): the log replays its retained
// history and is closed, Done is already signalled, and the row shows
// up finished in listings — exactly how a retired query looks, minus a
// live feed behind it.
func (s *Server) recoverFinished(rec QueryRecord, q *vql.Query, spill *rlog.FileSpill[Event], spillOwned string, next, acked int64) {
	r := &Registration{
		id:         rec.ID,
		feedName:   rec.Feed,
		qry:        q,
		log:        s.resumedLog(rec, spill, next, acked),
		spill:      spill,
		spillOwned: spillOwned,
		done:       make(chan struct{}),
		recovered:  true,
	}
	r.log.Close()
	r.stats.finished = true
	close(r.done)
	s.mu.Lock()
	s.regs[rec.ID] = r
	s.finished = append(s.finished, rec.ID)
	s.mu.Unlock()
}

// spillDirPattern matches server-minted spill directory names.
var spillDirPattern = regexp.MustCompile(`^q\d+$`)

// sweepOrphanSpills removes spill directories under the server-owned
// spill root that no journalled query claims.
func sweepOrphanSpills(dir string, queries map[string]*QueryRecord) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !spillDirPattern.MatchString(name) {
			continue
		}
		if _, ok := queries[name]; !ok {
			_ = os.RemoveAll(filepath.Join(dir, name))
		}
	}
}

// Crash simulates a process kill for chaos drills and tests: runners
// are cut without end events (a killed process emits nothing), spills
// and the manifest are closed without the graceful flush-and-compact,
// and spill directories are left on disk — exactly the state a SIGKILL
// leaves, minus the lost file descriptors. The server is unusable
// afterwards; Recover over the same StateDir is the restart. Exported
// so fleet-level chaos tests can kill a shard in-process.
func (s *Server) Crash() {
	s.mu.Lock()
	s.closed = true
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	regs := make([]*Registration, 0, len(s.regs))
	for _, r := range s.regs {
		regs = append(regs, r)
	}
	m := s.manifest
	s.mu.Unlock()
	for _, r := range regs {
		// killed before the cancel: an unwinding runner's final emit must
		// not journal an orderly end the real process never wrote.
		r.killed.Store(true)
		r.cancelSub()
	}
	for _, f := range feeds {
		f.close()
		f.start()
	}
	s.wg.Wait()
	s.budget.stop()
	for _, r := range regs {
		if r.spill != nil {
			_ = r.spill.Close() // close the descriptor; keep the files
		}
	}
	if m != nil {
		m.closeAbrupt()
	}
}
