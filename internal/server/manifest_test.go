package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmq/internal/fault"
)

// manifestLines parses every complete line of the journal, failing the
// test on any line that is not valid JSON — what a compacted journal
// must guarantee.
func manifestLines(t *testing.T, dir string) []manifestRecord {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []manifestRecord
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			if len(line) != 0 {
				t.Fatalf("compacted journal ends in a partial line: %q", line)
			}
			return out
		}
		var rec manifestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("compacted journal holds an unparsable line %q: %v", line, err)
		}
		out = append(out, rec)
	}
}

// A record torn mid-write by a crash — the final line has no newline —
// must be dropped on replay without costing any record before it, and
// the reopening compaction must leave a fully parsable journal.
func TestManifestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	m, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := FeedSpec{Name: "cam", Profile: "jackson", Source: "sim", Seed: 7}
	if err := m.feedCreated(spec); err != nil {
		t.Fatal(err)
	}
	if err := m.queryRegistered(QueryRecord{ID: "q1", Query: "SELECT FRAMES FROM cam WHERE COUNT(car) >= 0", Feed: "cam", Spill: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.queryAcked("q1", 41); err != nil {
		t.Fatal(err)
	}
	m.closeAbrupt()

	// The crash lands halfway through the next record: valid JSON up to
	// the cut, no terminating newline.
	path := filepath.Join(dir, manifestFile)
	torn := `{"type":"query_ack","id":"q1","seq":99`
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.closeAbrupt()
	fm, ok := m2.state.feeds["cam"]
	if !ok || fm.spec != spec {
		t.Fatalf("feed lost across torn-tail replay: %+v", m2.state.feeds)
	}
	if q, ok := m2.state.queries["q1"]; !ok || !q.Spill {
		t.Fatalf("query lost across torn-tail replay: %+v", m2.state.queries)
	}
	if got := m2.state.acks["q1"]; got != 41 {
		t.Fatalf("acked = %d after torn-tail replay, want 41 (the torn 99 must not count)", got)
	}
	// The open compacted: every surviving line parses, and the journal
	// accepts appends again.
	manifestLines(t, dir)
	if err := m2.queryAcked("q1", 50); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
}

// Replay is idempotent over duplicated and reordered-looking journals: a
// retried append that actually landed twice, an ack that regressed, an
// id reservation below the high-water mark — all replay to the state the
// callers were promised.
func TestManifestReplayIdempotentDuplicates(t *testing.T) {
	dir := t.TempDir()
	recs := []manifestRecord{
		{Type: recFeedCreate, Feed: &FeedSpec{Name: "cam", Profile: "jackson", Source: "sim", Seed: 1}},
		// Duplicate create with a different seed: last write wins.
		{Type: recFeedCreate, Feed: &FeedSpec{Name: "cam", Profile: "jackson", Source: "sim", Seed: 9}},
		{Type: recQueryRegister, Query: &QueryRecord{ID: "q2", Query: "SELECT FRAMES FROM cam WHERE COUNT(car) >= 0", Feed: "cam"}},
		// Duplicate register (a retried append that landed twice).
		{Type: recQueryRegister, Query: &QueryRecord{ID: "q2", Query: "SELECT FRAMES FROM cam WHERE COUNT(car) >= 0", Feed: "cam"}},
		{Type: recQueryAck, ID: "q2", Seq: 5},
		// A stale ack must not regress the position.
		{Type: recQueryAck, ID: "q2", Seq: 3},
		{Type: recNextID, Next: 7},
		{Type: recNextID, Next: 4},
		// Register-then-unregister, unregister repeated: the query is gone.
		{Type: recQueryRegister, Query: &QueryRecord{ID: "q3", Query: "SELECT FRAMES FROM cam WHERE COUNT(car) = 1", Feed: "cam"}},
		{Type: recQueryUnregister, ID: "q3"},
		{Type: recQueryUnregister, ID: "q3"},
		// An ack for an unknown query is dropped, not resurrected.
		{Type: recQueryAck, ID: "q3", Seq: 12},
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.closeAbrupt()
	if fm := m.state.feeds["cam"]; fm == nil || fm.spec.Seed != 9 {
		t.Fatalf("duplicate feed_create: want the later spec (seed 9), got %+v", fm)
	}
	if _, ok := m.state.queries["q2"]; !ok {
		t.Fatal("q2 lost on duplicated register")
	}
	if got := m.state.acks["q2"]; got != 5 {
		t.Fatalf("ack replay = %d, want max-merge 5", got)
	}
	if m.state.nextID != 7 {
		t.Fatalf("nextID = %d, want high-water 7", m.state.nextID)
	}
	if _, ok := m.state.queries["q3"]; ok {
		t.Fatal("unregistered q3 resurrected on replay")
	}
	if _, ok := m.state.acks["q3"]; ok {
		t.Fatal("ack for unregistered q3 survived replay")
	}
}

// The manifest.append failpoint in short mode tears the write exactly as
// the journal's crash model expects: the caller sees an error, the state
// is unchanged, and a reopen drops the half-written record.
func TestManifestTornWriteFaultInjection(t *testing.T) {
	if !fault.Enabled {
		t.Skip("fault registry compiled out (vmq_nofault)")
	}
	fault.Reset()
	dir := t.TempDir()
	m, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.feedCreated(FeedSpec{Name: "cam", Profile: "jackson", Source: "sim"}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("manifest.append=short:times=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	err = m.queryRegistered(QueryRecord{ID: "q1", Query: "SELECT FRAMES FROM cam WHERE COUNT(car) >= 0", Feed: "cam"})
	if !errors.Is(err, fault.ErrShort) {
		t.Fatalf("append under short fault = %v, want fault.ErrShort", err)
	}
	if _, ok := m.state.queries["q1"]; ok {
		t.Fatal("failed append mutated the in-memory state")
	}
	if got := fault.Fired("manifest.append"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
	// The file now ends mid-record without a newline — the torn write.
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] == '\n' {
		t.Fatalf("expected a torn (newline-less) tail, file ends %q", raw[max(0, len(raw)-20):])
	}
	m.closeAbrupt()

	m2, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.closeAbrupt()
	if _, ok := m2.state.queries["q1"]; ok {
		t.Fatal("torn record replayed as if committed")
	}
	if _, ok := m2.state.feeds["cam"]; !ok {
		t.Fatal("records before the torn write were lost")
	}
	manifestLines(t, dir)
}
