package server

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Readiness/liveness split: between Recover and Start the process is
// alive but not ready — /v1/healthz answers 503 {"status":"recovering"}
// so a prober (or a fleet router) holds traffic instead of treating the
// port as healthy or dead.
func TestServerHealthzRecoveringUntilStart(t *testing.T) {
	srv := recoverAt(t, t.TempDir(), Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if !srv.Recovering() {
		t.Fatal("server not marked recovering between Recover and Start")
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hr.Status != "recovering" {
		t.Fatalf("healthz before Start = %d %+v, want 503 recovering", resp.StatusCode, hr)
	}

	srv.Start()
	if srv.Recovering() {
		t.Fatal("server still recovering after Start")
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz after Start = %d %+v, want 200 ok", resp.StatusCode, hr)
	}
}

// The WS results bridge keepalive: the server pings every
// WSPingInterval; a client that pongs stays connected through an idle
// stream, and one that goes silent is closed after the pong deadline —
// a dead peer behind a TCP half-open is detected, not waited on
// forever.
func TestWSResultsBridgePingPong(t *testing.T) {
	const interval = 25 * time.Millisecond
	srv := New(Config{WSPingInterval: interval})
	defer srv.Close()
	// A push feed nobody publishes to: the stream is idle, so the only
	// traffic is the keepalive itself.
	if err := srv.CreateFeedSpec(FeedSpec{Name: "quiet", Profile: "jackson"}); err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM quiet WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	conn, br := wsDial(t, ts.URL, "/queries/"+reg.ID()+"/results")

	// Answer three pings: the connection must survive well past the
	// 2-interval pong deadline because the peer keeps proving liveness.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 3; i++ {
		op, payload := wsReadServerFrame(t, br)
		if op != wsOpPing {
			t.Fatalf("frame %d: op %#x, want ping", i, op)
		}
		if string(payload) != "vmq" {
			t.Fatalf("ping payload = %q, want vmq", payload)
		}
		if _, err := conn.Write(wsClientFrame(wsOpPong, true, payload)); err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
	}

	// Go silent. The server must close the connection once two intervals
	// pass without a client frame — reads drain the remaining pings and
	// then fail, well before the 5s deadline.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("server never closed a silent peer's connection")
		}
		// A reset is as good as a FIN: the server tore the conn down.
	}
}
