package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmq/internal/rlog"
)

// pollQueryStatus polls GET /v1/queries/{id} until ok accepts the row.
func pollQueryStatus(t *testing.T, ts *httptest.Server, id string, ok func(QueryMetrics) bool) QueryMetrics {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/queries/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var qm QueryMetrics
		err = json.NewDecoder(resp.Body).Decode(&qm)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ok(qm) {
			return qm
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never converged: %+v", qm)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// registerEveryFrame registers a match-every-frame query with a 16-event
// ring so retention mechanics surface quickly, returning its id.
func registerEveryFrame(t *testing.T, ts *httptest.Server, extra string) string {
	t.Helper()
	body := `{"query": "SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0", "result_buffer": 16` + extra + `}`
	resp, err := http.Post(apiBase(ts)+"/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	return created.ID
}

// streamPrefix reads the query's stream until the event with sequence
// upto (inclusive), then disconnects without acking anything.
func streamPrefix(t *testing.T, ts *httptest.Server, id string, upto int64) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, apiBase(ts)+"/queries/"+id+"/results", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.EventSeq >= upto {
			return
		}
	}
	t.Fatalf("stream ended before sequence %d", upto)
}

// postAck acks through seq on the out-of-band endpoint and verifies the
// acknowledged high-water mark echoed back.
func postAck(t *testing.T, ts *httptest.Server, id string, seq int64) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/queries/"+id+"/ack", "application/json",
		strings.NewReader(fmt.Sprintf(`{"seq":%d}`, seq)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Acked int64 `json:"acked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Acked != seq {
		t.Fatalf("ack(%d) answered %+v, %v", seq, body, err)
	}
}

// Exactness with acks: a block-policy query with no stream attached
// blocks once the ring fills; out-of-band acks through 30 move the
// retention floor to 31 and let the writer advance exactly one ring
// past it before blocking again. Reattaching at from=31 — over the
// WebSocket bridge, acking each event in band — then receives every
// event through the end with no gap, because retention followed the
// acknowledged position the whole way.
func TestHTTPAckExactResume(t *testing.T) {
	_, ts := newHTTPServer(t, 60)
	id := registerEveryFrame(t, ts, "")

	// Nobody has read yet: the writer fills the ring and blocks.
	pollQueryStatus(t, ts, id, func(qm QueryMetrics) bool {
		return qm.EventSeq == 16 && qm.FirstRetained == 0
	})
	// Ack through 14: floor 15, the writer runs one ring past it.
	postAck(t, ts, id, 14)
	pollQueryStatus(t, ts, id, func(qm QueryMetrics) bool {
		return qm.EventSeq == 31 && qm.FirstRetained == 15
	})
	// Ack through 30: the writer blocks holding exactly 31..46.
	postAck(t, ts, id, 30)
	pollQueryStatus(t, ts, id, func(qm QueryMetrics) bool {
		return qm.EventSeq == 47 && qm.FirstRetained == 31
	})

	conn, br := wsDial(t, ts.URL, "/queries/"+id+"/results?from=31")
	next := int64(31)
	sawEnd := false
	for {
		op, payload := wsReadServerFrame(t, br)
		if op == wsOpClose {
			break
		}
		if op != wsOpText {
			t.Fatalf("unexpected frame op %#x", op)
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventGap {
			t.Fatalf("acked consumer saw a gap: %+v", ev)
		}
		if ev.EventSeq != next {
			t.Fatalf("event seq %d, want %d — resume not exact", ev.EventSeq, next)
		}
		next++
		if ev.Kind == EventEnd {
			sawEnd = true
			continue
		}
		// In-band ack: the exactly-once consumer confirms each event,
		// releasing the blocked writer one eviction at a time. Stop at 44
		// — the last eviction the writer needs to run the 61-event stream
		// to completion — because later acks race the server's
		// end-of-stream teardown once the writer is unblocked for good.
		if ev.EventSeq > 44 {
			continue
		}
		if _, err := conn.Write(wsClientFrame(wsOpText, true,
			[]byte(fmt.Sprintf(`{"ack":%d}`, ev.EventSeq)))); err != nil {
			t.Fatalf("ack of %d: %v", ev.EventSeq, err)
		}
	}
	// 60 matching frames: matches 31..59, then the end event at 60.
	if !sawEnd || next != 61 {
		t.Fatalf("resume delivered through seq %d (end=%v), want 61 with end", next-1, sawEnd)
	}
}

// The same scenario without acks reports the honest gap: retention
// followed the read position past 40, so from=31 starts with one gap
// event covering exactly the evicted range, then the contiguous tail.
func TestHTTPResumeWithoutAcksReportsGap(t *testing.T) {
	_, ts := newHTTPServer(t, 60)
	id := registerEveryFrame(t, ts, "")
	streamPrefix(t, ts, id, 40)

	// Unacked: the parked floor is the read position (>= 41), and the
	// writer advances past the would-be resume point.
	pollQueryStatus(t, ts, id, func(qm QueryMetrics) bool {
		return qm.FirstRetained > 31
	})

	resp, err := http.Get(apiBase(ts) + "/queries/" + id + "/results?from=31")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if len(evs) == 0 || evs[0].Kind != EventGap {
		t.Fatalf("first event = %+v, want the honest gap", evs)
	}
	if evs[0].DroppedFrom != 31 || evs[0].DroppedTo <= 31 {
		t.Fatalf("gap = [%d,%d), want it to start at the resume point",
			evs[0].DroppedFrom, evs[0].DroppedTo)
	}
	next := evs[0].DroppedTo
	for _, ev := range evs[1:] {
		if ev.Kind == EventGap {
			t.Fatalf("second gap %+v — loss must be reported once", ev)
		}
		if ev.EventSeq != next {
			t.Fatalf("event seq %d, want %d — tail not contiguous", ev.EventSeq, next)
		}
		next++
	}
	if evs[len(evs)-1].Kind != EventEnd {
		t.Fatal("resumed stream lost the end event")
	}
}

// History paging returns byte-identical events to a streamed read over
// the same range: a spilling block-policy query runs to completion with
// no consumer, then the whole log is read once as a stream and once as
// pages, and every page event must match its streamed line byte for
// byte.
func TestHTTPHistoryPagingMatchesStream(t *testing.T) {
	srv, ts := newHTTPServer(t, 100)
	id := registerEveryFrame(t, ts, `, "spill": true`)
	reg, ok := srv.Get(id)
	if !ok {
		t.Fatal("registration vanished")
	}
	<-reg.Done()

	// The spill holds everything the ring evicted; telemetry shows it.
	st := pollQueryStatus(t, ts, id, func(qm QueryMetrics) bool { return qm.EventSeq == 101 })
	if st.SpillBytes <= 0 || st.SpillSegments < 1 {
		t.Fatalf("spill telemetry = %d bytes in %d segments, want a populated spill",
			st.SpillBytes, st.SpillSegments)
	}

	resp, err := http.Get(apiBase(ts) + "/queries/" + id + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		streamed = append(streamed, strings.TrimSpace(sc.Text()))
	}
	resp.Body.Close()
	if len(streamed) != 101 { // 100 matches + end
		t.Fatalf("streamed %d events, want 101", len(streamed))
	}

	var paged []string
	from := int64(0)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/queries/%s/history?from=%d&limit=7", ts.URL, id, from))
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			From     int64             `json:"from"`
			NextFrom int64             `json:"next_from"`
			Events   []json.RawMessage `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if page.From != from {
			t.Fatalf("page echoed from=%d, want %d", page.From, from)
		}
		if len(page.Events) == 0 {
			if page.NextFrom != from {
				t.Fatalf("empty page moved the cursor: %d -> %d", from, page.NextFrom)
			}
			break
		}
		for _, raw := range page.Events {
			paged = append(paged, string(raw))
		}
		from = page.NextFrom
	}
	if len(paged) != len(streamed) {
		t.Fatalf("paging returned %d events, streaming %d", len(paged), len(streamed))
	}
	for i := range streamed {
		if paged[i] != streamed[i] {
			t.Fatalf("event %d diverges:\n  stream: %s\n  page:   %s", i, streamed[i], paged[i])
		}
	}
	// Paging detached its transient readers and never parked a floor.
	if qm := pollQueryStatus(t, ts, id, func(QueryMetrics) bool { return true }); qm.Readers != 0 {
		t.Fatalf("history paging left %d readers attached", qm.Readers)
	}
}

// A drop-oldest spilling query stays within its on-disk retention
// budget: old segments rotate out as the window advances.
func TestServerSpillBudgetBounded(t *testing.T) {
	srv, ts := newHTTPServer(t, 400)
	_ = ts
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{
		Policy: rlog.DropOldest, ResultBuffer: 16,
		SpillPath:   t.TempDir(),
		SpillConfig: rlog.SpillConfig{SegmentBytes: 2048, RetainBytes: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-reg.Done()
	qm := reg.metricsRow()
	if qm.SpillBytes <= 0 || qm.SpillBytes > 8192 {
		t.Fatalf("spill footprint %d bytes, want within the 8192 budget", qm.SpillBytes)
	}
	// The retained window is a contiguous suffix: one gap, then events
	// through the end.
	events, _ := reg.HistoryPage(0, 1000)
	if len(events) == 0 || events[0].Kind != EventGap {
		t.Fatalf("first history event = %+v, want the rotation gap", events)
	}
	next := events[0].DroppedTo
	for _, ev := range events[1:] {
		if ev.Kind == EventGap {
			t.Fatalf("history window not contiguous: %+v", ev)
		}
		if ev.EventSeq != next {
			t.Fatalf("history seq %d, want %d", ev.EventSeq, next)
		}
		next++
	}
	if next != 401 {
		t.Fatalf("history ends at %d, want 401", next)
	}
}

// The unversioned aliases carry deprecation headers pointing at their
// /v1 successors; the /v1 surface does not, and errors everywhere use
// the typed envelope.
func TestHTTPDeprecationAndErrorEnvelope(t *testing.T) {
	_, ts := newHTTPServer(t, 20)

	legacy, err := http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	legacy.Body.Close()
	if legacy.Header.Get("Deprecation") != "true" {
		t.Fatalf("legacy route Deprecation header = %q, want true", legacy.Header.Get("Deprecation"))
	}
	if link := legacy.Header.Get("Link"); link != `</v1/queries>; rel="successor-version"` {
		t.Fatalf("legacy route Link header = %q", link)
	}

	v1, err := http.Get(ts.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	v1.Body.Close()
	if v1.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}

	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"GET", "/v1/queries/q999/results", "", http.StatusNotFound, "query_not_found"},
		{"GET", "/v1/queries/q999", "", http.StatusNotFound, "query_not_found"},
		{"POST", "/v1/queries/q999/ack", `{"seq":1}`, http.StatusNotFound, "query_not_found"},
		{"GET", "/v1/queries/q999/history", "", http.StatusNotFound, "query_not_found"},
		{"POST", "/v1/queries", "SELECT nonsense", http.StatusBadRequest, "invalid_query"},
		{"POST", "/v1/queries", `SELECT FRAMES FROM nosuch WHERE COUNT(car) = 1`, http.StatusUnprocessableEntity, "feed_not_found"},
		{"POST", "/v1/feeds/gone/drain", "", http.StatusNotFound, "feed_not_found"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env apiError
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s: envelope decode: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != tc.status || env.Error.Code != tc.code || env.Error.Message == "" {
			t.Fatalf("%s %s -> %d %q (%q), want %d %q",
				tc.method, tc.path, resp.StatusCode, env.Error.Code, env.Error.Message, tc.status, tc.code)
		}
	}

	// Registering an oversized result ring is the canonical 422 cap
	// rejection.
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": "SELECT FRAMES FROM jackson WHERE COUNT(car) = 1", "result_buffer": %d}`, MaxResultBuffer+1)))
	if err != nil {
		t.Fatal(err)
	}
	var env apiError
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != "buffer_too_large" {
		t.Fatalf("oversized buffer -> %d %+v, %v", resp.StatusCode, env, err)
	}
}
