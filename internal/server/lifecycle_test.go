package server

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// waitState polls until the feed reaches the wanted lifecycle state.
func waitState(t *testing.T, f *feed, want FeedState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("feed %q stuck in %q, want %q", f.name, f.State(), want)
}

// A feed walks creating → running → draining → closed, the state is
// visible in Metrics, and a drain ends its queries with the
// "feed_drained" reason through the ordinary end-event path.
func TestServerFeedLifecycleStates(t *testing.T) {
	p := video.Jackson()
	push := stream.NewPushSource(32, stream.PushBlock)
	srv := New(Config{})
	defer srv.Close()
	if err := srv.CreateFeed(FeedConfig{
		Name: "cam", Profile: p, Source: push,
		Backend: filters.NewODFilter(p, 7, nil),
	}); err != nil {
		t.Fatal(err)
	}
	f, err := srv.feedByName("cam")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.State(); got != FeedCreating {
		t.Fatalf("before Start: state %q, want %q", got, FeedCreating)
	}
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM cam WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	if got := f.State(); got != FeedRunning {
		t.Fatalf("after Start: state %q, want %q", got, FeedRunning)
	}
	m := srv.Metrics()
	if len(m.Feeds) != 1 || m.Feeds[0].State != string(FeedRunning) {
		t.Fatalf("metrics state = %+v, want running", m.Feeds)
	}
	if m.Feeds[0].Ingest == nil || m.Feeds[0].Ingest.Capacity != 32 {
		t.Fatalf("metrics ingest = %+v, want ring of 32", m.Feeds[0].Ingest)
	}

	var outcome struct {
		final  Event
		sawEnd bool
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, outcome.final, outcome.sawEnd = drain(reg)
	}()
	for _, fr := range video.NewStream(p, 7).Take(50) {
		if err := push.Publish(fr, nil); err != nil {
			t.Error(err)
		}
	}
	if err := srv.DrainFeed("cam"); err != nil {
		t.Fatal(err)
	}
	if st := f.State(); st != FeedDraining && st != FeedClosed {
		t.Fatalf("after DrainFeed: state %q", st)
	}
	<-done
	if !outcome.sawEnd {
		t.Fatal("drained query's stream closed without an end event")
	}
	if outcome.final.Reason != EndReasonFeedDrained {
		t.Fatalf("end reason %q, want %q", outcome.final.Reason, EndReasonFeedDrained)
	}
	waitState(t, f, FeedClosed)
	if err := srv.RemoveFeed("cam"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.feedByName("cam"); !errors.Is(err, ErrFeedNotFound) {
		t.Fatalf("removed feed still resolves: %v", err)
	}
	// The freed name is reusable.
	if err := srv.CreateFeed(FeedConfig{
		Name: "cam", Profile: p,
		Source: stream.NewPushSource(8, stream.PushBlock),
	}); err != nil {
		t.Fatalf("name not freed after RemoveFeed: %v", err)
	}
}

// Registering on a draining feed must fail with ErrFeedDraining — a
// query admitted after the ingest cut would start mid-teardown and never
// see a frame. Draining before Start keeps the feed in the draining
// state deterministically (no pump runs to close it).
func TestServerRegisterOnDrainingFeedRejected(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	defer srv.Close()
	if err := srv.CreateFeed(FeedConfig{
		Name: "cam", Profile: p,
		Source: stream.NewPushSource(8, stream.PushBlock),
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.DrainFeed("cam"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Register(parse(t, `SELECT FRAMES FROM cam WHERE COUNT(car) = 1`), Options{}); !errors.Is(err, ErrFeedDraining) {
		t.Fatalf("register on draining feed: err = %v, want ErrFeedDraining", err)
	}
	// Draining again is a no-op, not an error.
	if err := srv.DrainFeed("cam"); err != nil {
		t.Fatal(err)
	}
	f, _ := srv.feedByName("cam")
	srv.Start()
	waitState(t, f, FeedClosed)
}

// Deleting a feed with live registrations must emit each query's end
// event, carrying the typed "feed_removed" reason, before the result log
// closes — none may be lost to the teardown.
func TestServerRemoveFeedEmitsEndEvents(t *testing.T) {
	p := video.Jackson()
	push := stream.NewPushSource(64, stream.PushBlock)
	srv := New(Config{})
	defer srv.Close()
	if err := srv.CreateFeed(FeedConfig{
		Name: "cam", Profile: p, Source: push,
		Backend: filters.NewODFilter(p, 7, nil),
	}); err != nil {
		t.Fatal(err)
	}
	const nQueries = 3
	regs := make([]*Registration, nQueries)
	for i := range regs {
		var err error
		regs[i], err = srv.Register(parse(t, `SELECT FRAMES FROM cam WHERE COUNT(car) = 1`), Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	finals := make([]Event, nQueries)
	ends := make([]bool, nQueries)
	var wg sync.WaitGroup
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r *Registration) {
			defer wg.Done()
			_, finals[i], ends[i] = drain(r)
		}(i, r)
	}
	for _, fr := range video.NewStream(p, 7).Take(120) {
		if err := push.Publish(fr, nil); err != nil {
			t.Error(err)
		}
	}
	if err := srv.RemoveFeed("cam"); err != nil {
		t.Fatal(err)
	}
	// RemoveFeed returning means every registration finished: the end
	// events are already in their logs, so the consumers complete without
	// further stimulus.
	wg.Wait()
	for i := range regs {
		if !ends[i] {
			t.Fatalf("query %d: end event lost in feed removal", i)
		}
		if finals[i].Reason != EndReasonFeedRemoved {
			t.Fatalf("query %d: end reason %q, want %q", i, finals[i].Reason, EndReasonFeedRemoved)
		}
		if finals[i].Final == nil {
			t.Fatalf("query %d: end event carries no final result", i)
		}
	}
	if m := srv.Metrics(); len(m.Feeds) != 0 {
		t.Fatalf("feed still listed after removal: %+v", m.Feeds)
	}
}

// Feed churn under the race detector: feeds created, drained and deleted
// concurrently with query registration and a live coalescing broker. No
// end event may be lost whichever way a feed goes away, and after the
// dust settles the broker's counters have folded into the retired
// aggregate with no live member left behind.
func TestServerFeedChurnWithCoalescingBroker(t *testing.T) {
	base := video.Jackson()
	tcfg := filters.TrainedConfig{Img: 16, Channels: 8, Seed: 33}
	srv := New(Config{ScanBatch: 2})
	defer srv.Close()
	srv.Start()

	const rounds, feedsPer, queriesPer, nFrames = 4, 3, 2, 48
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for i := 0; i < feedsPer; i++ {
			wg.Add(1)
			go func(round, i int) {
				defer wg.Done()
				name := fmt.Sprintf("cam-%d-%d", round, i)
				clip := video.NewStream(base, uint64(100+round*feedsPer+i)).Take(nFrames)
				if err := srv.CreateFeed(FeedConfig{
					Name: name, Profile: base,
					Source:  &stream.SliceSource{Frames: clip},
					Backend: filters.NewUntrained(filters.OD, base, tcfg, nil),
				}); err != nil {
					t.Error(err)
					return
				}
				regs := make([]*Registration, queriesPer)
				for q := range regs {
					var err error
					regs[q], err = srv.Register(
						parse(t, `SELECT FRAMES FROM `+name+` WHERE COUNT(car) = 1`), Options{})
					if err != nil {
						t.Error(err)
						return
					}
				}
				type outcome struct {
					reason string
					sawEnd bool
				}
				done := make(chan []outcome, 1)
				go func() {
					outs := make([]outcome, queriesPer)
					var cwg sync.WaitGroup
					for q, r := range regs {
						cwg.Add(1)
						go func(q int, r *Registration) {
							defer cwg.Done()
							_, final, sawEnd := drain(r)
							outs[q] = outcome{reason: final.Reason, sawEnd: sawEnd}
						}(q, r)
					}
					cwg.Wait()
					done <- outs
				}()
				var outs []outcome
				okReasons := map[string]bool{"": true}
				switch i % 3 {
				case 0: // bounded clip runs out on its own, then the feed is removed
					outs = <-done
					if err := srv.RemoveFeed(name); err != nil {
						t.Error(err)
					}
				case 1: // drained mid-flight, then removed
					if err := srv.DrainFeed(name); err != nil {
						t.Error(err)
					}
					outs = <-done
					okReasons[EndReasonFeedDrained] = true
					if err := srv.RemoveFeed(name); err != nil {
						t.Error(err)
					}
				default: // removed mid-flight
					if err := srv.RemoveFeed(name); err != nil {
						t.Error(err)
					}
					outs = <-done
					okReasons[EndReasonFeedRemoved] = true
				}
				for q, o := range outs {
					if !o.sawEnd {
						t.Errorf("feed %s query %d: end event lost", name, q)
					}
					if !okReasons[o.reason] {
						t.Errorf("feed %s query %d: unexpected end reason %q", name, q, o.reason)
					}
				}
			}(round, i)
		}
	}
	wg.Wait()

	m := srv.Metrics()
	if len(m.Feeds) != 0 {
		t.Fatalf("feeds left behind after churn: %+v", m.Feeds)
	}
	// Registrations outlive their feed so consumers can still read the
	// logs, but every one must have finished.
	for _, q := range m.Queries {
		if !q.Done {
			t.Fatalf("query %s on %s still running after churn", q.ID, q.Feed)
		}
	}
	if len(m.Coalesce) == 0 {
		t.Fatal("no coalesce group recorded — the broker never saw the churned feeds")
	}
	var frames int64
	for _, g := range m.Coalesce {
		if g.Live != 0 {
			t.Fatalf("group %q still has %d live members after churn", g.Key, g.Live)
		}
		frames += g.Frames
	}
	if frames == 0 {
		t.Fatal("broker counters did not fold into the retired aggregate")
	}
}

// Frames arriving through the push-ingestion bridge — round-tripped
// through the publisher wire codec — must produce results field-identical
// to the same clip decoded from a recorded source.
func TestServerPushIngestMatchesFileDecodedFeed(t *testing.T) {
	p := video.Jackson()
	const n = 600
	frames := video.NewStream(p, 42).Take(n)
	pushed := make([]*video.Frame, n)
	for i, fr := range frames {
		pf, err := encodeWireFrame(fr).frame(p)
		if err != nil {
			t.Fatalf("frame %d did not survive the wire codec: %v", i, err)
		}
		pushed[i] = pf
	}

	push := stream.NewPushSource(32, stream.PushBlock)
	srv := New(Config{})
	defer srv.Close()
	if err := srv.CreateFeed(FeedConfig{
		Name: "jackson", Profile: p, Source: push,
		Backend: filters.NewODFilter(p, 42, nil),
	}); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`,
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`,
		`SELECT FRAMES FROM jackson WHERE COUNT(person) >= 1`,
	}
	regs := make([]*Registration, len(queries))
	for i, src := range queries {
		var err error
		if regs[i], err = srv.Register(parse(t, src), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	go func() {
		for _, fr := range pushed {
			if err := push.Publish(fr, nil); err != nil {
				t.Error(err)
				return
			}
		}
		push.Close()
	}()

	type outcome struct {
		events []Event
		final  Event
		sawEnd bool
	}
	outcomes := make([]outcome, len(regs))
	var wg sync.WaitGroup
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r *Registration) {
			defer wg.Done()
			outcomes[i].events, outcomes[i].final, outcomes[i].sawEnd = drain(r)
		}(i, r)
	}
	wg.Wait()

	for i, src := range queries {
		if !outcomes[i].sawEnd {
			t.Fatalf("query %d: stream closed without an end event", i)
		}
		if outcomes[i].final.Reason != "" {
			t.Fatalf("query %d: natural end carries reason %q", i, outcomes[i].final.Reason)
		}
		plan := query.MustBind(parse(t, src), p)
		eng := &query.Engine{
			Backend:  filters.NewODFilter(p, 42, nil),
			Detector: detect.NewOracle(nil),
			Tol:      query.Tolerances{Count: 1, Location: 1},
		}
		want := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, n)
		if !reflect.DeepEqual(outcomes[i].final.Final, want) {
			t.Fatalf("query %d diverged from the file-decoded path:\n got %+v\nwant %+v",
				i, outcomes[i].final.Final, want)
		}
		if len(outcomes[i].events) != len(want.Matched) {
			t.Fatalf("query %d: %d match events for %d matches", i, len(outcomes[i].events), len(want.Matched))
		}
		for j, ev := range outcomes[i].events {
			if ev.Kind != EventMatch || ev.Seq != want.Matched[j] {
				t.Fatalf("query %d event %d = %+v, want match at %d", i, j, ev, want.Matched[j])
			}
		}
	}
	if got := push.Published(); got != n {
		t.Fatalf("ingest ring admitted %d frames, want %d", got, n)
	}
	if got := push.Dropped(); got != 0 {
		t.Fatalf("block policy dropped %d frames", got)
	}
}

// Shutdown drains every feed: in-flight queries end with the
// "feed_drained" reason and their consumers complete before the server
// closes; the server refuses new feeds afterwards.
func TestServerShutdownDrainsFeeds(t *testing.T) {
	p := video.Jackson()
	push := stream.NewPushSource(64, stream.PushBlock)
	srv := New(Config{})
	if err := srv.CreateFeed(FeedConfig{
		Name: "cam", Profile: p, Source: push,
		Backend: filters.NewODFilter(p, 7, nil),
	}); err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM cam WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	for _, fr := range video.NewStream(p, 7).Take(60) {
		if err := push.Publish(fr, nil); err != nil {
			t.Fatal(err)
		}
	}
	var final Event
	var sawEnd bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, final, sawEnd = drain(reg)
	}()
	srv.Shutdown(10 * time.Second)
	<-done
	if !sawEnd {
		t.Fatal("shutdown lost the query's end event")
	}
	if final.Reason != EndReasonFeedDrained {
		t.Fatalf("end reason %q, want %q", final.Reason, EndReasonFeedDrained)
	}
	if err := srv.AddFeed(FeedConfig{
		Name: "late", Profile: p,
		Source: stream.NewPushSource(8, stream.PushBlock),
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddFeed after Shutdown: err = %v, want ErrClosed", err)
	}
}

// The budgeter weights shares by observed scan rate: unsampled feeds
// split evenly, a dense feed outweighs a sparse one once sampled, a
// newborn feed takes the mean sampled rate, and the EWMA folds new
// samples rather than tracking them raw.
func TestBudgeterWeightsSharesByScanRate(t *testing.T) {
	var dense, sparse atomic.Int64
	b := newBudgeter(8, 0) // tick 0: the test drives sampling by hand
	gd := b.join("detrac", dense.Load)
	gs := b.join("jackson", sparse.Load)
	if gd.capacity() != 4 || gs.capacity() != 4 {
		t.Fatalf("unsampled feeds split %d/%d, want 4/4", gd.capacity(), gs.capacity())
	}

	base := time.Now()
	b.mu.Lock()
	for _, fb := range b.feeds {
		fb.lastAt, fb.lastFrames = base, 0
	}
	b.mu.Unlock()
	dense.Store(900)
	sparse.Store(100)
	b.resampleAt(base.Add(time.Second))
	// Weights 901:101 over 8 workers → 7/1 by largest remainder.
	if gd.capacity() != 7 || gs.capacity() != 1 {
		t.Fatalf("sampled split %d/%d, want 7/1", gd.capacity(), gs.capacity())
	}
	snap := b.snapshot()
	if len(snap) != 2 || snap[0].Feed != "detrac" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if math.Abs(snap[0].RateFPS-900) > 1e-9 || math.Abs(snap[0].Weight-901) > 1e-9 {
		t.Fatalf("detrac rate/weight = %v/%v, want 900/901", snap[0].RateFPS, snap[0].Weight)
	}

	// A newborn feed takes the mean sampled rate (500): between the two.
	var mid atomic.Int64
	gm := b.join("coral", mid.Load)
	if !(gd.capacity() > gm.capacity() && gm.capacity() > gs.capacity()) {
		t.Fatalf("newborn split dense/new/sparse = %d/%d/%d, want strictly ordered",
			gd.capacity(), gm.capacity(), gs.capacity())
	}
	b.leave("coral")

	// EWMA: the dense feed slows to 100 f/s for one second; the rate folds
	// to 0.3*100 + 0.7*900 = 660, it does not snap to the instant rate.
	dense.Store(1000)
	sparse.Store(200)
	b.resampleAt(base.Add(2 * time.Second))
	snap = b.snapshot()
	if math.Abs(snap[0].RateFPS-660) > 1e-9 {
		t.Fatalf("EWMA rate = %v, want 660", snap[0].RateFPS)
	}

	// A feed losing its last query returns its share to the pool.
	b.leave("detrac")
	if gs.capacity() != 8 {
		t.Fatalf("survivor holds %d workers after the dense feed left, want 8", gs.capacity())
	}
	b.stop()
}

// coalesceShare hands a merged cross-feed batch the combined slice of
// the feeds that contributed: total×distinct/live, clamped to [1,
// total], and the whole budget when no feed is live (a flush racing the
// last teardown) or when every live feed contributed.
func TestBudgeterCoalesceShare(t *testing.T) {
	b := newBudgeter(8, 0)
	defer b.stop()
	if got := b.coalesceShare(3); got != 8 {
		t.Fatalf("no live feeds: share = %d, want the whole budget (8)", got)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		b.join(name, nil)
	}
	cases := []struct{ distinct, want int }{
		{0, 2}, // defensive floor: treated as one submitter
		{1, 2}, // 8×1/4
		{2, 4}, // 8×2/4
		{3, 6}, // 8×3/4
		{4, 8}, // every live feed contributed → whole budget
		{9, 8}, // more submitters than live feeds (teardown race) → clamp
	}
	for _, c := range cases {
		if got := b.coalesceShare(c.distinct); got != c.want {
			t.Fatalf("coalesceShare(%d) = %d, want %d", c.distinct, got, c.want)
		}
	}
	// The floor: 1 distinct feed of 16 live still gets one worker.
	tiny := newBudgeter(8, 0)
	defer tiny.stop()
	for i := 0; i < 16; i++ {
		tiny.join(fmt.Sprintf("f%02d", i), nil)
	}
	if got := tiny.coalesceShare(1); got != 1 {
		t.Fatalf("1-of-16 share = %d, want the 1-worker floor", got)
	}
}
