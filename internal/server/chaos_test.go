package server

import (
	"errors"
	"testing"
	"time"

	"vmq/internal/fault"
)

// The chaos loop: kill the server mid-stream and recover it, over and
// over, with sporadic spill write errors injected underneath, while one
// consumer verifies exactly-once delivery across every restart — strictly
// contiguous sequence numbers, no gap events, every event acked as it is
// processed, and the stream's end event eventually observed.
func TestChaosKillRecoverLoop(t *testing.T) {
	if fault.Enabled {
		// Sporadic transient spill write errors: the write-through retry
		// path must absorb them without dropping or duplicating an event.
		if err := fault.Arm("rlog.spill.append=error:after=25:every=31"); err != nil {
			t.Fatal(err)
		}
		defer fault.Reset()
	}

	dir := t.TempDir()
	spec := FeedSpec{Name: "jackson", Profile: "jackson", Source: "sim", MaxFrames: 300}
	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`
	const rounds = 4

	var (
		id     string
		expect int64
		sawEnd bool
	)
	for round := 0; round < rounds && !sawEnd; round++ {
		srv := recoverAt(t, dir, Config{})
		if err := srv.CreateFeedSpec(spec); err != nil && !errors.Is(err, ErrFeedExists) {
			t.Fatalf("round %d: %v", round, err)
		}
		var reg *Registration
		if id == "" {
			var err error
			reg, err = srv.Register(parse(t, src), Options{Spill: true})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			id = reg.ID()
		} else {
			r, ok := srv.Get(id)
			if !ok {
				t.Fatalf("round %d: query %q lost across restart", round, id)
			}
			reg = r
		}
		srv.Start()

		reader := reg.ResultsFrom(expect)
		limit := 60
		if round == rounds-1 {
			limit = 1 << 20 // final round: read to the end event
		}
		for k := 0; k < limit; k++ {
			ev, ok := readEvent(t, reg, reader, 20*time.Second)
			if !ok {
				t.Fatalf("round %d: stream ended at seq %d without an end event", round, expect)
			}
			if ev.Kind == EventGap {
				t.Fatalf("round %d: gap %+v — delivery not exactly-once across restarts", round, ev)
			}
			if ev.EventSeq != expect {
				t.Fatalf("round %d: seq %d, want %d", round, ev.EventSeq, expect)
			}
			reg.Ack(ev.EventSeq)
			expect++
			if ev.Kind == EventEnd {
				sawEnd = true
				break
			}
		}
		reader.Detach()
		if sawEnd {
			srv.Close()
		} else {
			srv.Crash()
		}
	}
	if !sawEnd {
		t.Fatalf("chaos loop never reached the end event (%d events verified)", expect)
	}
	if fault.Enabled && fault.Fired("rlog.spill.append") == 0 {
		t.Fatal("spill failpoint never fired — the loop did not exercise the fault path")
	}
}
