package server

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/stream"
	"vmq/internal/video"
	"vmq/internal/vql"
)

func parse(t *testing.T, src string) *vql.Query {
	t.Helper()
	q, err := vql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// drain collects a registration's events until the stream closes,
// returning the match/window events, the final event, and whether an end
// event arrived. It is goroutine-safe: callers assert on the outcome.
func drain(r *Registration) (events []Event, final Event, sawEnd bool) {
	for ev := range r.Results() {
		if ev.Kind == EventEnd {
			final = ev
			sawEnd = true
			continue
		}
		events = append(events, ev)
	}
	return events, final, sawEnd
}

// clipFeed builds a bounded feed over a recorded clip with a
// deterministic backend, and returns the clip for standalone reference
// runs.
func clipFeed(p video.Profile, seed uint64, n int) (FeedConfig, []*video.Frame) {
	frames := video.NewStream(p, seed).Take(n)
	return FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: filters.NewODFilter(p, seed, nil),
	}, frames
}

// Every query registered on a shared feed must produce results
// field-identical to running it standalone on the pipelined executor over
// the same frames — the acceptance bar for the shared-scan scheduler.
func TestServerResultsMatchStandaloneRunStream(t *testing.T) {
	p := video.Jackson()
	const n = 600
	cfg, frames := clipFeed(p, 42, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	queries := []string{
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`,
		`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1 AND car LEFT OF person`,
		`SELECT FRAMES FROM jackson WHERE COUNT(person) >= 1`,
	}
	regs := make([]*Registration, len(queries))
	for i, src := range queries {
		var err error
		if regs[i], err = srv.Register(parse(t, src), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()

	type outcome struct {
		events []Event
		final  Event
		sawEnd bool
	}
	outcomes := make([]outcome, len(regs))
	var wg sync.WaitGroup
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r *Registration) {
			defer wg.Done()
			outcomes[i].events, outcomes[i].final, outcomes[i].sawEnd = drain(r)
		}(i, r)
	}
	wg.Wait()
	for i := range outcomes {
		if !outcomes[i].sawEnd {
			t.Fatalf("query %d: stream closed without an end event", i)
		}
	}

	for i, src := range queries {
		plan := query.MustBind(parse(t, src), p)
		eng := &query.Engine{
			Backend:  filters.NewODFilter(p, 42, nil),
			Detector: detect.NewOracle(nil),
			Tol:      query.Tolerances{Count: 1, Location: 1},
		}
		want := eng.RunStream(plan, &stream.SliceSource{Frames: frames}, n)
		got := outcomes[i].final.Final
		if got == nil {
			t.Fatalf("query %d: no final result", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d diverged from standalone RunStream:\n got %+v\nwant %+v", i, got, want)
		}
		// Match events reconcile with the final result, in order.
		if len(outcomes[i].events) != len(want.Matched) {
			t.Fatalf("query %d: %d match events for %d matches", i, len(outcomes[i].events), len(want.Matched))
		}
		for j, ev := range outcomes[i].events {
			if ev.Kind != EventMatch || ev.Seq != want.Matched[j] {
				t.Fatalf("query %d event %d = %+v, want match at %d", i, j, ev, want.Matched[j])
			}
			if ev.FrameIndex != frames[ev.Seq].Index {
				t.Fatalf("query %d event %d: frame index %d, want %d", i, j, ev.FrameIndex, frames[ev.Seq].Index)
			}
		}
	}
}

// countingBackend counts true evaluations behind the shared memo.
type countingBackend struct {
	filters.Backend
	mu    sync.Mutex
	calls int
}

func (c *countingBackend) Evaluate(f *video.Frame) *filters.Output {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Backend.Evaluate(f)
}

func (c *countingBackend) ConcurrentSafe() bool { return filters.ConcurrentSafe(c.Backend) }

func (c *countingBackend) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// N queries sharing one feed and one backend must cost ~one filter scan,
// not N: the backend is invoked once per frame (standalone execution
// would invoke it N times per frame).
func TestServerSharedScanEvaluatesBackendOncePerFrame(t *testing.T) {
	p := video.Jackson()
	const n, nQueries = 400, 6
	counting := &countingBackend{Backend: filters.NewODFilter(p, 7, nil)}
	frames := video.NewStream(p, 7).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name:    p.Name,
		Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: counting,
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	regs := make([]*Registration, nQueries)
	for i := range regs {
		var err error
		regs[i], err = srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	var wg sync.WaitGroup
	for _, r := range regs {
		wg.Add(1)
		go func(r *Registration) {
			defer wg.Done()
			drain(r)
		}(r)
	}
	wg.Wait()

	if got := counting.Calls(); got != n {
		t.Fatalf("backend evaluated %d times for %d frames x %d queries — shared scan broken", got, n, nQueries)
	}
	// The memo's own accounting agrees: the micro-batching scan stage
	// takes the one miss per frame (filling the memo chunk-at-a-time
	// before dispatch), so every query lookup is a hit.
	m := srv.Metrics()
	if len(m.Feeds) != 1 || len(m.Feeds[0].SharedFilters) != 1 {
		t.Fatalf("metrics shape: %+v", m.Feeds)
	}
	sf := m.Feeds[0].SharedFilters[0]
	if sf.Misses != n || sf.Hits != int64(nQueries*n) {
		t.Fatalf("shared filter counters = %+v, want %d misses / %d hits", sf, n, nQueries*n)
	}
	fm := m.Feeds[0]
	if fm.ScanBatches == 0 || fm.ScanAvgBatch <= 1 {
		t.Fatalf("scan batcher idle on a backlogged feed: %d batches, avg %.1f", fm.ScanBatches, fm.ScanAvgBatch)
	}
	if fm.SharedDetector == nil {
		t.Fatal("oracle feed must report shared detector metrics")
	}
}

// Unregistering one query ends its stream promptly without disturbing the
// others, even on an unbounded live feed.
func TestServerUnregisterOnLiveFeed(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(LiveFeed(p, 11)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	keep, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	quit, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // quitter consumes until its stream closes
		defer wg.Done()
		for range quit.Results() {
		}
	}()
	keptAfter := 0
	go func() {
		defer wg.Done()
		seen := 0
		for range keep.Results() {
			seen++
			if seen == 25 {
				if err := srv.Unregister(quit.ID()); err != nil {
					t.Errorf("unregister: %v", err)
				}
			}
			if seen > 25 {
				keptAfter++
			}
			if seen == 100 {
				if err := srv.Unregister(keep.ID()); err != nil {
					t.Errorf("unregister keep: %v", err)
				}
				return
			}
		}
	}()
	wg.Wait()
	if keptAfter < 70 {
		t.Fatalf("surviving query saw only %d events after the unregister", keptAfter)
	}
	if _, ok := srv.Get(quit.ID()); ok {
		t.Fatal("unregistered query still listed")
	}
}

// A windowed aggregate query served continuously produces the same
// sequence of window estimates as the batch RunWindows path over the same
// frames.
func TestServerWindowQueryMatchesRunWindows(t *testing.T) {
	p := video.Jackson()
	const n = 900 // 4.5 windows of 200
	cfg, frames := clipFeed(p, 23, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	src := `SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) >= 1 WINDOW HOPPING (SIZE 200, ADVANCE BY 200)`
	reg, err := srv.Register(parse(t, src), Options{SampleSize: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	events, _, sawEnd := drain(reg)
	if !sawEnd {
		t.Fatal("window stream closed without an end event")
	}

	plan := query.MustBind(parse(t, src), p)
	want, err := query.RunWindows(plan, &stream.SliceSource{Frames: frames},
		filters.NewODFilter(p, 23, nil), detect.NewOracle(nil), 4,
		query.AggregateConfig{SampleSize: 50, Sampler: stream.NewUniformSampler(5), MuFromFullWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("served %d windows, batch path produced %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev.Kind != EventWindow || ev.WindowStart != i*200 {
			t.Fatalf("event %d = kind %s start %d", i, ev.Kind, ev.WindowStart)
		}
		if !reflect.DeepEqual(ev.Window, want[i]) {
			t.Fatalf("window %d estimate diverged from RunWindows:\n got %+v\nwant %+v", i, ev.Window, want[i])
		}
	}
}

// The metrics snapshot reflects a finished bounded run: frame counts,
// selectivity, the online recall proxy, and the per-feed dispatch totals.
func TestServerMetricsSnapshot(t *testing.T) {
	p := video.Jackson()
	const n = 300
	cfg, _ := clipFeed(p, 31, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	if _, _, ok := drain(reg); !ok {
		t.Fatal("stream closed without an end event")
	}

	m := srv.Metrics()
	if len(m.Feeds) != 1 || m.Feeds[0].Frames != n {
		t.Fatalf("feed metrics = %+v", m.Feeds)
	}
	if len(m.Queries) != 1 {
		t.Fatalf("query metrics = %+v", m.Queries)
	}
	q := m.Queries[0]
	if q.Frames != n || !q.Done {
		t.Fatalf("query metrics = %+v", q)
	}
	if q.Selectivity <= 0 || q.Selectivity > 1 {
		t.Fatalf("selectivity = %v", q.Selectivity)
	}
	if q.Recall <= 0 || q.Recall > 1 {
		t.Fatalf("recall proxy = %v", q.Recall)
	}
	if q.Matches == 0 || q.DetectorCalls < q.Matches {
		t.Fatalf("matches/detector calls = %d/%d", q.Matches, q.DetectorCalls)
	}
	if q.VirtualTimeMs <= 0 {
		t.Fatalf("virtual time = %v", q.VirtualTimeMs)
	}
}

// Registration-time validation: unknown feeds, aggregates without a
// window and duplicate feeds are rejected with errors, not panics; a
// feed named differently from its profile binds queries against a
// renamed profile copy, so FROM resolves on the feed name.
func TestServerValidation(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(LiveFeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddFeed(LiveFeed(p, 2)); err == nil {
		t.Fatal("duplicate feed accepted")
	}
	if err := srv.AddFeed(FeedConfig{Name: "other", Profile: p, Source: &stream.SliceSource{}}); err != nil {
		t.Fatalf("custom-named feed over the jackson profile rejected: %v", err)
	}
	if r, err := srv.Register(parse(t, `SELECT FRAMES FROM other WHERE COUNT(car) = 1`), Options{}); err != nil {
		t.Fatalf("FROM <feed-name> did not resolve on a custom-named feed: %v", err)
	} else {
		go drain(r)
	}
	if err := srv.AddFeed(FeedConfig{Name: "noprofile", Source: &stream.SliceSource{}}); err == nil {
		t.Fatal("feed without a profile accepted")
	}
	if _, err := srv.Register(parse(t, `SELECT FRAMES FROM detrac WHERE COUNT(car) = 1`), Options{}); err == nil {
		t.Fatal("unknown feed accepted")
	}
	if _, err := srv.Register(parse(t, `SELECT COUNT(FRAMES) FROM jackson WHERE COUNT(car) = 1`), Options{}); err == nil {
		t.Fatal("windowless continuous aggregate accepted")
	}
	if _, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(tank) = 1`), Options{}); err == nil {
		t.Fatal("unbindable query accepted")
	}
	if err := srv.Unregister("q999"); err == nil {
		t.Fatal("unknown unregister accepted")
	}
}

// A query with a frame budget ends itself without stopping the feed.
func TestServerQueryFrameBudget(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(LiveFeed(p, 17)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	budget, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{MaxFrames: 50})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	_, final, sawEnd := drain(budget)
	if !sawEnd {
		t.Fatal("budgeted stream closed without an end event")
	}
	if final.Final == nil || final.Final.FramesTotal != 50 {
		t.Fatalf("budgeted query processed %+v, want 50 frames", final.Final)
	}
}

// Unregister returns the typed ErrQueryNotFound for ids with no
// registration behind them, and — the regression this pins — a query
// whose feed already ended unregisters cleanly instead of racing the
// feed's teardown: the registration is still found, its runner has
// already released its resources, and only a second unregister reports
// not-found.
func TestServerUnregisterTypedNotFound(t *testing.T) {
	p := video.Jackson()
	const n = 40
	cfg, _ := clipFeed(p, 37, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	// Drain to completion: the bounded feed ends and the runner retires
	// on its own.
	if _, _, ok := drain(reg); !ok {
		t.Fatal("no end event")
	}
	<-reg.Done()

	// The feed is done and the runner finished, yet the registration is
	// still addressable: unregistering it succeeds.
	if err := srv.Unregister(reg.ID()); err != nil {
		t.Fatalf("unregister after feed end: %v", err)
	}
	// Now it is gone: the second attempt reports the typed error.
	if err := srv.Unregister(reg.ID()); !errors.Is(err, ErrQueryNotFound) {
		t.Fatalf("double unregister error = %v, want ErrQueryNotFound", err)
	}
	// Never-registered ids report the same typed error.
	if err := srv.Unregister("q999"); !errors.Is(err, ErrQueryNotFound) {
		t.Fatalf("unknown id error = %v, want ErrQueryNotFound", err)
	}
}

// A result-buffer request beyond MaxResultBuffer is rejected before any
// allocation: the field arrives from the unauthenticated HTTP register
// body, so client input must not size the ring.
func TestServerRejectsOversizedResultBuffer(t *testing.T) {
	p := video.Jackson()
	cfg, _ := clipFeed(p, 37, 8)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`),
		Options{ResultBuffer: MaxResultBuffer + 1})
	if err == nil {
		t.Fatal("oversized result buffer accepted")
	}
	// Exactly at the cap registration still works.
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`),
		Options{ResultBuffer: MaxResultBuffer})
	if err != nil {
		t.Fatal(err)
	}
	_ = reg
}

// Finished registrations are retained for inspection only up to a cap, so
// a long-running server with query churn keeps a bounded registry.
func TestServerBoundedFinishedRetention(t *testing.T) {
	p := video.Jackson()
	srv := New(Config{})
	if err := srv.AddFeed(LiveFeed(p, 29)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	const churn = retainFinished + 8
	for i := 0; i < churn; i++ {
		reg, err := srv.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{MaxFrames: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := drain(reg); !ok {
			t.Fatalf("query %d ended without an end event", i)
		}
	}
	m := srv.Metrics()
	if len(m.Queries) > retainFinished {
		t.Fatalf("registry retains %d finished queries, cap is %d", len(m.Queries), retainFinished)
	}
	if len(m.Queries) < retainFinished/2 {
		t.Fatalf("registry kept only %d recent queries", len(m.Queries))
	}
	// The oldest finished registration was evicted from the registry;
	// unregistering it now reports the typed not-found error rather than
	// racing any teardown state.
	if err := srv.Unregister("q1"); !errors.Is(err, ErrQueryNotFound) {
		t.Fatalf("evicted id error = %v, want ErrQueryNotFound", err)
	}
}
