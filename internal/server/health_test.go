package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"
)

// The stall watchdog: a running feed with subscribers waiting but no
// frame dispatched within Config.StallAfter flags stalled on its status
// row and in /metrics, and /healthz degrades to 503 naming it. Draining
// the feed clears the verdict.
func TestServerHealthzStallWatchdog(t *testing.T) {
	srv := New(Config{StallAfter: 50 * time.Millisecond})
	if err := srv.CreateFeedSpec(FeedSpec{Name: "cam", Profile: "jackson"}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	getHealth := func() (int, healthResponse) {
		t.Helper()
		resp, err := http.Get(apiBase(ts) + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, hr
	}

	// An idle push feed with no subscribers is merely quiet, not stalled.
	if code, hr := getHealth(); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz with no subscribers = %d %+v, want 200 ok", code, hr)
	}

	// A query parks a subscriber on the feed; no publisher ever sends a
	// frame, so the watchdog must trip once the window passes.
	reg, err := srv.Register(parse(t, `SELECT FRAMES FROM cam WHERE COUNT(car) >= 0`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	go drain(reg)

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, hr := getHealth()
		if code == http.StatusServiceUnavailable && hr.Status == "degraded" && slices.Contains(hr.Stalled, "cam") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded: last %d %+v", code, hr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The feed listing and metrics agree with the watchdog.
	resp, err := http.Get(apiBase(ts) + "/feeds")
	if err != nil {
		t.Fatal(err)
	}
	var rows []feedStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 1 || !rows[0].Stalled {
		t.Fatalf("feed listing = %+v, want cam stalled", rows)
	}
	var checked bool
	for _, fm := range srv.Metrics().Feeds {
		if fm.Name != "cam" {
			continue
		}
		checked = true
		if !fm.Stalled || fm.LastFrameUnixMs != 0 {
			t.Fatalf("feed metrics = %+v, want stalled with no frame ever dispatched", fm)
		}
	}
	if !checked {
		t.Fatal("cam missing from metrics")
	}

	// Draining ends the feed (and the parked query): no longer stalled.
	if err := srv.DrainFeed("cam"); err != nil {
		t.Fatal(err)
	}
	for {
		code, hr := getHealth()
		if code == http.StatusOK && hr.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck degraded after drain: %d %+v", code, hr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
