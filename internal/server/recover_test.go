package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmq/internal/rlog"
)

// recoverAt builds a journaling server over dir.
func recoverAt(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.StateDir = dir
	srv, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// readEvent reads one event from a cursor with a timeout, so a recovery
// bug that stalls the stream fails the test instead of hanging it.
func readEvent(t *testing.T, r *Registration, reader *rlog.Reader[Event], timeout time.Duration) (Event, bool) {
	t.Helper()
	abort := make(chan struct{})
	tm := time.AfterFunc(timeout, func() { close(abort) })
	defer tm.Stop()
	it, ok := reader.Next(abort)
	if !ok {
		return Event{}, false
	}
	return r.itemEvent(it), true
}

// The kill-restart acceptance bar: a consumer that durably processed
// (acked) through sequence N before the process was killed resumes at
// N+1 after Recover and reads a stream gap-free and byte-identical to
// an uninterrupted run.
func TestServerRecoverResumeByteIdentical(t *testing.T) {
	const (
		n          = 120 // feed length: 120 match events + 1 end event
		ackThrough = 39  // the consumer durably processed 0..39
	)
	spec := FeedSpec{Name: "jackson", Profile: "jackson", Source: "sim", MaxFrames: n}
	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`

	// Reference: the uninterrupted run.
	ref := func() []Event {
		srv := recoverAt(t, t.TempDir(), Config{})
		defer srv.Close()
		if err := srv.CreateFeedSpec(spec); err != nil {
			t.Fatal(err)
		}
		reg, err := srv.Register(parse(t, src), Options{Spill: true})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		evs, final, sawEnd := drain(reg)
		if !sawEnd {
			t.Fatal("reference run: no end event")
		}
		return append(evs, final)
	}()
	if len(ref) != n+1 {
		t.Fatalf("reference run produced %d events, want %d", len(ref), n+1)
	}

	// The run that dies: consume the stream, ack through ackThrough, kill.
	dir := t.TempDir()
	srv := recoverAt(t, dir, Config{})
	if err := srv.CreateFeedSpec(spec); err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(parse(t, src), Options{Spill: true})
	if err != nil {
		t.Fatal(err)
	}
	id := reg.ID()
	srv.Start()
	if evs, _, sawEnd := drain(reg); !sawEnd || len(evs) != n {
		t.Fatalf("pre-crash run: %d events, end=%v", len(evs), sawEnd)
	}
	if got := reg.Ack(ackThrough); got != ackThrough {
		t.Fatalf("ack = %d, want %d", got, ackThrough)
	}
	srv.Crash()

	// Restart: the query recovers finished with its history durable, and
	// the consumer resumes exactly where its acks left off.
	srv2 := recoverAt(t, dir, Config{})
	defer srv2.Close()
	r2, ok := srv2.Get(id)
	if !ok {
		t.Fatalf("query %s not recovered", id)
	}
	reader := r2.ResultsFrom(ackThrough + 1)
	defer reader.Detach()
	i := ackThrough + 1
	for {
		it, ok := reader.Next(neverBlock)
		if !ok {
			break
		}
		ev := r2.itemEvent(it)
		if ev.Kind == EventGap {
			t.Fatalf("gap on resume: %+v", ev)
		}
		if i > n {
			t.Fatalf("stream overran: unexpected event %+v", ev)
		}
		if int(ev.EventSeq) != i {
			t.Fatalf("resumed seq = %d, want %d", ev.EventSeq, i)
		}
		want, _ := json.Marshal(ref[i])
		got, _ := json.Marshal(ev)
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d differs after restart:\n got %s\nwant %s", i, got, want)
		}
		i++
	}
	if i != n+1 {
		t.Fatalf("resumed consumer read through seq %d, want %d (end event included)", i-1, n)
	}

	// The recovered row reports itself: finished, recovered, acks intact.
	var found bool
	for _, qm := range srv2.Metrics().Queries {
		if qm.ID != id {
			continue
		}
		found = true
		if !qm.Done || !qm.Recovered {
			t.Fatalf("recovered row: done=%v recovered=%v, want both", qm.Done, qm.Recovered)
		}
		if qm.Acked != ackThrough {
			t.Fatalf("recovered acked = %d, want %d", qm.Acked, ackThrough)
		}
	}
	if !found {
		t.Fatalf("query %s missing from metrics after recovery", id)
	}
}

// A crash with the producer mid-stream: after Recover the query
// re-registers live under its original id, the durable prefix is
// redelivered byte-identical, and the sequence continues into freshly
// produced events without a gap.
func TestServerRecoverMidStreamCrash(t *testing.T) {
	const (
		readBefore = 30 // events consumed before the kill
		ackThrough = 19 // durably processed before the kill
	)
	dir := t.TempDir()
	spec := FeedSpec{Name: "jackson", Profile: "jackson", Source: "sim"} // unbounded
	src := `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`

	srv := recoverAt(t, dir, Config{})
	if err := srv.CreateFeedSpec(spec); err != nil {
		t.Fatal(err)
	}
	reg, err := srv.Register(parse(t, src), Options{Spill: true})
	if err != nil {
		t.Fatal(err)
	}
	id := reg.ID()
	srv.Start()
	reader := reg.ResultsFrom(0)
	seen := make([]Event, 0, readBefore)
	for len(seen) < readBefore {
		ev, ok := readEvent(t, reg, reader, 10*time.Second)
		if !ok {
			t.Fatalf("stream ended after %d events", len(seen))
		}
		if ev.Kind == EventGap {
			t.Fatalf("gap before crash: %+v", ev)
		}
		seen = append(seen, ev)
	}
	reader.Detach()
	reg.Ack(ackThrough)
	srv.Crash()

	srv2 := recoverAt(t, dir, Config{})
	r2, ok := srv2.Get(id)
	if !ok {
		t.Fatal("query not recovered")
	}
	if !r2.recovered {
		t.Fatal("recovered registration not marked recovered")
	}
	srv2.Start()
	reader2 := r2.ResultsFrom(ackThrough + 1)
	// The durable overlap redelivers byte-identical events.
	for i := ackThrough + 1; i < readBefore; i++ {
		ev, ok := readEvent(t, r2, reader2, 10*time.Second)
		if !ok {
			t.Fatalf("stream ended at seq %d", i)
		}
		if ev.Kind == EventGap {
			t.Fatalf("gap in recovered history: %+v", ev)
		}
		want, _ := json.Marshal(seen[i])
		got, _ := json.Marshal(ev)
		if !bytes.Equal(got, want) {
			t.Fatalf("redelivered event %d differs:\n got %s\nwant %s", i, got, want)
		}
	}
	// And the stream keeps going: the restarted runner extends the same
	// sequence with live events, no gap at the durable/live boundary.
	expect := int64(readBefore)
	for k := 0; k < 50; k++ {
		ev, ok := readEvent(t, r2, reader2, 10*time.Second)
		if !ok {
			t.Fatalf("no live events after recovery (at seq %d)", expect)
		}
		if ev.Kind == EventGap {
			t.Fatalf("gap across the durable/live boundary: %+v", ev)
		}
		if ev.EventSeq != expect {
			t.Fatalf("live seq = %d, want %d", ev.EventSeq, expect)
		}
		expect++
	}
	reader2.Detach()
	srv2.Close()
}

// A feed drained before the crash restarts drained: un-draining on
// restart would silently resurrect ingestion the operator shut down.
func TestServerRecoverDrainedFeedStaysDrained(t *testing.T) {
	dir := t.TempDir()
	srv := recoverAt(t, dir, Config{})
	if err := srv.CreateFeedSpec(FeedSpec{Name: "jackson", Profile: "jackson", Source: "sim"}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	if err := srv.DrainFeed("jackson"); err != nil {
		t.Fatal(err)
	}
	srv.Crash()

	srv2 := recoverAt(t, dir, Config{})
	defer srv2.Close()
	if _, err := srv2.Register(parse(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`), Options{}); !errors.Is(err, ErrFeedDraining) {
		t.Fatalf("register on recovered drained feed = %v, want ErrFeedDraining", err)
	}
}

// A spill directory no journalled query claims — the residue of a crash
// between id reservation and the register record — is swept on recovery;
// directories outside the server's naming scheme are left alone.
func TestServerRecoverSweepsOrphanSpills(t *testing.T) {
	dir := t.TempDir()
	recoverAt(t, dir, Config{}).Close()

	orphan := filepath.Join(dir, "spill", "q9")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "seg-0.ndjson"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "spill", "not-a-query")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}

	srv := recoverAt(t, dir, Config{})
	defer srv.Close()
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan spill dir not swept: %v", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("non-server directory swept: %v", err)
	}
}
