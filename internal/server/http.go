package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"vmq/internal/rlog"
	"vmq/internal/vql"
)

// Handler returns the server's HTTP API. The canonical surface lives
// under /v1:
//
//	POST   /v1/queries              register a query (VQL text in, id out)
//	GET    /v1/queries              list registrations with delivery telemetry
//	GET    /v1/queries/{id}         one registration's status row
//	GET    /v1/queries/{id}/results stream results as NDJSON until the query
//	                                ends (?from=<seq> resumes from a result-log
//	                                sequence; ?ack=<seq> acknowledges processed
//	                                events in the same request; a gap event
//	                                reports any range evicted before the
//	                                consumer got there). With a WebSocket
//	                                upgrade the same endpoint streams events as
//	                                text messages and reads {"ack":<seq>}
//	                                messages back — in-band acknowledgement.
//	POST   /v1/queries/{id}/ack     {"seq":N} acknowledge through sequence N
//	GET    /v1/queries/{id}/history page spilled/retained history without a
//	                                stream (?from=<seq>&limit=<n>, answers
//	                                events plus next_from)
//	DELETE /v1/queries/{id}         unregister
//	POST   /v1/feeds                create a feed at runtime (push or sim)
//	GET    /v1/feeds                list feeds with lifecycle state
//	POST   /v1/feeds/{name}/drain   drain gracefully (queries end with events)
//	DELETE /v1/feeds/{name}         drain, wait for end events, remove
//	POST   /v1/feeds/{name}/frames  publish NDJSON frames into a push feed
//	GET    /v1/feeds/{name}/publish WebSocket publisher bridge
//	GET    /v1/metrics              server telemetry snapshot
//
// Errors are a uniform JSON envelope {"error":{"code":"…","message":"…"}}
// with stable codes (feed_busy, feed_draining, feed_not_found,
// query_not_found, feed_exists, buffer_too_large, invalid_query,
// unknown_policy, bad_request, not_push_feed, server_closed, internal).
//
// The original unversioned paths remain as deprecated aliases of their
// /v1 successors: same handlers and bodies, plus a "Deprecation: true"
// header and a Link to the successor. New endpoints exist only under
// /v1.
//
// POST /v1/queries accepts either a raw VQL statement (text/plain) or a
// JSON body {"query": "...", "count_tolerance": n, "location_tolerance":
// n, "max_frames": n, "samples": n, "seed": n, "policy": "block" |
// "drop-oldest" | "sample-under-pressure", "result_buffer": n, "spill":
// bool}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern string // method + path, without the version prefix
		handler http.HandlerFunc
		legacy  bool // also served unversioned, as a deprecated alias
	}{
		{"POST /queries", s.handleRegister, true},
		{"GET /queries", s.handleList, true},
		{"GET /queries/{id}", s.handleQueryStatus, false},
		{"GET /queries/{id}/results", s.handleResults, true},
		{"POST /queries/{id}/ack", s.handleAck, false},
		{"GET /queries/{id}/history", s.handleHistory, false},
		{"DELETE /queries/{id}", s.handleUnregister, true},
		{"POST /feeds", s.handleCreateFeed, true},
		{"GET /feeds", s.handleListFeeds, true},
		{"POST /feeds/{name}/drain", s.handleDrainFeed, true},
		{"DELETE /feeds/{name}", s.handleRemoveFeed, true},
		{"POST /feeds/{name}/frames", s.handlePublishFrames, true},
		{"GET /feeds/{name}/publish", s.handlePublishWS, true},
		{"GET /metrics", s.handleMetrics, true},
		{"GET /healthz", s.handleHealthz, false},
	}
	for _, rt := range routes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		mux.HandleFunc(method+" /v1"+path, rt.handler)
		if rt.legacy {
			mux.HandleFunc(rt.pattern, deprecatedAlias(rt.handler))
		}
	}
	return mux
}

// deprecatedAlias serves a legacy unversioned route with the canonical
// handler, marking the response so clients migrate: Deprecation (RFC
// 9745) plus a Link to the /v1 successor, which serves the same bodies.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// apiError is the uniform error envelope every endpoint answers with.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	// Code is a stable, machine-matchable identifier; Message the
	// human-readable detail (not stable).
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError writes the typed error envelope.
func httpError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: apiErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// errorStatus maps the registry's typed errors onto stable status/code
// pairs — the single place the API's error vocabulary is defined.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueryNotFound):
		return http.StatusNotFound, "query_not_found"
	case errors.Is(err, ErrFeedNotFound):
		return http.StatusNotFound, "feed_not_found"
	case errors.Is(err, ErrFeedBusy):
		return http.StatusTooManyRequests, "feed_busy"
	case errors.Is(err, ErrFeedDraining):
		return http.StatusConflict, "feed_draining"
	case errors.Is(err, ErrFeedExists):
		return http.StatusConflict, "feed_exists"
	case errors.Is(err, ErrBufferTooLarge):
		return http.StatusUnprocessableEntity, "buffer_too_large"
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "server_closed"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// healthResponse answers GET /v1/healthz.
type healthResponse struct {
	// Status is "ok" while every running feed with subscribers pumped a
	// frame within the watchdog window, "degraded" otherwise, and
	// "recovering" while the server is replaying its manifest and not
	// yet serving (readiness, distinct from liveness).
	Status string `json:"status"`
	// Stalled names the feeds the watchdog flagged.
	Stalled []string `json:"stalled,omitempty"`
}

// handleHealthz is the liveness/readiness probe: 200 {"status":"ok"}
// while no feed is stalled, 503 {"status":"degraded","stalled":[...]}
// when the watchdog flags one — a feed running with subscribers waiting
// yet pumping no frames within Config.StallAfter — and 503
// {"status":"recovering"} between Recover and Start, so a router never
// routes new queries to a shard still replaying its manifest.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(healthResponse{Status: "recovering"})
		return
	}
	s.mu.Lock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	resp := healthResponse{Status: "ok"}
	for _, f := range feeds {
		if _, stalled := f.stalledNow(s.cfg.StallAfter); stalled {
			resp.Stalled = append(resp.Stalled, f.name)
		}
	}
	status := http.StatusOK
	if len(resp.Stalled) > 0 {
		sort.Strings(resp.Stalled)
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// registerRequest is the JSON form of POST /v1/queries.
type registerRequest struct {
	Query             string `json:"query"`
	CountTolerance    *int   `json:"count_tolerance,omitempty"`
	LocationTolerance *int   `json:"location_tolerance,omitempty"`
	MaxFrames         int    `json:"max_frames,omitempty"`
	Samples           int    `json:"samples,omitempty"`
	Seed              uint64 `json:"seed,omitempty"`
	// Policy selects the delivery policy ("block", "drop-oldest",
	// "sample-under-pressure"); empty keeps the server default.
	Policy string `json:"policy,omitempty"`
	// ResultBuffer overrides the result-log ring capacity (events).
	ResultBuffer int `json:"result_buffer,omitempty"`
	// Spill attaches a server-managed on-disk spill so history beyond
	// the ring stays replayable (results resume, history paging).
	Spill bool `json:"spill,omitempty"`
}

// registerResponse answers POST /v1/queries.
type registerResponse struct {
	ID     string `json:"id"`
	Feed   string `json:"feed"`
	Query  string `json:"query"` // canonical rendering
	Policy string `json:"policy"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	req := registerRequest{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "decode request: %v", err)
			return
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, "invalid_query", "empty query")
		return
	}
	q, err := vql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_query", "parse: %v", err)
		return
	}
	opt := Options{
		MaxFrames: req.MaxFrames, SampleSize: req.Samples, Seed: req.Seed,
		ResultBuffer: req.ResultBuffer, Spill: req.Spill,
	}
	if req.Policy != "" {
		pol, ok := rlog.ParsePolicy(req.Policy)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown_policy", "unknown delivery policy %q", req.Policy)
			return
		}
		opt.Policy = pol
	}
	if req.CountTolerance != nil || req.LocationTolerance != nil {
		tol := *s.cfg.Tol
		if req.CountTolerance != nil {
			tol.Count = *req.CountTolerance
		}
		if req.LocationTolerance != nil {
			tol.Location = *req.LocationTolerance
		}
		opt.Tol = &tol
	}
	reg, err := s.Register(q, opt)
	if err != nil {
		status, code := errorStatus(err)
		switch code {
		case "internal":
			// Register's untyped rejections are semantic query errors
			// (window clauses, aggregate shapes): the server understood
			// the request and cannot act on it.
			status, code = http.StatusUnprocessableEntity, "invalid_query"
		case "feed_not_found":
			// A FROM clause naming an absent feed is the same class —
			// 422 on registration, unlike feed lifecycle lookups.
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, code, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(registerResponse{
		ID: reg.ID(), Feed: reg.Feed(), Query: reg.Query().String(),
		Policy: string(reg.Log().Policy()),
	})
}

// handleList answers GET /v1/queries: every registration's status row —
// feed, canonical query, delivery policy and the result-log telemetry
// (sequence high-water mark, acked floor, lag, drops) a consumer needs
// to decide where to resume.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	regs := make([]*Registration, 0, len(s.regs))
	for _, reg := range s.regs {
		regs = append(regs, reg)
	}
	s.mu.Unlock()
	out := make([]QueryMetrics, 0, len(regs))
	for _, reg := range regs {
		out = append(out, reg.metricsRow())
	}
	sort.Slice(out, func(a, b int) bool { return lessID(out[a].ID, out[b].ID) })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleQueryStatus answers GET /v1/queries/{id} with the same row the
// listing gives, for one registration.
func (s *Server) handleQueryStatus(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "query_not_found", "%v: %q", ErrQueryNotFound, r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reg.metricsRow())
}

func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b) // q2 < q10
	}
	return a < b
}

// queryParamSeq parses an optional int64 query parameter, answering the
// error envelope itself on a malformed value.
func queryParamSeq(w http.ResponseWriter, r *http.Request, name string, def int64) (int64, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "bad %s=%q: %v", name, raw, err)
		return 0, false
	}
	return v, true
}

// handleResults streams the query's events through its own cursor over
// the registration's result log: newline-delimited JSON by default, or
// — when the client asks for a WebSocket upgrade — one text message per
// event with in-band {"ack":<seq>} messages read back from the client.
// The connection stays open until the query ends, is unregistered, or
// the client goes away; each event is flushed as it happens.
//
// ?from=<seq> resumes from a result-log sequence number (each event
// carries its own as event_seq): a consumer that disconnected reconnects
// with from set to one past the last event it processed and sees a
// gap-free continuation — or, when retention moved past that point, one
// gap event reporting exactly the dropped range. Without from the stream
// replays from the oldest retained event. ?ack=<seq> acknowledges every
// event through seq before the stream attaches — the reconnect path for
// exactly-once consumers ("I durably processed through N, resume at
// N+1"). Multiple consumers may stream one query concurrently, each on
// its own cursor.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "query_not_found", "%v: %q", ErrQueryNotFound, r.PathValue("id"))
		return
	}
	from, ok := queryParamSeq(w, r, "from", 0)
	if !ok {
		return
	}
	if ack, okAck := queryParamSeq(w, r, "ack", -1); !okAck {
		return
	} else if ack >= 0 {
		reg.Ack(ack)
	}
	if isWSUpgrade(r) {
		s.serveResultsWS(w, r, reg, from)
		return
	}
	reader := reg.ResultsFrom(from)
	defer reader.Detach()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		it, ok := reader.Next(r.Context().Done())
		if !ok {
			return
		}
		if err := enc.Encode(reg.itemEvent(it)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// ackRequest is the JSON body of POST /v1/queries/{id}/ack.
type ackRequest struct {
	Seq int64 `json:"seq"`
}

// handleAck records an out-of-band acknowledgement: the consumer
// declares every event through seq durably processed, and the query's
// retention floor follows. Answers the highest acknowledged sequence
// (acks are monotone and clamped to assigned sequences, so a stale or
// overshooting ack is safe).
func (s *Server) handleAck(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "query_not_found", "%v: %q", ErrQueryNotFound, r.PathValue("id"))
		return
	}
	var req ackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "decode request: %v", err)
		return
	}
	acked := reg.Ack(req.Seq)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"query_id": reg.ID(), "acked": acked})
}

// historyResponse is one page of GET /v1/queries/{id}/history.
type historyResponse struct {
	QueryID string `json:"query_id"`
	From    int64  `json:"from"`
	// NextFrom is the cursor for the next page: pass it back as ?from=.
	// It equals From when nothing was readable at From (end of history).
	NextFrom int64   `json:"next_from"`
	Events   []Event `json:"events"`
}

// History paging bounds: the default and maximum events per page.
const (
	defaultHistoryLimit = 100
	maxHistoryLimit     = 1000
)

// handleHistory pages through a query's retained result history —
// spilled segments and the live ring — without holding a stream open or
// moving the retention floor. Events are byte-identical to what a
// streamed read over the same sequences delivers (gap events included),
// so a consumer can mix paging and streaming freely.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "query_not_found", "%v: %q", ErrQueryNotFound, r.PathValue("id"))
		return
	}
	from, ok := queryParamSeq(w, r, "from", 0)
	if !ok {
		return
	}
	limit, ok := queryParamSeq(w, r, "limit", defaultHistoryLimit)
	if !ok {
		return
	}
	if limit <= 0 {
		limit = defaultHistoryLimit
	}
	if limit > maxHistoryLimit {
		limit = maxHistoryLimit
	}
	if from < 0 {
		from = 0
	}
	events, next := reg.HistoryPage(from, int(limit))
	if events == nil {
		events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(historyResponse{
		QueryID: reg.ID(), From: from, NextFrom: next, Events: events,
	})
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Unregister(id); err != nil {
		status, code := errorStatus(err)
		httpError(w, status, code, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"unregistered": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Metrics())
}
