package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"vmq/internal/rlog"
	"vmq/internal/vql"
)

// Handler returns the server's HTTP API:
//
//	POST   /queries              register a query (VQL text in, id out)
//	GET    /queries              list registered queries
//	GET    /queries/{id}/results stream results as NDJSON until the query ends
//	                             (?from=<seq> resumes from a result-log
//	                             sequence number; a gap event reports any
//	                             range evicted before the consumer got there)
//	DELETE /queries/{id}         unregister
//	POST   /feeds                create a feed at runtime (push or sim source)
//	GET    /feeds                list feeds with lifecycle state and ingest stats
//	POST   /feeds/{name}/drain   drain gracefully (queries end with end events)
//	DELETE /feeds/{name}         drain, wait for end events, remove
//	POST   /feeds/{name}/frames  publish NDJSON frames into a push feed
//	GET    /feeds/{name}/publish WebSocket publisher bridge (one frame per message)
//	GET    /metrics              server telemetry snapshot
//
// POST /queries accepts either a raw VQL statement (text/plain) or a JSON
// body {"query": "...", "count_tolerance": n, "location_tolerance": n,
// "max_frames": n, "samples": n, "seed": n, "policy": "block" |
// "drop-oldest" | "sample-under-pressure", "result_buffer": n}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleRegister)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("GET /queries/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /queries/{id}", s.handleUnregister)
	mux.HandleFunc("POST /feeds", s.handleCreateFeed)
	mux.HandleFunc("GET /feeds", s.handleListFeeds)
	mux.HandleFunc("POST /feeds/{name}/drain", s.handleDrainFeed)
	mux.HandleFunc("DELETE /feeds/{name}", s.handleRemoveFeed)
	mux.HandleFunc("POST /feeds/{name}/frames", s.handlePublishFrames)
	mux.HandleFunc("GET /feeds/{name}/publish", s.handlePublishWS)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// registerRequest is the JSON form of POST /queries.
type registerRequest struct {
	Query             string `json:"query"`
	CountTolerance    *int   `json:"count_tolerance,omitempty"`
	LocationTolerance *int   `json:"location_tolerance,omitempty"`
	MaxFrames         int    `json:"max_frames,omitempty"`
	Samples           int    `json:"samples,omitempty"`
	Seed              uint64 `json:"seed,omitempty"`
	// Policy selects the delivery policy ("block", "drop-oldest",
	// "sample-under-pressure"); empty keeps the server default.
	Policy string `json:"policy,omitempty"`
	// ResultBuffer overrides the result-log ring capacity (events).
	ResultBuffer int `json:"result_buffer,omitempty"`
}

// registerResponse answers POST /queries.
type registerResponse struct {
	ID     string `json:"id"`
	Feed   string `json:"feed"`
	Query  string `json:"query"` // canonical rendering
	Policy string `json:"policy"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	req := registerRequest{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: %v", err)
			return
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, "empty query")
		return
	}
	q, err := vql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	opt := Options{MaxFrames: req.MaxFrames, SampleSize: req.Samples, Seed: req.Seed, ResultBuffer: req.ResultBuffer}
	if req.Policy != "" {
		pol, ok := rlog.ParsePolicy(req.Policy)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown delivery policy %q", req.Policy)
			return
		}
		opt.Policy = pol
	}
	if req.CountTolerance != nil || req.LocationTolerance != nil {
		tol := *s.cfg.Tol
		if req.CountTolerance != nil {
			tol.Count = *req.CountTolerance
		}
		if req.LocationTolerance != nil {
			tol.Location = *req.LocationTolerance
		}
		opt.Tol = &tol
	}
	reg, err := s.Register(q, opt)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, ErrFeedBusy) {
			code = http.StatusTooManyRequests
		}
		if errors.Is(err, ErrFeedDraining) {
			code = http.StatusConflict
		}
		httpError(w, code, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(registerResponse{
		ID: reg.ID(), Feed: reg.Feed(), Query: reg.Query().String(),
		Policy: string(reg.Log().Policy()),
	})
}

// listedQuery is one row of GET /queries.
type listedQuery struct {
	ID    string `json:"id"`
	Feed  string `json:"feed"`
	Query string `json:"query"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]listedQuery, 0, len(s.regs))
	for _, reg := range s.regs {
		out = append(out, listedQuery{ID: reg.id, Feed: reg.feed.name, Query: reg.qry.String()})
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return lessID(out[a].ID, out[b].ID) })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b) // q2 < q10
	}
	return a < b
}

// handleResults streams the query's events as newline-delimited JSON
// through its own cursor over the registration's result log. The
// connection stays open until the query ends, is unregistered, or the
// client goes away; each event is flushed as it happens, so a curl client
// sees matches live.
//
// ?from=<seq> resumes from a result-log sequence number (each event
// carries its own as event_seq): a consumer that disconnected reconnects
// with from set to one past the last event it processed and sees a
// gap-free continuation — or, when the ring wrapped past that point, one
// gap event reporting exactly the dropped range. Without from the stream
// replays from the oldest retained event. Multiple consumers may stream
// one query concurrently, each on its own cursor.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "%v: %q", ErrQueryNotFound, r.PathValue("id"))
		return
	}
	from := int64(0)
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad from=%q: %v", raw, err)
			return
		}
		from = v
	}
	reader := reg.ResultsFrom(from)
	defer reader.Detach()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		it, ok := reader.Next(r.Context().Done())
		if !ok {
			return
		}
		if err := enc.Encode(reg.itemEvent(it)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Unregister(id); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrQueryNotFound) {
			code = http.StatusNotFound
		}
		httpError(w, code, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"unregistered": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Metrics())
}
