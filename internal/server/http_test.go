package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"vmq/internal/filters"
	"vmq/internal/stream"
	"vmq/internal/video"
)

// apiPrefix is the path prefix the HTTP suites exercise: the canonical
// /v1 surface by default, or — when VMQ_HTTP_LEGACY=1, the CI
// compatibility leg — the deprecated unversioned aliases, pinning that
// both serve identical bodies.
func apiPrefix() string {
	if os.Getenv("VMQ_HTTP_LEGACY") == "1" {
		return ""
	}
	return "/v1"
}

func apiBase(ts *httptest.Server) string { return ts.URL + apiPrefix() }

func newHTTPServer(t *testing.T, n int) (*Server, *httptest.Server) {
	t.Helper()
	p := video.Jackson()
	cfg, _ := clipFeed(p, 42, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// The full HTTP lifecycle: register with plain VQL text, stream NDJSON
// results to completion, observe the query in listings and metrics, and
// unregister.
func TestHTTPQueryLifecycle(t *testing.T) {
	_, ts := newHTTPServer(t, 300)

	// Register with a raw VQL body.
	resp, err := http.Post(apiBase(ts)+"/queries", "text/plain",
		strings.NewReader(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" || created.Feed != "jackson" {
		t.Fatalf("created = %+v", created)
	}

	// The query shows up in the listing.
	resp, err = http.Get(apiBase(ts) + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var listed []QueryMetrics
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].ID != created.ID {
		t.Fatalf("listing = %+v", listed)
	}
	if listed[0].Feed != "jackson" || listed[0].Policy != "block" || listed[0].Acked != -1 {
		t.Fatalf("listing row = %+v, want feed/policy/acked telemetry", listed[0])
	}

	// Stream results: NDJSON events ending with an "end" event carrying
	// totals for the whole 300-frame clip.
	resp, err = http.Get(apiBase(ts) + "/queries/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type = %q", ct)
	}
	matches := 0
	var final *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case EventMatch:
			matches++
		case EventEnd:
			final = &ev
		}
	}
	resp.Body.Close()
	if final == nil || final.Final == nil {
		t.Fatal("stream ended without an end event")
	}
	if final.Final.FramesTotal != 300 || matches != len(final.Final.Matched) {
		t.Fatalf("streamed %d matches, final = %+v", matches, final.Final)
	}
	if matches == 0 {
		t.Fatal("degenerate clip: nothing matched")
	}

	// Metrics report the feed and the (finished) query.
	resp, err = http.Get(apiBase(ts) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(m.Feeds) != 1 || m.Feeds[0].Frames != 300 {
		t.Fatalf("metrics feeds = %+v", m.Feeds)
	}
	if len(m.Queries) != 1 || !m.Queries[0].Done || m.Queries[0].Matches != matches {
		t.Fatalf("metrics queries = %+v", m.Queries)
	}

	// Unregister; the listing empties and a second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, apiBase(ts)+"/queries/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d", resp.StatusCode)
	}
}

// JSON registration bodies carry tolerances and budgets through to the
// engine.
func TestHTTPRegisterJSONOptions(t *testing.T) {
	_, ts := newHTTPServer(t, 200)
	body := `{"query": "SELECT FRAMES FROM jackson WHERE COUNT(car) = 1", "count_tolerance": 0, "location_tolerance": 0, "max_frames": 120}`
	resp, err := http.Post(apiBase(ts)+"/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(apiBase(ts) + "/queries/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var final *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventEnd {
			final = &ev
		}
	}
	resp.Body.Close()
	if final == nil || final.Final == nil || final.Final.FramesTotal != 120 {
		t.Fatalf("final = %+v, want a 120-frame run", final)
	}
}

// A streaming consumer killed mid-feed reconnects with ?from= and sees a
// gap-free event sequence: the replayed retained events plus the live
// continuation reconstruct exactly the stream an uninterrupted consumer
// would have seen. The feed is paced so the kill genuinely lands
// mid-stream with live events still to come.
func TestHTTPResumeAfterDisconnect(t *testing.T) {
	p := video.Jackson()
	const n = 120
	frames := video.NewStream(p, 42).Take(n)
	srv := New(Config{ResultBuffer: 256}) // ring outlives the disconnect window
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:        &stream.SliceSource{Frames: frames},
		Backend:       filters.NewODFilter(p, 42, nil),
		FrameInterval: 2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Every frame matches, so event_seq and frame seq advance in lockstep
	// and any loss is visible.
	resp, err := http.Post(apiBase(ts)+"/queries", "text/plain",
		strings.NewReader(`SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0`))
	if err != nil {
		t.Fatal(err)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// First consumer: read a prefix, then die mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, apiBase(ts)+"/queries/"+created.ID+"/results", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
		if len(got) == 25 {
			break
		}
	}
	cancel()
	resp.Body.Close()
	if len(got) < 25 {
		t.Fatalf("stream ended after %d events — nothing was mid-feed", len(got))
	}
	if got[24].Kind == EventEnd {
		t.Fatal("clip finished before the disconnect — nothing was mid-feed")
	}

	// Reconnect one past the last processed event and read to the end.
	last := got[len(got)-1].EventSeq
	resp, err = http.Get(apiBase(ts) + "/queries/" + created.ID + "/results?from=" + itoa(last+1))
	if err != nil {
		t.Fatal(err)
	}
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	resp.Body.Close()

	// The combined stream is gap-free: n match events with contiguous
	// event and frame sequences, then the end event with full totals.
	if len(got) != n+1 {
		t.Fatalf("replay+live delivered %d events, want %d", len(got), n+1)
	}
	for i := 0; i < n; i++ {
		ev := got[i]
		if ev.Kind != EventMatch || ev.EventSeq != int64(i) || ev.Seq != i {
			t.Fatalf("event %d = kind %s event_seq %d frame %d — sequence not gap-free",
				i, ev.Kind, ev.EventSeq, ev.Seq)
		}
	}
	end := got[n]
	if end.Kind != EventEnd || end.Final == nil || end.Final.FramesTotal != n {
		t.Fatalf("end event = %+v", end)
	}
}

// Resuming below a wrapped ring's retained window yields one gap event
// reporting exactly the dropped range, then the contiguous tail.
func TestHTTPResumeWrappedRingReportsGap(t *testing.T) {
	p := video.Jackson()
	const n = 100
	frames := video.NewStream(p, 8).Take(n)
	srv := New(Config{})
	if err := srv.AddFeed(FeedConfig{
		Name: p.Name, Profile: p,
		Source:  &stream.SliceSource{Frames: frames},
		Backend: filters.NewODFilter(p, 8, nil),
	}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	body := `{"query": "SELECT FRAMES FROM jackson WHERE COUNT(car) >= 0", "policy": "drop-oldest", "result_buffer": 16}`
	resp, err := http.Post(apiBase(ts)+"/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Policy != "drop-oldest" {
		t.Fatalf("created policy = %q", created.Policy)
	}

	// Let the whole clip run with no consumer: the 16-ring wraps many
	// times over the 101 events.
	reg, ok := srv.Get(created.ID)
	if !ok {
		t.Fatal("registration vanished")
	}
	<-reg.Done()

	resp, err = http.Get(apiBase(ts) + "/queries/" + created.ID + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	resp.Body.Close()
	if len(evs) == 0 || evs[0].Kind != EventGap {
		t.Fatalf("first event = %+v, want a gap report", evs)
	}
	first := reg.Log().FirstRetained()
	if evs[0].DroppedFrom != 0 || evs[0].DroppedTo != first {
		t.Fatalf("gap = [%d,%d), want [0,%d)", evs[0].DroppedFrom, evs[0].DroppedTo, first)
	}
	next := first
	for _, ev := range evs[1:] {
		if ev.EventSeq != next {
			t.Fatalf("event seq %d, want %d — tail not contiguous", ev.EventSeq, next)
		}
		next++
	}
	if evs[len(evs)-1].Kind != EventEnd {
		t.Fatal("wrapped replay lost the end event")
	}
}

// Two consumers stream one query concurrently, each on its own cursor.
// The ring covers the whole clip so both replay the identical complete
// stream no matter when they attach.
func TestHTTPConcurrentConsumers(t *testing.T) {
	p := video.Jackson()
	cfg, _ := clipFeed(p, 42, 150)
	srv := New(Config{ResultBuffer: 256})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	resp, err := http.Post(apiBase(ts)+"/queries", "text/plain",
		strings.NewReader(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`))
	if err != nil {
		t.Fatal(err)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	read := func() []Event {
		resp, err := http.Get(apiBase(ts) + "/queries/" + created.ID + "/results")
		if err != nil {
			t.Error(err)
			return nil
		}
		defer resp.Body.Close()
		var evs []Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Error(err)
				return nil
			}
			evs = append(evs, ev)
		}
		return evs
	}
	done := make(chan []Event, 2)
	go func() { done <- read() }()
	go func() { done <- read() }()
	a, b := <-done, <-done
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("consumers saw %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].EventSeq != b[i].EventSeq || a[i].Seq != b[i].Seq {
			t.Fatalf("consumers diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func itoa(v int64) string {
	return strconv.FormatInt(v, 10)
}

// Malformed registrations and unknown ids produce structured errors.
func TestHTTPErrors(t *testing.T) {
	_, ts := newHTTPServer(t, 50)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/queries", "", http.StatusBadRequest},
		{"POST", "/queries", "SELECT nonsense", http.StatusBadRequest},
		{"POST", "/queries", "SELECT FRAMES FROM nosuchfeed WHERE COUNT(car) = 1", http.StatusUnprocessableEntity},
		{"GET", "/queries/q999/results", "", http.StatusNotFound},
		{"DELETE", "/queries/q999", "", http.StatusNotFound},
		{"PUT", "/queries", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, apiBase(ts)+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s -> %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
