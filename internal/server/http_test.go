package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmq/internal/video"
)

func newHTTPServer(t *testing.T, n int) (*Server, *httptest.Server) {
	t.Helper()
	p := video.Jackson()
	cfg, _ := clipFeed(p, 42, n)
	srv := New(Config{})
	if err := srv.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// The full HTTP lifecycle: register with plain VQL text, stream NDJSON
// results to completion, observe the query in listings and metrics, and
// unregister.
func TestHTTPQueryLifecycle(t *testing.T) {
	_, ts := newHTTPServer(t, 300)

	// Register with a raw VQL body.
	resp, err := http.Post(ts.URL+"/queries", "text/plain",
		strings.NewReader(`SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" || created.Feed != "jackson" {
		t.Fatalf("created = %+v", created)
	}

	// The query shows up in the listing.
	resp, err = http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var listed []listedQuery
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].ID != created.ID {
		t.Fatalf("listing = %+v", listed)
	}

	// Stream results: NDJSON events ending with an "end" event carrying
	// totals for the whole 300-frame clip.
	resp, err = http.Get(ts.URL + "/queries/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type = %q", ct)
	}
	matches := 0
	var final *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case EventMatch:
			matches++
		case EventEnd:
			final = &ev
		}
	}
	resp.Body.Close()
	if final == nil || final.Final == nil {
		t.Fatal("stream ended without an end event")
	}
	if final.Final.FramesTotal != 300 || matches != len(final.Final.Matched) {
		t.Fatalf("streamed %d matches, final = %+v", matches, final.Final)
	}
	if matches == 0 {
		t.Fatal("degenerate clip: nothing matched")
	}

	// Metrics report the feed and the (finished) query.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(m.Feeds) != 1 || m.Feeds[0].Frames != 300 {
		t.Fatalf("metrics feeds = %+v", m.Feeds)
	}
	if len(m.Queries) != 1 || !m.Queries[0].Done || m.Queries[0].Matches != matches {
		t.Fatalf("metrics queries = %+v", m.Queries)
	}

	// Unregister; the listing empties and a second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d", resp.StatusCode)
	}
}

// JSON registration bodies carry tolerances and budgets through to the
// engine.
func TestHTTPRegisterJSONOptions(t *testing.T) {
	_, ts := newHTTPServer(t, 200)
	body := `{"query": "SELECT FRAMES FROM jackson WHERE COUNT(car) = 1", "count_tolerance": 0, "location_tolerance": 0, "max_frames": 120}`
	resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/queries/" + created.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var final *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventEnd {
			final = &ev
		}
	}
	resp.Body.Close()
	if final == nil || final.Final == nil || final.Final.FramesTotal != 120 {
		t.Fatalf("final = %+v, want a 120-frame run", final)
	}
}

// Malformed registrations and unknown ids produce structured errors.
func TestHTTPErrors(t *testing.T) {
	_, ts := newHTTPServer(t, 50)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/queries", "", http.StatusBadRequest},
		{"POST", "/queries", "SELECT nonsense", http.StatusBadRequest},
		{"POST", "/queries", "SELECT FRAMES FROM nosuchfeed WHERE COUNT(car) = 1", http.StatusUnprocessableEntity},
		{"GET", "/queries/q999/results", "", http.StatusNotFound},
		{"DELETE", "/queries/q999", "", http.StatusNotFound},
		{"PUT", "/queries", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s -> %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
