// Package sched implements the server-wide inference coalescing broker:
// the cross-feed generalisation of the per-feed micro-batching scan.
//
// The paper's economics argument is that monitoring many concurrent
// queries over many camera feeds is only viable when frame evaluation
// cost is amortised across everything that shares work. Within one feed
// the scan batcher already groups frames ahead of the fan-out; but a
// server hosting twenty sparse feeds that all serve the same trained
// model still issues twenty tiny GEMM batches per flush window — one per
// feed. The broker collects those pending batches from every feed whose
// backend shares a network architecture/weights identity
// (filters.Coalescable) and evaluates them as one large ForwardBatch
// under a size-or-deadline policy, scattering the per-frame outputs back
// to each submitter — and through it into each feed's shared memo.
//
// Coalescing never changes a result: the batched kernels produce
// bit-identical per-frame outputs for every batch width, and equal
// coalescing keys certify that any member backend evaluates any member's
// frames identically. The deadline bounds the latency a frame can add
// waiting for cross-feed batch-mates, mirroring the per-feed flush
// deadline, so the server's match-the-moment-it-happens contract holds.
package sched

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"vmq/internal/filters"
	"vmq/internal/video"
)

// Config tunes a Broker. The zero value selects the defaults.
type Config struct {
	// Batch is the size trigger: a group flushes as soon as its pending
	// frames reach this count (default 32 — two of the server's default
	// per-feed micro-batches). Values < 2 select the default.
	Batch int
	// Flush is the deadline trigger: how long the first pending frame of
	// a group may wait for cross-feed batch-mates (default 2ms, matching
	// the per-feed scan flush bound).
	Flush time.Duration
	// Shards is the number of independently locked sub-brokers that
	// architecture groups hash into by coalesce key, so one group's flush
	// bookkeeping (joins, departures, metrics) never serialises against
	// another group's. Values < 1 select max(1, GOMAXPROCS/4) — one shard
	// per few cores; a group only ever lives on one shard, so sharding
	// never changes which frames coalesce together.
	Shards int
	// Workers sizes the evaluator's CPU budget for one merged flush,
	// given the number of distinct submitters it coalesced. The broker
	// applies it (via filters.SetEvalWorkers) only to flushes whose
	// estimated cost reaches ParallelFlops — smaller merges evaluate
	// single-threaded, where the GEMM is too small to pay for fan-out.
	// nil leaves evaluator defaults untouched (size to GOMAXPROCS). The
	// server wires this to its budgeter so coalesced GEMMs and per-feed
	// scans share one CPU budget instead of oversubscribing.
	Workers func(distinct int) int
	// ParallelFlops is the estimated multiply-add count (batch frames ×
	// the evaluator's per-frame ForwardFlops) at which a merged flush is
	// worth fanning across cores. Values < 1 select the default (4M —
	// roughly a dozen coalesced small-CNN frames).
	ParallelFlops int64
}

func (c Config) withDefaults() Config {
	if c.Batch < 2 {
		c.Batch = 32
	}
	if c.Flush <= 0 {
		c.Flush = 2 * time.Millisecond
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0) / 4
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.ParallelFlops < 1 {
		c.ParallelFlops = 4 << 20
	}
	return c
}

// Broker coalesces batch evaluations across backends sharing an
// architecture identity. It never blocks a submission indefinitely:
// every pending request is evaluated by the size trigger, the deadline
// timer, or the submitter itself, so shutdown needs no coordination.
//
// Internally the broker is sharded: groups hash by coalesce key onto
// independently locked sub-brokers, so concurrent joins, flush
// bookkeeping and metric folds for unrelated architectures proceed
// without sharing a lock.
type Broker struct {
	cfg    Config
	shards []*brokerShard
}

// brokerShard owns the groups whose keys hash to it: a fixed key→shard
// mapping means sharding is invisible to coalescing semantics — every
// submission for one architecture still meets in the same group.
type brokerShard struct {
	cfg Config

	mu     sync.Mutex
	groups map[string]*group
	// retired accumulates the final counters of groups whose last proxy
	// departed (rotated-out architectures): the group itself is removed —
	// so its evaluator's weight tensors and scratch buffers are released —
	// but its history stays visible in Metrics, merged per key and capped
	// FIFO so churn cannot grow the snapshot without bound.
	retired      map[string]*GroupMetrics
	retiredOrder []string
}

// retainRetired caps how many departed architecture keys keep their
// accumulated counters in the metrics snapshot (per shard).
const retainRetired = 64

// New creates a Broker.
func New(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	br := &Broker{cfg: cfg, shards: make([]*brokerShard, cfg.Shards)}
	for i := range br.shards {
		br.shards[i] = &brokerShard{
			cfg:     cfg,
			groups:  make(map[string]*group),
			retired: make(map[string]*GroupMetrics),
		}
	}
	return br
}

// shardFor maps a coalesce key onto its owning shard (FNV-1a).
func (br *Broker) shardFor(key string) *brokerShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return br.shards[h%uint32(len(br.shards))]
}

// Wrap returns a backend whose batch evaluations are coalesced with every
// other Wrap-returned backend sharing b's coalescing key. Backends that
// declare no key (filters.CoalesceKeyOf == "") are returned unchanged —
// they evaluate exactly as before. The proxy is always safe for
// concurrent use: the broker serialises the underlying evaluations.
func (br *Broker) Wrap(b filters.Backend) filters.Backend {
	if br == nil {
		return b
	}
	key := filters.CoalesceKeyOf(b)
	if key == "" {
		return b
	}
	cb := b.(filters.Coalescable)
	sh := br.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	g, ok := sh.groups[key]
	if !ok {
		// The first member becomes the group's evaluator: equal keys make
		// member backends interchangeable, so one instance (one weight
		// set, one arena) serves the whole group cache-hot.
		g = &group{
			key: key, sh: sh, eval: cb,
			batch: sh.cfg.Batch, flush: sh.cfg.Flush,
			workersFn:     sh.cfg.Workers,
			parallelFlops: sh.cfg.ParallelFlops,
			flopsPerFrame: filters.ForwardFlopsOf(cb),
		}
		sh.groups[key] = g
	}
	g.mu.Lock()
	g.joined++
	g.attached++
	g.mu.Unlock()
	// Membership (what flushes wait on) is taken lazily at the proxy's
	// first submission, so a wrapped-but-idle feed — configured yet
	// queryless, for instance — never makes anyone wait for it.
	return &proxy{group: g, inner: b}
}

// GroupMetrics is one architecture group's share of the broker snapshot.
type GroupMetrics struct {
	// Key is the group's architecture/weights identity.
	Key string `json:"key"`
	// Members is the number of backends ever wrapped into the group; Live
	// is how many are actively submitting — membership is taken at a
	// backend's first submission and released when its feed's source ends
	// or the feed closes.
	Members int `json:"members"`
	Live    int `json:"live"`
	// Batches is the number of coalesced evaluations; Frames the frames
	// they covered (AvgBatch = Frames/Batches); MaxBatch the largest
	// single evaluation.
	Batches  int64   `json:"batches"`
	Frames   int64   `json:"frames"`
	AvgBatch float64 `json:"avg_batch"`
	MaxBatch int     `json:"max_batch"`
	// Merged is the number of batches that combined frames from more than
	// one submission — the cross-feed coalescing the broker exists for.
	Merged int64 `json:"merged"`
}

// Metrics snapshots every group — active ones plus the accumulated
// counters of retired ones, merged per key across all shards — sorted by
// key.
func (br *Broker) Metrics() []GroupMetrics {
	if br == nil {
		return nil
	}
	byKey := make(map[string]GroupMetrics)
	var groups []*group
	for _, sh := range br.shards {
		sh.mu.Lock()
		for key, gm := range sh.retired {
			byKey[key] = mergeGroupMetrics(byKey[key], *gm)
		}
		for _, g := range sh.groups {
			groups = append(groups, g)
		}
		sh.mu.Unlock()
	}
	for _, g := range groups {
		g.mu.Lock()
		gm := g.snapshotLocked()
		g.mu.Unlock()
		byKey[g.key] = mergeGroupMetrics(byKey[g.key], gm)
	}
	out := make([]GroupMetrics, 0, len(byKey))
	for _, gm := range byKey {
		if gm.Batches > 0 {
			gm.AvgBatch = float64(gm.Frames) / float64(gm.Batches)
		}
		out = append(out, gm)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// mergeGroupMetrics folds b's counters into a (same key; the zero value
// is the identity).
func mergeGroupMetrics(a, b GroupMetrics) GroupMetrics {
	a.Key = b.Key
	a.Members += b.Members
	a.Live += b.Live
	a.Batches += b.Batches
	a.Frames += b.Frames
	a.Merged += b.Merged
	if b.MaxBatch > a.MaxBatch {
		a.MaxBatch = b.MaxBatch
	}
	return a
}

// retireLocked folds a departing group's counters into the shard's
// retired accumulator (caller holds sh.mu and g.mu).
func (sh *brokerShard) retireLocked(g *group) {
	gm := g.snapshotLocked()
	if have, ok := sh.retired[g.key]; ok {
		*have = mergeGroupMetrics(*have, gm)
		return
	}
	sh.retired[g.key] = &gm
	sh.retiredOrder = append(sh.retiredOrder, g.key)
	for len(sh.retiredOrder) > retainRetired {
		delete(sh.retired, sh.retiredOrder[0])
		sh.retiredOrder = sh.retiredOrder[1:]
	}
}

// Member is implemented by the backends Wrap returns. Leave releases the
// backend's group membership when its feed stops submitting (source
// exhausted, feed closed), so the remaining members' flushes stop waiting
// out the deadline for submissions that will never come. Leave is
// idempotent, and a member that submits again after leaving is still
// served (its frames simply no longer hold up anyone else).
type Member interface {
	Leave()
}

// request is one submission awaiting a coalesced evaluation.
type request struct {
	from   *proxy // submitter, for counting distinct members per window
	frames []*video.Frame
	outs   []*filters.Output // filled by the flusher before done closes
	pval   any               // panic value when this request's evaluation faulted
	done   chan struct{}
}

// group is the pending state for one architecture identity.
type group struct {
	key   string
	sh    *brokerShard
	eval  filters.BatchBackend
	batch int
	flush time.Duration

	// workersFn/parallelFlops/flopsPerFrame drive the multicore routing
	// of merged flushes (see Config.Workers): flopsPerFrame is the
	// evaluator's per-frame estimate, captured once at group creation.
	workersFn     func(distinct int) int
	parallelFlops int64
	flopsPerFrame int64

	mu       sync.Mutex
	members  int // actively submitting: gates the everyone-pending flush and the lone-member fast path
	attached int // proxies wrapped and not yet departed: gates group removal
	joined   int // memberships ever granted (metrics)
	pending  []*request
	nframes  int
	distinct int    // distinct submitters in the current pending window
	armed    bool   // a deadline timer is running for the current pending set
	gen      uint64 // bumped per armed window so a stale timer cannot flush the next one early
	batches  int64
	frames   int64
	maxBatch int
	merged   int64

	// evalMu serialises the underlying evaluations: member backends reuse
	// forward-pass arenas and are not concurrency-safe.
	evalMu  sync.Mutex
	scratch []*filters.Output
	all     []*video.Frame
}

// submit queues frames for the next coalesced evaluation and blocks until
// their outputs are ready. The caller that trips the size trigger runs
// the evaluation itself; otherwise the deadline timer's goroutine does.
func (g *group) submit(from *proxy, frames []*video.Frame) []*filters.Output {
	r := &request{from: from, frames: frames, done: make(chan struct{})}
	g.mu.Lock()
	if g.members < 2 && g.pending == nil {
		// A single-member group has no one to coalesce with: waiting out
		// the deadline would only throttle the lone feed. Evaluate
		// synchronously (still serialised on the group evaluator).
		g.mu.Unlock()
		g.run([]*request{r})
		if r.pval != nil {
			panic(r.pval)
		}
		return r.outs
	}
	// Count distinct submitters: one member may park several submissions
	// in a window (concurrent query pipelines over one backend), and they
	// must not satisfy the everyone-pending trigger on their own.
	seen := false
	for _, q := range g.pending {
		if q.from == from {
			seen = true
			break
		}
	}
	g.pending = append(g.pending, r)
	if !seen {
		g.distinct++
	}
	g.nframes += len(frames)
	switch {
	case g.nframes >= g.batch || g.distinct >= g.members:
		// Size trigger — or every live member already has a submission
		// parked here, so waiting out the deadline could only add latency.
		take := g.take()
		g.mu.Unlock()
		g.run(take)
	case !g.armed:
		g.armed = true
		g.gen++
		gen := g.gen
		g.mu.Unlock()
		time.AfterFunc(g.flush, func() {
			g.mu.Lock()
			if g.gen != gen {
				// This timer's window was already flushed (size trigger,
				// everyone-pending, or leave); a fresh window may be
				// pending with its own timer — leave it alone.
				g.mu.Unlock()
				return
			}
			take := g.take()
			g.mu.Unlock()
			g.run(take)
		})
	default:
		g.mu.Unlock()
	}
	<-r.done
	if r.pval != nil {
		// This submission's evaluation panicked: re-panic on the
		// submitter's goroutine, where the query's own pipeline barrier
		// (or the feed's warm-scan barrier) turns it into that query's
		// typed failure. The flusher goroutine itself never unwinds.
		panic(r.pval)
	}
	return r.outs
}

// take claims the pending set (caller holds g.mu). Disarming happens here
// rather than by stopping the timer: bumping gen makes any still-running
// timer for this window a no-op without racing timer.Stop.
func (g *group) take() []*request {
	reqs := g.pending
	g.pending = nil
	g.nframes = 0
	g.distinct = 0
	if g.armed {
		g.armed = false
		g.gen++
	}
	return reqs
}

// run evaluates one claimed pending set through the group evaluator and
// scatters the outputs back to the submitters in claim order.
//
// run never panics, whichever goroutine carries it (a submitter, the
// deadline timer, a departing member's flush): a fault in the merged
// evaluation is contained by re-running each request alone on its own
// submitter's inner backend — equal coalescing keys make members
// interchangeable, so healthy group-mates still get their outputs and
// only the request whose evaluation faults carries the panic value back
// to its submitter. One poisoned query must not take down its feed's
// coalesce group, let alone the process hosting it.
func (g *group) run(reqs []*request) {
	if len(reqs) == 0 {
		return
	}
	g.evalMu.Lock()
	all := g.all[:0]
	distinct := 0
	for i, r := range reqs {
		all = append(all, r.frames...)
		dup := false
		for _, q := range reqs[:i] {
			if q.from == r.from {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	if g.workersFn != nil {
		// Route this flush's CPU budget: merges whose estimated GEMM work
		// clears the threshold get the scheduler-granted share; smaller
		// ones stay on one core, where fan-out costs more than it saves.
		// Worker count never changes output bytes, only wall-clock.
		workers := 1
		if g.flopsPerFrame > 0 && int64(len(all))*g.flopsPerFrame >= g.parallelFlops {
			if w := g.workersFn(distinct); w > workers {
				workers = w
			}
		}
		filters.SetEvalWorkers(g.eval, workers)
	}
	outs, pval := evalGuarded(g.eval, all, g.scratch[:0])
	if pval == nil {
		off := 0
		for _, r := range reqs {
			r.outs = append(r.outs, outs[off:off+len(r.frames)]...)
			off += len(r.frames)
			close(r.done)
		}
		// Clear the recycled backing arrays: their slots would otherwise
		// pin the batch's frames and outputs until the group's next
		// flush, which on a quiet group may never come.
		clear(all)
		clear(outs)
		g.all, g.scratch = all[:0], outs[:0]
	} else {
		// Merged batch poisoned: isolate per submitter.
		for _, r := range reqs {
			solo, p := evalGuarded(r.from.inner, r.frames, nil)
			if p != nil {
				r.pval = p
			} else {
				r.outs = append(r.outs, solo...)
			}
			close(r.done)
		}
		clear(all)
		g.all = all[:0]
		// The panicking evaluation may have appended into the scratch
		// backing array before unwinding; drop it rather than recycle
		// slots holding unknown state.
		g.scratch = nil
	}
	g.evalMu.Unlock()

	g.mu.Lock()
	g.batches++
	g.frames += int64(len(all))
	if len(all) > g.maxBatch {
		g.maxBatch = len(all)
	}
	if len(reqs) > 1 {
		g.merged++
	}
	g.mu.Unlock()
}

// evalGuarded runs one batch evaluation, converting a panic into a
// returned value so group state and locks stay consistent on the
// flusher's goroutine.
func evalGuarded(b filters.Backend, frames []*video.Frame, dst []*filters.Output) (outs []*filters.Output, pval any) {
	defer func() {
		if p := recover(); p != nil {
			outs, pval = nil, p
		}
	}()
	return filters.EvaluateBatchInto(b, frames, dst), nil
}

// snapshotLocked captures the group's counters (caller holds g.mu).
func (g *group) snapshotLocked() GroupMetrics {
	return GroupMetrics{
		Key:      g.key,
		Members:  g.joined,
		Live:     g.members,
		Batches:  g.batches,
		Frames:   g.frames,
		MaxBatch: g.maxBatch,
		Merged:   g.merged,
	}
}

// join registers one actively submitting member (a proxy's first
// submission).
func (g *group) join() {
	g.mu.Lock()
	g.members++
	g.mu.Unlock()
}

// release detaches one proxy — decrementing the submitting membership it
// held, if any — flushing any pending set that now has a submission from
// every remaining live member, and removing the group from the broker
// once its last proxy departs, so rotated-out architectures do not pin
// their evaluator's weight tensors and scratch buffers forever.
func (g *group) release(wasMember bool) {
	g.sh.mu.Lock()
	g.mu.Lock()
	g.attached--
	if wasMember && g.members > 0 {
		g.members--
	}
	var take []*request
	if len(g.pending) > 0 && len(g.pending) >= g.members {
		take = g.take()
	}
	if g.attached <= 0 && len(g.pending) == 0 {
		if cur, ok := g.sh.groups[g.key]; ok && cur == g {
			delete(g.sh.groups, g.key)
			g.sh.retireLocked(g)
		}
	}
	g.mu.Unlock()
	g.sh.mu.Unlock()
	g.run(take)
}

// proxy routes one wrapped backend's evaluations through its group.
type proxy struct {
	group *group
	inner filters.Backend

	mu    sync.Mutex
	state int // 0 fresh, 1 joined (submitted at least once), 2 left
}

// ensureJoined takes the submitting membership on first use. A proxy
// that already left never re-joins: its late submissions are still
// served, they just hold no one up.
func (p *proxy) ensureJoined() {
	p.mu.Lock()
	fresh := p.state == 0
	if fresh {
		p.state = 1
	}
	p.mu.Unlock()
	if fresh {
		p.group.join()
	}
}

// Technique implements filters.Backend.
func (p *proxy) Technique() filters.Technique { return p.inner.Technique() }

// Grid implements filters.Backend.
func (p *proxy) Grid() int { return p.inner.Grid() }

// Evaluate implements filters.Backend: a batch of one, coalesced like any
// other submission.
func (p *proxy) Evaluate(f *video.Frame) *filters.Output {
	p.ensureJoined()
	outs := p.group.submit(p, []*video.Frame{f})
	return outs[0]
}

// EvaluateBatch implements filters.BatchBackend. The returned outputs are
// appended to dst per the interface's aliasing rule.
func (p *proxy) EvaluateBatch(frames []*video.Frame, dst []*filters.Output) []*filters.Output {
	if len(frames) == 0 {
		return dst
	}
	p.ensureJoined()
	return append(dst, p.group.submit(p, frames)...)
}

// ConcurrentSafe implements filters.ConcurrentBackend: submissions may
// come from any number of goroutines; the group serialises the inner
// evaluations.
func (p *proxy) ConcurrentSafe() bool { return true }

// CoalesceKey implements filters.Coalescable, so an already-wrapped
// backend re-wrapped by the same or another broker still coalesces.
func (p *proxy) CoalesceKey() string { return p.group.key }

// Leave implements Member.
func (p *proxy) Leave() {
	p.mu.Lock()
	prev := p.state
	p.state = 2
	p.mu.Unlock()
	if prev != 2 {
		p.group.release(prev == 1)
	}
}
